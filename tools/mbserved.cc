// Copyright 2026 The Microbrowse Authors
//
// mbserved — the online snippet-scoring service.
//
//   mbserved --model model.txt --stats stats.tsv [--model-type M1..M6]
//            [--port 7077] [--threads N] [--max-queue N] [--max-batch N]
//            [--cache-capacity N] [--default-deadline-ms N]
//            [--idle-timeout-ms N] [--write-timeout-ms N]
//            [--drain-deadline-ms N] [--drain-retry-after-ms N]
//            [--io-model epoll|threads] [--epoll-mode level|edge]
//            [--scheduler fifo|steal]
//
// --io-model picks the serving core: "epoll" (default) multiplexes every
// connection through one reactor thread; "threads" is the legacy
// thread-per-connection escape hatch, should the reactor misbehave in
// some environment. --epoll-mode picks the reactor's triggering
// discipline: "edge" (default) drains each readable socket until EAGAIN
// with a per-wakeup starvation bound, "level" is the one-chunk-per-event
// baseline. --scheduler picks the scoring scheduler: "steal" (default)
// is the work-stealing per-worker-deque pool, "fifo" the single-mutex
// queue baseline. --write-timeout-ms bounds how long a peer may stop
// reading our responses before its connection is evicted
// (mb.serve.write_timeout).
//
// Speaks the newline-delimited JSON protocol of serve/protocol.h:
//
//   echo '{"type":"score_pair","a":"l1|l2|l3","b":"l1|l2|l3"}' | nc host 7077
//
// Request types: score_pair, predict_ctr, examine, reload, statsz,
// metricsz, healthz, readyz, ping. `curl http://host:port/metricsz`
// (also /healthz, /readyz) works too: plain HTTP GETs are answered
// directly, with readyz mapping not-ready onto 503 for load balancers.
// SIGHUP (or a {"type":"reload"} request) hot-reloads the model bundle
// from the same paths; a corrupt replacement artifact is rejected and the
// previous generation keeps serving (readyz then reports "degraded").
// SIGINT/SIGTERM start a graceful drain: the listener closes, readyz
// flips to "draining", new scoring requests are refused with
// {"error":"draining","retry_after_ms":N}, and in-flight work gets
// --drain-deadline-ms to finish before the hard stop.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "serve/server.h"

using namespace microbrowse;

namespace {

std::atomic<int> g_pending_reloads{0};
std::atomic<bool> g_shutdown{false};

void OnSighup(int) { g_pending_reloads.fetch_add(1, std::memory_order_relaxed); }
void OnShutdownSignal(int) { g_shutdown.store(true, std::memory_order_relaxed); }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Tiny flag parser (mbctl's full one lives in mbctl.cc; mbserved has few
/// enough flags to keep this local). Every flag takes a value.
struct Flags {
  serve::BundlePaths paths;
  serve::ServerOptions server;
  serve::ServiceOptions service;

  static int Usage() {
    std::fprintf(stderr,
                 "usage: mbserved --model model.txt --stats stats.tsv\n"
                 "                [--model-type M1..M6] [--port N] [--threads N]\n"
                 "                [--max-queue N] [--max-batch N] [--cache-capacity N]\n"
                 "                [--default-deadline-ms N] [--idle-timeout-ms N]\n"
                 "                [--write-timeout-ms N] [--drain-deadline-ms N]\n"
                 "                [--drain-retry-after-ms N] [--io-model epoll|threads]\n"
                 "                [--epoll-mode level|edge] [--scheduler fifo|steal]\n"
                 "fault injection: MB_FAILPOINTS=name=spec,...\n");
    return 1;
  }

  static bool ParseInt(const std::string& text, long long* out) {
    char* end = nullptr;
    *out = std::strtoll(text.c_str(), &end, 10);
    return end == text.c_str() + text.size() && !text.empty() && *out >= 0;
  }

  bool Parse(int argc, char** argv) {
    for (int i = 1; i < argc; i += 2) {
      const std::string key = argv[i];
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", key.c_str());
        return false;
      }
      const std::string value = argv[i + 1];
      long long n = 0;
      if (key == "--model") {
        paths.model_path = value;
      } else if (key == "--stats") {
        paths.stats_path = value;
      } else if (key == "--model-type") {
        paths.model_type = value;
      } else if (key == "--port" && ParseInt(value, &n) && n <= 65535) {
        server.port = static_cast<uint16_t>(n);
      } else if (key == "--threads" && ParseInt(value, &n) && n >= 1 && n <= 256) {
        server.num_threads = static_cast<int>(n);
      } else if (key == "--max-queue" && ParseInt(value, &n) && n >= 1) {
        server.max_queue = static_cast<size_t>(n);
      } else if (key == "--max-batch" && ParseInt(value, &n) && n >= 1) {
        server.max_batch = static_cast<size_t>(n);
      } else if (key == "--cache-capacity" && ParseInt(value, &n)) {
        service.cache_capacity = static_cast<size_t>(n);
      } else if (key == "--default-deadline-ms" && ParseInt(value, &n)) {
        server.default_deadline_ms = n;
      } else if (key == "--idle-timeout-ms" && ParseInt(value, &n)) {
        server.idle_timeout_ms = n;
      } else if (key == "--write-timeout-ms" && ParseInt(value, &n)) {
        server.write_timeout_ms = n;
      } else if (key == "--io-model" && (value == "epoll" || value == "threads")) {
        server.io_model = value == "epoll" ? serve::IoModel::kEpoll
                                           : serve::IoModel::kLegacyThreads;
      } else if (key == "--epoll-mode" && (value == "level" || value == "edge")) {
        server.epoll_mode = value == "edge" ? serve::EpollMode::kEdge
                                            : serve::EpollMode::kLevel;
      } else if (key == "--scheduler" && (value == "fifo" || value == "steal")) {
        server.scheduler = value == "steal" ? serve::Scheduler::kWorkStealing
                                            : serve::Scheduler::kFifo;
      } else if (key == "--drain-deadline-ms" && ParseInt(value, &n)) {
        server.drain_deadline_ms = n;
      } else if (key == "--drain-retry-after-ms" && ParseInt(value, &n)) {
        server.drain_retry_after_ms = n;
      } else {
        std::fprintf(stderr, "unknown flag or bad value: %s %s\n", key.c_str(),
                     value.c_str());
        return false;
      }
    }
    if (paths.model_path.empty() || paths.stats_path.empty()) {
      std::fprintf(stderr, "--model and --stats are required\n");
      return false;
    }
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) return Flags::Usage();

  if (const char* spec = std::getenv("MB_FAILPOINTS"); spec != nullptr && *spec != '\0') {
    const Status status = failpoint::ActivateFromList(spec);
    if (!status.ok()) {
      MB_LOG(kWarning) << "ignoring malformed MB_FAILPOINTS: " << status.ToString();
    }
  }

  serve::BundleRegistry registry;
  if (const Status status = registry.LoadInitial(flags.paths); !status.ok()) {
    return Fail(status);
  }
  MB_LOG(kInfo) << "loaded " << flags.paths.model_type << " bundle from "
                << flags.paths.model_path << " + " << flags.paths.stats_path
                << " (generation 1)";

  // Serve metrics live in the process-global registry, alongside the
  // pipeline-stage counters (preregistered so /metricsz exports them at
  // zero even in a pure serving process).
  flags.service.registry = &MetricRegistry::Global();
  PreregisterPipelineMetrics(&MetricRegistry::Global());
  serve::ScoringService service(&registry, flags.service);
  serve::Server server(&service, flags.server);
  auto port = server.Start();
  if (!port.ok()) return Fail(port.status());
  std::printf(
      "mbserved listening on port %u (%s core%s, %s scheduler, %d threads, "
      "queue %zu, batch %zu)\n",
      static_cast<unsigned>(*port),
      flags.server.io_model == serve::IoModel::kEpoll ? "epoll" : "threads",
      flags.server.io_model != serve::IoModel::kEpoll            ? ""
      : flags.server.epoll_mode == serve::EpollMode::kEdge ? "/edge"
                                                           : "/level",
      flags.server.scheduler == serve::Scheduler::kWorkStealing ? "steal" : "fifo",
      flags.server.num_threads, flags.server.max_queue, flags.server.max_batch);
  std::fflush(stdout);

  std::signal(SIGHUP, OnSighup);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);

  // Signal loop: SIGHUP reloads asynchronously to the serving traffic (the
  // registry swap itself is atomic), SIGINT/SIGTERM drain and exit.
  while (!g_shutdown.load(std::memory_order_relaxed)) {
    if (g_pending_reloads.exchange(0, std::memory_order_relaxed) > 0) {
      // Route through the service so the result caches are flushed with
      // the same code path an admin "reload" request takes.
      const std::string response = service.HandleLine("{\"type\":\"reload\"}");
      MB_LOG(kInfo) << "SIGHUP reload: " << response;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Graceful drain: finish what is in flight (bounded by
  // --drain-deadline-ms), refuse the rest with a retry hint, then stop. A
  // non-OK drain means work was abandoned at the hard stop — exit 0
  // regardless (the drain itself worked), but say so.
  const Status drained = server.Drain();
  if (!drained.ok()) {
    MB_LOG(kWarning) << "drain: " << drained.ToString();
  }
  MB_LOG(kInfo) << "shut down";
  return 0;
}
