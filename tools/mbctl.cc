// Copyright 2026 The Microbrowse Authors
//
// mbctl — command-line front end for the microbrowse library.
//
//   mbctl generate  --out corpus.tsv [--adgroups N] [--seed S] [--rhs]
//   mbctl stats     --corpus corpus.tsv --out stats.tsv
//   mbctl mine      --stats stats.tsv [--prefix rw:] [--top N] [--min-count N]
//   mbctl train     --corpus corpus.tsv --out model.txt [--model M1..M6]
//                   [--train-threads N]
//   mbctl evaluate  --corpus corpus.tsv [--model M1..M6] [--folds K]
//                   [--checkpoint-dir run1/] [--threads N] [--train-threads N]
//   mbctl predict   --model model.txt --stats stats.tsv
//                   --a "line1|line2|line3" --b "line1|line2|line3"
//   mbctl predict   --model model.txt --stats stats.tsv
//                   --pairs pairs.tsv [--out margins.tsv]
//   mbctl predict   --server host:port {--a ... --b ... | --pairs pairs.tsv}
//   mbctl pack      {--stats stats.tsv | --model model.txt} --out artifact.mbp
//   mbctl pack-inspect --pack artifact.mbp
//
// All artefacts are the TSV/text formats of io/serialization.h, so every
// intermediate is inspectable with standard shell tools. Fault injection is
// available in every command via the MB_FAILPOINTS environment variable
// (see common/failpoint.h). Commands that load artifacts accept
// --recovery strict|skip_and_log; in salvage mode (and whenever a load is
// not fully clean) the LoadReport is surfaced on stderr instead of
// silently proceeding.

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/trace.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "eval/experiments.h"
#include "io/atomic_file.h"
#include "io/corpus_shards.h"
#include "io/pack_artifacts.h"
#include "io/serialization.h"
#include "microbrowse/optimizer.h"
#include "microbrowse/pipeline.h"
#include "serve/client.h"
#include "serve/protocol.h"

using namespace microbrowse;

namespace {

/// Command-line flag parser. Each command declares its recognised flags up
/// front: unknown flags, missing values and non-numeric integers are hard
/// errors rather than silently ignored or read as zero.
class Flags {
 public:
  /// Parses argv[2..] against the declared flags. `value_flags` always
  /// consume the next argument (so negative numbers like "--seed -5" are
  /// values, not flags); `bool_flags` never do.
  static Result<Flags> Parse(int argc, char** argv,
                             std::initializer_list<const char*> value_flags,
                             std::initializer_list<const char*> bool_flags) {
    const auto contains = [](std::initializer_list<const char*> list,
                             const std::string& key) {
      for (const char* entry : list) {
        if (key == entry) return true;
      }
      return false;
    };
    Flags flags;
    for (int i = 2; i < argc; ++i) {
      const std::string key = argv[i];
      if (!StartsWith(key, "--")) {
        return Status::InvalidArgument("unexpected argument '" + key +
                                       "' (flags start with --)");
      }
      if (contains(bool_flags, key)) {
        flags.values_[key] = "1";
        continue;
      }
      if (contains(value_flags, key)) {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag " + key + " requires a value");
        }
        flags.values_[key] = argv[++i];
        continue;
      }
      return Status::InvalidArgument("unknown flag '" + key + "'");
    }
    return flags;
  }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  /// Integer flag with full validation: "ten", "5x" and out-of-range values
  /// are InvalidArgument, never a silent 0.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback,
                         int64_t min = std::numeric_limits<int64_t>::min(),
                         int64_t max = std::numeric_limits<int64_t>::max()) const {
    const std::string value = Get(key);
    if (value.empty()) return fallback;
    int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
      return Status::InvalidArgument("flag " + key + " expects an integer, got '" + value +
                                     "'");
    }
    if (parsed < min || parsed > max) {
      return Status::InvalidArgument(
          StrFormat("flag %s out of range: %lld (allowed [%lld, %lld])", key.c_str(),
                    static_cast<long long>(parsed), static_cast<long long>(min),
                    static_cast<long long>(max)));
    }
    return parsed;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  Flags() = default;

  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

ClassifierConfig ConfigByName(const std::string& name) {
  for (const auto& config : ClassifierConfig::AllPaperModels()) {
    if (config.name == name) return config;
  }
  std::fprintf(stderr, "unknown model '%s', using M6\n", name.c_str());
  return ClassifierConfig::M6();
}

Snippet ParseSnippetFlag(const std::string& field) {
  std::vector<std::string> lines = Split(field, '|');
  return Snippet::FromLines(lines);
}

/// --recovery flag -> LoadOptions (strict is the default, matching the
/// one-argument loaders).
Result<LoadOptions> RecoveryOptions(const Flags& flags) {
  const std::string mode = flags.Get("--recovery", "strict");
  LoadOptions options;
  if (mode == "strict") {
    options.recovery = LoadOptions::Recovery::kStrict;
  } else if (mode == "skip_and_log") {
    options.recovery = LoadOptions::Recovery::kSkipAndLog;
  } else {
    return Status::InvalidArgument("--recovery expects strict|skip_and_log, got '" +
                                   mode + "'");
  }
  return options;
}

/// Surfaces a LoadReport on stderr when the load was anything but fully
/// clean: salvage drops, checksum trouble, or a missing v2 footer.
void PrintLoadReport(const std::string& path, const LoadReport& report) {
  if (!report.checksum_present) {
    std::fprintf(stderr, "warning: %s: no checksum footer (v1 artifact?); loaded %lld rows unverified\n",
                 path.c_str(), static_cast<long long>(report.rows_kept));
  } else if (!report.checksum_ok) {
    std::fprintf(stderr, "warning: %s: checksum mismatch (artifact damaged)\n",
                 path.c_str());
  }
  if (report.rows_skipped > 0) {
    std::fprintf(stderr,
                 "warning: %s: kept %lld rows, skipped %lld (first error at line %d: %s)\n",
                 path.c_str(), static_cast<long long>(report.rows_kept),
                 static_cast<long long>(report.rows_skipped), report.first_error_line,
                 report.first_error.c_str());
  }
}

/// Loads a classifier from a TSV artifact or an mbpack (sniffed); the
/// LoadReport only applies to the TSV path — packs are all-or-nothing.
Result<SavedClassifier> LoadClassifierSniffed(const std::string& path,
                                              const LoadOptions& options,
                                              LoadReport* report) {
  MB_ASSIGN_OR_RETURN(const bool is_pack, IsPackFile(path));
  if (is_pack) {
    // The pack open verified its checksums; report a clean load so
    // PrintLoadReport stays silent.
    report->checksum_present = true;
    return LoadClassifierPack(path);
  }
  return LoadClassifier(path, options, report);
}

/// Loads a stats database from a TSV artifact or an mbpack (sniffed).
Result<FeatureStatsDb> LoadFeatureStatsSniffed(const std::string& path,
                                               const LoadOptions& options,
                                               LoadReport* report) {
  MB_ASSIGN_OR_RETURN(const bool is_pack, IsPackFile(path));
  if (is_pack) {
    report->checksum_present = true;
    return LoadStatsPack(path);
  }
  return LoadFeatureStats(path, options, report);
}

/// One A/B row of a --pairs TSV: the two snippets plus the computed margin.
struct PairRow {
  std::string a;
  std::string b;
};

/// Reads a --pairs TSV ("a<TAB>b" per row; '#' comments and blank lines
/// skipped).
Result<std::vector<PairRow>> LoadPairRows(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open pairs file: " + path);
  std::vector<PairRow> rows;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> cells = Split(line, '\t');
    if (cells.size() < 2 || cells[0].empty() || cells[1].empty()) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected 'a<TAB>b' snippets", path.c_str(), line_number));
    }
    rows.push_back(PairRow{cells[0], cells[1]});
  }
  return rows;
}

/// Writes the batch-prediction output TSV: a, b, margin, winner.
Status WriteMarginRows(const std::vector<PairRow>& rows, const std::vector<double>& margins,
                       const std::string& path) {
  std::ostringstream out;
  out << "#a\tb\tmargin\twinner\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << rows[i].a << '\t' << rows[i].b << '\t' << StrFormat("%+.6f", margins[i])
        << '\t' << (margins[i] >= 0 ? 'a' : 'b') << '\n';
  }
  return WriteArtifactAtomic(path, out.str(), static_cast<int64_t>(rows.size()));
}

/// Builds the resilient serve client (serve/client.h) from predict's
/// --server, --retries and --deadline-ms flags. Transient failures —
/// connect refusal, "overloaded" sheds, "draining" refusals — are retried
/// with jittered backoff inside the client, so a rolling mbserved restart
/// looks like a brief stall, not a failed batch job.
Result<std::unique_ptr<serve::ResilientClient>> MakeServeClient(const Flags& flags) {
  auto options = serve::ResilientClient::ParseTarget(flags.Get("--server"));
  if (!options.ok()) {
    return Status::InvalidArgument("--server " + options.status().message());
  }
  auto retries = flags.GetInt("--retries", 4, /*min=*/0, /*max=*/100);
  if (!retries.ok()) return retries.status();
  options->retry.max_attempts = static_cast<int>(*retries) + 1;
  auto deadline_ms = flags.GetInt("--deadline-ms", 0, /*min=*/0);
  if (!deadline_ms.ok()) return deadline_ms.status();
  options->deadline_ms = *deadline_ms;
  return std::make_unique<serve::ResilientClient>(*options);
}

int CmdGenerate(const Flags& flags) {
  AdCorpusOptions options;
  auto adgroups = flags.GetInt("--adgroups", 2000, /*min=*/1, /*max=*/10'000'000);
  if (!adgroups.ok()) return Fail(adgroups.status());
  auto seed = flags.GetInt("--seed", 42, /*min=*/0);
  if (!seed.ok()) return Fail(seed.status());
  auto shards = flags.GetInt("--shards", 1, /*min=*/1, /*max=*/99'999);
  if (!shards.ok()) return Fail(shards.status());
  options.num_adgroups = static_cast<int>(*adgroups);
  options.seed = static_cast<uint64_t>(*seed);
  if (flags.Has("--rhs")) options.placement = Placement::kRhs;
  const std::string out = flags.Get("--out", "corpus.tsv");
  if (*shards <= 1) {
    auto generated = GenerateAdCorpus(options);
    if (!generated.ok()) return Fail(generated.status());
    const Status status = SaveAdCorpus(generated->corpus, out);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %zu adgroups (%zu creatives) to %s\n",
                generated->corpus.adgroups.size(), generated->corpus.num_creatives(),
                out.c_str());
    return 0;
  }
  // Sharded generation: each shard is generated, id-offset and written
  // independently, so peak memory is one shard's corpus regardless of the
  // total --adgroups count.
  const size_t n_shards = static_cast<size_t>(*shards);
  int64_t remaining = *adgroups;
  int64_t adgroup_offset = 0;
  int64_t creative_offset = 0;
  size_t total_adgroups = 0;
  size_t total_creatives = 0;
  for (size_t s = 0; s < n_shards; ++s) {
    options.num_adgroups = static_cast<int>(remaining / static_cast<int64_t>(n_shards - s));
    remaining -= options.num_adgroups;
    // Distinct deterministic stream per shard.
    options.seed = static_cast<uint64_t>(*seed) + 0x9e3779b97f4a7c15ULL * (s + 1);
    auto generated = GenerateAdCorpus(options);
    if (!generated.ok()) return Fail(generated.status());
    // Offset ids so the shard set reads as one corpus with unique
    // adgroup/creative ids.
    int64_t max_adgroup = 0;
    for (AdGroup& group : generated->corpus.adgroups) {
      max_adgroup = std::max(max_adgroup, group.id);
      group.id += adgroup_offset;
      for (Creative& creative : group.creatives) creative.id += creative_offset;
    }
    adgroup_offset += max_adgroup + 1;
    creative_offset += static_cast<int64_t>(generated->corpus.num_creatives());
    const std::string shard_path = ShardPath(out, s, n_shards);
    const Status status = SaveAdCorpus(generated->corpus, shard_path);
    if (!status.ok()) return Fail(status);
    total_adgroups += generated->corpus.adgroups.size();
    total_creatives += generated->corpus.num_creatives();
  }
  std::printf("wrote %zu adgroups (%zu creatives) to %zu shards at %s\n", total_adgroups,
              total_creatives, n_shards, ShardPath(out, 0, n_shards).c_str());
  return 0;
}

/// Surfaces shard-level accounting for a streamed sharded read; silent
/// when the stream was fully clean.
void PrintShardReport(const std::string& base_path, const ShardLoadReport& report) {
  if (report.shards_skipped > 0) {
    std::fprintf(stderr, "warning: %s: skipped %zu of %zu shards (first error: %s)\n",
                 base_path.c_str(), report.shards_skipped, report.shards_total,
                 report.first_error.c_str());
  }
  if (report.rows_skipped > 0) {
    std::fprintf(stderr, "warning: %s: skipped %lld rows across shards\n", base_path.c_str(),
                 static_cast<long long>(report.rows_skipped));
  }
}

int CmdStats(const Flags& flags) {
  auto load_options = RecoveryOptions(flags);
  if (!load_options.ok()) return Fail(load_options.status());
  const std::string corpus_path = flags.Get("--corpus", "corpus.tsv");
  auto shards = ResolveCorpusShards(corpus_path);
  if (!shards.ok()) return Fail(shards.status());
  const std::string out = flags.Get("--out", "stats.tsv");
  if (shards->sharded) {
    // Streaming build: one shard's pairs in memory at a time.
    ShardLoadReport report;
    auto db = BuildFeatureStatsSharded(*shards, {}, {}, *load_options, &report);
    if (!db.ok()) return Fail(db.status());
    PrintShardReport(corpus_path, report);
    std::printf("streamed %zu shards: %lld significant pairs\n", report.shards_total,
                static_cast<long long>(report.pairs));
    const Status status = SaveFeatureStats(*db, out);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %zu feature statistics to %s\n", db->size(), out.c_str());
    return 0;
  }
  LoadReport report;
  auto corpus = LoadAdCorpus(corpus_path, *load_options, &report);
  if (!corpus.ok()) return Fail(corpus.status());
  PrintLoadReport(corpus_path, report);
  const PairCorpus pairs = ExtractSignificantPairs(*corpus, {});
  std::printf("extracted %zu significant pairs\n", pairs.pairs.size());
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  const Status status = SaveFeatureStats(db, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu feature statistics to %s\n", db.size(), out.c_str());
  return 0;
}

int CmdMine(const Flags& flags) {
  auto load_options = RecoveryOptions(flags);
  if (!load_options.ok()) return Fail(load_options.status());
  const std::string stats_path = flags.Get("--stats", "stats.tsv");
  LoadReport report;
  auto db = LoadFeatureStatsSniffed(stats_path, *load_options, &report);
  if (!db.ok()) return Fail(db.status());
  PrintLoadReport(stats_path, report);
  const std::string prefix = flags.Get("--prefix", "rw:");
  auto min_count_flag = flags.GetInt("--min-count", 10, /*min=*/0);
  if (!min_count_flag.ok()) return Fail(min_count_flag.status());
  auto top_flag = flags.GetInt("--top", 20, /*min=*/0);
  if (!top_flag.ok()) return Fail(top_flag.status());
  const int64_t min_count = *min_count_flag;
  const size_t top = static_cast<size_t>(*top_flag);

  std::vector<std::pair<std::string, FeatureStat>> rows;
  db->ForEach([&](std::string_view key, const FeatureStat& stat) {
    if (StartsWith(key, prefix) && stat.total >= min_count) rows.emplace_back(key, stat);
  });
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::fabs(a.second.SmoothedP() - 0.5) > std::fabs(b.second.SmoothedP() - 0.5);
  });
  if (rows.size() > top) rows.resize(top);
  std::printf("top %zu '%s' features by decisiveness (n >= %lld):\n", rows.size(),
              prefix.c_str(), static_cast<long long>(min_count));
  for (const auto& [key, stat] : rows) {
    std::printf("  p(+)=%.3f n=%6lld  %s\n", stat.SmoothedP(),
                static_cast<long long>(stat.total), key.c_str());
  }
  return 0;
}

int CmdTrain(const Flags& flags) {
  auto load_options = RecoveryOptions(flags);
  if (!load_options.ok()) return Fail(load_options.status());
  const std::string corpus_path = flags.Get("--corpus", "corpus.tsv");
  auto shards = ResolveCorpusShards(corpus_path);
  if (!shards.ok()) return Fail(shards.status());
  auto train_threads = flags.GetInt("--train-threads", 1, /*min=*/1, /*max=*/256);
  if (!train_threads.ok()) return Fail(train_threads.status());
  ClassifierConfig config = ConfigByName(flags.Get("--model", "M6"));
  // Results are bitwise identical for any thread count (DESIGN.md §11).
  config.lr.num_threads = static_cast<int>(*train_threads);
  config.position_lr.num_threads = static_cast<int>(*train_threads);
  auto seed = flags.GetInt("--seed", 99, /*min=*/0);
  if (!seed.ok()) return Fail(seed.status());
  BuildStatsOptions stats_options;
  stats_options.num_threads = static_cast<int>(*train_threads);

  if (shards->sharded) {
    // Streaming path: stats and the training CSR are accumulated shard by
    // shard; only one shard's rows are ever in memory, and the result is
    // bitwise identical to materialising the whole corpus first.
    ShardLoadReport stats_report;
    auto db = BuildFeatureStatsSharded(*shards, {}, stats_options, *load_options,
                                       &stats_report);
    if (!db.ok()) return Fail(db.status());
    PrintShardReport(corpus_path, stats_report);
    ShardLoadReport csr_report;
    auto data = BuildCoupledCsrSharded(*shards, *db, config, static_cast<uint64_t>(*seed), {},
                                       *load_options, &csr_report);
    if (!data.ok()) return Fail(data.status());
    auto model = TrainSnippetClassifier(data->csr, config);
    if (!model.ok()) return Fail(model.status());
    const std::string out = flags.Get("--out", "model.txt");
    const Status status = SaveClassifier(*model, data->t_registry, data->p_registry, out);
    if (!status.ok()) return Fail(status);
    std::printf(
        "trained %s on %lld pairs (%zu shards, streamed); wrote %s (%zu T features, %zu P "
        "features)\n",
        config.name.c_str(), static_cast<long long>(csr_report.pairs), shards->paths.size(),
        out.c_str(), data->t_registry.size(), data->p_registry.size());
    return 0;
  }

  LoadReport report;
  auto corpus = LoadAdCorpus(corpus_path, *load_options, &report);
  if (!corpus.ok()) return Fail(corpus.status());
  PrintLoadReport(corpus_path, report);
  const PairCorpus pairs = ExtractSignificantPairs(*corpus, {});
  const FeatureStatsDb db = BuildFeatureStats(pairs, stats_options);
  const CoupledDataset dataset =
      BuildClassifierDataset(pairs, db, config, static_cast<uint64_t>(*seed));
  auto model = TrainSnippetClassifier(dataset, config);
  if (!model.ok()) return Fail(model.status());
  const std::string out = flags.Get("--out", "model.txt");
  const Status status =
      SaveClassifier(*model, dataset.t_registry, dataset.p_registry, out);
  if (!status.ok()) return Fail(status);
  std::printf("trained %s on %zu pairs; wrote %s (%zu T features, %zu P features)\n",
              config.name.c_str(), pairs.pairs.size(), out.c_str(),
              dataset.t_registry.size(), dataset.p_registry.size());
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto load_options = RecoveryOptions(flags);
  if (!load_options.ok()) return Fail(load_options.status());
  const std::string corpus_path = flags.Get("--corpus", "corpus.tsv");
  auto shards = ResolveCorpusShards(corpus_path);
  if (!shards.ok()) return Fail(shards.status());
  PairCorpus pairs;
  if (shards->sharded) {
    // Cross-validation needs random access over the pairs, so a sharded
    // corpus is materialised here (memory proportional to the corpus).
    ShardLoadReport shard_report;
    auto corpus = LoadShardedAdCorpus(*shards, *load_options, &shard_report);
    if (!corpus.ok()) return Fail(corpus.status());
    PrintShardReport(corpus_path, shard_report);
    pairs = ExtractSignificantPairs(*corpus, {});
  } else {
    LoadReport report;
    auto corpus = LoadAdCorpus(corpus_path, *load_options, &report);
    if (!corpus.ok()) return Fail(corpus.status());
    PrintLoadReport(corpus_path, report);
    pairs = ExtractSignificantPairs(*corpus, {});
  }
  PipelineOptions pipeline;
  auto folds = flags.GetInt("--folds", 5, /*min=*/2, /*max=*/1000);
  if (!folds.ok()) return Fail(folds.status());
  auto seed = flags.GetInt("--seed", 99, /*min=*/0);
  if (!seed.ok()) return Fail(seed.status());
  auto threads = flags.GetInt("--threads", 1, /*min=*/1, /*max=*/256);
  if (!threads.ok()) return Fail(threads.status());
  auto train_threads = flags.GetInt("--train-threads", 1, /*min=*/1, /*max=*/256);
  if (!train_threads.ok()) return Fail(train_threads.status());
  pipeline.folds = static_cast<int>(*folds);
  pipeline.seed = static_cast<uint64_t>(*seed);
  pipeline.num_threads = static_cast<int>(*threads);
  pipeline.train_threads = static_cast<int>(*train_threads);
  const std::string checkpoint_dir = flags.Get("--checkpoint-dir");
  const std::string model_flag = flags.Get("--model", "all");
  std::vector<ClassifierConfig> configs;
  if (model_flag == "all") {
    configs = ClassifierConfig::AllPaperModels();
  } else {
    configs.push_back(ConfigByName(model_flag));
  }
  for (const auto& config : configs) {
    // Each configuration checkpoints into its own subdirectory so an
    // "--model all" run can resume per model.
    pipeline.checkpoint_dir =
        checkpoint_dir.empty() ? "" : checkpoint_dir + "/" + config.name;
    auto report = RunPairClassificationCv(pairs, config, pipeline);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s: recall=%.3f precision=%.3f F=%.3f accuracy=%.3f auc=%.3f\n",
                config.name.c_str(), report->metrics.recall(), report->metrics.precision(),
                report->metrics.f1(), report->metrics.accuracy(), report->auc);
  }
  return 0;
}

/// mbctl pack: converts a TSV artifact (exactly one of --stats / --model)
/// into the equivalent mbpack container.
int CmdPack(const Flags& flags) {
  const bool has_stats = flags.Has("--stats");
  const bool has_model = flags.Has("--model");
  if (has_stats == has_model) {
    std::fprintf(stderr, "pack needs exactly one of --stats stats.tsv / --model model.txt\n");
    return 1;
  }
  auto load_options = RecoveryOptions(flags);
  if (!load_options.ok()) return Fail(load_options.status());
  if (has_stats) {
    const std::string in = flags.Get("--stats");
    const std::string out = flags.Get("--out", "stats.mbp");
    LoadReport report;
    auto db = LoadFeatureStats(in, *load_options, &report);
    if (!db.ok()) return Fail(db.status());
    PrintLoadReport(in, report);
    if (const Status status = SaveStatsPack(*db, out); !status.ok()) return Fail(status);
    std::printf("packed %zu feature statistics: %s -> %s\n", db->size(), in.c_str(),
                out.c_str());
    return 0;
  }
  const std::string in = flags.Get("--model");
  const std::string out = flags.Get("--out", "model.mbp");
  LoadReport report;
  auto saved = LoadClassifier(in, *load_options, &report);
  if (!saved.ok()) return Fail(saved.status());
  PrintLoadReport(in, report);
  if (const Status status =
          SaveClassifierPack(saved->model, saved->t_registry, saved->p_registry, out);
      !status.ok()) {
    return Fail(status);
  }
  std::printf("packed classifier (%zu T features, %zu P features): %s -> %s\n",
              saved->t_registry.size(), saved->p_registry.size(), in.c_str(), out.c_str());
  return 0;
}

/// mbctl pack-inspect: validates a pack exactly as hard as the serving
/// open path and dumps header, section table and artifact metadata.
int CmdPackInspect(const Flags& flags) {
  const std::string path = flags.Get("--pack");
  if (path.empty()) {
    std::fprintf(stderr, "pack-inspect needs --pack file.mbp\n");
    return 1;
  }
  auto description = DescribePack(path);
  if (!description.ok()) return Fail(description.status());
  std::fputs(description->c_str(), stdout);
  return 0;
}

/// Emits batch margins: to --out as a checksummed TSV artifact, otherwise
/// to stdout.
int EmitMargins(const std::vector<PairRow>& rows, const std::vector<double>& margins,
                const Flags& flags) {
  const std::string out = flags.Get("--out");
  if (out.empty()) {
    std::printf("#a\tb\tmargin\twinner\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("%s\t%s\t%+.6f\t%c\n", rows[i].a.c_str(), rows[i].b.c_str(), margins[i],
                  margins[i] >= 0 ? 'a' : 'b');
    }
    return 0;
  }
  if (const Status status = WriteMarginRows(rows, margins, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu margins to %s\n", rows.size(), out.c_str());
  return 0;
}

int CmdPredict(const Flags& flags) {
  const bool batch = flags.Has("--pairs");
  if (!batch && (!flags.Has("--a") || !flags.Has("--b"))) {
    std::fprintf(stderr,
                 "predict needs --a and --b snippets (\"line1|line2|line3\") or --pairs\n");
    return 1;
  }

  // --server mode: route scoring through a running mbserved instead of
  // loading the bundle locally. The same --pairs input scored both ways is
  // the serve-vs-batch parity check.
  if (flags.Has("--server")) {
    auto client = MakeServeClient(flags);
    if (!client.ok()) return Fail(client.status());
    if (batch) {
      auto rows = LoadPairRows(flags.Get("--pairs"));
      if (!rows.ok()) return Fail(rows.status());
      std::vector<double> margins;
      margins.reserve(rows->size());
      for (const PairRow& row : *rows) {
        auto margin = (*client)->ScorePair(row.a, row.b);
        if (!margin.ok()) return Fail(margin.status());
        margins.push_back(*margin);
      }
      return EmitMargins(*rows, margins, flags);
    }
    auto margin = (*client)->ScorePair(flags.Get("--a"), flags.Get("--b"));
    if (!margin.ok()) return Fail(margin.status());
    std::printf("A: %s\nB: %s\nmargin(A over B) = %+.4f  ->  %s\n",
                flags.Get("--a").c_str(), flags.Get("--b").c_str(), *margin,
                *margin >= 0 ? "A predicted to win" : "B predicted to win");
    return 0;
  }

  auto load_options = RecoveryOptions(flags);
  if (!load_options.ok()) return Fail(load_options.status());
  const std::string model_path = flags.Get("--model", "model.txt");
  LoadReport model_report;
  auto saved = LoadClassifierSniffed(model_path, *load_options, &model_report);
  if (!saved.ok()) return Fail(saved.status());
  PrintLoadReport(model_path, model_report);
  const std::string stats_path = flags.Get("--stats", "stats.tsv");
  LoadReport stats_report;
  auto db = LoadFeatureStatsSniffed(stats_path, *load_options, &stats_report);
  if (!db.ok()) return Fail(db.status());
  PrintLoadReport(stats_path, stats_report);
  const ClassifierConfig config = ConfigByName(flags.Get("--model-type", "M6"));

  if (batch) {
    auto rows = LoadPairRows(flags.Get("--pairs"));
    if (!rows.ok()) return Fail(rows.status());
    // One mutable registry pair is reused across all rows (features interned
    // by earlier rows stay interned — scores are unaffected, see optimizer.h).
    FeatureRegistry t_registry = saved->t_registry;
    FeatureRegistry p_registry = saved->p_registry;
    std::vector<double> margins;
    margins.reserve(rows->size());
    for (const PairRow& row : *rows) {
      margins.push_back(PredictPairMargin(ParseSnippetFlag(row.a), ParseSnippetFlag(row.b),
                                          *db, config, saved->model, &t_registry,
                                          &p_registry));
    }
    return EmitMargins(*rows, margins, flags);
  }

  const Snippet a = ParseSnippetFlag(flags.Get("--a"));
  const Snippet b = ParseSnippetFlag(flags.Get("--b"));
  const double margin = PredictPairMargin(a, b, *db, config, saved->model,
                                          saved->t_registry, saved->p_registry);
  std::printf("A: %s\nB: %s\nmargin(A over B) = %+.4f  ->  %s\n", a.ToString().c_str(),
              b.ToString().c_str(), margin,
              margin >= 0 ? "A predicted to win" : "B predicted to win");
  return 0;
}

void PrintUsage() {
  std::printf(
      "mbctl — microbrowse command line\n"
      "  mbctl generate --out corpus.tsv [--adgroups N] [--seed S] [--rhs] [--shards N]\n"
      "  mbctl stats    --corpus corpus.tsv --out stats.tsv\n"
      "  mbctl mine     --stats stats.tsv [--prefix rw:|t:|pp:] [--top N] [--min-count N]\n"
      "  mbctl train    --corpus corpus.tsv --out model.txt [--model M1..M6]\n"
      "                 [--train-threads N]\n"
      "  mbctl evaluate --corpus corpus.tsv [--model M1..M6|all] [--folds K]\n"
      "                 [--checkpoint-dir run1/] [--threads N] [--train-threads N]\n"
      "  mbctl predict  --model model.txt --stats stats.tsv --a \"l1|l2|l3\" --b \"l1|l2|l3\"\n"
      "  mbctl predict  --model model.txt --stats stats.tsv --pairs pairs.tsv [--out m.tsv]\n"
      "  mbctl predict  --server host:port {--a ... --b ... | --pairs pairs.tsv}\n"
      "                 [--retries N] [--deadline-ms N]\n"
      "  mbctl pack     {--stats stats.tsv | --model model.txt} --out artifact.mbp\n"
      "  mbctl pack-inspect --pack artifact.mbp\n"
      "packs: predict --model/--stats and mbserved bundle paths accept TSV\n"
      "artifacts and mbpack containers interchangeably (magic-byte sniff)\n"
      "shards: generate --shards N writes corpus-00000-of-0000N.tsv ...; stats,\n"
      "train and evaluate accept the base path and stream the shard set\n"
      "(stats/train hold one shard in memory at a time)\n"
      "recovery: loading commands accept --recovery strict|skip_and_log\n"
      "tracing: every command accepts --trace-out trace.json (common/trace.h)\n"
      "fault injection: MB_FAILPOINTS=name=spec,... (see common/failpoint.h)\n");
}

/// Per-command flag declarations; anything else is rejected. Every command
/// accepts --trace-out=FILE (handled in main) so any stage can be traced.
Result<Flags> ParseCommandFlags(const std::string& command, int argc, char** argv) {
  if (command == "generate") {
    return Flags::Parse(argc, argv,
                        {"--out", "--adgroups", "--seed", "--shards", "--trace-out"},
                        {"--rhs"});
  }
  if (command == "stats") {
    return Flags::Parse(argc, argv, {"--corpus", "--out", "--recovery", "--trace-out"}, {});
  }
  if (command == "mine") {
    return Flags::Parse(
        argc, argv, {"--stats", "--prefix", "--top", "--min-count", "--recovery", "--trace-out"},
        {});
  }
  if (command == "train") {
    return Flags::Parse(argc, argv,
                        {"--corpus", "--out", "--model", "--seed", "--train-threads",
                         "--recovery", "--trace-out"},
                        {});
  }
  if (command == "evaluate") {
    return Flags::Parse(argc, argv,
                        {"--corpus", "--model", "--folds", "--seed", "--checkpoint-dir",
                         "--threads", "--train-threads", "--recovery", "--trace-out"},
                        {});
  }
  if (command == "predict") {
    return Flags::Parse(argc, argv,
                        {"--model", "--stats", "--a", "--b", "--model-type", "--pairs",
                         "--out", "--server", "--retries", "--deadline-ms", "--recovery",
                         "--trace-out"},
                        {});
  }
  if (command == "pack") {
    return Flags::Parse(argc, argv, {"--stats", "--model", "--out", "--recovery", "--trace-out"},
                        {});
  }
  if (command == "pack-inspect") {
    return Flags::Parse(argc, argv, {"--pack", "--trace-out"}, {});
  }
  return Status::InvalidArgument("unknown command '" + command + "'");
}

int RunCommand(const std::string& command, const Flags& flags) {
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "mine") return CmdMine(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "pack") return CmdPack(flags);
  if (command == "pack-inspect") return CmdPackInspect(flags);
  return CmdPredict(flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  auto flags = ParseCommandFlags(command, argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    PrintUsage();
    return 1;
  }
  const std::string trace_out = flags->Get("--trace-out");
  if (!trace_out.empty()) trace::Enable();
  const int exit_code = RunCommand(command, *flags);
  if (!trace_out.empty()) {
    trace::Disable();
    if (const Status status = trace::WriteJson(trace_out); !status.ok()) {
      std::fprintf(stderr, "warning: failed to write trace: %s\n",
                   status.ToString().c_str());
    } else {
      std::fprintf(stderr, "wrote %zu trace spans to %s\n", trace::CollectedSpanCount(),
                   trace_out.c_str());
    }
  }
  return exit_code;
}
