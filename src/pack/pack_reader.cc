// Copyright 2026 The Microbrowse Authors

#include "pack/pack_reader.h"

#include <algorithm>
#include <cstring>

#include "common/failpoint.h"
#include "common/hash.h"

namespace microbrowse {
namespace pack {

namespace {

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::IOError(path + ": not a valid mbpack: " + why);
}

}  // namespace

size_t StringTable::Find(std::string_view key) const {
  size_t lo = 0, hi = count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (at(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < count_ && at(lo) == key ? lo : kNotFound;
}

Result<std::shared_ptr<const PackReader>> PackReader::Open(const std::string& path) {
  MB_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const uint8_t* data = file.data();
  const size_t size = file.size();
  if (size < kMinFileSize) return Corrupt(path, "file smaller than header + footer");

  // Header first, via memcpy — validating before trusting any length field.
  PackHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kHeaderMagic, sizeof(header.magic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (header.version != kFormatVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(header.version));
  }
  if (header.endian_marker != kEndianMarker) {
    return Corrupt(path, "endianness mismatch (pack written on a different architecture)");
  }
  const uint64_t header_hash = Fnv1a64(std::string_view(
      reinterpret_cast<const char*>(data), offsetof(PackHeader, header_checksum)));
  if (header.header_checksum != header_hash) return Corrupt(path, "header checksum mismatch");
  if (header.file_size != size) {
    return Corrupt(path, "declared size " + std::to_string(header.file_size) +
                             " != actual " + std::to_string(size) + " (truncated?)");
  }
  if (header.reserved != 0 || header.reserved2 != 0) {
    return Corrupt(path, "reserved header fields set");
  }

  // Section table bounds.
  const uint64_t table_offset = sizeof(PackHeader);
  const uint64_t table_end =
      table_offset + static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  const uint64_t payload_floor = size - sizeof(PackFooter);
  if (table_end > payload_floor || header.payload_start < table_end ||
      header.payload_start > payload_floor) {
    return Corrupt(path, "section table out of bounds");
  }

  // Footer + whole-file checksum: one sequential pass over the mapping.
  // After this, every byte the section views can reach is known-good.
  PackFooter footer;
  std::memcpy(&footer, data + size - sizeof(PackFooter), sizeof(footer));
  if (std::memcmp(footer.magic, kFooterMagic, sizeof(footer.magic)) != 0) {
    return Corrupt(path, "bad footer magic (truncated?)");
  }
  const uint64_t file_hash = Fnv1a64Wide(
      std::string_view(reinterpret_cast<const char*>(data), size - sizeof(PackFooter)));
  if (footer.file_checksum != file_hash) return Corrupt(path, "file checksum mismatch");

  auto reader = std::shared_ptr<PackReader>(new PackReader());
  reader->file_ = std::move(file);
  reader->path_ = path;
  reader->file_checksum_ = footer.file_checksum;
  reader->sections_.reserve(header.section_count);
  const uint8_t* base = reader->file_.data();
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, base + table_offset + i * sizeof(SectionEntry), sizeof(entry));
    if (entry.offset % kSectionAlignment != 0) {
      return Corrupt(path, "section " + std::to_string(entry.type) + " misaligned");
    }
    if (entry.offset < header.payload_start || entry.offset > payload_floor ||
        entry.size > payload_floor - entry.offset) {
      return Corrupt(path, "section " + std::to_string(entry.type) + " out of bounds");
    }
    for (const SectionInfo& prior : reader->sections_) {
      if (prior.type == entry.type) {
        return Corrupt(path, "duplicate section type " + std::to_string(entry.type));
      }
    }
    reader->sections_.push_back(
        SectionInfo{entry.type, entry.offset, entry.size, entry.checksum});
  }
  MB_FAILPOINT("pack.open");
  return std::shared_ptr<const PackReader>(std::move(reader));
}

bool PackReader::HasSection(uint32_t type) const {
  for (const SectionInfo& section : sections_) {
    if (section.type == type) return true;
  }
  return false;
}

Result<std::string_view> PackReader::Section(uint32_t type) const {
  for (const SectionInfo& section : sections_) {
    if (section.type == type) {
      return std::string_view(reinterpret_cast<const char*>(file_.data()) + section.offset,
                              static_cast<size_t>(section.size));
    }
  }
  return Status::NotFound(path_ + ": no section of type " + std::to_string(type));
}

Result<StringTable> PackReader::Strings(uint32_t offsets_type, uint32_t bytes_type) const {
  size_t offset_count = 0;
  MB_ASSIGN_OR_RETURN(const uint64_t* offsets, Array<uint64_t>(offsets_type, &offset_count));
  MB_ASSIGN_OR_RETURN(std::string_view bytes, Section(bytes_type));
  if (offset_count == 0) {
    return Corrupt(path_, "string-offset section " + std::to_string(offsets_type) +
                              " empty (needs count+1 entries)");
  }
  const size_t count = offset_count - 1;
  if (offsets[0] != 0 || offsets[count] != bytes.size() ||
      !std::is_sorted(offsets, offsets + offset_count)) {
    return Corrupt(path_, "string-offset section " + std::to_string(offsets_type) +
                              " inconsistent with its byte blob");
  }
  return StringTable(offsets, count, bytes.data());
}

}  // namespace pack
}  // namespace microbrowse
