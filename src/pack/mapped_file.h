// Copyright 2026 The Microbrowse Authors
//
// A read-only memory mapping of a whole file. The mapping is the lifetime
// anchor for every zero-copy view handed out by PackReader: views borrow
// pointers into the mapped region, and the shared_ptr<const PackReader>
// that owns a MappedFile keeps those pointers valid — this is what makes
// "old generation keeps serving while a new pack maps in" work without
// copying (see DESIGN.md section 14 on mmap lifetime vs generation swap).

#ifndef MICROBROWSE_PACK_MAPPED_FILE_H_
#define MICROBROWSE_PACK_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"

namespace microbrowse {
namespace pack {

/// Move-only RAII wrapper around mmap(2) of an entire file, read-only.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with IOError on open/stat/mmap problems
  /// and on empty files (no valid artifact is zero bytes; mmap of length 0
  /// is also undefined). The file descriptor is closed before returning —
  /// the mapping survives the close.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Unmap();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { Unmap(); }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view bytes() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

 private:
  void Unmap();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pack
}  // namespace microbrowse

#endif  // MICROBROWSE_PACK_MAPPED_FILE_H_
