// Copyright 2026 The Microbrowse Authors

#include "pack/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace microbrowse {
namespace pack {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  MB_FAILPOINT("pack.mmap.open");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("mmap open failed: " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("mmap fstat failed: " + path + ": " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IOError("mmap refused: " + path + " is empty");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference to the file.
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path + ": " + std::strerror(errno));
  }
  MappedFile file;
  file.data_ = static_cast<const uint8_t*>(mapping);
  file.size_ = size;
  return file;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace pack
}  // namespace microbrowse
