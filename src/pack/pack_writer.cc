// Copyright 2026 The Microbrowse Authors

#include "pack/pack_writer.h"

#include <unordered_set>

#include "common/hash.h"
#include "io/atomic_file.h"

namespace microbrowse {
namespace pack {

namespace {

size_t AlignUp(size_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

void AppendStruct(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

}  // namespace

Status PackWriter::Finish(const std::string& path) const {
  std::unordered_set<uint32_t> seen;
  for (const Section& section : sections_) {
    if (!seen.insert(section.type).second) {
      return Status::InvalidArgument("PackWriter: duplicate section type " +
                                     std::to_string(section.type));
    }
  }

  // Lay out: header, table, aligned payloads, footer.
  const size_t table_offset = sizeof(PackHeader);
  const size_t table_size = sections_.size() * sizeof(SectionEntry);
  std::vector<SectionEntry> table(sections_.size());
  size_t cursor = AlignUp(table_offset + table_size);
  const size_t payload_start = cursor;
  for (size_t i = 0; i < sections_.size(); ++i) {
    table[i].type = sections_[i].type;
    table[i].reserved = 0;
    table[i].offset = cursor;
    table[i].size = sections_[i].payload.size();
    table[i].checksum = Fnv1a64Wide(sections_[i].payload);
    cursor = AlignUp(cursor + sections_[i].payload.size());
  }
  const size_t file_size = cursor + sizeof(PackFooter);

  PackHeader header{};
  std::memcpy(header.magic, kHeaderMagic, sizeof(header.magic));
  header.version = kFormatVersion;
  header.endian_marker = kEndianMarker;
  header.file_size = file_size;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.reserved = 0;
  header.payload_start = payload_start;
  header.reserved2 = 0;
  header.header_checksum = Fnv1a64(std::string_view(
      reinterpret_cast<const char*>(&header), offsetof(PackHeader, header_checksum)));

  std::string file;
  file.reserve(file_size);
  AppendStruct(&file, &header, sizeof(header));
  AppendStruct(&file, table.data(), table_size);
  for (size_t i = 0; i < sections_.size(); ++i) {
    file.resize(table[i].offset, '\0');  // Alignment padding.
    file.append(sections_[i].payload);
  }
  file.resize(cursor, '\0');

  PackFooter footer{};
  std::memcpy(footer.magic, kFooterMagic, sizeof(footer.magic));
  footer.file_checksum = Fnv1a64Wide(file);
  AppendStruct(&file, &footer, sizeof(footer));

  return WriteFileAtomic(path, file);
}

}  // namespace pack
}  // namespace microbrowse
