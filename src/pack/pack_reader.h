// Copyright 2026 The Microbrowse Authors
//
// Opens an mbpack container for in-place use. Open() maps the file,
// validates structure and checksums (one sequential pass — a truncated or
// bit-flipped pack never survives to the accessors), then hands out
// zero-copy typed views into the mapping:
//
//   auto reader = PackReader::Open("stats.mbp");
//   MB_ASSIGN_OR_RETURN(auto counts, (*reader)->Array<int64_t>(kMySection));
//   MB_ASSIGN_OR_RETURN(auto names, (*reader)->Strings(kOffsets, kBytes));
//   size_t i = names.Find("t:cheap flights");   // binary search, sorted tables
//
// Views borrow the mapping: callers keep the shared_ptr<const PackReader>
// alive for as long as any view (or pointer derived from one) is in use.
// Serving code does this by storing the shared_ptr next to the views in the
// bundle / registry / stats-db object that owns them.

#ifndef MICROBROWSE_PACK_PACK_READER_H_
#define MICROBROWSE_PACK_PACK_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "pack/format.h"
#include "pack/mapped_file.h"

namespace microbrowse {
namespace pack {

/// A sorted (or id-ordered) string table laid out as an offsets array plus
/// a concatenated byte blob: string i is bytes [offsets[i], offsets[i+1]).
/// The offsets array has count+1 entries, offsets[0] == 0.
class StringTable {
 public:
  StringTable() = default;
  StringTable(const uint64_t* offsets, size_t count, const char* bytes)
      : offsets_(offsets), count_(count), bytes_(bytes) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  std::string_view at(size_t i) const {
    return std::string_view(bytes_ + offsets_[i],
                            static_cast<size_t>(offsets_[i + 1] - offsets_[i]));
  }

  /// Sentinel returned by Find when `key` is absent.
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  /// Binary search; valid only when the table was written in ascending
  /// lexicographic order. Returns the index of `key` or kNotFound.
  size_t Find(std::string_view key) const;

 private:
  const uint64_t* offsets_ = nullptr;  ///< count_ + 1 entries.
  size_t count_ = 0;
  const char* bytes_ = nullptr;
};

/// How a pack failed structural validation (all map onto IOError statuses;
/// the enum exists so tests can assert on the failure class via message).
///
/// An opened PackReader is immutable and internally synchronised by virtue
/// of being read-only; sharing one shared_ptr<const PackReader> across
/// threads is safe.
class PackReader {
 public:
  /// Maps `path` and validates: magic, version, endianness, declared vs
  /// actual file size, header checksum, section-table bounds + alignment,
  /// footer magic and the whole-file checksum. Any problem -> IOError and
  /// no reader. Failpoint: pack.open fires after successful validation.
  static Result<std::shared_ptr<const PackReader>> Open(const std::string& path);

  /// The whole-file checksum recorded in the footer (verified at open).
  /// Doubles as a content fingerprint for reload short-circuiting.
  uint64_t file_checksum() const { return file_checksum_; }
  size_t file_size() const { return file_.size(); }
  const std::string& path() const { return path_; }

  struct SectionInfo {
    uint32_t type = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint64_t checksum = 0;
  };
  const std::vector<SectionInfo>& sections() const { return sections_; }

  bool HasSection(uint32_t type) const;

  /// Raw payload bytes of a section; NotFound when the type is absent.
  Result<std::string_view> Section(uint32_t type) const;

  /// Typed array view of a section: the payload must divide evenly into
  /// sizeof(T) (alignment holds by construction — sections start 8-aligned).
  template <typename T>
  Result<const T*> Array(uint32_t type, size_t* count) const {
    static_assert(std::is_trivially_copyable_v<T>, "Array needs a POD type");
    static_assert(alignof(T) <= kSectionAlignment, "T over-aligned for a section");
    MB_ASSIGN_OR_RETURN(std::string_view bytes, Section(type));
    if (bytes.size() % sizeof(T) != 0) {
      return Status::IOError(path_ + ": section " + std::to_string(type) + " size " +
                             std::to_string(bytes.size()) + " not a multiple of " +
                             std::to_string(sizeof(T)));
    }
    *count = bytes.size() / sizeof(T);
    return reinterpret_cast<const T*>(bytes.data());
  }

  /// String-table view over an offsets section + a bytes section. Validates
  /// that offsets are monotone and end exactly at the blob size, so at()
  /// can never read out of bounds later.
  Result<StringTable> Strings(uint32_t offsets_type, uint32_t bytes_type) const;

 private:
  PackReader() = default;

  MappedFile file_;
  std::string path_;
  uint64_t file_checksum_ = 0;
  std::vector<SectionInfo> sections_;
};

}  // namespace pack
}  // namespace microbrowse

#endif  // MICROBROWSE_PACK_PACK_READER_H_
