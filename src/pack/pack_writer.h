// Copyright 2026 The Microbrowse Authors
//
// Assembles an mbpack container in memory and writes it through the
// crash-safe atomic path of io/atomic_file.h: readers either see the
// complete previous pack or the complete new one, never a torn file.
// Checksums (header, per-section, whole-file) are computed here so that a
// freshly written pack always round-trips through PackReader::Open.
//
// Typical use (an artifact schema in io/pack_artifacts.cc):
//
//   PackWriter writer;
//   SectionBuilder keys;
//   for (...) keys.AppendPod<uint64_t>(offset);
//   writer.AddSection(kMySectionId, std::move(keys).Take());
//   MB_RETURN_IF_ERROR(writer.Finish(path));

#ifndef MICROBROWSE_PACK_PACK_WRITER_H_
#define MICROBROWSE_PACK_PACK_WRITER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "pack/format.h"

namespace microbrowse {
namespace pack {

/// Byte-buffer builder for one section payload. POD values are appended in
/// native byte order, matching the reader's reinterpret_cast views.
class SectionBuilder {
 public:
  /// Appends the raw bytes of a trivially-copyable value.
  template <typename T>
  void AppendPod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>, "AppendPod needs a POD type");
    const size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &value, sizeof(T));
  }

  /// Appends a whole array of trivially-copyable values.
  template <typename T>
  void AppendArray(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>, "AppendArray needs POD types");
    const size_t at = bytes_.size();
    bytes_.resize(at + values.size() * sizeof(T));
    std::memcpy(bytes_.data() + at, values.data(), values.size() * sizeof(T));
  }

  /// Appends raw string bytes (no terminator; offsets index into the blob).
  void AppendBytes(std::string_view bytes) { bytes_.append(bytes); }

  size_t size() const { return bytes_.size(); }
  std::string Take() && { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Collects sections and writes the finished container atomically.
class PackWriter {
 public:
  /// Adds a section. `type` must be unique within this pack (checked in
  /// Finish). Section order in the file follows insertion order.
  void AddSection(uint32_t type, std::string payload) {
    sections_.push_back(Section{type, std::move(payload)});
  }

  /// Assembles header + table + aligned payloads + footer and writes the
  /// result via WriteFileAtomic. On any failure `path` is untouched.
  Status Finish(const std::string& path) const;

 private:
  struct Section {
    uint32_t type;
    std::string payload;
  };
  std::vector<Section> sections_;
};

}  // namespace pack
}  // namespace microbrowse

#endif  // MICROBROWSE_PACK_PACK_WRITER_H_
