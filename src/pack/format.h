// Copyright 2026 The Microbrowse Authors
//
// The on-disk layout of an mbpack container — an immutable, versioned,
// checksummed binary file designed to be used *in place* via mmap(2):
//
//   [PackHeader]        fixed 56 bytes at offset 0
//   [SectionEntry * N]  the section table, immediately after the header
//   [section payloads]  each starting at an 8-byte-aligned offset
//   [PackFooter]        fixed 16 bytes at the end of the file
//
// Integrity is layered so damage is caught before any section byte is
// interpreted:
//
//   - the header carries its own checksum (FNV-1a/64 over the header bytes
//     before the checksum field), so a torn or garbage header is rejected
//     without trusting any length field it declares;
//   - the footer carries a whole-file checksum (Fnv1a64Wide, the 8-bytes-
//     per-multiply FNV variant in common/hash.h — bulk checksums are on the
//     cold-start path) over every byte before the footer (header, table and
//     payloads), verified once at open — a single flipped bit anywhere in
//     the file fails the open;
//   - every section entry additionally records a per-section checksum
//     (also Fnv1a64Wide) so diagnostics (mbctl pack-inspect) can localise
//     damage to a section without re-deriving it from the file hash.
//
// Endianness and alignment rules (DESIGN.md section 14): all integers and
// doubles are stored in the *writer's native byte order*, and the header
// records a 32-bit endianness marker. A reader whose native order disagrees
// with the marker must refuse the file rather than byte-swap — packs are a
// same-architecture serving format, not an interchange format. Section
// offsets are 8-byte aligned so that int64/double payloads can be read
// through reinterpret_cast directly from the mapping.
//
// Section *type* ids are owned by the artifact schemas built on top of this
// container (io/pack_artifacts.h); the container itself only requires them
// to be unique within one file.

#ifndef MICROBROWSE_PACK_FORMAT_H_
#define MICROBROWSE_PACK_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace microbrowse {
namespace pack {

/// First 8 bytes of every mbpack file. The trailing byte doubles as a
/// format-generation fuse: "MBPACK1\0" readers will never misread a
/// hypothetical future "MBPACK2\0" layout as their own.
inline constexpr char kHeaderMagic[8] = {'M', 'B', 'P', 'A', 'C', 'K', '1', '\0'};
/// First 8 bytes of the footer.
inline constexpr char kFooterMagic[8] = {'M', 'B', 'P', 'K', 'E', 'N', 'D', '\0'};

/// Bumped on any incompatible layout change.
inline constexpr uint32_t kFormatVersion = 1;

/// Written as a native uint32; reads back as 0x01020304 only on a machine
/// with the writer's byte order.
inline constexpr uint32_t kEndianMarker = 0x01020304u;

/// Alignment of the section table and every section payload.
inline constexpr size_t kSectionAlignment = 8;

/// Fixed-size file header at offset 0.
struct PackHeader {
  char magic[8];            ///< kHeaderMagic.
  uint32_t version;         ///< kFormatVersion.
  uint32_t endian_marker;   ///< kEndianMarker in the writer's byte order.
  uint64_t file_size;       ///< Total file size in bytes, footer included.
  uint32_t section_count;   ///< Number of SectionEntry records.
  uint32_t reserved;        ///< Zero.
  uint64_t payload_start;   ///< Offset of the first section payload byte.
  uint64_t reserved2;       ///< Zero.
  /// FNV-1a/64 over the header bytes before this field.
  uint64_t header_checksum;
};
static_assert(sizeof(PackHeader) == 56, "PackHeader layout drifted");

/// One section-table entry.
struct SectionEntry {
  uint32_t type;      ///< Schema-owned section id; unique within the file.
  uint32_t reserved;  ///< Zero.
  uint64_t offset;    ///< From file start; 8-byte aligned.
  uint64_t size;      ///< Payload bytes (excludes alignment padding).
  uint64_t checksum;  ///< Fnv1a64Wide over the payload bytes.
};
static_assert(sizeof(SectionEntry) == 32, "SectionEntry layout drifted");

/// Fixed-size trailer at file_size - sizeof(PackFooter).
struct PackFooter {
  char magic[8];           ///< kFooterMagic.
  /// Fnv1a64Wide over bytes [0, file_size - sizeof(PackFooter)).
  uint64_t file_checksum;
};
static_assert(sizeof(PackFooter) == 16, "PackFooter layout drifted");

/// Smallest structurally possible pack (header + footer, no sections).
inline constexpr size_t kMinFileSize = sizeof(PackHeader) + sizeof(PackFooter);

}  // namespace pack
}  // namespace microbrowse

#endif  // MICROBROWSE_PACK_FORMAT_H_
