// Copyright 2026 The Microbrowse Authors
//
// Scalar kernels and runtime kernel dispatch (see simd.h). This TU is
// compiled with -ffp-contract=off so the canonical schedules in
// simd_common.h keep their exact multiply/add sequences.

#include "ml/simd.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ml/simd_common.h"

namespace microbrowse::simd {

// Defined in simd_avx2.cc; null when the build or the CPU lacks AVX2.
namespace internal {
const KernelFns* Avx2Fns();
bool Avx2CpuSupported();
}  // namespace internal

namespace {

double ScalarDotRow(const FeatureId* ids, const double* values, size_t len,
                    const double* weights, size_t n_features) {
  return internal::DotRowCanonical(ids, values, len, weights, n_features);
}

void ScalarScoreCsrRows(const size_t* row_offsets, const FeatureId* ids, const double* values,
                        const double* offsets, const double* weights, size_t n_features,
                        double bias, size_t begin_row, size_t end_row, double* scores) {
  for (size_t i = begin_row; i < end_row; ++i) {
    const size_t begin = row_offsets[i];
    const double base = bias + (offsets != nullptr ? offsets[i] : 0.0);
    scores[i - begin_row] =
        base + internal::DotRowCanonical(ids + begin, values + begin, row_offsets[i + 1] - begin,
                                         weights, n_features);
  }
}

void ScalarSigmoidVec(const double* x, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = internal::SigmoidCanonical(x[i]);
}

void ScalarFusedGradProx(const double* partials, size_t n_blocks, size_t stride, size_t begin,
                         size_t end, double step, double l1, double l2, double* weights) {
  const double thr = step * l1;
  for (size_t j = begin; j < end; ++j) {
    internal::FusedGradProxFeature(partials, n_blocks, stride, j, step, thr, l2, weights);
  }
}

constexpr KernelFns kScalarFns = {
    &ScalarDotRow,
    &ScalarScoreCsrRows,
    &ScalarSigmoidVec,
    &ScalarFusedGradProx,
};

/// MB_SIMD / cpuid resolution, run once per process.
Kernel ResolveKernel() {
  std::string value;
  if (const char* env = std::getenv("MB_SIMD"); env != nullptr) {
    for (const char* p = env; *p != '\0'; ++p) {
      value.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
    }
  }
  if (value == "off" || value == "scalar" || value == "0") return Kernel::kScalar;
  if (value == "avx2" || value == "on" || value == "1") {
    if (Avx2Available()) return Kernel::kAvx2;
    std::fprintf(stderr,
                 "microbrowse: MB_SIMD=%s requested but this CPU/build lacks AVX2; "
                 "using scalar kernels\n",
                 value.c_str());
    return Kernel::kScalar;
  }
  if (!value.empty() && value != "auto") {
    std::fprintf(stderr, "microbrowse: unknown MB_SIMD value '%s'; using auto detection\n",
                 value.c_str());
  }
  return Avx2Available() ? Kernel::kAvx2 : Kernel::kScalar;
}

/// -1 = no override; otherwise the forced Kernel value.
std::atomic<int> g_test_override{-1};

}  // namespace

const char* KernelName(Kernel kernel) {
  return kernel == Kernel::kAvx2 ? "avx2" : "scalar";
}

bool Avx2Available() {
  return internal::Avx2CpuSupported() && internal::Avx2Fns() != nullptr;
}

Kernel ActiveKernel() {
  const int override_value = g_test_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return static_cast<Kernel>(override_value);
  static const Kernel resolved = ResolveKernel();
  return resolved;
}

void SetKernelForTest(std::optional<Kernel> kernel) {
  g_test_override.store(kernel.has_value() ? static_cast<int>(*kernel) : -1,
                        std::memory_order_relaxed);
}

const KernelFns& GetKernelFns(Kernel kernel) {
  if (kernel == Kernel::kAvx2 && Avx2Available()) return *internal::Avx2Fns();
  return kScalarFns;
}

double DotRow(const FeatureId* ids, const double* values, size_t len, const double* weights,
              size_t n_features) {
  return GetKernelFns(ActiveKernel()).dot_row(ids, values, len, weights, n_features);
}

void ScoreCsrRows(const size_t* row_offsets, const FeatureId* ids, const double* values,
                  const double* offsets, const double* weights, size_t n_features, double bias,
                  size_t begin_row, size_t end_row, double* scores) {
  GetKernelFns(ActiveKernel())
      .score_csr_rows(row_offsets, ids, values, offsets, weights, n_features, bias, begin_row,
                      end_row, scores);
}

void SigmoidVec(const double* x, size_t n, double* out) {
  GetKernelFns(ActiveKernel()).sigmoid_vec(x, n, out);
}

void FusedGradProx(const double* partials, size_t n_blocks, size_t stride, size_t begin,
                   size_t end, double step, double l1, double l2, double* weights) {
  GetKernelFns(ActiveKernel())
      .fused_grad_prox(partials, n_blocks, stride, begin, end, step, l1, l2, weights);
}

}  // namespace microbrowse::simd
