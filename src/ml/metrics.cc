// Copyright 2026 The Microbrowse Authors

#include "ml/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/math_util.h"
#include "common/thread_pool.h"

namespace microbrowse {

namespace {

/// Below this size the parallel paths are pure overhead.
constexpr size_t kParallelMetricsThreshold = 4096;

}  // namespace

double BinaryMetrics::accuracy() const {
  const int64_t n = total();
  return n > 0 ? static_cast<double>(true_positives + true_negatives) / static_cast<double>(n)
               : 0.0;
}

double BinaryMetrics::precision() const {
  const int64_t denom = true_positives + false_positives;
  return denom > 0 ? static_cast<double>(true_positives) / static_cast<double>(denom) : 0.0;
}

double BinaryMetrics::recall() const {
  const int64_t denom = true_positives + false_negatives;
  return denom > 0 ? static_cast<double>(true_positives) / static_cast<double>(denom) : 0.0;
}

double BinaryMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

namespace {

/// Counts the confusion matrix of scored[begin, end).
BinaryMetrics CountRange(const std::vector<ScoredLabel>& scored, double threshold,
                         size_t begin, size_t end) {
  BinaryMetrics m;
  for (size_t i = begin; i < end; ++i) {
    const ScoredLabel& s = scored[i];
    const bool predicted = s.score >= threshold;
    if (predicted) {
      if (s.label) {
        ++m.true_positives;
      } else {
        ++m.false_positives;
      }
    } else {
      if (s.label) {
        ++m.false_negatives;
      } else {
        ++m.true_negatives;
      }
    }
  }
  return m;
}

}  // namespace

BinaryMetrics ComputeBinaryMetrics(const std::vector<ScoredLabel>& scored, double threshold,
                                   int num_threads) {
  const size_t n = scored.size();
  if (num_threads <= 1 || n < kParallelMetricsThreshold) {
    return CountRange(scored, threshold, 0, n);
  }
  const size_t n_chunks = std::min<size_t>(static_cast<size_t>(num_threads) * 4, 64);
  std::vector<BinaryMetrics> partials(n_chunks);
  ThreadPool pool(static_cast<size_t>(num_threads));
  (void)pool.ParallelFor(n_chunks, [&](size_t c) {
    partials[c] = CountRange(scored, threshold, c * n / n_chunks, (c + 1) * n / n_chunks);
  });
  BinaryMetrics merged;
  for (const BinaryMetrics& partial : partials) merged = MergeMetrics(merged, partial);
  return merged;
}

BinaryMetrics MergeMetrics(const BinaryMetrics& a, const BinaryMetrics& b) {
  BinaryMetrics m = a;
  m.true_positives += b.true_positives;
  m.false_positives += b.false_positives;
  m.true_negatives += b.true_negatives;
  m.false_negatives += b.false_negatives;
  return m;
}

double ComputeAuc(const std::vector<ScoredLabel>& scored, int num_threads) {
  std::vector<ScoredLabel> sorted = scored;
  const auto by_score = [](const ScoredLabel& a, const ScoredLabel& b) {
    return a.score < b.score;
  };
  if (num_threads <= 1 || sorted.size() < kParallelMetricsThreshold) {
    std::sort(sorted.begin(), sorted.end(), by_score);
  } else {
    // Parallel chunked merge sort over a fixed chunk grid (independent of
    // thread count): sort each chunk, then pairwise in-place merges in a
    // fixed tree order, each round's disjoint merges running in parallel.
    // Equal-score elements may land in a different relative order than a
    // plain std::sort would produce, but the rank-sum walk below groups
    // equal scores, so the AUC value is unaffected.
    constexpr size_t kChunks = 16;
    const size_t n = sorted.size();
    std::array<size_t, kChunks + 1> bounds;
    for (size_t c = 0; c <= kChunks; ++c) bounds[c] = c * n / kChunks;
    ThreadPool pool(std::min<size_t>(static_cast<size_t>(num_threads), kChunks));
    (void)pool.ParallelFor(kChunks, [&](size_t c) {
      std::sort(sorted.begin() + bounds[c], sorted.begin() + bounds[c + 1], by_score);
    });
    for (size_t width = 1; width < kChunks; width *= 2) {
      std::vector<size_t> merge_lows;
      for (size_t low = 0; low + width < kChunks; low += 2 * width) merge_lows.push_back(low);
      (void)pool.ParallelFor(merge_lows.size(), [&](size_t m) {
        const size_t low = merge_lows[m];
        const size_t high = std::min(low + 2 * width, kChunks);
        std::inplace_merge(sorted.begin() + bounds[low], sorted.begin() + bounds[low + width],
                           sorted.begin() + bounds[high], by_score);
      });
    }
  }
  // Rank-sum with average ranks for ties.
  const size_t n = sorted.size();
  double positive_rank_sum = 0.0;
  size_t positives = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && sorted[j].score == sorted[i].score) ++j;
    const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].label) {
        positive_rank_sum += avg_rank;
        ++positives;
      }
    }
    i = j;
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum - static_cast<double>(positives) *
                                           (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double ComputeMeanLogLoss(const std::vector<ScoredLabel>& scored) {
  if (scored.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : scored) total += LogLoss(s.label ? 1.0 : 0.0, s.score);
  return total / static_cast<double>(scored.size());
}

}  // namespace microbrowse
