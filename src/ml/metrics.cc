// Copyright 2026 The Microbrowse Authors

#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace microbrowse {

double BinaryMetrics::accuracy() const {
  const int64_t n = total();
  return n > 0 ? static_cast<double>(true_positives + true_negatives) / static_cast<double>(n)
               : 0.0;
}

double BinaryMetrics::precision() const {
  const int64_t denom = true_positives + false_positives;
  return denom > 0 ? static_cast<double>(true_positives) / static_cast<double>(denom) : 0.0;
}

double BinaryMetrics::recall() const {
  const int64_t denom = true_positives + false_negatives;
  return denom > 0 ? static_cast<double>(true_positives) / static_cast<double>(denom) : 0.0;
}

double BinaryMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

BinaryMetrics ComputeBinaryMetrics(const std::vector<ScoredLabel>& scored, double threshold) {
  BinaryMetrics m;
  for (const auto& s : scored) {
    const bool predicted = s.score >= threshold;
    if (predicted) {
      if (s.label) {
        ++m.true_positives;
      } else {
        ++m.false_positives;
      }
    } else {
      if (s.label) {
        ++m.false_negatives;
      } else {
        ++m.true_negatives;
      }
    }
  }
  return m;
}

BinaryMetrics MergeMetrics(const BinaryMetrics& a, const BinaryMetrics& b) {
  BinaryMetrics m = a;
  m.true_positives += b.true_positives;
  m.false_positives += b.false_positives;
  m.true_negatives += b.true_negatives;
  m.false_negatives += b.false_negatives;
  return m;
}

double ComputeAuc(const std::vector<ScoredLabel>& scored) {
  std::vector<ScoredLabel> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredLabel& a, const ScoredLabel& b) { return a.score < b.score; });
  // Rank-sum with average ranks for ties.
  const size_t n = sorted.size();
  double positive_rank_sum = 0.0;
  size_t positives = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && sorted[j].score == sorted[i].score) ++j;
    const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].label) {
        positive_rank_sum += avg_rank;
        ++positives;
      }
    }
    i = j;
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum - static_cast<double>(positives) *
                                           (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double ComputeMeanLogLoss(const std::vector<ScoredLabel>& scored) {
  if (scored.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : scored) total += LogLoss(s.label ? 1.0 : 0.0, s.score);
  return total / static_cast<double>(scored.size());
}

}  // namespace microbrowse
