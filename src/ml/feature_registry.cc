// Copyright 2026 The Microbrowse Authors

#include "ml/feature_registry.h"

namespace microbrowse {

FeatureId FeatureRegistry::Intern(std::string_view name, double initial_weight) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const FeatureId id = static_cast<FeatureId>(names_.size());
  names_.emplace_back(name);
  initial_weights_.push_back(initial_weight);
  index_.emplace(names_.back(), id);
  return id;
}

FeatureId FeatureRegistry::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it != index_.end() ? it->second : kInvalidFeatureId;
}

}  // namespace microbrowse
