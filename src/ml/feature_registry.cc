// Copyright 2026 The Microbrowse Authors

#include "ml/feature_registry.h"

namespace microbrowse {

namespace {

/// Binary search for `name` over the base layer's sorted permutation.
/// Returns the *id* (not the sorted position), or kInvalidFeatureId.
FeatureId FindInBase(const pack::StringTable& names, const uint32_t* sorted, size_t count,
                     std::string_view name) {
  size_t lo = 0, hi = count;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (names.at(sorted[mid]) < name) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < count && names.at(sorted[lo]) == name) {
    return static_cast<FeatureId>(sorted[lo]);
  }
  return kInvalidFeatureId;
}

}  // namespace

FeatureId FeatureRegistry::Intern(std::string_view name, double initial_weight) {
  if (base_count_ > 0) {
    const FeatureId base_id = FindInBase(base_names_, base_sorted_, base_count_, name);
    if (base_id != kInvalidFeatureId) return base_id;
  }
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const FeatureId id = static_cast<FeatureId>(base_count_ + names_.size());
  names_.emplace_back(name);
  initial_weights_.push_back(initial_weight);
  index_.emplace(names_.back(), id);
  return id;
}

FeatureId FeatureRegistry::Find(std::string_view name) const {
  if (base_count_ > 0) {
    const FeatureId base_id = FindInBase(base_names_, base_sorted_, base_count_, name);
    if (base_id != kInvalidFeatureId) return base_id;
  }
  auto it = index_.find(std::string(name));
  return it != index_.end() ? it->second : kInvalidFeatureId;
}

void FeatureRegistry::AttachPackBase(std::shared_ptr<const pack::PackReader> pack,
                                     pack::StringTable names, const uint32_t* sorted_ids,
                                     const double* initial_weights) {
  assert(empty() && base_count_ == 0 && "AttachPackBase on a non-empty registry");
  pack_ = std::move(pack);
  base_names_ = names;
  base_sorted_ = sorted_ids;
  base_init_ = initial_weights;
  base_count_ = static_cast<FeatureId>(names.size());
}

}  // namespace microbrowse
