// Copyright 2026 The Microbrowse Authors
//
// Maps human-readable feature names ("term:cheap flights@l2p1", "rw:find
// cheap->get discounts") to dense FeatureIds, and carries each feature's
// warm-start weight — the paper initialises classifier features from the
// feature-statistics database (Section V-D).
//
// A registry has up to two layers:
//
//   base     — an optional immutable, mmap-backed table from an mbpack
//              artifact (names, a sorted lookup permutation and initial
//              weights all read in place; see io/pack_artifacts.h). Base
//              ids are 0 .. base_size()-1, identical to the ids the same
//              artifact produces through the heap loader, so trained
//              weight vectors index both layouts interchangeably.
//   overlay  — the ordinary heap-interned features. With no base attached
//              (the training path, and TSV-loaded artifacts) the overlay
//              is the whole registry.
//
// Copying a pack-backed registry copies the overlay and shares the base
// (one shared_ptr bump) — this is what keeps serve-time per-request
// registry copies cheap for million-feature bundles.

#ifndef MICROBROWSE_ML_FEATURE_REGISTRY_H_
#define MICROBROWSE_ML_FEATURE_REGISTRY_H_

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ml/sparse_vector.h"
#include "pack/pack_reader.h"

namespace microbrowse {

/// Sentinel for features absent from the registry.
inline constexpr FeatureId kInvalidFeatureId = static_cast<FeatureId>(-1);

/// Bidirectional feature-name <-> id map with per-feature initial weights.
class FeatureRegistry {
 public:
  FeatureRegistry() = default;

  /// Returns the id of `name`, registering it (with `initial_weight`) when
  /// new. A later call with a different initial weight for an existing
  /// feature leaves the stored weight unchanged. New features always land
  /// in the overlay; the base is immutable.
  FeatureId Intern(std::string_view name, double initial_weight = 0.0);

  /// Id of `name`, or kInvalidFeatureId when absent. Base lookups are a
  /// binary search over the pack's sorted permutation (no allocation).
  FeatureId Find(std::string_view name) const;

  /// Name of `id`; `id` must be valid. The view borrows either the mapped
  /// pack (base ids) or this registry's heap storage (overlay ids); both
  /// outlive any sane use, but don't cache it past a registry mutation.
  std::string_view NameOf(FeatureId id) const {
    return id < base_count_ ? base_names_.at(id) : std::string_view(names_[id - base_count_]);
  }

  /// Warm-start weight of `id`; `id` must be valid.
  double InitialWeightOf(FeatureId id) const {
    return id < base_count_ ? base_init_[id] : initial_weights_[id - base_count_];
  }

  /// Overrides the warm-start weight of an existing feature. Training-path
  /// only: `id` must be an overlay (heap-interned) feature — the mmap base
  /// is immutable.
  void SetInitialWeight(FeatureId id, double weight) {
    assert(id >= base_count_ && "SetInitialWeight on an immutable pack-backed feature");
    initial_weights_[id - base_count_] = weight;
  }

  /// Dense copy of all initial weights, indexed by FeatureId.
  std::vector<double> InitialWeights() const {
    std::vector<double> weights;
    weights.reserve(size());
    weights.assign(base_init_, base_init_ + base_count_);
    weights.insert(weights.end(), initial_weights_.begin(), initial_weights_.end());
    return weights;
  }

  /// Installs the immutable base layer. `names` holds every base feature
  /// name in *id order*; `sorted_ids` is a permutation of 0..names.size()-1
  /// such that names.at(sorted_ids[i]) ascends (the binary-search index);
  /// `initial_weights` is dense in id order. All three borrow `pack`'s
  /// mapping, which this registry keeps alive. Must be called on an empty
  /// registry, at most once.
  void AttachPackBase(std::shared_ptr<const pack::PackReader> pack,
                      pack::StringTable names, const uint32_t* sorted_ids,
                      const double* initial_weights);

  /// Number of features in the immutable base layer (0 when heap-only).
  size_t base_size() const { return base_count_; }

  size_t size() const { return base_count_ + names_.size(); }
  bool empty() const { return size() == 0; }

 private:
  // Overlay (heap) layer; ids base_count_ .. size()-1.
  std::unordered_map<std::string, FeatureId> index_;
  std::vector<std::string> names_;
  std::vector<double> initial_weights_;

  // Optional immutable base layer; ids 0 .. base_count_-1. The PackReader
  // anchors the mapped memory every view below points into.
  std::shared_ptr<const pack::PackReader> pack_;
  pack::StringTable base_names_;
  const uint32_t* base_sorted_ = nullptr;
  const double* base_init_ = nullptr;
  FeatureId base_count_ = 0;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_FEATURE_REGISTRY_H_
