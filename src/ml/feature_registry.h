// Copyright 2026 The Microbrowse Authors
//
// Maps human-readable feature names ("term:cheap flights@l2p1", "rw:find
// cheap->get discounts") to dense FeatureIds, and carries each feature's
// warm-start weight — the paper initialises classifier features from the
// feature-statistics database (Section V-D).

#ifndef MICROBROWSE_ML_FEATURE_REGISTRY_H_
#define MICROBROWSE_ML_FEATURE_REGISTRY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ml/sparse_vector.h"

namespace microbrowse {

/// Sentinel for features absent from the registry.
inline constexpr FeatureId kInvalidFeatureId = static_cast<FeatureId>(-1);

/// Bidirectional feature-name <-> id map with per-feature initial weights.
class FeatureRegistry {
 public:
  FeatureRegistry() = default;

  /// Returns the id of `name`, registering it (with `initial_weight`) when
  /// new. A later call with a different initial weight for an existing
  /// feature leaves the stored weight unchanged.
  FeatureId Intern(std::string_view name, double initial_weight = 0.0);

  /// Id of `name`, or kInvalidFeatureId when absent.
  FeatureId Find(std::string_view name) const;

  /// Name of `id`; `id` must be valid.
  const std::string& NameOf(FeatureId id) const { return names_[id]; }

  /// Warm-start weight of `id`; `id` must be valid.
  double InitialWeightOf(FeatureId id) const { return initial_weights_[id]; }

  /// Overrides the warm-start weight of an existing feature.
  void SetInitialWeight(FeatureId id, double weight) { initial_weights_[id] = weight; }

  /// Dense copy of all initial weights, indexed by FeatureId.
  std::vector<double> InitialWeights() const { return initial_weights_; }

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::unordered_map<std::string, FeatureId> index_;
  std::vector<std::string> names_;
  std::vector<double> initial_weights_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_FEATURE_REGISTRY_H_
