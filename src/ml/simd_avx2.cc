// Copyright 2026 The Microbrowse Authors
//
// AVX2 kernel implementations (see simd.h). Compiled with -mavx2 and
// -ffp-contract=off — NO -mfma-generated contractions may reach the kernel
// bodies, and every intrinsic below is an explicit mul/add pair, so each
// lane executes exactly the canonical schedule of simd_common.h. Nothing
// in this TU executes an AVX2 instruction unless the dispatcher confirmed
// cpuid support first.

#include "ml/simd.h"

#include "ml/simd_common.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace microbrowse::simd {
namespace {

// vgatherdpd sign-extends its 32-bit indices; feature spaces beyond
// INT32_MAX (16 GiB of weights) take the canonical scalar path instead.
constexpr size_t kMaxGatherFeatures = 0x7FFFFFFF;

/// Four sigmoid lanes on the canonical schedule (see SigmoidCanonical).
inline __m256d SigmoidLanes(__m256d x) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  // -|x|, clamped (vmaxpd: NaN lanes collapse to the clamp).
  __m256d nx = _mm256_or_pd(_mm256_andnot_pd(sign_mask, x), sign_mask);
  nx = _mm256_max_pd(nx, _mm256_set1_pd(internal::kExpLoClamp));
  // Round nx / ln2 to nearest-even via the shifter trick.
  const __m256d shifter = _mm256_set1_pd(internal::kShifter);
  const __m256d t = _mm256_mul_pd(nx, _mm256_set1_pd(internal::kLog2E));
  const __m256d kd = _mm256_sub_pd(_mm256_add_pd(t, shifter), shifter);
  // Cody-Waite remainder, then the fixed Horner polynomial.
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(nx, _mm256_mul_pd(kd, _mm256_set1_pd(internal::kLn2Hi))),
      _mm256_mul_pd(kd, _mm256_set1_pd(internal::kLn2Lo)));
  __m256d p = _mm256_set1_pd(internal::kExpPoly[11]);
  for (int i = 10; i >= 0; --i) {
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(internal::kExpPoly[i]));
  }
  // 2^k via exponent-field construction; k is in [-1022, 0].
  const __m128i k32 = _mm256_cvtpd_epi32(kd);
  const __m256i k64 = _mm256_cvtepi32_epi64(k32);
  const __m256i exp_bits =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  const __m256d e = _mm256_mul_pd(p, _mm256_castsi256_pd(exp_bits));
  const __m256d inv = _mm256_div_pd(one, _mm256_add_pd(one, e));
  const __m256d mirrored = _mm256_mul_pd(e, inv);  // e / (1 + e), see SigmoidCanonical.
  const __m256d negative = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ);
  return _mm256_blendv_pd(inv, mirrored, negative);
}

/// One masked 4-entry dot-product step: lanes with a clear `valid32` bit
/// (inactive tail lanes or out-of-range ids) contribute exactly +0.0.
inline __m256d DotStep(__m256d acc, __m128i idv, __m256d v, __m128i valid32,
                       const double* weights) {
  const __m256d mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(valid32));
  const __m256d w = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), weights, idv, mask, 8);
  return _mm256_add_pd(acc, _mm256_and_pd(mask, _mm256_mul_pd(v, w)));
}

double Avx2DotRow(const FeatureId* ids, const double* values, size_t len,
                  const double* weights, size_t n_features) {
  if (n_features > kMaxGatherFeatures) {
    return internal::DotRowCanonical(ids, values, len, weights, n_features);
  }
  // Unsigned id < n_features compare via sign-bias (AVX2 compares are
  // signed only).
  const __m128i bias32 = _mm_set1_epi32(INT32_MIN);
  const __m128i biased_n =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int32_t>(n_features)), bias32);
  __m256d acc = _mm256_setzero_pd();
  size_t g = 0;
  for (; g + 4 <= len; g += 4) {
    const __m128i idv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + g));
    const __m128i valid32 = _mm_cmpgt_epi32(biased_n, _mm_xor_si128(idv, bias32));
    acc = DotStep(acc, idv, _mm256_loadu_pd(values + g), valid32, weights);
  }
  const size_t tail = len - g;
  if (tail != 0) {
    alignas(16) uint32_t tail_ids[4] = {0, 0, 0, 0};
    alignas(16) uint32_t tail_active[4] = {0, 0, 0, 0};
    alignas(32) double tail_values[4] = {0.0, 0.0, 0.0, 0.0};
    for (size_t l = 0; l < tail; ++l) {
      tail_ids[l] = ids[g + l];
      tail_values[l] = values[g + l];
      tail_active[l] = 0xFFFFFFFFu;
    }
    const __m128i idv = _mm_load_si128(reinterpret_cast<const __m128i*>(tail_ids));
    const __m128i in_range = _mm_cmpgt_epi32(biased_n, _mm_xor_si128(idv, bias32));
    const __m128i valid32 =
        _mm_and_si128(_mm_load_si128(reinterpret_cast<const __m128i*>(tail_active)), in_range);
    acc = DotStep(acc, idv, _mm256_load_pd(tail_values), valid32, weights);
  }
  // (lane0 + lane2) + (lane1 + lane3), the canonical reduction order.
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

void Avx2ScoreCsrRows(const size_t* row_offsets, const FeatureId* ids, const double* values,
                      const double* offsets, const double* weights, size_t n_features,
                      double bias, size_t begin_row, size_t end_row, double* scores) {
  for (size_t i = begin_row; i < end_row; ++i) {
    const size_t begin = row_offsets[i];
    const double base = bias + (offsets != nullptr ? offsets[i] : 0.0);
    scores[i - begin_row] = base + Avx2DotRow(ids + begin, values + begin,
                                              row_offsets[i + 1] - begin, weights, n_features);
  }
}

void Avx2SigmoidVec(const double* x, size_t n, double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, SigmoidLanes(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = internal::SigmoidCanonical(x[i]);
}

void Avx2FusedGradProx(const double* partials, size_t n_blocks, size_t stride, size_t begin,
                       size_t end, double step, double l1, double l2, double* weights) {
  const double thr = step * l1;
  const __m256d vstep = _mm256_set1_pd(step);
  const __m256d vl2 = _mm256_set1_pd(l2);
  const __m256d vthr = _mm256_set1_pd(thr);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d vzero = _mm256_setzero_pd();
  size_t j = begin;
  for (; j + 4 <= end; j += 4) {
    __m256d g = vzero;
    for (size_t b = 0; b < n_blocks; ++b) {
      g = _mm256_add_pd(g, _mm256_loadu_pd(partials + b * stride + j));
    }
    const __m256d w = _mm256_loadu_pd(weights + j);
    const __m256d u =
        _mm256_sub_pd(w, _mm256_mul_pd(vstep, _mm256_add_pd(g, _mm256_mul_pd(vl2, w))));
    // copysign(max(|u| - thr, 0), u); vmaxpd(second operand wins on NaN).
    __m256d a = _mm256_sub_pd(_mm256_andnot_pd(sign_mask, u), vthr);
    a = _mm256_max_pd(a, vzero);
    _mm256_storeu_pd(weights + j, _mm256_or_pd(a, _mm256_and_pd(sign_mask, u)));
  }
  for (; j < end; ++j) {
    internal::FusedGradProxFeature(partials, n_blocks, stride, j, step, thr, l2, weights);
  }
}

constexpr KernelFns kAvx2Fns = {
    &Avx2DotRow,
    &Avx2ScoreCsrRows,
    &Avx2SigmoidVec,
    &Avx2FusedGradProx,
};

}  // namespace

namespace internal {

const KernelFns* Avx2Fns() { return &kAvx2Fns; }

bool Avx2CpuSupported() { return __builtin_cpu_supports("avx2") != 0; }

}  // namespace internal

}  // namespace microbrowse::simd

#else  // !(__x86_64__ && __AVX2__)

namespace microbrowse::simd::internal {

const KernelFns* Avx2Fns() { return nullptr; }

bool Avx2CpuSupported() { return false; }

}  // namespace microbrowse::simd::internal

#endif
