// Copyright 2026 The Microbrowse Authors
//
// Sparse feature vectors for the snippet classifier. Feature ids are dense
// 32-bit indices handed out by FeatureRegistry.

#ifndef MICROBROWSE_ML_SPARSE_VECTOR_H_
#define MICROBROWSE_ML_SPARSE_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace microbrowse {

/// Dense feature index.
using FeatureId = uint32_t;

/// One (feature, value) pair.
struct FeatureEntry {
  FeatureId id = 0;
  double value = 0.0;

  friend bool operator==(const FeatureEntry& a, const FeatureEntry& b) {
    return a.id == b.id && a.value == b.value;
  }
};

/// An immutable-after-Finish sparse vector: entries sorted by id, unique
/// ids, duplicate contributions summed, zero values dropped.
class SparseVector {
 public:
  SparseVector() = default;

  /// Adds `value` to the coefficient of `id` (pre-Finish accumulation).
  void Add(FeatureId id, double value) { entries_.push_back(FeatureEntry{id, value}); }

  /// Sorts, merges duplicates and drops zeros. Idempotent.
  void Finish() {
    std::sort(entries_.begin(), entries_.end(),
              [](const FeatureEntry& a, const FeatureEntry& b) { return a.id < b.id; });
    size_t out = 0;
    size_t i = 0;
    while (i < entries_.size()) {
      FeatureId id = entries_[i].id;
      double sum = 0.0;
      while (i < entries_.size() && entries_[i].id == id) {
        sum += entries_[i].value;
        ++i;
      }
      if (sum != 0.0) entries_[out++] = FeatureEntry{id, sum};
    }
    entries_.resize(out);
  }

  const std::vector<FeatureEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Dot product with a dense weight vector; ids beyond its length
  /// contribute zero.
  double Dot(const std::vector<double>& weights) const {
    double sum = 0.0;
    for (const auto& e : entries_) {
      if (e.id < weights.size()) sum += e.value * weights[e.id];
    }
    return sum;
  }

  /// Squared L2 norm of the vector.
  double SquaredNorm() const {
    double sum = 0.0;
    for (const auto& e : entries_) sum += e.value * e.value;
    return sum;
  }

 private:
  std::vector<FeatureEntry> entries_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_SPARSE_VECTOR_H_
