// Copyright 2026 The Microbrowse Authors
//
// Binary-classification metrics. The paper's Tables 2 and 4 report recall,
// precision, F-measure and accuracy of the snippet classifier.

#ifndef MICROBROWSE_ML_METRICS_H_
#define MICROBROWSE_ML_METRICS_H_

#include <cstdint>
#include <vector>

namespace microbrowse {

/// One scored example: model score (any monotone of probability) and the
/// true binary label.
struct ScoredLabel {
  double score = 0.0;
  bool label = false;
};

/// Confusion-matrix-derived metrics at a fixed threshold.
struct BinaryMetrics {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  int64_t total() const {
    return true_positives + false_positives + true_negatives + false_negatives;
  }
  double accuracy() const;
  double precision() const;  ///< TP / (TP + FP); 0 when undefined.
  double recall() const;     ///< TP / (TP + FN); 0 when undefined.
  double f1() const;         ///< Harmonic mean of precision and recall.
};

/// Computes the confusion matrix of `scored` at `threshold` on the score.
/// With `num_threads` > 1, fixed chunks are counted in parallel and
/// merged; the counts are integers, so the result is identical for any
/// thread count.
BinaryMetrics ComputeBinaryMetrics(const std::vector<ScoredLabel>& scored,
                                   double threshold = 0.0, int num_threads = 1);

/// Merges two confusion matrices (e.g., across CV folds).
BinaryMetrics MergeMetrics(const BinaryMetrics& a, const BinaryMetrics& b);

/// Area under the ROC curve via the rank-sum estimator; ties get half
/// credit. Returns 0.5 when either class is empty. With `num_threads` > 1
/// the sort runs as a parallel chunked merge sort over a fixed chunk grid;
/// the rank-sum walk groups equal scores, so the value is bitwise
/// identical for any thread count.
double ComputeAuc(const std::vector<ScoredLabel>& scored, int num_threads = 1);

/// Mean binary cross-entropy; `scored.score` must be a probability here.
double ComputeMeanLogLoss(const std::vector<ScoredLabel>& scored);

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_METRICS_H_
