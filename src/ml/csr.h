// Copyright 2026 The Microbrowse Authors
//
// Contiguous compressed-sparse-row (CSR) layout for training data. A
// Dataset stores one heap-allocated SparseVector per example, so the
// training inner loops chase a pointer per example and thrash the cache;
// CsrDataset packs every row into two parallel arrays (feature ids and
// values) indexed by a row-offset table, built once per dataset. Both
// logistic-regression solvers and the snippet-classifier phase builders
// stream this layout (DESIGN.md section 11).

#ifndef MICROBROWSE_ML_CSR_H_
#define MICROBROWSE_ML_CSR_H_

#include <cstddef>
#include <vector>

#include "ml/dataset.h"
#include "ml/sparse_vector.h"

namespace microbrowse {

/// A Dataset flattened into CSR form: example i's feature entries live in
/// ids/values[row_offsets[i] .. row_offsets[i+1]). Per-example scalars
/// (label, importance weight, fixed logit offset) are parallel arrays.
struct CsrDataset {
  size_t num_features = 0;
  std::vector<size_t> row_offsets;  ///< size() + 1 entries; front() == 0.
  std::vector<FeatureId> ids;       ///< Packed feature ids, row-major.
  std::vector<double> values;       ///< Parallel to `ids`.
  std::vector<double> labels;       ///< One per example (0.0 / 1.0).
  std::vector<double> weights;      ///< Importance weights.
  std::vector<double> offsets;      ///< Fixed additive logit offsets.

  size_t size() const { return labels.size(); }
  bool empty() const { return labels.empty(); }
  /// Total number of stored (id, value) entries.
  size_t num_entries() const { return ids.size(); }

  /// Raw linear score of row `i`: bias + offsets[i] + sum of value * w[id]
  /// over the row's entries (ids beyond `w`'s length contribute zero,
  /// matching SparseVector::Dot).
  double RowScore(size_t i, const std::vector<double>& w, double bias) const {
    double score = bias + offsets[i];
    const size_t end = row_offsets[i + 1];
    for (size_t k = row_offsets[i]; k < end; ++k) {
      if (ids[k] < w.size()) score += values[k] * w[ids[k]];
    }
    return score;
  }
};

/// Flattens `data` into CSR form; entry order within each row is
/// preserved, so scores and gradients are bitwise identical to iterating
/// the original SparseVectors.
CsrDataset FlattenDataset(const Dataset& data);

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_CSR_H_
