// Copyright 2026 The Microbrowse Authors
//
// K-fold cross-validation splits. The paper's evaluation is standard
// 10-fold CV (Section V-D.2).

#ifndef MICROBROWSE_ML_CROSS_VALIDATION_H_
#define MICROBROWSE_ML_CROSS_VALIDATION_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace microbrowse {

/// Index sets for one CV fold.
struct CvFold {
  std::vector<size_t> train_indices;
  std::vector<size_t> test_indices;
};

/// Produces `k` folds over `n` examples after a seeded shuffle. Every index
/// appears in exactly one test set; fold sizes differ by at most one.
/// Requires 2 <= k <= n.
Result<std::vector<CvFold>> MakeKFolds(size_t n, int k, uint64_t seed);

/// Stratified variant: class proportions (given by `labels`, size n) are
/// preserved within each test fold.
Result<std::vector<CvFold>> MakeStratifiedKFolds(const std::vector<bool>& labels, int k,
                                                 uint64_t seed);

/// Grouped variant: examples sharing a group id always land in the same
/// fold (e.g., creative pairs from one adgroup), preventing within-group
/// memorisation from leaking into the test folds. Requires at least k
/// distinct groups.
Result<std::vector<CvFold>> MakeGroupedKFolds(const std::vector<int64_t>& group_ids, int k,
                                              uint64_t seed);

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_CROSS_VALIDATION_H_
