// Copyright 2026 The Microbrowse Authors

#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>

#include "common/math_util.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ml/simd.h"

namespace microbrowse {

double LogisticModel::PredictProbability(const SparseVector& features) const {
  return Sigmoid(Score(features));
}

size_t LogisticModel::num_zero_weights() const {
  size_t n = 0;
  for (double w : weights_) n += w == 0.0 ? 1 : 0;
  return n;
}

double LogisticModel::MeanLogLoss(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double total = 0.0;
  double weight_sum = 0.0;
  for (const auto& example : data.examples) {
    const double predicted = Sigmoid(Score(example.features) + example.offset);
    total += example.weight * LogLoss(example.label, predicted);
    weight_sum += example.weight;
  }
  return weight_sum > 0.0 ? total / weight_sum : 0.0;
}

namespace {

/// Adds `n` completed epochs to the process-wide training counter. One
/// aggregate add per solver run; the epoch count depends only on the data
/// and options (convergence is deterministic), never on the thread count.
void CountEpochs(int n) {
  static Counter* epochs_counter = MetricRegistry::Global().GetCounter("mb.train.epochs");
  epochs_counter->Increment(n);
}

/// Soft-thresholding operator for the L1 proximal step.
double SoftThreshold(double x, double threshold) {
  if (x > threshold) return x - threshold;
  if (x < -threshold) return x + threshold;
  return 0.0;
}

/// Runs `fn(i)` for i in [0, count): across `pool` when present, serially
/// otherwise. The two paths compute identical results — parallelism is
/// purely a scheduling choice here (see the block partition below).
void ForEach(std::optional<ThreadPool>& pool, size_t count,
             const std::function<void(size_t)>& fn) {
  if (pool.has_value()) {
    (void)pool->ParallelFor(count, fn);
    return;
  }
  for (size_t i = 0; i < count; ++i) fn(i);
}

/// Fixed example-block partition for the proximal solver's parallel epoch
/// body. The partition depends only on the dataset shape — never on the
/// thread count — so the block-ordered reduction below produces bitwise
/// identical gradients for any number of workers. Block count is bounded
/// both by a minimum block size (the n_blocks x n_features dense reduction
/// is pure overhead when blocks are small — 64 blocks of 256 rows is what
/// made 8 threads LOSE to 1 on 2k-pair sweeps) and by the partial-gradient
/// scratch budget (one dense vector per block). 32 blocks keep 8-16
/// workers busy with slack for stragglers while halving the old reduction
/// cost; below ~2 blocks the solver just runs serially.
size_t NumGradientBlocks(size_t n, size_t n_features) {
  constexpr size_t kMinBlockSize = 1024;
  constexpr size_t kMaxBlocks = 32;
  constexpr size_t kScratchBudgetBytes = size_t{256} << 20;
  const size_t row_bytes = std::max<size_t>(1, n_features) * sizeof(double);
  const size_t memory_cap = std::max<size_t>(1, kScratchBudgetBytes / row_bytes);
  return std::clamp<size_t>(n / kMinBlockSize, 1, std::min(kMaxBlocks, memory_cap));
}

LogisticModel TrainAdaGrad(const CsrDataset& data, const LrOptions& options,
                           std::vector<double> weights) {
  const size_t n_features = data.num_features;
  double bias = 0.0;
  std::vector<double> grad_sq(n_features, 1e-8);
  double bias_grad_sq = 1e-8;

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  double prev_loss = std::numeric_limits<double>::infinity();

  // AdaGrad is inherently sequential — each step reads the weights the
  // previous step wrote — so options.num_threads is ignored here; the CSR
  // layout still removes the per-example vector indirection.
  int epochs_run = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    ++epochs_run;
    if (options.shuffle_each_epoch) rng.Shuffle(order);
    double loss_sum = 0.0;
    double weight_sum = 0.0;
    for (size_t idx : order) {
      const size_t begin = data.row_offsets[idx];
      const size_t end = data.row_offsets[idx + 1];
      double score = bias + data.offsets[idx];
      for (size_t k = begin; k < end; ++k) {
        if (data.ids[k] < n_features) score += data.values[k] * weights[data.ids[k]];
      }
      const double predicted = Sigmoid(score);
      loss_sum += data.weights[idx] * LogLoss(data.labels[idx], predicted);
      weight_sum += data.weights[idx];
      const double gradient_scale = data.weights[idx] * (predicted - data.labels[idx]);

      for (size_t k = begin; k < end; ++k) {
        const FeatureId id = data.ids[k];
        if (id >= n_features) continue;
        const double g = gradient_scale * data.values[k] + options.l2 * weights[id];
        grad_sq[id] += g * g;
        const double step = options.learning_rate / std::sqrt(grad_sq[id]);
        // Truncated-gradient L1: gradient step then shrink toward zero by
        // step * l1, clipping at zero.
        const double updated = weights[id] - step * g;
        weights[id] = SoftThreshold(updated, step * options.l1);
      }
      if (options.fit_bias) {
        const double g = gradient_scale;
        bias_grad_sq += g * g;
        bias -= options.learning_rate / std::sqrt(bias_grad_sq) * g;
      }
    }
    const double mean_loss = weight_sum > 0.0 ? loss_sum / weight_sum : 0.0;
    if (options.tolerance > 0.0 && prev_loss - mean_loss < options.tolerance) break;
    prev_loss = mean_loss;
  }
  CountEpochs(epochs_run);
  return LogisticModel(std::move(weights), bias);
}

LogisticModel TrainProximalBatch(const CsrDataset& data, const LrOptions& options,
                                 std::vector<double> weights) {
  const size_t n_features = data.num_features;
  const size_t n = data.size();
  double bias = 0.0;

  // Lipschitz-style step size: the *max* squared feature norm (plus one
  // for the implicit bias column) bounds every per-example logistic
  // Hessian by norm^2 / 4, hence the 4 / max_norm_sq step scale.
  double max_norm_sq = 1.0;
  for (size_t i = 0; i < n; ++i) {
    double norm_sq = 0.0;
    const size_t end = data.row_offsets[i + 1];
    for (size_t k = data.row_offsets[i]; k < end; ++k) {
      norm_sq += data.values[k] * data.values[k];
    }
    max_norm_sq = std::max(max_norm_sq, norm_sq + 1.0);
  }
  const double step = options.learning_rate * 4.0 / max_norm_sq;

  // Deterministic parallel epoch body: examples are split into a fixed
  // block grid (independent of thread count), every block accumulates its
  // own dense partial gradient, and each feature's total sums the block
  // partials in ascending block index. Floating-point addition order is
  // therefore a function of the dataset alone, so the trained weights are
  // bitwise identical for 1, 2 or 64 threads (the determinism suite
  // asserts exactly this; see DESIGN.md section 11). The per-row scoring,
  // the sigmoid and the reduce+prox pass run on the dispatched SIMD
  // kernels (ml/simd.h); scalar and AVX2 kernels are bitwise identical, so
  // the kernel choice never changes results either (DESIGN.md section 16).
  const simd::KernelFns& fns = simd::GetKernelFns(simd::ActiveKernel());
  const size_t n_blocks = NumGradientBlocks(n, n_features);
  std::optional<ThreadPool> pool;
  const size_t pool_threads =
      std::min<size_t>(static_cast<size_t>(std::max(1, options.num_threads)), n_blocks);
  if (pool_threads > 1) pool.emplace(pool_threads);

  // Flat per-block partial-gradient scratch: block b owns row b of an
  // n_blocks x n_features matrix, which the fused kernel walks column-wise
  // in ascending block order.
  std::vector<double> block_gradients(n_blocks * n_features, 0.0);
  // Per-example probabilities, written blockwise (disjoint row ranges).
  std::vector<double> probs(n, 0.0);
  struct BlockSums {
    double bias_gradient = 0.0;
    double loss = 0.0;
    double weight = 0.0;
  };
  std::vector<BlockSums> block_sums(n_blocks);

  // Feature chunks for the reduction + proximal update. Chunking does not
  // affect results at all (each feature reduces independently); it only
  // sizes the parallel tasks.
  const size_t n_feature_chunks =
      n_features == 0 ? 0 : std::min<size_t>(n_blocks, n_features);

  double prev_loss = std::numeric_limits<double>::infinity();
  int epochs_run = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    ++epochs_run;
    ForEach(pool, n_blocks, [&](size_t b) {
      double* gradient = block_gradients.data() + b * n_features;
      std::fill(gradient, gradient + n_features, 0.0);
      BlockSums sums;
      const size_t begin_row = b * n / n_blocks;
      const size_t end_row = (b + 1) * n / n_blocks;
      // Batched kernel scoring + sigmoid over the whole block, then a
      // serial sweep for the loss and the gradient scatter (the scatter's
      // indices collide, so it stays scalar in every kernel).
      double* block_probs = probs.data() + begin_row;
      fns.score_csr_rows(data.row_offsets.data(), data.ids.data(), data.values.data(),
                         data.offsets.data(), weights.data(), n_features, bias, begin_row,
                         end_row, block_probs);
      fns.sigmoid_vec(block_probs, end_row - begin_row, block_probs);
      for (size_t i = begin_row; i < end_row; ++i) {
        const size_t begin = data.row_offsets[i];
        const size_t end = data.row_offsets[i + 1];
        const double predicted = probs[i];
        sums.loss += data.weights[i] * LogLoss(data.labels[i], predicted);
        sums.weight += data.weights[i];
        const double gradient_scale =
            data.weights[i] * (predicted - data.labels[i]) / static_cast<double>(n);
        for (size_t k = begin; k < end; ++k) {
          if (data.ids[k] < n_features) gradient[data.ids[k]] += gradient_scale * data.values[k];
        }
        sums.bias_gradient += gradient_scale;
      }
      block_sums[b] = sums;
    });

    ForEach(pool, n_feature_chunks, [&](size_t c) {
      const size_t begin_feature = c * n_features / n_feature_chunks;
      const size_t end_feature = (c + 1) * n_features / n_feature_chunks;
      fns.fused_grad_prox(block_gradients.data(), n_blocks, n_features, begin_feature,
                          end_feature, step, options.l1, options.l2, weights.data());
    });

    double bias_gradient = 0.0;
    double loss_sum = 0.0;
    double weight_sum = 0.0;
    for (const BlockSums& sums : block_sums) {
      bias_gradient += sums.bias_gradient;
      loss_sum += sums.loss;
      weight_sum += sums.weight;
    }
    if (options.fit_bias) bias -= step * bias_gradient;

    const double mean_loss = weight_sum > 0.0 ? loss_sum / weight_sum : 0.0;
    if (options.tolerance > 0.0 && prev_loss - mean_loss < options.tolerance) break;
    prev_loss = mean_loss;
  }
  CountEpochs(epochs_run);
  return LogisticModel(std::move(weights), bias);
}

}  // namespace

Result<LogisticModel> TrainLogisticRegression(const CsrDataset& data, const LrOptions& options,
                                              const std::vector<double>* initial_weights) {
  TraceSpan span("mb.train.lr");
  if (data.empty()) return Status::InvalidArgument("TrainLogisticRegression: empty dataset");
  if (initial_weights != nullptr && initial_weights->size() != data.num_features) {
    return Status::InvalidArgument("TrainLogisticRegression: initial_weights size mismatch");
  }
  for (double label : data.labels) {
    if (label != 0.0 && label != 1.0) {
      return Status::InvalidArgument("TrainLogisticRegression: labels must be 0 or 1");
    }
  }
  std::vector<double> weights =
      initial_weights != nullptr ? *initial_weights : std::vector<double>(data.num_features, 0.0);
  // Per-run aggregate adds; counts depend only on the dataset, never on
  // options.num_threads (see DESIGN.md section 12).
  static Counter* runs_counter = MetricRegistry::Global().GetCounter("mb.train.runs");
  static Counter* examples_counter = MetricRegistry::Global().GetCounter("mb.train.examples");
  runs_counter->Increment(1);
  examples_counter->Increment(static_cast<int64_t>(data.size()));
  switch (options.solver) {
    case LrSolver::kAdaGrad:
      return TrainAdaGrad(data, options, std::move(weights));
    case LrSolver::kProximalBatch:
      return TrainProximalBatch(data, options, std::move(weights));
  }
  return Status::Internal("TrainLogisticRegression: unknown solver");
}

Result<LogisticModel> TrainLogisticRegression(const Dataset& data, const LrOptions& options,
                                              const std::vector<double>* initial_weights) {
  return TrainLogisticRegression(FlattenDataset(data), options, initial_weights);
}

}  // namespace microbrowse
