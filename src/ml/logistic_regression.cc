// Copyright 2026 The Microbrowse Authors

#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.h"

namespace microbrowse {

double LogisticModel::PredictProbability(const SparseVector& features) const {
  return Sigmoid(Score(features));
}

size_t LogisticModel::num_zero_weights() const {
  size_t n = 0;
  for (double w : weights_) n += w == 0.0 ? 1 : 0;
  return n;
}

double LogisticModel::MeanLogLoss(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double total = 0.0;
  double weight_sum = 0.0;
  for (const auto& example : data.examples) {
    const double predicted = Sigmoid(Score(example.features) + example.offset);
    total += example.weight * LogLoss(example.label, predicted);
    weight_sum += example.weight;
  }
  return weight_sum > 0.0 ? total / weight_sum : 0.0;
}

namespace {

/// Soft-thresholding operator for the L1 proximal step.
double SoftThreshold(double x, double threshold) {
  if (x > threshold) return x - threshold;
  if (x < -threshold) return x + threshold;
  return 0.0;
}

LogisticModel TrainAdaGrad(const Dataset& data, const LrOptions& options,
                           std::vector<double> weights) {
  const size_t n_features = data.num_features;
  double bias = 0.0;
  std::vector<double> grad_sq(n_features, 1e-8);
  double bias_grad_sq = 1e-8;

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  double prev_loss = std::numeric_limits<double>::infinity();

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.shuffle_each_epoch) rng.Shuffle(order);
    double loss_sum = 0.0;
    double weight_sum = 0.0;
    for (size_t idx : order) {
      const Example& example = data.examples[idx];
      double score = bias + example.offset;
      for (const auto& entry : example.features.entries()) {
        if (entry.id < n_features) score += entry.value * weights[entry.id];
      }
      const double predicted = Sigmoid(score);
      loss_sum += example.weight * LogLoss(example.label, predicted);
      weight_sum += example.weight;
      const double gradient_scale = example.weight * (predicted - example.label);

      for (const auto& entry : example.features.entries()) {
        if (entry.id >= n_features) continue;
        const double g = gradient_scale * entry.value + options.l2 * weights[entry.id];
        grad_sq[entry.id] += g * g;
        const double step = options.learning_rate / std::sqrt(grad_sq[entry.id]);
        // Truncated-gradient L1: gradient step then shrink toward zero by
        // step * l1, clipping at zero.
        const double updated = weights[entry.id] - step * g;
        weights[entry.id] = SoftThreshold(updated, step * options.l1);
      }
      if (options.fit_bias) {
        const double g = gradient_scale;
        bias_grad_sq += g * g;
        bias -= options.learning_rate / std::sqrt(bias_grad_sq) * g;
      }
    }
    const double mean_loss = weight_sum > 0.0 ? loss_sum / weight_sum : 0.0;
    if (options.tolerance > 0.0 && prev_loss - mean_loss < options.tolerance) break;
    prev_loss = mean_loss;
  }
  return LogisticModel(std::move(weights), bias);
}

LogisticModel TrainProximalBatch(const Dataset& data, const LrOptions& options,
                                 std::vector<double> weights) {
  const size_t n_features = data.num_features;
  const size_t n = data.size();
  double bias = 0.0;

  // Lipschitz-style step size: mean squared feature norm bounds the
  // logistic Hessian by norm^2 / 4.
  double max_norm_sq = 1.0;
  for (const auto& example : data.examples) {
    max_norm_sq = std::max(max_norm_sq, example.features.SquaredNorm() + 1.0);
  }
  const double step = options.learning_rate * 4.0 / max_norm_sq;

  double prev_loss = std::numeric_limits<double>::infinity();
  std::vector<double> gradient(n_features, 0.0);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double bias_gradient = 0.0;
    double loss_sum = 0.0;
    double weight_sum = 0.0;
    for (const auto& example : data.examples) {
      double score = bias + example.offset;
      for (const auto& entry : example.features.entries()) {
        if (entry.id < n_features) score += entry.value * weights[entry.id];
      }
      const double predicted = Sigmoid(score);
      loss_sum += example.weight * LogLoss(example.label, predicted);
      weight_sum += example.weight;
      const double gradient_scale =
          example.weight * (predicted - example.label) / static_cast<double>(n);
      for (const auto& entry : example.features.entries()) {
        if (entry.id < n_features) gradient[entry.id] += gradient_scale * entry.value;
      }
      bias_gradient += gradient_scale;
    }
    for (size_t j = 0; j < n_features; ++j) {
      const double updated = weights[j] - step * (gradient[j] + options.l2 * weights[j]);
      weights[j] = SoftThreshold(updated, step * options.l1);
    }
    if (options.fit_bias) bias -= step * bias_gradient;

    const double mean_loss = weight_sum > 0.0 ? loss_sum / weight_sum : 0.0;
    if (options.tolerance > 0.0 && prev_loss - mean_loss < options.tolerance) break;
    prev_loss = mean_loss;
  }
  return LogisticModel(std::move(weights), bias);
}

}  // namespace

Result<LogisticModel> TrainLogisticRegression(const Dataset& data, const LrOptions& options,
                                              const std::vector<double>* initial_weights) {
  if (data.empty()) return Status::InvalidArgument("TrainLogisticRegression: empty dataset");
  if (initial_weights != nullptr && initial_weights->size() != data.num_features) {
    return Status::InvalidArgument("TrainLogisticRegression: initial_weights size mismatch");
  }
  for (const auto& example : data.examples) {
    if (example.label != 0.0 && example.label != 1.0) {
      return Status::InvalidArgument("TrainLogisticRegression: labels must be 0 or 1");
    }
  }
  std::vector<double> weights =
      initial_weights != nullptr ? *initial_weights : std::vector<double>(data.num_features, 0.0);
  switch (options.solver) {
    case LrSolver::kAdaGrad:
      return TrainAdaGrad(data, options, std::move(weights));
    case LrSolver::kProximalBatch:
      return TrainProximalBatch(data, options, std::move(weights));
  }
  return Status::Internal("TrainLogisticRegression: unknown solver");
}

}  // namespace microbrowse
