// Copyright 2026 The Microbrowse Authors
//
// Internal canonical arithmetic shared by the scalar and AVX2 kernel
// translation units (see simd.h for the contract). Everything here defines
// THE operation schedule: the AVX2 code must execute the same multiplies,
// adds, compares and selects on each lane, in the same order, so results
// agree bitwise. Both TUs compile with -ffp-contract=off — do not include
// this header from code built without that flag if you call the helpers.

#ifndef MICROBROWSE_ML_SIMD_COMMON_H_
#define MICROBROWSE_ML_SIMD_COMMON_H_

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "ml/sparse_vector.h"

namespace microbrowse::simd::internal {

// --- Canonical sigmoid: 1 / (1 + exp(-|x|)) with a mirrored selection for
// negative inputs, exp evaluated by Cody-Waite range reduction and a
// fixed-degree Horner polynomial. All constants are shared with the AVX2
// lanes.
inline constexpr double kLog2E = 1.4426950408889634074;  // 1 / ln 2
// ln2 split so kd * kLn2Hi is exact for |kd| < 2^20 (low mantissa bits 0).
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;
// 1.5 * 2^52: (t + kShifter) - kShifter rounds t to nearest-even integer.
inline constexpr double kShifter = 6755399441055744.0;
// exp arguments below this clamp; exp(-708) ~ 3e-308 keeps the 2^k scale
// normal and sigmoid is 0/1 to machine precision far earlier anyway.
inline constexpr double kExpLoClamp = -708.0;
// Taylor coefficients 1/k! for exp on [-ln2/2, ln2/2]; degree 11 leaves
// |r|^12/12! < 1e-14 relative error at the interval edge.
inline constexpr double kExpPoly[12] = {
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
};

/// exp(nx) for nx <= 0, canonical schedule. `nx` must already be clamped
/// to [kExpLoClamp, 0].
inline double ExpNegCanonical(double nx) {
  const double t = nx * kLog2E;
  const double kd = (t + kShifter) - kShifter;
  const double r = (nx - kd * kLn2Hi) - kd * kLn2Lo;
  double p = kExpPoly[11];
  p = p * r + kExpPoly[10];
  p = p * r + kExpPoly[9];
  p = p * r + kExpPoly[8];
  p = p * r + kExpPoly[7];
  p = p * r + kExpPoly[6];
  p = p * r + kExpPoly[5];
  p = p * r + kExpPoly[4];
  p = p * r + kExpPoly[3];
  p = p * r + kExpPoly[2];
  p = p * r + kExpPoly[1];
  p = p * r + kExpPoly[0];
  const int64_t k = static_cast<int64_t>(kd);
  const double scale = std::bit_cast<double>(static_cast<uint64_t>(k + 1023) << 52);
  return p * scale;
}

/// Canonical sigmoid; every SigmoidVec lane computes exactly this.
inline double SigmoidCanonical(double x) {
  // -|x|, clamped with vmaxpd select semantics (NaN collapses to the
  // clamp, matching _mm256_max_pd(nx, clamp)).
  double nx = -std::fabs(x);
  nx = nx > kExpLoClamp ? nx : kExpLoClamp;
  const double e = ExpNegCanonical(nx);
  const double inv = 1.0 / (1.0 + e);
  // e * inv == e / (1 + e), NOT 1 - inv: the subtraction's half-ulp-of-one
  // absolute error would swamp saturated negatives in relative terms.
  const double mirrored = e * inv;
  // blendv on (x < 0): ordered compare, so NaN takes the positive branch.
  return x < 0.0 ? mirrored : inv;
}

/// Canonical lane-structured dot product of one CSR row (see
/// KernelFns::dot_row). The scalar kernel IS this function; the AVX2
/// kernel reproduces its lane schedule with gathers.
inline double DotRowCanonical(const FeatureId* ids, const double* values, size_t len,
                              const double* weights, size_t n_features) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t g = 0;
  for (; g + 4 <= len; g += 4) {
    for (int l = 0; l < 4; ++l) {
      const FeatureId id = ids[g + l];
      const double t = id < n_features ? values[g + l] * weights[id] : 0.0;
      acc[l] += t;
    }
  }
  const size_t tail = len - g;
  if (tail != 0) {
    // The masked AVX2 tail adds +0.0 to the inactive lanes; mirror that.
    for (size_t l = 0; l < 4; ++l) {
      double t = 0.0;
      if (l < tail) {
        const FeatureId id = ids[g + l];
        if (id < n_features) t = values[g + l] * weights[id];
      }
      acc[l] += t;
    }
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

/// Canonical per-feature fused reduce + proximal update (see
/// KernelFns::fused_grad_prox). Each feature is independent, so the vector
/// kernel matches bitwise by construction.
inline void FusedGradProxFeature(const double* partials, size_t n_blocks, size_t stride,
                                 size_t j, double step, double thr, double l2,
                                 double* weights) {
  double g = 0.0;
  for (size_t b = 0; b < n_blocks; ++b) g += partials[b * stride + j];
  const double w = weights[j];
  const double u = w - step * (g + l2 * w);
  // Branchless soft threshold: copysign(max(|u| - thr, 0), u), with vmaxpd
  // select semantics (NaN magnitude collapses to +0).
  double a = std::fabs(u) - thr;
  a = a > 0.0 ? a : 0.0;
  weights[j] = std::copysign(a, u);
}

}  // namespace microbrowse::simd::internal

#endif  // MICROBROWSE_ML_SIMD_COMMON_H_
