// Copyright 2026 The Microbrowse Authors

#include "ml/cross_validation.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/metrics.h"

namespace microbrowse {

namespace {

/// Counts one successful fold split, whichever maker produced it.
void CountFoldSplit() {
  static Counter* splits_counter = MetricRegistry::Global().GetCounter("mb.cv.fold_splits");
  splits_counter->Increment(1);
}

/// Builds folds from a permutation by dealing indices round-robin into k
/// test sets.
std::vector<CvFold> FoldsFromPermutation(const std::vector<size_t>& permutation, int k) {
  std::vector<std::vector<size_t>> test_sets(k);
  for (size_t i = 0; i < permutation.size(); ++i) {
    test_sets[i % static_cast<size_t>(k)].push_back(permutation[i]);
  }
  std::vector<CvFold> folds(k);
  for (int f = 0; f < k; ++f) {
    folds[f].test_indices = test_sets[f];
    for (int other = 0; other < k; ++other) {
      if (other == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(), test_sets[other].begin(),
                                    test_sets[other].end());
    }
    std::sort(folds[f].train_indices.begin(), folds[f].train_indices.end());
    std::sort(folds[f].test_indices.begin(), folds[f].test_indices.end());
  }
  return folds;
}

}  // namespace

Result<std::vector<CvFold>> MakeKFolds(size_t n, int k, uint64_t seed) {
  if (k < 2) return Status::InvalidArgument("MakeKFolds: k must be >= 2");
  if (static_cast<size_t>(k) > n) return Status::InvalidArgument("MakeKFolds: k exceeds n");
  std::vector<size_t> permutation(n);
  std::iota(permutation.begin(), permutation.end(), 0);
  Rng rng(seed);
  rng.Shuffle(permutation);
  CountFoldSplit();
  return FoldsFromPermutation(permutation, k);
}

Result<std::vector<CvFold>> MakeStratifiedKFolds(const std::vector<bool>& labels, int k,
                                                 uint64_t seed) {
  if (k < 2) return Status::InvalidArgument("MakeStratifiedKFolds: k must be >= 2");
  if (static_cast<size_t>(k) > labels.size()) {
    return Status::InvalidArgument("MakeStratifiedKFolds: k exceeds n");
  }
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] ? positives : negatives).push_back(i);
  }
  Rng rng(seed);
  rng.Shuffle(positives);
  rng.Shuffle(negatives);
  // Concatenate the shuffled strata: FoldsFromPermutation deals the
  // permutation round-robin into k test sets, so each stratum spreads
  // across the folds independently and every fold's positive / negative
  // counts land within one of the ideal k-way split — no interleaving is
  // needed for balance (asserted by StratifiedFoldsBalanceEachFold).
  std::vector<size_t> permutation;
  permutation.reserve(labels.size());
  permutation.insert(permutation.end(), positives.begin(), positives.end());
  permutation.insert(permutation.end(), negatives.begin(), negatives.end());
  CountFoldSplit();
  return FoldsFromPermutation(permutation, k);
}

Result<std::vector<CvFold>> MakeGroupedKFolds(const std::vector<int64_t>& group_ids, int k,
                                              uint64_t seed) {
  if (k < 2) return Status::InvalidArgument("MakeGroupedKFolds: k must be >= 2");
  // Collect distinct groups with their member indices.
  std::unordered_map<int64_t, std::vector<size_t>> members;
  std::vector<int64_t> groups;
  for (size_t i = 0; i < group_ids.size(); ++i) {
    auto [it, inserted] = members.try_emplace(group_ids[i]);
    if (inserted) groups.push_back(group_ids[i]);
    it->second.push_back(i);
  }
  if (groups.size() < static_cast<size_t>(k)) {
    return Status::InvalidArgument("MakeGroupedKFolds: fewer groups than folds");
  }
  Rng rng(seed);
  rng.Shuffle(groups);

  std::vector<std::vector<size_t>> test_sets(k);
  for (size_t g = 0; g < groups.size(); ++g) {
    auto& test = test_sets[g % static_cast<size_t>(k)];
    const auto& idx = members[groups[g]];
    test.insert(test.end(), idx.begin(), idx.end());
  }
  std::vector<CvFold> folds(k);
  for (int f = 0; f < k; ++f) {
    folds[f].test_indices = test_sets[f];
    for (int other = 0; other < k; ++other) {
      if (other == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(), test_sets[other].begin(),
                                    test_sets[other].end());
    }
    std::sort(folds[f].train_indices.begin(), folds[f].train_indices.end());
    std::sort(folds[f].test_indices.begin(), folds[f].test_indices.end());
  }
  CountFoldSplit();
  return folds;
}

}  // namespace microbrowse
