// Copyright 2026 The Microbrowse Authors
//
// Runtime-dispatched SIMD kernels for the training hot path (DESIGN.md
// section 16). Three kernels cover the proximal solver's inner loops:
//
//   ScoreCsrRows   — batched CSR sparse dot-products (per-row scores)
//   SigmoidVec     — elementwise logistic over a score buffer
//   FusedGradProx  — block-partial gradient reduction fused with the
//                    L2 gradient step and L1 proximal shrink
//
// The central contract: for every kernel, the scalar and AVX2
// implementations are BITWISE IDENTICAL, not merely close. Both follow one
// canonical operation schedule — a fixed 4-lane accumulator structure with
// a fixed lane-reduction order for dot products, a shared polynomial
// sigmoid evaluated with the exact same multiply/add sequence, and a
// per-feature ascending-block reduction for the fused pass. No FMA
// contraction is permitted (the kernel translation units compile with
// -ffp-contract=off and the AVX2 code uses explicit mul+add intrinsics),
// so the compiler cannot introduce divergent roundings. Consequences:
//
//   * thread-count determinism (DESIGN.md section 11) holds per kernel AND
//     across kernels — MB_SIMD=off and MB_SIMD=avx2 train the same bits;
//   * CV checkpoints written under one kernel resume under the other
//     bitwise-identically (the fingerprint excludes the kernel, like the
//     thread count);
//   * the parity suite (tests/ml/simd_parity_test.cc) asserts exact
//     equality, no tolerances.
//
// Kernel choice: MB_SIMD=off|scalar forces scalar, MB_SIMD=avx2 requests
// AVX2 (falls back to scalar with a warning when the CPU lacks it), unset
// or MB_SIMD=auto probes cpuid. Resolved once per process; tests override
// with ScopedKernelOverride.

#ifndef MICROBROWSE_ML_SIMD_H_
#define MICROBROWSE_ML_SIMD_H_

#include <cstddef>
#include <optional>

#include "ml/sparse_vector.h"

namespace microbrowse::simd {

enum class Kernel {
  kScalar = 0,
  kAvx2 = 1,
};

/// "scalar" / "avx2".
const char* KernelName(Kernel kernel);

/// True when this build carries AVX2 code paths and the CPU supports them.
bool Avx2Available();

/// The kernel every convenience entry point below dispatches to. Resolved
/// once from MB_SIMD / cpuid; stable for the process lifetime unless a
/// test installs an override.
Kernel ActiveKernel();

/// Test hook: forces `kernel` (nullopt restores MB_SIMD / cpuid
/// resolution). Not thread-safe against concurrent kernel calls; tests
/// flip it between training runs only.
void SetKernelForTest(std::optional<Kernel> kernel);

/// RAII kernel override for tests.
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(Kernel kernel) { SetKernelForTest(kernel); }
  ~ScopedKernelOverride() { SetKernelForTest(std::nullopt); }
  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;
};

/// Per-kernel entry points. All functions of one table compute the
/// canonical schedule; tables for different kernels agree bitwise.
struct KernelFns {
  /// Lane-structured sparse dot product of one CSR row against `weights`:
  /// entries are consumed in groups of four, group g entry l contributing
  /// to lane accumulator l; entries whose id >= n_features (and the empty
  /// lanes of a final partial group) contribute +0.0 to their lane. The
  /// result is (lane0 + lane2) + (lane1 + lane3).
  double (*dot_row)(const FeatureId* ids, const double* values, size_t len,
                    const double* weights, size_t n_features);

  /// scores[i - begin_row] = (bias + offsets[i]) + dot_row(row i) for every
  /// row in [begin_row, end_row). `offsets` may be null (treated as 0).
  void (*score_csr_rows)(const size_t* row_offsets, const FeatureId* ids,
                         const double* values, const double* offsets, const double* weights,
                         size_t n_features, double bias, size_t begin_row, size_t end_row,
                         double* scores);

  /// out[i] = CanonicalSigmoid(x[i]): 1/(1+exp(-x)) evaluated via a shared
  /// range-reduced polynomial exp (see simd.cc); in-place allowed.
  void (*sigmoid_vec)(const double* x, size_t n, double* out);

  /// For every feature j in [begin, end):
  ///   g      = sum over b in 0..n_blocks-1 (ascending) of
  ///            partials[b * stride + j]
  ///   u      = weights[j] - step * (g + l2 * weights[j])
  ///   weights[j] = SoftThreshold(u, step * l1)
  /// with branchless soft-thresholding (max semantics of vmaxpd: a NaN
  /// magnitude collapses to 0).
  void (*fused_grad_prox)(const double* partials, size_t n_blocks, size_t stride,
                          size_t begin, size_t end, double step, double l1, double l2,
                          double* weights);
};

/// Kernel table for `kernel`; requesting kAvx2 on hardware without AVX2
/// returns the scalar table.
const KernelFns& GetKernelFns(Kernel kernel);

/// Convenience wrappers over GetKernelFns(ActiveKernel()).
double DotRow(const FeatureId* ids, const double* values, size_t len, const double* weights,
              size_t n_features);
void ScoreCsrRows(const size_t* row_offsets, const FeatureId* ids, const double* values,
                  const double* offsets, const double* weights, size_t n_features, double bias,
                  size_t begin_row, size_t end_row, double* scores);
void SigmoidVec(const double* x, size_t n, double* out);
void FusedGradProx(const double* partials, size_t n_blocks, size_t stride, size_t begin,
                   size_t end, double step, double l1, double l2, double* weights);

}  // namespace microbrowse::simd

#endif  // MICROBROWSE_ML_SIMD_H_
