// Copyright 2026 The Microbrowse Authors
//
// Labeled example containers for binary classification.

#ifndef MICROBROWSE_ML_DATASET_H_
#define MICROBROWSE_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "ml/sparse_vector.h"

namespace microbrowse {

/// One binary-classification example.
struct Example {
  SparseVector features;
  double label = 0.0;   ///< 0.0 or 1.0.
  double weight = 1.0;  ///< Importance weight.
  /// Fixed additive contribution to the example's logit, untouched by
  /// training. Used by the coupled-LR phases, where the frozen factor's
  /// bias enters as a constant.
  double offset = 0.0;
};

/// A bag of examples plus the feature-space width.
struct Dataset {
  std::vector<Example> examples;
  size_t num_features = 0;

  size_t size() const { return examples.size(); }
  bool empty() const { return examples.empty(); }

  /// Number of positive-label examples.
  size_t num_positives() const {
    size_t n = 0;
    for (const auto& e : examples) n += e.label > 0.5 ? 1 : 0;
    return n;
  }

  /// Returns the subset of examples selected by `indices` (copying).
  Dataset Subset(const std::vector<size_t>& indices) const {
    Dataset out;
    out.num_features = num_features;
    out.examples.reserve(indices.size());
    for (size_t idx : indices) out.examples.push_back(examples[idx]);
    return out;
  }
};

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_DATASET_H_
