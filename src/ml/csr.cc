// Copyright 2026 The Microbrowse Authors

#include "ml/csr.h"

namespace microbrowse {

CsrDataset FlattenDataset(const Dataset& data) {
  CsrDataset csr;
  csr.num_features = data.num_features;
  const size_t n = data.size();
  size_t entries = 0;
  for (const Example& example : data.examples) entries += example.features.size();
  csr.row_offsets.reserve(n + 1);
  csr.ids.reserve(entries);
  csr.values.reserve(entries);
  csr.labels.reserve(n);
  csr.weights.reserve(n);
  csr.offsets.reserve(n);
  csr.row_offsets.push_back(0);
  for (const Example& example : data.examples) {
    for (const FeatureEntry& entry : example.features.entries()) {
      csr.ids.push_back(entry.id);
      csr.values.push_back(entry.value);
    }
    csr.row_offsets.push_back(csr.ids.size());
    csr.labels.push_back(example.label);
    csr.weights.push_back(example.weight);
    csr.offsets.push_back(example.offset);
  }
  return csr;
}

}  // namespace microbrowse
