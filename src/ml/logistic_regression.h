// Copyright 2026 The Microbrowse Authors
//
// L1-regularised logistic regression — the paper's snippet classifier is
// "a logistic regression model with L1 regularization" (Section V-D) whose
// weights are warm-started from the feature-statistics database.
//
// Two trainers are provided:
//  * AdaGrad SGD with truncated-gradient L1 (fast, streaming, used by the
//    experiment pipeline), and
//  * batch proximal gradient descent / ISTA (deterministic, used in tests
//    and for small problems).

#ifndef MICROBROWSE_ML_LOGISTIC_REGRESSION_H_
#define MICROBROWSE_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "ml/csr.h"
#include "ml/dataset.h"
#include "ml/sparse_vector.h"

namespace microbrowse {

/// Trainer selection.
enum class LrSolver { kAdaGrad, kProximalBatch };

/// Logistic-regression hyper-parameters.
struct LrOptions {
  LrSolver solver = LrSolver::kAdaGrad;
  double l1 = 1e-4;              ///< L1 penalty strength.
  double l2 = 1e-6;              ///< Small ridge term for conditioning.
  double learning_rate = 0.3;    ///< AdaGrad base step / ISTA step scale.
  int epochs = 15;               ///< Passes over the data.
  bool shuffle_each_epoch = true;
  bool fit_bias = true;
  uint64_t seed = 7;             ///< Shuffle seed.
  /// Stop early when the training log-loss improves by less than this
  /// between epochs (<= 0 disables).
  double tolerance = 1e-6;
  /// Worker threads for the batch proximal solver's epoch body. Results
  /// are bitwise identical for any value: examples are split into a fixed
  /// block grid (independent of thread count) and each feature's gradient
  /// sums the per-block partials in ascending block index (DESIGN.md
  /// section 11). AdaGrad is inherently sequential and ignores this.
  int num_threads = 1;
};

/// A trained (or warm-started) linear model over sparse features.
class LogisticModel {
 public:
  LogisticModel() = default;

  /// Creates a model with `num_features` zero weights.
  explicit LogisticModel(size_t num_features) : weights_(num_features, 0.0) {}

  /// Creates a model from explicit weights and bias.
  LogisticModel(std::vector<double> weights, double bias)
      : weights_(std::move(weights)), bias_(bias) {}

  /// Raw linear score w.x + b.
  double Score(const SparseVector& features) const { return features.Dot(weights_) + bias_; }

  /// Predicted probability of the positive class.
  double PredictProbability(const SparseVector& features) const;

  /// Hard 0/1 prediction at threshold 0.5.
  bool PredictLabel(const SparseVector& features) const { return Score(features) >= 0.0; }

  const std::vector<double>& weights() const { return weights_; }
  std::vector<double>& mutable_weights() { return weights_; }
  double bias() const { return bias_; }
  void set_bias(double bias) { bias_ = bias; }

  /// Number of exactly-zero weights (L1 sparsity diagnostic).
  size_t num_zero_weights() const;

  /// Mean log-loss of the model on `data`.
  double MeanLogLoss(const Dataset& data) const;

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Trains a logistic regression on `data`. When `initial_weights` is
/// non-null it supplies the warm start (its length must equal
/// data.num_features); otherwise training starts from zero. Flattens the
/// dataset to CSR once and delegates to the CSR overload.
Result<LogisticModel> TrainLogisticRegression(const Dataset& data, const LrOptions& options,
                                              const std::vector<double>* initial_weights = nullptr);

/// CSR-layout entry point for callers that already hold (or reuse) a
/// flattened dataset — the training hot path proper. Both solvers stream
/// the packed arrays directly.
Result<LogisticModel> TrainLogisticRegression(const CsrDataset& data, const LrOptions& options,
                                              const std::vector<double>* initial_weights = nullptr);

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_LOGISTIC_REGRESSION_H_
