// Copyright 2026 The Microbrowse Authors
//
// Feature hashing ("the hashing trick"). The explicit FeatureRegistry is
// exact but stores every name; at ADCORPUS scale (tens of millions of
// pairs, unbounded text vocabulary) production systems hash feature names
// straight into a fixed-width weight vector and absorb the rare collision.
// This header provides that alternative id space, with the standard signed
// variant that makes collisions cancel in expectation.

#ifndef MICROBROWSE_ML_FEATURE_HASHING_H_
#define MICROBROWSE_ML_FEATURE_HASHING_H_

#include <cstdint>
#include <string_view>

#include "common/hash.h"
#include "ml/sparse_vector.h"

namespace microbrowse {

/// A stateless feature space of size 2^bits: names map to ids by hashing.
/// Unlike FeatureRegistry there is nothing to store or serialise — two
/// processes agree on ids by construction.
class HashedFeatureSpace {
 public:
  /// `bits` in [1, 30]; the space holds 2^bits features. `signed_hashing`
  /// derives a +-1 sign from an independent bit of the hash, so colliding
  /// features cancel rather than add in expectation.
  explicit HashedFeatureSpace(int bits, bool signed_hashing = true, uint64_t salt = 0x5eed)
      : mask_((1u << bits) - 1u), signed_hashing_(signed_hashing), salt_(salt) {}

  /// Number of slots in the space.
  size_t size() const { return static_cast<size_t>(mask_) + 1; }

  /// Id of `name` (always valid; collisions are by design).
  FeatureId IdOf(std::string_view name) const {
    return static_cast<FeatureId>(Hash(name) & mask_);
  }

  /// Hashing sign of `name` (+1 / -1); always +1 when signed hashing is
  /// off.
  double SignOf(std::string_view name) const {
    if (!signed_hashing_) return 1.0;
    return (Hash(name) >> 33) & 1u ? 1.0 : -1.0;
  }

  /// Adds `name` with `value` to `vector`, applying the hashing sign.
  void Add(std::string_view name, double value, SparseVector* vector) const {
    vector->Add(IdOf(name), SignOf(name) * value);
  }

 private:
  uint64_t Hash(std::string_view name) const { return Mix64(Fnv1a64(name) ^ salt_); }

  uint32_t mask_;
  bool signed_hashing_;
  uint64_t salt_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_ML_FEATURE_HASHING_H_
