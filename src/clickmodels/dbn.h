// Copyright 2026 The Microbrowse Authors
//
// Dynamic Bayesian network click model (Chapelle & Zhang, WWW'09), the
// paper's "DBM". Each result has attractiveness a (perceived relevance) and
// satisfaction s (post-click relevance); after examining result i the user
// continues iff she was not satisfied, with perseverance gamma:
//   P(E_{i+1}=1 | E_i=1, C_i=0) = gamma
//   P(E_{i+1}=1 | E_i=1, C_i=1) = gamma * (1 - s_i).
// Fit with EM; the E-step runs an exact forward-backward pass over the
// latent examination chain. The simplified DBN (SDBN, gamma = 1) has a
// closed-form MLE and is provided as SimplifiedDbnModel.

#ifndef MICROBROWSE_CLICKMODELS_DBN_H_
#define MICROBROWSE_CLICKMODELS_DBN_H_

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"

namespace microbrowse {

/// DBN hyper-parameters.
struct DbnOptions {
  int em_iterations = 30;
  double smoothing = 1.0;
  /// When false, gamma stays at its initial value instead of being
  /// re-estimated each M-step.
  bool estimate_gamma = true;
  double initial_gamma = 0.9;
};

/// Dynamic Bayesian network click model with EM estimation.
class DbnModel : public ClickModel {
 public:
  explicit DbnModel(DbnOptions options = {})
      : options_(options), attraction_(0.5), satisfaction_(0.5), gamma_(options.initial_gamma) {}

  /// Generative constructor with known parameters.
  DbnModel(QueryDocTable attraction, QueryDocTable satisfaction, double gamma,
           DbnOptions options = {})
      : options_(options),
        attraction_(std::move(attraction)),
        satisfaction_(std::move(satisfaction)),
        gamma_(gamma) {}

  std::string_view name() const override { return "DBN"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  const QueryDocTable& attraction() const { return attraction_; }
  const QueryDocTable& satisfaction() const { return satisfaction_; }
  double gamma() const { return gamma_; }

 private:
  DbnOptions options_;
  QueryDocTable attraction_;
  QueryDocTable satisfaction_;
  double gamma_;
};

/// Simplified DBN: gamma = 1, closed-form MLE (attractiveness from
/// positions up to the last click, satisfaction from whether a click is the
/// session's last).
class SimplifiedDbnModel : public ClickModel {
 public:
  SimplifiedDbnModel() : attraction_(0.5), satisfaction_(0.5) {}

  /// Generative constructor with known parameters.
  SimplifiedDbnModel(QueryDocTable attraction, QueryDocTable satisfaction)
      : attraction_(std::move(attraction)), satisfaction_(std::move(satisfaction)) {}

  std::string_view name() const override { return "SDBN"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  const QueryDocTable& attraction() const { return attraction_; }
  const QueryDocTable& satisfaction() const { return satisfaction_; }

 private:
  QueryDocTable attraction_;
  QueryDocTable satisfaction_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_DBN_H_
