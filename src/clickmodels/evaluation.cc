// Copyright 2026 The Microbrowse Authors

#include "clickmodels/evaluation.h"

#include <algorithm>
#include <cmath>

namespace microbrowse {

ClickModelEvaluation EvaluateClickModel(const ClickModel& model, const ClickLog& log) {
  ClickModelEvaluation eval;
  const int max_rank = log.max_positions;
  std::vector<double> log2_sum(max_rank, 0.0);
  std::vector<int64_t> rank_count(max_rank, 0);
  int64_t observations = 0;
  double brier_sum = 0.0;

  for (const auto& session : log.sessions) {
    const auto conditional = model.ConditionalClickProbs(session);
    const auto marginal = model.MarginalClickProbs(session);
    for (size_t i = 0; i < session.results.size(); ++i) {
      const bool clicked = session.results[i].clicked;
      const double pc = std::clamp(conditional[i], 1e-10, 1.0 - 1e-10);
      eval.log_likelihood += clicked ? std::log(pc) : std::log1p(-pc);
      ++observations;

      const double pm = std::clamp(marginal[i], 1e-10, 1.0 - 1e-10);
      log2_sum[i] += clicked ? std::log2(pm) : std::log2(1.0 - pm);
      ++rank_count[i];
      const double err = (clicked ? 1.0 : 0.0) - pm;
      brier_sum += err * err;
    }
  }

  eval.avg_log_likelihood =
      observations > 0 ? eval.log_likelihood / static_cast<double>(observations) : 0.0;
  eval.ctr_mse = observations > 0 ? brier_sum / static_cast<double>(observations) : 0.0;
  eval.perplexity_at_rank.resize(max_rank, 0.0);
  double perplexity_total = 0.0;
  int ranks_with_data = 0;
  for (int r = 0; r < max_rank; ++r) {
    if (rank_count[r] == 0) continue;
    eval.perplexity_at_rank[r] =
        std::exp2(-log2_sum[r] / static_cast<double>(rank_count[r]));
    perplexity_total += eval.perplexity_at_rank[r];
    ++ranks_with_data;
  }
  eval.perplexity = ranks_with_data > 0 ? perplexity_total / ranks_with_data : 0.0;
  return eval;
}

}  // namespace microbrowse
