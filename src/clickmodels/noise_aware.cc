// Copyright 2026 The Microbrowse Authors

#include "clickmodels/noise_aware.h"

#include <algorithm>

namespace microbrowse {

Status NoiseAwareClickModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("NCM: empty click log");
  const int positions = log.max_positions;
  position_probs_.assign(positions, 0.5);
  noise_rates_.assign(positions, 0.05);
  attraction_ = QueryDocTable(0.5);
  eta_ = options_.initial_eta;

  for (int iter = 0; iter < options_.em_iterations; ++iter) {
    QueryDocAccumulator attraction_acc;
    std::vector<double> gamma_num(positions, 0.0), gamma_den(positions, 0.0);
    std::vector<double> beta_num(positions, 0.0), beta_den(positions, 0.0);
    double eta_num = 0.0;
    double eta_den = 0.0;

    for (const auto& session : log.sessions) {
      for (size_t i = 0; i < session.results.size(); ++i) {
        const auto& result = session.results[i];
        const int pos = static_cast<int>(i);
        const double gamma = PositionProb(pos);
        const double alpha = attraction_.Get(session.query_id, result.doc_id);
        const double beta = NoiseRate(pos);

        // E-step: posterior over the channel (real vs noise) given the
        // observation, then the usual PBM posteriors inside the real
        // channel.
        const double p_real = (1.0 - eta_) * (result.clicked ? gamma * alpha
                                                             : 1.0 - gamma * alpha);
        const double p_noise = eta_ * (result.clicked ? beta : 1.0 - beta);
        const double denom = p_real + p_noise;
        const double w_noise = denom > 0.0 ? p_noise / denom : eta_;
        const double w_real = 1.0 - w_noise;

        eta_num += w_noise;
        eta_den += 1.0;
        beta_num[pos] += w_noise * (result.clicked ? 1.0 : 0.0);
        beta_den[pos] += w_noise;

        if (result.clicked) {
          attraction_acc.Add(session.query_id, result.doc_id, w_real, w_real);
          gamma_num[pos] += w_real;
          gamma_den[pos] += w_real;
        } else {
          const double p_no_click = 1.0 - gamma * alpha;
          const double p_attracted_unexamined =
              p_no_click > 0.0 ? (1.0 - gamma) * alpha / p_no_click : 0.0;
          const double p_examined =
              p_no_click > 0.0 ? gamma * (1.0 - alpha) / p_no_click : 0.0;
          attraction_acc.Add(session.query_id, result.doc_id,
                             w_real * p_attracted_unexamined, w_real);
          gamma_num[pos] += w_real * p_examined;
          gamma_den[pos] += w_real;
        }
      }
    }

    attraction_acc.Flush(attraction_, options_.smoothing, 0.5);
    for (int i = 0; i < positions; ++i) {
      position_probs_[i] = (gamma_num[i] + options_.smoothing * 0.5) /
                           (gamma_den[i] + options_.smoothing);
      noise_rates_[i] =
          (beta_num[i] + options_.smoothing * 0.05) / (beta_den[i] + options_.smoothing);
    }
    if (options_.estimate_eta && eta_den > 0.0) {
      eta_ = std::clamp((eta_num + options_.smoothing * options_.initial_eta) /
                            (eta_den + options_.smoothing),
                        1e-6, 0.9);
    }
  }
  return Status::OK();
}

std::vector<double> NoiseAwareClickModel::ConditionalClickProbs(const Session& session) const {
  // Positions are independent; conditional == marginal.
  return MarginalClickProbs(session);
}

std::vector<double> NoiseAwareClickModel::MarginalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  for (size_t i = 0; i < session.results.size(); ++i) {
    const int pos = static_cast<int>(i);
    const double real = PositionProb(pos) *
                        attraction_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = (1.0 - eta_) * real + eta_ * NoiseRate(pos);
  }
  return probs;
}

void NoiseAwareClickModel::SimulateClicks(Session* session, Rng* rng) const {
  for (size_t i = 0; i < session->results.size(); ++i) {
    const int pos = static_cast<int>(i);
    if (rng->Bernoulli(eta_)) {
      session->results[i].clicked = rng->Bernoulli(NoiseRate(pos));
    } else {
      const double p = PositionProb(pos) *
                       attraction_.Get(session->query_id, session->results[i].doc_id);
      session->results[i].clicked = rng->Bernoulli(p);
    }
  }
}

}  // namespace microbrowse
