// Copyright 2026 The Microbrowse Authors
//
// Position-based model (Richardson et al., WWW'07; formalized by Craswell
// et al., WSDM'08). Examination depends only on the position:
//   P(C_i = 1) = gamma_i * alpha_{q, d(i)}.
// Fit by expectation-maximisation over the latent examination events.

#ifndef MICROBROWSE_CLICKMODELS_PBM_H_
#define MICROBROWSE_CLICKMODELS_PBM_H_

#include <vector>

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"

namespace microbrowse {

/// PBM hyper-parameters.
struct PbmOptions {
  int em_iterations = 30;
  /// Smoothing pseudo-count applied in each M-step.
  double smoothing = 1.0;
};

/// Position-based click model with EM estimation.
class PositionBasedModel : public ClickModel {
 public:
  explicit PositionBasedModel(PbmOptions options = {})
      : options_(options), attraction_(0.5) {}

  /// Constructs a generative PBM with known parameters (for simulation and
  /// parameter-recovery tests).
  PositionBasedModel(std::vector<double> position_probs, QueryDocTable attraction,
                     PbmOptions options = {})
      : options_(options),
        position_probs_(std::move(position_probs)),
        attraction_(std::move(attraction)) {}

  std::string_view name() const override { return "PBM"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  /// Learned (or supplied) examination probability per position.
  const std::vector<double>& position_probs() const { return position_probs_; }

  /// Learned (or supplied) attractiveness table.
  const QueryDocTable& attraction() const { return attraction_; }

 private:
  double PositionProb(int position) const {
    return position < static_cast<int>(position_probs_.size()) ? position_probs_[position] : 0.5;
  }

  PbmOptions options_;
  std::vector<double> position_probs_;
  QueryDocTable attraction_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_PBM_H_
