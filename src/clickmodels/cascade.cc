// Copyright 2026 The Microbrowse Authors

#include "clickmodels/cascade.h"

#include <unordered_map>

namespace microbrowse {

Status CascadeModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("Cascade: empty click log");
  // Under the cascade assumptions a result is examined iff no earlier result
  // in the session was clicked, so examination is fully observed and the MLE
  // is clicks / examinations.
  QueryDocAccumulator acc;
  for (const auto& session : log.sessions) {
    for (const auto& result : session.results) {
      acc.Add(session.query_id, result.doc_id, result.clicked ? 1.0 : 0.0, 1.0);
      if (result.clicked) break;  // Nothing after the first click is examined.
    }
  }
  attraction_ = QueryDocTable(0.5);
  acc.Flush(attraction_, /*alpha=*/1.0, /*prior=*/0.5);
  return Status::OK();
}

std::vector<double> CascadeModel::ConditionalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  bool examining = true;
  for (size_t i = 0; i < session.results.size(); ++i) {
    probs[i] = examining ? attraction_.Get(session.query_id, session.results[i].doc_id) : 0.0;
    if (session.results[i].clicked) examining = false;
  }
  return probs;
}

std::vector<double> CascadeModel::MarginalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  double exam_prob = 1.0;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double alpha = attraction_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = exam_prob * alpha;
    exam_prob *= 1.0 - alpha;  // Continue only if this result was not clicked.
  }
  return probs;
}

void CascadeModel::SimulateClicks(Session* session, Rng* rng) const {
  bool examining = true;
  for (auto& result : session->results) {
    if (!examining) {
      result.clicked = false;
      continue;
    }
    result.clicked = rng->Bernoulli(attraction_.Get(session->query_id, result.doc_id));
    if (result.clicked) examining = false;
  }
}

}  // namespace microbrowse
