// Copyright 2026 The Microbrowse Authors
//
// Per-(query, doc) parameter storage shared by the click-model estimators.

#ifndef MICROBROWSE_CLICKMODELS_PARAM_TABLE_H_
#define MICROBROWSE_CLICKMODELS_PARAM_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "clickmodels/session.h"

namespace microbrowse {

/// A map from (query, doc) to a scalar parameter with a configurable
/// default for unseen pairs (the prior mean).
class QueryDocTable {
 public:
  explicit QueryDocTable(double default_value = 0.5) : default_value_(default_value) {}

  /// Reads the parameter, falling back to the default for unseen pairs.
  double Get(int32_t query_id, int32_t doc_id) const {
    auto it = values_.find(QueryDocKey(query_id, doc_id));
    return it != values_.end() ? it->second : default_value_;
  }

  /// Writes the parameter.
  void Set(int32_t query_id, int32_t doc_id, double value) {
    values_[QueryDocKey(query_id, doc_id)] = value;
  }

  /// Default returned for pairs never Set.
  double default_value() const { return default_value_; }

  /// Number of explicitly stored pairs.
  size_t size() const { return values_.size(); }

  /// Read-only access to the stored pairs (for tests and reports).
  const std::unordered_map<uint64_t, double>& values() const { return values_; }

 private:
  double default_value_;
  std::unordered_map<uint64_t, double> values_;
};

/// Accumulates (numerator, denominator) pairs keyed by (query, doc) during
/// an E-step; Ratio() yields the M-step estimate with Laplace smoothing.
class QueryDocAccumulator {
 public:
  /// Adds `num` to the numerator and `den` to the denominator of the pair.
  void Add(int32_t query_id, int32_t doc_id, double num, double den) {
    auto& cell = cells_[QueryDocKey(query_id, doc_id)];
    cell.num += num;
    cell.den += den;
  }

  /// Writes `num / den` (with add-`alpha` smoothing toward `prior`) for
  /// every accumulated pair into `out`.
  void Flush(QueryDocTable& out, double alpha = 1.0, double prior = 0.5) const {
    for (const auto& [key, cell] : cells_) {
      const double value = (cell.num + alpha * prior) / (cell.den + alpha);
      out.Set(static_cast<int32_t>(key >> 32), static_cast<int32_t>(key & 0xffffffffULL), value);
    }
  }

  void Clear() { cells_.clear(); }

 private:
  struct Cell {
    double num = 0.0;
    double den = 0.0;
  };
  std::unordered_map<uint64_t, Cell> cells_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_PARAM_TABLE_H_
