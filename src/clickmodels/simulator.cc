// Copyright 2026 The Microbrowse Authors

#include "clickmodels/simulator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace microbrowse {

namespace {

/// Kumaraswamy(a, b) sample by inverse CDF: Beta-like on (0, 1).
double SampleKumaraswamy(double a, double b, Rng* rng) {
  const double u = rng->NextDouble();
  return std::pow(1.0 - std::pow(1.0 - u, 1.0 / b), 1.0 / a);
}

}  // namespace

SerpGroundTruth MakeSerpGroundTruth(const SerpSimulatorOptions& options, Rng* rng) {
  SerpGroundTruth truth;
  truth.query_docs.resize(options.num_queries);
  int32_t next_doc = 0;
  for (int q = 0; q < options.num_queries; ++q) {
    truth.query_docs[q].resize(options.docs_per_query);
    for (int d = 0; d < options.docs_per_query; ++d) {
      const int32_t doc_id = next_doc++;
      truth.query_docs[q][d] = doc_id;
      truth.attraction.Set(q, doc_id,
                           SampleKumaraswamy(options.attraction_shape_a,
                                             options.attraction_shape_b, rng));
    }
  }
  return truth;
}

Result<ClickLog> SimulateSerpLog(const SerpSimulatorOptions& options,
                                 const SerpGroundTruth& truth, const ClickModel& model,
                                 Rng* rng) {
  if (options.positions > options.docs_per_query) {
    return Status::InvalidArgument("SimulateSerpLog: positions exceeds docs_per_query");
  }
  if (options.num_queries <= 0 || options.num_sessions <= 0) {
    return Status::InvalidArgument("SimulateSerpLog: non-positive counts");
  }

  ClickLog log;
  log.sessions.reserve(options.num_sessions);
  std::vector<int32_t> slate(options.docs_per_query);
  for (int s = 0; s < options.num_sessions; ++s) {
    Session session;
    session.query_id = static_cast<int32_t>(
        rng->Zipf(static_cast<size_t>(options.num_queries), options.query_zipf_exponent));
    // Either serve ranked by true attractiveness (position-biased, like a
    // production engine) or shuffle the pool so every doc visits every
    // position.
    slate = truth.query_docs[session.query_id];
    rng->Shuffle(slate);
    if (options.ranked_serving_prob > 0.0 && rng->Bernoulli(options.ranked_serving_prob)) {
      std::sort(slate.begin(), slate.end(), [&](int32_t a, int32_t b) {
        return truth.attraction.Get(session.query_id, a) >
               truth.attraction.Get(session.query_id, b);
      });
    }
    session.results.resize(options.positions);
    for (int i = 0; i < options.positions; ++i) {
      session.results[i].doc_id = slate[i];
    }
    model.SimulateClicks(&session, rng);
    log.sessions.push_back(std::move(session));
  }
  log.RecomputeBounds();
  return log;
}

}  // namespace microbrowse
