// Copyright 2026 The Microbrowse Authors
//
// Noise-aware click model (after Chen et al., WSDM'12 — reference [5] of
// the paper). Real click logs contain clicks that carry no relevance
// signal (accidental taps, bait clicks). This model mixes the position-
// based examination process with a per-position noise channel:
//
//   P(C_i = 1) = (1 - eta) * gamma_i * alpha_{q,d}  +  eta * beta_i
//
// where eta is the global noise fraction and beta_i the noise-channel
// click rate at position i. Fit by EM over the latent noise indicator;
// attractiveness estimates are therefore *denoised* relative to plain PBM.

#ifndef MICROBROWSE_CLICKMODELS_NOISE_AWARE_H_
#define MICROBROWSE_CLICKMODELS_NOISE_AWARE_H_

#include <vector>

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"

namespace microbrowse {

/// Noise-aware model hyper-parameters.
struct NoiseAwareOptions {
  int em_iterations = 40;
  double smoothing = 1.0;
  double initial_eta = 0.1;
  /// When false, eta stays at its initial value.
  bool estimate_eta = true;
};

/// Noise-aware position-based click model.
class NoiseAwareClickModel : public ClickModel {
 public:
  explicit NoiseAwareClickModel(NoiseAwareOptions options = {})
      : options_(options), attraction_(0.5), eta_(options.initial_eta) {}

  /// Generative constructor with known parameters.
  NoiseAwareClickModel(std::vector<double> position_probs, QueryDocTable attraction,
                       double eta, std::vector<double> noise_rates,
                       NoiseAwareOptions options = {})
      : options_(options),
        position_probs_(std::move(position_probs)),
        attraction_(std::move(attraction)),
        eta_(eta),
        noise_rates_(std::move(noise_rates)) {}

  std::string_view name() const override { return "NCM"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  const std::vector<double>& position_probs() const { return position_probs_; }
  const QueryDocTable& attraction() const { return attraction_; }
  double eta() const { return eta_; }
  const std::vector<double>& noise_rates() const { return noise_rates_; }

 private:
  double PositionProb(int position) const {
    return position < static_cast<int>(position_probs_.size()) ? position_probs_[position]
                                                                : 0.5;
  }
  double NoiseRate(int position) const {
    return position < static_cast<int>(noise_rates_.size()) ? noise_rates_[position] : 0.05;
  }

  NoiseAwareOptions options_;
  std::vector<double> position_probs_;
  QueryDocTable attraction_;
  double eta_;
  std::vector<double> noise_rates_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_NOISE_AWARE_H_
