// Copyright 2026 The Microbrowse Authors

#include "clickmodels/ccm.h"

#include <algorithm>
#include <array>

namespace microbrowse {

Status ClickChainModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("CCM: empty click log");
  relevance_ = QueryDocTable(0.5);
  alpha1_ = options_.initial_alpha1;
  alpha2_ = options_.initial_alpha2;
  alpha3_ = options_.initial_alpha3;

  for (int iter = 0; iter < options_.em_iterations; ++iter) {
    QueryDocAccumulator relevance_acc;
    double a1_num = 0.0, a1_den = 0.0;
    double a2_num = 0.0, a2_den = 0.0;
    double a3_num = 0.0, a3_den = 0.0;

    for (const auto& session : log.sessions) {
      const int n = static_cast<int>(session.results.size());
      if (n == 0) continue;
      std::vector<double> r(n);
      std::vector<char> c(n);
      for (int i = 0; i < n; ++i) {
        r[i] = relevance_.Get(session.query_id, session.results[i].doc_id);
        c[i] = session.results[i].clicked ? 1 : 0;
      }

      auto obs = [&](int i, int e) -> double {
        if (e == 0) return c[i] ? 0.0 : 1.0;
        return c[i] ? r[i] : 1.0 - r[i];
      };
      auto trans1 = [&](int i) -> double {
        return c[i] ? ContinueAfterClick(r[i]) : alpha1_;
      };

      // Forward-backward over the latent examination chain (same structure
      // as DBN; see dbn.cc for the derivation).
      std::vector<std::array<double, 2>> f(n), b(n);
      f[0] = {0.0, 1.0};
      for (int i = 0; i + 1 < n; ++i) {
        const double from1 = f[i][1] * obs(i, 1);
        const double from0 = f[i][0] * obs(i, 0);
        const double t1 = trans1(i);
        f[i + 1][1] = from1 * t1;
        f[i + 1][0] = from1 * (1.0 - t1) + from0;
      }
      b[n - 1] = {1.0, 1.0};
      for (int i = n - 2; i >= 0; --i) {
        const double t1 = trans1(i);
        b[i][1] = t1 * obs(i + 1, 1) * b[i + 1][1] + (1.0 - t1) * obs(i + 1, 0) * b[i + 1][0];
        b[i][0] = obs(i + 1, 0) * b[i + 1][0];
      }
      std::vector<double> exam_post(n);
      for (int i = 0; i < n; ++i) {
        const double w1 = f[i][1] * obs(i, 1) * b[i][1];
        const double w0 = f[i][0] * obs(i, 0) * b[i][0];
        exam_post[i] = (w1 + w0) > 0.0 ? w1 / (w1 + w0) : 0.0;
      }

      for (int i = 0; i < n; ++i) {
        // Relevance update mirrors attractiveness in PBM/DBN (the effect of
        // r on post-click continuation is handled in the alpha updates).
        if (c[i]) {
          relevance_acc.Add(session.query_id, session.results[i].doc_id, 1.0, 1.0);
        } else {
          relevance_acc.Add(session.query_id, session.results[i].doc_id,
                            (1.0 - exam_post[i]) * r[i], 1.0);
        }
        if (i + 1 >= n) continue;
        const double continued = exam_post[i + 1];
        if (c[i]) {
          // Split the continuation credit between the alpha2 and alpha3
          // branches in proportion to their prior contribution.
          const double w2 = alpha2_ * (1.0 - r[i]);
          const double w3 = alpha3_ * r[i];
          const double total = w2 + w3;
          const double share2 = total > 0.0 ? w2 / total : 0.5;
          a2_num += continued * share2;
          a2_den += 1.0 - r[i];
          a3_num += continued * (1.0 - share2);
          a3_den += r[i];
        } else {
          a1_num += continued;
          a1_den += exam_post[i];
        }
      }
    }

    relevance_acc.Flush(relevance_, options_.smoothing, 0.5);
    const double sm = options_.smoothing;
    alpha1_ = std::clamp((a1_num + sm * 0.5) / (a1_den + sm), 1e-6, 1.0 - 1e-6);
    alpha2_ = std::clamp((a2_num + sm * 0.5) / (a2_den + sm), 1e-6, 1.0 - 1e-6);
    alpha3_ = std::clamp((a3_num + sm * 0.5) / (a3_den + sm), 1e-6, 1.0 - 1e-6);
  }
  return Status::OK();
}

std::vector<double> ClickChainModel::ConditionalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  double exam_belief = 1.0;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double r = relevance_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = exam_belief * r;
    if (session.results[i].clicked) {
      exam_belief = ContinueAfterClick(r);
    } else {
      const double denom = 1.0 - exam_belief * r;
      exam_belief = denom > 1e-12 ? alpha1_ * exam_belief * (1.0 - r) / denom : 0.0;
    }
  }
  return probs;
}

std::vector<double> ClickChainModel::MarginalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  double exam_prob = 1.0;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double r = relevance_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = exam_prob * r;
    exam_prob *= r * ContinueAfterClick(r) + (1.0 - r) * alpha1_;
  }
  return probs;
}

void ClickChainModel::SimulateClicks(Session* session, Rng* rng) const {
  bool examining = true;
  for (auto& result : session->results) {
    if (!examining) {
      result.clicked = false;
      continue;
    }
    const double r = relevance_.Get(session->query_id, result.doc_id);
    result.clicked = rng->Bernoulli(r);
    examining = rng->Bernoulli(result.clicked ? ContinueAfterClick(r) : alpha1_);
  }
}

}  // namespace microbrowse
