// Copyright 2026 The Microbrowse Authors
//
// Click chain model (Guo et al., WWW'09), a generalisation of DCM in which
// the user may abandon the list at any point and continuation after a click
// depends on the clicked result's relevance:
//   P(E_i | E_{i-1}=1, C_{i-1}=0) = alpha1
//   P(E_i | E_{i-1}=1, C_{i-1}=1) = alpha2 (1 - r_{prev}) + alpha3 r_{prev}.
// The original paper performs Bayesian inference; this implementation uses
// an EM approximation with an exact forward-backward E-step over the latent
// examination chain and proportional credit assignment between alpha2 and
// alpha3 (documented in DESIGN.md).

#ifndef MICROBROWSE_CLICKMODELS_CCM_H_
#define MICROBROWSE_CLICKMODELS_CCM_H_

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"

namespace microbrowse {

/// CCM hyper-parameters.
struct CcmOptions {
  int em_iterations = 30;
  double smoothing = 1.0;
  double initial_alpha1 = 0.7;
  double initial_alpha2 = 0.4;
  double initial_alpha3 = 0.8;
};

/// Click chain model with approximate EM estimation.
class ClickChainModel : public ClickModel {
 public:
  explicit ClickChainModel(CcmOptions options = {})
      : options_(options),
        relevance_(0.5),
        alpha1_(options.initial_alpha1),
        alpha2_(options.initial_alpha2),
        alpha3_(options.initial_alpha3) {}

  /// Generative constructor with known parameters.
  ClickChainModel(QueryDocTable relevance, double alpha1, double alpha2, double alpha3,
                  CcmOptions options = {})
      : options_(options),
        relevance_(std::move(relevance)),
        alpha1_(alpha1),
        alpha2_(alpha2),
        alpha3_(alpha3) {}

  std::string_view name() const override { return "CCM"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  const QueryDocTable& relevance() const { return relevance_; }
  double alpha1() const { return alpha1_; }
  double alpha2() const { return alpha2_; }
  double alpha3() const { return alpha3_; }

 private:
  /// Continuation probability after a click on a result with relevance `r`.
  double ContinueAfterClick(double r) const { return alpha2_ * (1.0 - r) + alpha3_ * r; }

  CcmOptions options_;
  QueryDocTable relevance_;
  double alpha1_;
  double alpha2_;
  double alpha3_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_CCM_H_
