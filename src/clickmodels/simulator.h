// Copyright 2026 The Microbrowse Authors
//
// Synthetic SERP click-log generation. A ground-truth generative click
// model (any ClickModel) is driven over randomly composed result pages to
// produce logs for estimator parameter-recovery tests and the click-model
// comparison bench.

#ifndef MICROBROWSE_CLICKMODELS_SIMULATOR_H_
#define MICROBROWSE_CLICKMODELS_SIMULATOR_H_

#include <memory>
#include <vector>

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"
#include "clickmodels/session.h"
#include "common/random.h"
#include "common/result.h"

namespace microbrowse {

/// Configuration for the SERP log simulator.
struct SerpSimulatorOptions {
  int num_queries = 100;
  int docs_per_query = 20;       ///< Size of each query's candidate pool.
  int positions = 10;            ///< Results shown per session.
  int num_sessions = 100000;
  double query_zipf_exponent = 0.9;  ///< Skew of the query frequency distribution.
  /// Probability that a session's slate is served ranked by true
  /// attractiveness (as a production engine would) instead of uniformly
  /// shuffled. Ranked serving induces position bias: naive CTR conflates
  /// relevance with position, which is what the click models exist to
  /// untangle (Srikant et al., KDD'10 — reference [16] of the paper).
  double ranked_serving_prob = 0.0;
  /// Attractiveness prior: Kumaraswamy(a, b) — Beta-like, cheap to sample.
  double attraction_shape_a = 1.0;
  double attraction_shape_b = 3.0;
  uint64_t seed = 42;
};

/// The ground-truth parameter tables drawn by the simulator.
struct SerpGroundTruth {
  QueryDocTable attraction{0.5};
  /// Doc pools per query: docs_per_query global doc ids for each query.
  std::vector<std::vector<int32_t>> query_docs;
};

/// Draws ground-truth attractiveness tables and per-query doc pools.
SerpGroundTruth MakeSerpGroundTruth(const SerpSimulatorOptions& options, Rng* rng);

/// Simulates a click log by serving `num_sessions` pages (random slates of
/// `positions` docs from the query's pool, shuffled each time so position
/// effects are identifiable) and sampling clicks from `model`.
Result<ClickLog> SimulateSerpLog(const SerpSimulatorOptions& options,
                                 const SerpGroundTruth& truth, const ClickModel& model,
                                 Rng* rng);

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_SIMULATOR_H_
