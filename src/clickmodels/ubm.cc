// Copyright 2026 The Microbrowse Authors

#include "clickmodels/ubm.h"

namespace microbrowse {

double UserBrowsingModel::Gamma(int position, int prev) const {
  const int d = position - prev;  // In [1, position + 1].
  if (position < static_cast<int>(gammas_.size()) &&
      d - 1 < static_cast<int>(gammas_[position].size())) {
    return gammas_[position][d - 1];
  }
  return 0.5;
}

Status UserBrowsingModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("UBM: empty click log");
  const int positions = log.max_positions;
  gammas_.assign(positions, {});
  for (int i = 0; i < positions; ++i) gammas_[i].assign(i + 1, 0.5);
  attraction_ = QueryDocTable(0.5);

  for (int iter = 0; iter < options_.em_iterations; ++iter) {
    QueryDocAccumulator attraction_acc;
    std::vector<std::vector<double>> gamma_num(positions), gamma_den(positions);
    for (int i = 0; i < positions; ++i) {
      gamma_num[i].assign(i + 1, 0.0);
      gamma_den[i].assign(i + 1, 0.0);
    }

    for (const auto& session : log.sessions) {
      int prev = -1;
      for (size_t i = 0; i < session.results.size(); ++i) {
        const auto& result = session.results[i];
        const int pos = static_cast<int>(i);
        const int d = pos - prev;
        const double gamma = Gamma(pos, prev);
        const double alpha = attraction_.Get(session.query_id, result.doc_id);
        if (result.clicked) {
          attraction_acc.Add(session.query_id, result.doc_id, 1.0, 1.0);
          gamma_num[pos][d - 1] += 1.0;
          gamma_den[pos][d - 1] += 1.0;
          prev = pos;
        } else {
          const double p_no_click = 1.0 - gamma * alpha;
          const double p_attracted_unexamined = (1.0 - gamma) * alpha / p_no_click;
          const double p_examined = gamma * (1.0 - alpha) / p_no_click;
          attraction_acc.Add(session.query_id, result.doc_id, p_attracted_unexamined, 1.0);
          gamma_num[pos][d - 1] += p_examined;
          gamma_den[pos][d - 1] += 1.0;
        }
      }
    }

    attraction_acc.Flush(attraction_, options_.smoothing, 0.5);
    for (int i = 0; i < positions; ++i) {
      for (int d = 0; d <= i; ++d) {
        gammas_[i][d] = (gamma_num[i][d] + options_.smoothing * 0.5) /
                        (gamma_den[i][d] + options_.smoothing);
      }
    }
  }
  return Status::OK();
}

std::vector<double> UserBrowsingModel::ConditionalClickProbs(const Session& session) const {
  // Given the observed click history, the previous-click position is known,
  // so the click probability at each rank is gamma * alpha exactly.
  std::vector<double> probs(session.results.size(), 0.0);
  int prev = -1;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const int pos = static_cast<int>(i);
    probs[i] = Gamma(pos, prev) * attraction_.Get(session.query_id, session.results[i].doc_id);
    if (session.results[i].clicked) prev = pos;
  }
  return probs;
}

std::vector<double> UserBrowsingModel::MarginalClickProbs(const Session& session) const {
  // Dynamic program over the distribution of the previous-click position.
  const size_t n = session.results.size();
  std::vector<double> probs(n, 0.0);
  // state[r + 1] = P(last click so far was at position r), r = -1..n-1.
  std::vector<double> state(n + 1, 0.0);
  state[0] = 1.0;
  for (size_t i = 0; i < n; ++i) {
    const double alpha = attraction_.Get(session.query_id, session.results[i].doc_id);
    double click_prob = 0.0;
    for (size_t s = 0; s <= i; ++s) {
      const int prev = static_cast<int>(s) - 1;
      click_prob += state[s] * Gamma(static_cast<int>(i), prev) * alpha;
    }
    probs[i] = click_prob;
    // Transition: on click the state collapses to i; otherwise unchanged.
    for (size_t s = 0; s <= i; ++s) {
      const int prev = static_cast<int>(s) - 1;
      const double p_click_here = Gamma(static_cast<int>(i), prev) * alpha;
      state[s] *= 1.0 - p_click_here;
    }
    state[i + 1] = click_prob;
  }
  return probs;
}

void UserBrowsingModel::SimulateClicks(Session* session, Rng* rng) const {
  int prev = -1;
  for (size_t i = 0; i < session->results.size(); ++i) {
    const int pos = static_cast<int>(i);
    const double p =
        Gamma(pos, prev) * attraction_.Get(session->query_id, session->results[i].doc_id);
    session->results[i].clicked = rng->Bernoulli(p);
    if (session->results[i].clicked) prev = pos;
  }
}

}  // namespace microbrowse
