// Copyright 2026 The Microbrowse Authors
//
// Abstract interface for the macro user-browsing models of Section II.
// Each model can (a) fit its parameters from a click log, (b) score the
// probability of the observed clicks in a session, (c) predict click
// probabilities, and (d) act as a generative simulator for synthetic logs.

#ifndef MICROBROWSE_CLICKMODELS_CLICK_MODEL_H_
#define MICROBROWSE_CLICKMODELS_CLICK_MODEL_H_

#include <string_view>
#include <vector>

#include "clickmodels/session.h"
#include "common/random.h"
#include "common/status.h"

namespace microbrowse {

/// Common interface for all click models.
class ClickModel {
 public:
  virtual ~ClickModel() = default;

  /// Short stable model name ("PBM", "UBM", ...).
  virtual std::string_view name() const = 0;

  /// Estimates model parameters from `log`.
  virtual Status Fit(const ClickLog& log) = 0;

  /// P(C_i = 1 | C_1..C_{i-1}) for each position, conditioning on the
  /// clicks observed in `session`. Used for log-likelihood.
  virtual std::vector<double> ConditionalClickProbs(const Session& session) const = 0;

  /// Unconditional marginal click probability P(C_i = 1) at each position
  /// for the result list in `session` (ignoring its observed clicks). Used
  /// for perplexity and CTR prediction.
  virtual std::vector<double> MarginalClickProbs(const Session& session) const = 0;

  /// Samples clicks into `session->results[*].clicked` from the model's
  /// generative process.
  virtual void SimulateClicks(Session* session, Rng* rng) const = 0;

  /// Log-likelihood of the observed click pattern of `session` under the
  /// model, computed from ConditionalClickProbs.
  double SessionLogLikelihood(const Session& session) const;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_CLICK_MODEL_H_
