// Copyright 2026 The Microbrowse Authors
//
// User browsing model (Dupret & Piwowarski, SIGIR'08). Examination depends
// on the position and on the distance to the previous click:
//   P(E_i = 1 | last click at r) = gamma_{i, i-r},
// with r = -1 when no earlier click exists. The Bayesian browsing model
// (Liu et al., KDD'09) shares this browsing structure, so in this library
// UBM doubles for BBM (the paper makes the same identification).

#ifndef MICROBROWSE_CLICKMODELS_UBM_H_
#define MICROBROWSE_CLICKMODELS_UBM_H_

#include <vector>

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"

namespace microbrowse {

/// UBM hyper-parameters.
struct UbmOptions {
  int em_iterations = 30;
  double smoothing = 1.0;
};

/// User browsing model with EM estimation.
class UserBrowsingModel : public ClickModel {
 public:
  explicit UserBrowsingModel(UbmOptions options = {}) : options_(options), attraction_(0.5) {}

  /// Generative constructor. `gammas[i][d-1]` is the examination
  /// probability of position i when the previous click was d positions ago
  /// (d = i + 1 when there was no previous click).
  UserBrowsingModel(std::vector<std::vector<double>> gammas, QueryDocTable attraction,
                    UbmOptions options = {})
      : options_(options), gammas_(std::move(gammas)), attraction_(std::move(attraction)) {}

  std::string_view name() const override { return "UBM"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  /// gamma_{position, distance}; see the generative constructor for layout.
  const std::vector<std::vector<double>>& gammas() const { return gammas_; }
  const QueryDocTable& attraction() const { return attraction_; }

 private:
  /// Examination probability for `position` given previous click position
  /// `prev` (-1 for none).
  double Gamma(int position, int prev) const;

  UbmOptions options_;
  std::vector<std::vector<double>> gammas_;
  QueryDocTable attraction_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_UBM_H_
