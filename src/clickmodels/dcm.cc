// Copyright 2026 The Microbrowse Authors

#include "clickmodels/dcm.h"

#include <algorithm>

namespace microbrowse {

Status DependentClickModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("DCM: empty click log");
  // Approximate MLE from Guo et al.: the user is assumed to examine every
  // position up to the last click (or the whole list when there is no
  // click, since DCM continues with probability one after a skip), and to
  // stop right after the last click.
  QueryDocAccumulator attraction_acc;
  std::vector<double> lambda_last(log.max_positions, 0.0);   // last click at i
  std::vector<double> lambda_total(log.max_positions, 0.0);  // any click at i

  for (const auto& session : log.sessions) {
    const int last_click = session.last_click_position();
    const int examined_end =
        last_click >= 0 ? last_click + 1 : static_cast<int>(session.results.size());
    for (int i = 0; i < examined_end; ++i) {
      const auto& result = session.results[i];
      attraction_acc.Add(session.query_id, result.doc_id, result.clicked ? 1.0 : 0.0, 1.0);
      if (result.clicked) {
        lambda_total[i] += 1.0;
        if (i == last_click) lambda_last[i] += 1.0;
      }
    }
  }

  attraction_ = QueryDocTable(0.5);
  attraction_acc.Flush(attraction_, /*alpha=*/1.0, /*prior=*/0.5);
  lambdas_.assign(log.max_positions, 0.5);
  for (int i = 0; i < log.max_positions; ++i) {
    // lambda_i ~= P(continue after click at i) = 1 - P(click at i is last).
    lambdas_[i] = 1.0 - (lambda_last[i] + 0.5) / (lambda_total[i] + 1.0);
  }
  return Status::OK();
}

std::vector<double> DependentClickModel::ConditionalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  double exam_belief = 1.0;  // P(E_i = 1 | observed history).
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double alpha = attraction_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = exam_belief * alpha;
    if (session.results[i].clicked) {
      // Click reveals E_i = 1; user continues with probability lambda_i.
      exam_belief = Lambda(static_cast<int>(i));
    } else {
      // Skip: posterior that the user examined but was not attracted, then
      // continued with probability one.
      const double denom = 1.0 - exam_belief * alpha;
      exam_belief = denom > 1e-12 ? exam_belief * (1.0 - alpha) / denom : 0.0;
    }
  }
  return probs;
}

std::vector<double> DependentClickModel::MarginalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  double exam_prob = 1.0;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double alpha = attraction_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = exam_prob * alpha;
    exam_prob *= alpha * Lambda(static_cast<int>(i)) + (1.0 - alpha);
  }
  return probs;
}

void DependentClickModel::SimulateClicks(Session* session, Rng* rng) const {
  bool examining = true;
  for (size_t i = 0; i < session->results.size(); ++i) {
    auto& result = session->results[i];
    if (!examining) {
      result.clicked = false;
      continue;
    }
    result.clicked = rng->Bernoulli(attraction_.Get(session->query_id, result.doc_id));
    if (result.clicked) examining = rng->Bernoulli(Lambda(static_cast<int>(i)));
  }
}

}  // namespace microbrowse
