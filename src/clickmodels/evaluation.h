// Copyright 2026 The Microbrowse Authors
//
// Click-model evaluation: held-out log-likelihood, per-rank perplexity and
// CTR prediction error — the standard yardsticks in the click-model
// literature (and in PyClick-style toolkits).

#ifndef MICROBROWSE_CLICKMODELS_EVALUATION_H_
#define MICROBROWSE_CLICKMODELS_EVALUATION_H_

#include <vector>

#include "clickmodels/click_model.h"
#include "clickmodels/session.h"

namespace microbrowse {

/// Aggregate evaluation of one model on one log.
struct ClickModelEvaluation {
  double log_likelihood = 0.0;       ///< Total conditional log-likelihood.
  double avg_log_likelihood = 0.0;   ///< Per click-observation average.
  double perplexity = 0.0;           ///< Mean of the per-rank perplexities.
  std::vector<double> perplexity_at_rank;
  double ctr_mse = 0.0;              ///< Brier score of marginal click probs.
};

/// Evaluates `model` on `log`. The model must already be fitted.
ClickModelEvaluation EvaluateClickModel(const ClickModel& model, const ClickLog& log);

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_EVALUATION_H_
