// Copyright 2026 The Microbrowse Authors

#include "clickmodels/dbn.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace microbrowse {

Status DbnModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("DBN: empty click log");
  attraction_ = QueryDocTable(0.5);
  satisfaction_ = QueryDocTable(0.5);
  gamma_ = options_.initial_gamma;

  for (int iter = 0; iter < options_.em_iterations; ++iter) {
    QueryDocAccumulator attraction_acc;
    QueryDocAccumulator satisfaction_acc;
    double gamma_num = 0.0;
    double gamma_den = 0.0;

    for (const auto& session : log.sessions) {
      const int n = static_cast<int>(session.results.size());
      if (n == 0) continue;
      std::vector<double> a(n), s(n);
      std::vector<char> c(n);
      for (int i = 0; i < n; ++i) {
        a[i] = attraction_.Get(session.query_id, session.results[i].doc_id);
        s[i] = satisfaction_.Get(session.query_id, session.results[i].doc_id);
        c[i] = session.results[i].clicked ? 1 : 0;
      }

      // Observation likelihood o_i(e) = P(c_i | E_i = e).
      auto obs = [&](int i, int e) -> double {
        if (e == 0) return c[i] ? 0.0 : 1.0;
        return c[i] ? a[i] : 1.0 - a[i];
      };
      // Transition P(E_{i+1} = 1 | E_i = 1, c_i).
      auto trans1 = [&](int i) -> double {
        return c[i] ? gamma_ * (1.0 - s[i]) : gamma_;
      };

      // Forward: f[i][e] = P(E_i = e, c_1..c_{i-1}).
      std::vector<std::array<double, 2>> f(n);
      f[0] = {0.0, 1.0};
      for (int i = 0; i + 1 < n; ++i) {
        const double from1 = f[i][1] * obs(i, 1);
        const double from0 = f[i][0] * obs(i, 0);
        const double t1 = trans1(i);
        f[i + 1][1] = from1 * t1;
        f[i + 1][0] = from1 * (1.0 - t1) + from0;
      }

      // Backward: b[i][e] = P(c_{i+1..n} | E_i = e, c_i); b includes nothing
      // at the last position.
      std::vector<std::array<double, 2>> b(n);
      b[n - 1] = {1.0, 1.0};
      for (int i = n - 2; i >= 0; --i) {
        const double t1 = trans1(i);
        b[i][1] = t1 * obs(i + 1, 1) * b[i + 1][1] + (1.0 - t1) * obs(i + 1, 0) * b[i + 1][0];
        b[i][0] = obs(i + 1, 0) * b[i + 1][0];  // Unexamined stays unexamined.
      }

      // Posterior P(E_i = 1 | obs).
      std::vector<double> exam_post(n);
      for (int i = 0; i < n; ++i) {
        const double w1 = f[i][1] * obs(i, 1) * b[i][1];
        const double w0 = f[i][0] * obs(i, 0) * b[i][0];
        exam_post[i] = (w1 + w0) > 0.0 ? w1 / (w1 + w0) : 0.0;
      }

      for (int i = 0; i < n; ++i) {
        // Attractiveness: P(A_i = 1 | obs) = 1 for clicks; for skips the
        // user was either unexamined (A ~ prior) or examined-and-unattracted.
        if (c[i]) {
          attraction_acc.Add(session.query_id, session.results[i].doc_id, 1.0, 1.0);
        } else {
          attraction_acc.Add(session.query_id, session.results[i].doc_id,
                             (1.0 - exam_post[i]) * a[i], 1.0);
        }

        if (c[i]) {
          // Satisfaction posterior: satisfied stops the chain, unsatisfied
          // continues with perseverance gamma.
          double sat_post;
          if (i == n - 1) {
            // No future evidence: posterior equals... satisfied (stop) and
            // unsatisfied both explain the empty tail, so the prior stands
            // against the mixture — with no tail, likelihoods are equal.
            sat_post = s[i];
          } else {
            const double z1 = obs(i + 1, 1) * b[i + 1][1];  // tail | examining
            const double z0 = obs(i + 1, 0) * b[i + 1][0];  // tail | stopped
            const double lik_sat = z0;
            const double lik_unsat = gamma_ * z1 + (1.0 - gamma_) * z0;
            const double denom = s[i] * lik_sat + (1.0 - s[i]) * lik_unsat;
            sat_post = denom > 0.0 ? s[i] * lik_sat / denom : s[i];
          }
          satisfaction_acc.Add(session.query_id, session.results[i].doc_id, sat_post, 1.0);

          if (i + 1 < n) {
            // Gamma: eligible iff unsatisfied.
            gamma_den += 1.0 - sat_post;
            gamma_num += exam_post[i + 1];
          }
        } else if (i + 1 < n) {
          // Gamma: eligible iff examined.
          gamma_den += exam_post[i];
          gamma_num += exam_post[i + 1];
        }
      }
    }

    attraction_acc.Flush(attraction_, options_.smoothing, 0.5);
    satisfaction_acc.Flush(satisfaction_, options_.smoothing, 0.5);
    if (options_.estimate_gamma && gamma_den > 0.0) {
      gamma_ = std::clamp((gamma_num + options_.smoothing * 0.5) /
                              (gamma_den + options_.smoothing),
                          1e-6, 1.0 - 1e-6);
    }
  }
  return Status::OK();
}

std::vector<double> DbnModel::ConditionalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  double exam_belief = 1.0;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double a = attraction_.Get(session.query_id, session.results[i].doc_id);
    const double s = satisfaction_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = exam_belief * a;
    if (session.results[i].clicked) {
      exam_belief = gamma_ * (1.0 - s);
    } else {
      const double denom = 1.0 - exam_belief * a;
      exam_belief = denom > 1e-12 ? gamma_ * exam_belief * (1.0 - a) / denom : 0.0;
    }
  }
  return probs;
}

std::vector<double> DbnModel::MarginalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  double exam_prob = 1.0;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double a = attraction_.Get(session.query_id, session.results[i].doc_id);
    const double s = satisfaction_.Get(session.query_id, session.results[i].doc_id);
    probs[i] = exam_prob * a;
    exam_prob *= gamma_ * (1.0 - a * s);
  }
  return probs;
}

void DbnModel::SimulateClicks(Session* session, Rng* rng) const {
  bool examining = true;
  for (auto& result : session->results) {
    if (!examining) {
      result.clicked = false;
      continue;
    }
    const double a = attraction_.Get(session->query_id, result.doc_id);
    const double s = satisfaction_.Get(session->query_id, result.doc_id);
    result.clicked = rng->Bernoulli(a);
    if (result.clicked && rng->Bernoulli(s)) {
      examining = false;  // Satisfied: stop.
    } else {
      examining = rng->Bernoulli(gamma_);
    }
  }
}

Status SimplifiedDbnModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("SDBN: empty click log");
  // With gamma = 1 the user examines everything up to and including the
  // last click, so examination is observed and the MLE is closed-form.
  QueryDocAccumulator attraction_acc;
  QueryDocAccumulator satisfaction_acc;
  for (const auto& session : log.sessions) {
    const int last_click = session.last_click_position();
    if (last_click < 0) continue;  // SDBN learns nothing from clickless sessions.
    for (int i = 0; i <= last_click; ++i) {
      const auto& result = session.results[i];
      attraction_acc.Add(session.query_id, result.doc_id, result.clicked ? 1.0 : 0.0, 1.0);
      if (result.clicked) {
        satisfaction_acc.Add(session.query_id, result.doc_id, i == last_click ? 1.0 : 0.0, 1.0);
      }
    }
  }
  attraction_ = QueryDocTable(0.5);
  satisfaction_ = QueryDocTable(0.5);
  attraction_acc.Flush(attraction_, 1.0, 0.5);
  satisfaction_acc.Flush(satisfaction_, 1.0, 0.5);
  return Status::OK();
}

std::vector<double> SimplifiedDbnModel::ConditionalClickProbs(const Session& session) const {
  return DbnModel(attraction_, satisfaction_, /*gamma=*/1.0).ConditionalClickProbs(session);
}

std::vector<double> SimplifiedDbnModel::MarginalClickProbs(const Session& session) const {
  return DbnModel(attraction_, satisfaction_, /*gamma=*/1.0).MarginalClickProbs(session);
}

void SimplifiedDbnModel::SimulateClicks(Session* session, Rng* rng) const {
  DbnModel(attraction_, satisfaction_, /*gamma=*/1.0).SimulateClicks(session, rng);
}

}  // namespace microbrowse
