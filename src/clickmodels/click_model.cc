// Copyright 2026 The Microbrowse Authors

#include "clickmodels/click_model.h"

#include <algorithm>
#include <cmath>

namespace microbrowse {

double ClickModel::SessionLogLikelihood(const Session& session) const {
  const std::vector<double> probs = ConditionalClickProbs(session);
  double loglik = 0.0;
  for (size_t i = 0; i < session.results.size(); ++i) {
    const double p = std::clamp(probs[i], 1e-12, 1.0 - 1e-12);
    loglik += session.results[i].clicked ? std::log(p) : std::log1p(-p);
  }
  return loglik;
}

}  // namespace microbrowse
