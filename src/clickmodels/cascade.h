// Copyright 2026 The Microbrowse Authors
//
// Cascade model (Craswell et al., WSDM'08). The user scans results
// top-down without skips and stops at the first click:
//   P(E_1) = 1;  P(E_i | E_{i-1}=1, C_{i-1}) = 1 - C_{i-1}.
// At most one click per session; closed-form MLE.

#ifndef MICROBROWSE_CLICKMODELS_CASCADE_H_
#define MICROBROWSE_CLICKMODELS_CASCADE_H_

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"

namespace microbrowse {

/// Cascade click model with closed-form maximum-likelihood estimation.
class CascadeModel : public ClickModel {
 public:
  CascadeModel() : attraction_(0.5) {}

  /// Generative constructor with known attractiveness.
  explicit CascadeModel(QueryDocTable attraction) : attraction_(std::move(attraction)) {}

  std::string_view name() const override { return "Cascade"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  const QueryDocTable& attraction() const { return attraction_; }

 private:
  QueryDocTable attraction_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_CASCADE_H_
