// Copyright 2026 The Microbrowse Authors
//
// Click-log containers. A Session is one query impression: the ranked list
// of results the engine served and which of them the user clicked. These
// are the sufficient statistics consumed by every macro browsing model in
// Section II of the paper.

#ifndef MICROBROWSE_CLICKMODELS_SESSION_H_
#define MICROBROWSE_CLICKMODELS_SESSION_H_

#include <cstdint>
#include <vector>

namespace microbrowse {

/// One result slot in a served page.
struct SessionResult {
  int32_t doc_id = 0;   ///< Global document (or ad creative) id.
  bool clicked = false;  ///< Whether the user clicked this result.
};

/// One query impression: results in display order, positions 0-based.
struct Session {
  int32_t query_id = 0;
  std::vector<SessionResult> results;

  /// Position of the last clicked result, or -1 when the session has no
  /// click.
  int last_click_position() const {
    for (int i = static_cast<int>(results.size()) - 1; i >= 0; --i) {
      if (results[i].clicked) return i;
    }
    return -1;
  }

  /// Number of clicks in the session.
  int num_clicks() const {
    int n = 0;
    for (const auto& r : results) n += r.clicked ? 1 : 0;
    return n;
  }
};

/// A collection of sessions plus the ranges of ids appearing in them.
struct ClickLog {
  std::vector<Session> sessions;
  int32_t num_queries = 0;  ///< query_id values lie in [0, num_queries).
  int32_t num_docs = 0;     ///< doc_id values lie in [0, num_docs).
  int max_positions = 0;    ///< Longest result list across sessions.

  /// Recomputes num_queries / num_docs / max_positions from the sessions.
  void RecomputeBounds() {
    num_queries = 0;
    num_docs = 0;
    max_positions = 0;
    for (const auto& s : sessions) {
      if (s.query_id >= num_queries) num_queries = s.query_id + 1;
      if (static_cast<int>(s.results.size()) > max_positions) {
        max_positions = static_cast<int>(s.results.size());
      }
      for (const auto& r : s.results) {
        if (r.doc_id >= num_docs) num_docs = r.doc_id + 1;
      }
    }
  }
};

/// Packs a (query, doc) pair into one 64-bit key for parameter tables.
inline uint64_t QueryDocKey(int32_t query_id, int32_t doc_id) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(query_id)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(doc_id));
}

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_SESSION_H_
