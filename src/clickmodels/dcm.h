// Copyright 2026 The Microbrowse Authors
//
// Dependent click model (Guo et al., WSDM'09), the multi-click
// generalisation of the cascade model:
//   P(E_i | E_{i-1}=1, C_{i-1}=1) = lambda_{i-1}
//   P(E_i | E_{i-1}=1, C_{i-1}=0) = 1.
// Fit with the original paper's approximate MLE: positions up to the last
// click are treated as examined.

#ifndef MICROBROWSE_CLICKMODELS_DCM_H_
#define MICROBROWSE_CLICKMODELS_DCM_H_

#include <vector>

#include "clickmodels/click_model.h"
#include "clickmodels/param_table.h"

namespace microbrowse {

/// Dependent click model.
class DependentClickModel : public ClickModel {
 public:
  DependentClickModel() : attraction_(0.5) {}

  /// Generative constructor; `lambdas[i]` is the probability the user keeps
  /// examining after a click at position i.
  DependentClickModel(QueryDocTable attraction, std::vector<double> lambdas)
      : attraction_(std::move(attraction)), lambdas_(std::move(lambdas)) {}

  std::string_view name() const override { return "DCM"; }
  Status Fit(const ClickLog& log) override;
  std::vector<double> ConditionalClickProbs(const Session& session) const override;
  std::vector<double> MarginalClickProbs(const Session& session) const override;
  void SimulateClicks(Session* session, Rng* rng) const override;

  const QueryDocTable& attraction() const { return attraction_; }
  const std::vector<double>& lambdas() const { return lambdas_; }

 private:
  double Lambda(int position) const {
    return position < static_cast<int>(lambdas_.size()) ? lambdas_[position] : 0.5;
  }

  QueryDocTable attraction_;
  std::vector<double> lambdas_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CLICKMODELS_DCM_H_
