// Copyright 2026 The Microbrowse Authors

#include "clickmodels/pbm.h"

#include <algorithm>

namespace microbrowse {

Status PositionBasedModel::Fit(const ClickLog& log) {
  if (log.sessions.empty()) return Status::InvalidArgument("PBM: empty click log");
  const int positions = log.max_positions;
  position_probs_.assign(positions, 0.5);
  attraction_ = QueryDocTable(0.5);

  for (int iter = 0; iter < options_.em_iterations; ++iter) {
    QueryDocAccumulator attraction_acc;
    std::vector<double> gamma_num(positions, 0.0);
    std::vector<double> gamma_den(positions, 0.0);

    for (const auto& session : log.sessions) {
      for (size_t i = 0; i < session.results.size(); ++i) {
        const auto& result = session.results[i];
        const double gamma = PositionProb(static_cast<int>(i));
        const double alpha = attraction_.Get(session.query_id, result.doc_id);
        if (result.clicked) {
          // Click implies examined and attracted.
          attraction_acc.Add(session.query_id, result.doc_id, 1.0, 1.0);
          gamma_num[i] += 1.0;
          gamma_den[i] += 1.0;
        } else {
          // Posterior over the two explanations of a skip.
          const double p_no_click = 1.0 - gamma * alpha;
          // Attracted but not examined.
          const double p_attracted_unexamined = (1.0 - gamma) * alpha / p_no_click;
          // Examined but not attracted (+ examined & attracted is impossible
          // given no click).
          const double p_examined = gamma * (1.0 - alpha) / p_no_click;
          attraction_acc.Add(session.query_id, result.doc_id, p_attracted_unexamined, 1.0);
          gamma_num[i] += p_examined;
          gamma_den[i] += 1.0;
        }
      }
    }

    attraction_acc.Flush(attraction_, options_.smoothing, 0.5);
    for (int i = 0; i < positions; ++i) {
      position_probs_[i] = (gamma_num[i] + options_.smoothing * 0.5) /
                           (gamma_den[i] + options_.smoothing);
    }
  }
  return Status::OK();
}

std::vector<double> PositionBasedModel::ConditionalClickProbs(const Session& session) const {
  // PBM positions are independent; conditional == marginal.
  return MarginalClickProbs(session);
}

std::vector<double> PositionBasedModel::MarginalClickProbs(const Session& session) const {
  std::vector<double> probs(session.results.size(), 0.0);
  for (size_t i = 0; i < session.results.size(); ++i) {
    probs[i] = PositionProb(static_cast<int>(i)) *
               attraction_.Get(session.query_id, session.results[i].doc_id);
  }
  return probs;
}

void PositionBasedModel::SimulateClicks(Session* session, Rng* rng) const {
  for (size_t i = 0; i < session->results.size(); ++i) {
    const double p = PositionProb(static_cast<int>(i)) *
                     attraction_.Get(session->query_id, session->results[i].doc_id);
    session->results[i].clicked = rng->Bernoulli(p);
  }
}

}  // namespace microbrowse
