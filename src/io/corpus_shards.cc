// Copyright 2026 The Microbrowse Authors

#include "io/corpus_shards.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "io/serialization.h"

namespace microbrowse {

namespace {

/// Splits `base_path` into (prefix-before-extension, extension). The
/// extension is the final "." suffix of the FILENAME component; dotless
/// filenames get an empty extension.
std::pair<std::string, std::string> SplitExtension(const std::string& base_path) {
  const std::filesystem::path path(base_path);
  const std::string ext = path.extension().string();
  return {base_path.substr(0, base_path.size() - ext.size()), ext};
}

/// Parses a shard filename of the form `<stem>-NNNNN-of-MMMMM<ext>`.
/// Returns false when `name` does not match `stem` / `ext` or the tag is
/// malformed.
bool ParseShardName(const std::string& name, const std::string& stem, const std::string& ext,
                    size_t* index, size_t* count) {
  // Layout: stem + "-" + 5 digits + "-of-" + 5 digits + ext.
  constexpr size_t kTagLen = 1 + 5 + 4 + 5;  // "-NNNNN-of-MMMMM"
  if (name.size() != stem.size() + kTagLen + ext.size()) return false;
  if (name.compare(0, stem.size(), stem) != 0) return false;
  if (name.compare(name.size() - ext.size(), ext.size(), ext) != 0) return false;
  const std::string tag = name.substr(stem.size(), kTagLen);
  if (tag[0] != '-' || tag.compare(6, 4, "-of-") != 0) return false;
  size_t parsed_index = 0;
  size_t parsed_count = 0;
  for (int i = 1; i <= 5; ++i) {
    if (tag[i] < '0' || tag[i] > '9') return false;
    parsed_index = parsed_index * 10 + static_cast<size_t>(tag[i] - '0');
  }
  for (int i = 10; i <= 14; ++i) {
    if (tag[i] < '0' || tag[i] > '9') return false;
    parsed_count = parsed_count * 10 + static_cast<size_t>(tag[i] - '0');
  }
  *index = parsed_index;
  *count = parsed_count;
  return true;
}

}  // namespace

std::string ShardPath(const std::string& base_path, size_t index, size_t count) {
  const auto [prefix, ext] = SplitExtension(base_path);
  char tag[24];
  std::snprintf(tag, sizeof(tag), "-%05zu-of-%05zu", index, count);
  return prefix + tag + ext;
}

Result<ShardSetInfo> ResolveCorpusShards(const std::string& base_path) {
  std::error_code ec;
  if (std::filesystem::is_regular_file(base_path, ec)) {
    ShardSetInfo info;
    info.paths.push_back(base_path);
    info.sharded = false;
    return info;
  }
  const std::filesystem::path base(base_path);
  const std::filesystem::path dir = base.has_parent_path() ? base.parent_path() : ".";
  const auto [prefix, ext] = SplitExtension(base.filename().string());
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("no corpus at " + base_path + " (directory missing)");
  }

  size_t count = 0;
  std::vector<std::string> by_index;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    size_t shard_index = 0;
    size_t shard_count = 0;
    if (!ParseShardName(entry.path().filename().string(), prefix, ext, &shard_index,
                        &shard_count)) {
      continue;
    }
    if (shard_count == 0 || shard_index >= shard_count) {
      return Status::FailedPrecondition("invalid shard tag on " + entry.path().string());
    }
    if (count == 0) {
      count = shard_count;
      by_index.assign(count, "");
    } else if (shard_count != count) {
      // Two generations with different counts in one directory: training on
      // either subset silently over- or under-reads, so refuse.
      return Status::FailedPrecondition(
          "mixed shard counts for " + base_path + ": found both -of-" +
          std::to_string(count) + " and -of-" + std::to_string(shard_count) + " shards");
    }
    if (!by_index[shard_index].empty()) {
      return Status::FailedPrecondition("duplicate shard index " + std::to_string(shard_index) +
                                        " for " + base_path);
    }
    by_index[shard_index] = entry.path().string();
  }
  if (count == 0) {
    return Status::NotFound("no corpus at " + base_path + " (no file, no shards)");
  }
  for (size_t i = 0; i < count; ++i) {
    if (by_index[i].empty()) {
      return Status::NotFound("missing shard " + ShardPath(base_path, i, count) + " of " +
                              std::to_string(count));
    }
  }
  ShardSetInfo info;
  info.paths = std::move(by_index);
  info.sharded = true;
  return info;
}

Status SaveAdCorpusSharded(const AdCorpus& corpus, const std::string& base_path,
                           size_t num_shards) {
  if (num_shards == 0 || num_shards > 99999) {
    return Status::InvalidArgument("num_shards must be in [1, 99999]");
  }
  for (size_t s = 0; s < num_shards; ++s) {
    AdCorpus shard;
    shard.placement = corpus.placement;
    for (size_t g = s; g < corpus.adgroups.size(); g += num_shards) {
      shard.adgroups.push_back(corpus.adgroups[g]);
    }
    MB_RETURN_IF_ERROR(SaveAdCorpus(shard, ShardPath(base_path, s, num_shards)));
  }
  return Status::OK();
}

Status ForEachCorpusShard(const ShardSetInfo& shards, const LoadOptions& options,
                          ShardLoadReport* report,
                          const std::function<Status(const AdCorpus&)>& fn) {
  if (report != nullptr) report->shards_total += shards.paths.size();
  for (const std::string& path : shards.paths) {
    LoadReport rows;
    auto corpus = LoadAdCorpus(path, options, &rows);
    if (report != nullptr) {
      report->rows_kept += rows.rows_kept;
      report->rows_skipped += rows.rows_skipped;
    }
    if (!corpus.ok()) {
      const std::string error = path + ": " + corpus.status().message();
      if (options.recovery == LoadOptions::Recovery::kStrict) {
        return Status(corpus.status().code(), "shard " + error);
      }
      MB_LOG(kWarning) << "skipping corpus shard " << error;
      if (report != nullptr) {
        ++report->shards_skipped;
        if (report->first_error.empty()) report->first_error = error;
      }
      continue;
    }
    if (report != nullptr) {
      ++report->shards_loaded;
      report->adgroups += static_cast<int64_t>(corpus->adgroups.size());
    }
    MB_RETURN_IF_ERROR(fn(*corpus));
  }
  return Status::OK();
}

Result<AdCorpus> LoadShardedAdCorpus(const ShardSetInfo& shards, const LoadOptions& options,
                                     ShardLoadReport* report) {
  AdCorpus merged;
  bool first = true;
  MB_RETURN_IF_ERROR(ForEachCorpusShard(shards, options, report, [&](const AdCorpus& shard) {
    if (first) {
      merged.placement = shard.placement;
      first = false;
    }
    merged.adgroups.insert(merged.adgroups.end(), shard.adgroups.begin(), shard.adgroups.end());
    return Status::OK();
  }));
  return merged;
}

Result<FeatureStatsDb> BuildFeatureStatsSharded(const ShardSetInfo& shards,
                                                const PairExtractionOptions& extraction,
                                                const BuildStatsOptions& options,
                                                const LoadOptions& load_options,
                                                ShardLoadReport* report) {
  FeatureStatsDb db;
  db.set_smoothing(options.smoothing);
  db.set_min_count(options.min_count);
  const int passes = options.matching_passes < 1 ? 1 : options.matching_passes;
  for (int pass = 0; pass < passes; ++pass) {
    FeatureStatsDb next;
    next.set_smoothing(options.smoothing);
    next.set_min_count(options.min_count);
    // Later passes re-stream the shards against the previous pass's
    // database; shard-level accounting is recorded on the first pass only,
    // so the report describes one traversal of the corpus.
    ShardLoadReport* pass_report = pass == 0 ? report : nullptr;
    MB_RETURN_IF_ERROR(
        ForEachCorpusShard(shards, load_options, pass_report, [&](const AdCorpus& shard) {
          const PairCorpus pairs = ExtractSignificantPairs(shard, extraction);
          if (pass == 0 && report != nullptr) {
            report->pairs += static_cast<int64_t>(pairs.pairs.size());
          }
          AccumulateFeatureStats(pairs, options, pass == 0 ? nullptr : &db, &next);
          return Status::OK();
        }));
    db = std::move(next);
    db.set_smoothing(options.smoothing);
    db.set_min_count(options.min_count);
  }
  return db;
}

Result<ShardedClassifierData> BuildCoupledCsrSharded(
    const ShardSetInfo& shards, const FeatureStatsDb& db, const ClassifierConfig& config,
    uint64_t seed, const PairExtractionOptions& extraction, const LoadOptions& load_options,
    ShardLoadReport* report) {
  ShardedClassifierData data;
  data.csr.row_offsets.push_back(0);
  // One Rng across the whole stream: pair k of the concatenated corpus gets
  // the same presentation coin as in BuildClassifierDataset, so the CSR is
  // bitwise identical to the monolithic build.
  Rng rng(seed);
  std::vector<CoupledOccurrence> occurrences;
  MB_RETURN_IF_ERROR(
      ForEachCorpusShard(shards, load_options, report, [&](const AdCorpus& shard) {
        const PairCorpus pairs = ExtractSignificantPairs(shard, extraction);
        if (report != nullptr) report->pairs += static_cast<int64_t>(pairs.pairs.size());
        for (const SnippetPair& pair : pairs.pairs) {
          const bool swap = rng.Bernoulli(0.5);
          const SnippetObservation& first = swap ? pair.s : pair.r;
          const SnippetObservation& second = swap ? pair.r : pair.s;
          occurrences.clear();
          ExtractPairOccurrences(first.snippet, second.snippet, db, config, &data.t_registry,
                                 &data.p_registry, &occurrences);
          for (const CoupledOccurrence& occ : occurrences) {
            data.csr.t_ids.push_back(occ.t);
            data.csr.p_ids.push_back(occ.p);
            data.csr.signs.push_back(occ.sign);
          }
          data.csr.labels.push_back(first.serve_weight > second.serve_weight ? 1.0 : 0.0);
          data.csr.row_offsets.push_back(data.csr.t_ids.size());
        }
        return Status::OK();
      }));
  data.csr.t_init = data.t_registry.InitialWeights();
  data.csr.p_init = data.p_registry.InitialWeights();
  return data;
}

}  // namespace microbrowse
