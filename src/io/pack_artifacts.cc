// Copyright 2026 The Microbrowse Authors

#include "io/pack_artifacts.h"

#include <sys/stat.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/hash.h"
#include "pack/pack_reader.h"
#include "pack/pack_writer.h"

namespace microbrowse {

namespace {

Status BadPack(const std::string& path, const std::string& what) {
  return Status::IOError(path + ": " + what);
}

/// Reads the whole file as raw bytes (no artifact framing — packs and TSV
/// files alike).
Result<std::string> ReadRawFile(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  return std::move(buffer).str();
}

/// Appends one string table (offsets section `base`, bytes section
/// `base + 1`) built from `keys` in the given order.
void AddStringSections(pack::PackWriter* writer, uint32_t base,
                       const std::vector<std::string_view>& keys) {
  pack::SectionBuilder offsets;
  pack::SectionBuilder bytes;
  uint64_t offset = 0;
  offsets.AppendPod<uint64_t>(offset);
  for (std::string_view key : keys) {
    offset += key.size();
    offsets.AppendPod<uint64_t>(offset);
    bytes.AppendBytes(key);
  }
  writer->AddSection(base, std::move(offsets).Take());
  writer->AddSection(base + 1, std::move(bytes).Take());
}

/// Validates that `table` is strictly ascending — the invariant binary
/// search needs, checked once at open so lookups can trust the mapping.
Status CheckSorted(const std::string& path, const pack::StringTable& table,
                   const std::string& what) {
  for (size_t i = 1; i < table.size(); ++i) {
    if (!(table.at(i - 1) < table.at(i))) {
      return BadPack(path, what + ": keys not strictly ascending at index " +
                               std::to_string(i));
    }
  }
  return Status::OK();
}

/// Emits the five sections of one registry block (see pack_artifacts.h).
void AddRegistrySections(pack::PackWriter* writer, uint32_t base, const FeatureRegistry& registry,
                         const std::vector<double>& trained_weights) {
  const size_t n = registry.size();
  std::vector<std::string_view> names(n);
  for (size_t i = 0; i < n; ++i) names[i] = registry.NameOf(static_cast<FeatureId>(i));
  AddStringSections(writer, base, names);

  std::vector<uint32_t> sorted(n);
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::sort(sorted.begin(), sorted.end(),
            [&names](uint32_t a, uint32_t b) { return names[a] < names[b]; });
  pack::SectionBuilder sorted_builder;
  sorted_builder.AppendArray(sorted);
  writer->AddSection(base + 2, std::move(sorted_builder).Take());

  pack::SectionBuilder initial_builder;
  initial_builder.AppendArray(registry.InitialWeights());
  writer->AddSection(base + 3, std::move(initial_builder).Take());

  pack::SectionBuilder trained_builder;
  trained_builder.AppendArray(trained_weights);
  writer->AddSection(base + 4, std::move(trained_builder).Take());
}

/// Opens one registry block: attaches the in-place base layer to
/// `registry` and copies the dense trained weights into `trained`.
Status LoadRegistryPack(const std::shared_ptr<const pack::PackReader>& reader, uint32_t base,
                        uint64_t expected_count, const std::string& what,
                        FeatureRegistry* registry, std::vector<double>* trained) {
  const std::string& path = reader->path();
  MB_ASSIGN_OR_RETURN(const pack::StringTable names, reader->Strings(base, base + 1));
  if (names.size() != expected_count) {
    return BadPack(path, what + ": name count " + std::to_string(names.size()) +
                             " != declared " + std::to_string(expected_count));
  }
  size_t sorted_count = 0;
  MB_ASSIGN_OR_RETURN(const uint32_t* sorted,
                      reader->Array<uint32_t>(base + 2, &sorted_count));
  if (sorted_count != names.size()) {
    return BadPack(path, what + ": permutation count mismatch");
  }
  for (size_t i = 0; i < sorted_count; ++i) {
    if (sorted[i] >= names.size()) {
      return BadPack(path, what + ": permutation entry out of range");
    }
    // Strict ascent through the permutation implies every name is distinct
    // and therefore that `sorted` visits each id exactly once.
    if (i > 0 && !(names.at(sorted[i - 1]) < names.at(sorted[i]))) {
      return BadPack(path, what + ": permutation not strictly ascending at index " +
                               std::to_string(i));
    }
  }
  size_t initial_count = 0;
  MB_ASSIGN_OR_RETURN(const double* initial,
                      reader->Array<double>(base + 3, &initial_count));
  if (initial_count != names.size()) {
    return BadPack(path, what + ": initial-weight count mismatch");
  }
  size_t trained_count = 0;
  MB_ASSIGN_OR_RETURN(const double* trained_data,
                      reader->Array<double>(base + 4, &trained_count));
  if (trained_count != names.size()) {
    return BadPack(path, what + ": trained-weight count mismatch");
  }
  trained->assign(trained_data, trained_data + trained_count);
  registry->AttachPackBase(reader, names, sorted, initial);
  return Status::OK();
}

}  // namespace

Status SaveStatsPack(const FeatureStatsDb& db, const std::string& path) {
  struct Row {
    std::string_view key;
    const FeatureStat* stat;
  };
  std::array<std::vector<Row>, kNumStatsClasses> classes;
  db.ForEach([&classes](std::string_view key, const FeatureStat& stat) {
    classes[static_cast<size_t>(StatsKeyClass(key))].push_back(Row{key, &stat});
  });

  pack::PackWriter writer;
  StatsMeta meta;
  meta.smoothing = db.smoothing();
  meta.min_count = db.min_count();
  for (int c = 0; c < kNumStatsClasses; ++c) {
    meta.class_counts[c] = classes[static_cast<size_t>(c)].size();
  }
  pack::SectionBuilder meta_builder;
  meta_builder.AppendPod(meta);
  writer.AddSection(kSecStatsMeta, std::move(meta_builder).Take());

  for (int c = 0; c < kNumStatsClasses; ++c) {
    std::vector<Row>& rows = classes[static_cast<size_t>(c)];
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.key < b.key; });
    std::vector<std::string_view> keys;
    keys.reserve(rows.size());
    pack::SectionBuilder records;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0 && rows[i].key == rows[i - 1].key) {
        return Status::InvalidArgument("SaveStatsPack: duplicate key \"" +
                                       std::string(rows[i].key) + "\"");
      }
      keys.push_back(rows[i].key);
      records.AppendPod(*rows[i].stat);
    }
    AddStringSections(&writer, StatsClassSection(c), keys);
    writer.AddSection(StatsClassSection(c) + 2, std::move(records).Take());
  }
  return writer.Finish(path);
}

Result<FeatureStatsDb> LoadStatsPack(const std::string& path) {
  MB_ASSIGN_OR_RETURN(std::shared_ptr<const pack::PackReader> reader,
                      pack::PackReader::Open(path));
  size_t meta_count = 0;
  MB_ASSIGN_OR_RETURN(const StatsMeta* meta,
                      reader->Array<StatsMeta>(kSecStatsMeta, &meta_count));
  if (meta_count != 1) return BadPack(path, "stats meta section malformed");

  FeatureStatsDb db;
  db.set_smoothing(meta->smoothing);
  db.set_min_count(meta->min_count);
  std::array<FeatureStatsDb::BaseClass, kNumStatsClasses> base;
  for (int c = 0; c < kNumStatsClasses; ++c) {
    const uint32_t section = StatsClassSection(c);
    const std::string what = "stats class " + std::to_string(c);
    MB_ASSIGN_OR_RETURN(const pack::StringTable keys,
                        reader->Strings(section, section + 1));
    size_t record_count = 0;
    MB_ASSIGN_OR_RETURN(const FeatureStat* records,
                        reader->Array<FeatureStat>(section + 2, &record_count));
    if (keys.size() != record_count || record_count != meta->class_counts[c]) {
      return BadPack(path, what + ": key/record/declared count mismatch");
    }
    MB_RETURN_IF_ERROR(CheckSorted(path, keys, what));
    base[static_cast<size_t>(c)] = FeatureStatsDb::BaseClass{keys, records};
  }
  db.AttachPackBase(std::move(reader), base);
  return db;
}

Status SaveClassifierPack(const SnippetClassifierModel& model,
                          const FeatureRegistry& t_registry, const FeatureRegistry& p_registry,
                          const std::string& path) {
  if (model.t_weights.size() != t_registry.size() ||
      model.p_weights.size() != p_registry.size()) {
    return Status::InvalidArgument("SaveClassifierPack: weight/registry size mismatch");
  }
  pack::PackWriter writer;
  ModelMeta meta;
  meta.bias = model.bias;
  meta.t_count = t_registry.size();
  meta.p_count = p_registry.size();
  pack::SectionBuilder meta_builder;
  meta_builder.AppendPod(meta);
  writer.AddSection(kSecModelMeta, std::move(meta_builder).Take());
  AddRegistrySections(&writer, kSecTRegistry, t_registry, model.t_weights);
  AddRegistrySections(&writer, kSecPRegistry, p_registry, model.p_weights);
  return writer.Finish(path);
}

Result<SavedClassifier> LoadClassifierPack(const std::string& path) {
  MB_ASSIGN_OR_RETURN(std::shared_ptr<const pack::PackReader> reader,
                      pack::PackReader::Open(path));
  size_t meta_count = 0;
  MB_ASSIGN_OR_RETURN(const ModelMeta* meta,
                      reader->Array<ModelMeta>(kSecModelMeta, &meta_count));
  if (meta_count != 1) return BadPack(path, "model meta section malformed");

  SavedClassifier saved;
  saved.model.bias = meta->bias;
  MB_RETURN_IF_ERROR(LoadRegistryPack(reader, kSecTRegistry, meta->t_count, "T registry",
                                      &saved.t_registry, &saved.model.t_weights));
  MB_RETURN_IF_ERROR(LoadRegistryPack(reader, kSecPRegistry, meta->p_count, "P registry",
                                      &saved.p_registry, &saved.model.p_weights));
  return saved;
}

Result<bool> IsPackFile(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[sizeof(pack::kHeaderMagic)] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic))) return false;
  return std::memcmp(magic, pack::kHeaderMagic, sizeof(magic)) == 0;
}

Result<std::string> DescribePack(const std::string& path) {
  MB_ASSIGN_OR_RETURN(std::shared_ptr<const pack::PackReader> reader,
                      pack::PackReader::Open(path));
  std::ostringstream out;
  out << "mbpack " << path << "\n";
  out << "  format version : " << pack::kFormatVersion << "\n";
  out << "  file size      : " << reader->file_size() << " bytes\n";
  out << "  file checksum  : 0x" << std::hex << std::setfill('0') << std::setw(16)
      << reader->file_checksum() << std::dec << std::setfill(' ') << "\n";
  out << "  sections       : " << reader->sections().size() << "\n";
  auto section_name = [](uint32_t type) -> std::string {
    if (type == kSecStatsMeta) return "stats-meta";
    if (type == kSecModelMeta) return "model-meta";
    for (int c = 0; c < kNumStatsClasses; ++c) {
      const uint32_t base = StatsClassSection(c);
      if (type == base) return "stats-c" + std::to_string(c) + "-key-offsets";
      if (type == base + 1) return "stats-c" + std::to_string(c) + "-key-bytes";
      if (type == base + 2) return "stats-c" + std::to_string(c) + "-records";
    }
    for (const auto& [base, tag] :
         {std::pair<uint32_t, const char*>{kSecTRegistry, "t"}, {kSecPRegistry, "p"}}) {
      static constexpr const char* kPart[] = {"name-offsets", "name-bytes", "sorted-ids",
                                              "initial-weights", "trained-weights"};
      if (type >= base && type < base + 5) {
        return std::string(tag) + "-registry-" + kPart[type - base];
      }
    }
    return "unknown";
  };
  for (const auto& section : reader->sections()) {
    out << "    type " << std::setw(3) << section.type << "  " << std::setw(26) << std::left
        << section_name(section.type) << std::right << " offset " << std::setw(10)
        << section.offset << "  size " << std::setw(10) << section.size << "  checksum 0x"
        << std::hex << std::setfill('0') << std::setw(16) << section.checksum << std::dec
        << std::setfill(' ') << "\n";
  }
  if (reader->HasSection(kSecStatsMeta)) {
    size_t n = 0;
    MB_ASSIGN_OR_RETURN(const StatsMeta* meta, reader->Array<StatsMeta>(kSecStatsMeta, &n));
    if (n != 1) return BadPack(path, "stats meta section malformed");
    uint64_t total = 0;
    for (uint64_t count : meta->class_counts) total += count;
    out << "  artifact       : feature-statistics database\n";
    out << "    smoothing    : " << meta->smoothing << "\n";
    out << "    min count    : " << meta->min_count << "\n";
    out << "    keys         : " << total << " (";
    for (int c = 0; c < kNumStatsClasses; ++c) {
      out << (c > 0 ? ", " : "") << "class " << c << ": " << meta->class_counts[c];
    }
    out << ")\n";
  }
  if (reader->HasSection(kSecModelMeta)) {
    size_t n = 0;
    MB_ASSIGN_OR_RETURN(const ModelMeta* meta, reader->Array<ModelMeta>(kSecModelMeta, &n));
    if (n != 1) return BadPack(path, "model meta section malformed");
    out << "  artifact       : snippet classifier\n";
    out << "    bias         : " << meta->bias << "\n";
    out << "    T features   : " << meta->t_count << "\n";
    out << "    P features   : " << meta->p_count << "\n";
  }
  return std::move(out).str();
}

Result<uint64_t> FileChecksum(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  // Pack fast path: the footer already records a checksum over every byte
  // before it, so the fingerprint is header-magic + footer reads plus a
  // stat — O(1) in the artifact size (a pack may be bigger than RAM).
  // Folding in the inode and mtime makes the fingerprint move on *any*
  // push, including a corrupt in-place rewrite whose forged footer still
  // matches — the push then takes the full-reload path, where the
  // checksummed open rejects it. Whether the footer checksum is *true* is
  // always the open path's job, never the fingerprint's.
  char magic[sizeof(pack::kHeaderMagic)] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
      std::memcmp(magic, pack::kHeaderMagic, sizeof(magic)) == 0) {
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    struct stat file_stat;
    if (size >= static_cast<std::streamoff>(pack::kMinFileSize) &&
        ::stat(path.c_str(), &file_stat) == 0) {
      in.seekg(size - static_cast<std::streamoff>(sizeof(pack::PackFooter)));
      pack::PackFooter footer;
      in.read(reinterpret_cast<char*>(&footer), sizeof(footer));
      if (in.gcount() == static_cast<std::streamsize>(sizeof(footer)) &&
          std::memcmp(footer.magic, pack::kFooterMagic, sizeof(footer.magic)) == 0) {
        uint64_t fingerprint = HashCombine(footer.file_checksum, static_cast<uint64_t>(size));
        fingerprint = HashCombine(fingerprint, static_cast<uint64_t>(file_stat.st_ino));
        fingerprint = HashCombine(fingerprint, static_cast<uint64_t>(file_stat.st_mtim.tv_sec));
        fingerprint =
            HashCombine(fingerprint, static_cast<uint64_t>(file_stat.st_mtim.tv_nsec));
        return fingerprint;
      }
    }
    in.clear();
    in.seekg(0);
  }
  MB_ASSIGN_OR_RETURN(const std::string bytes, ReadRawFile(path));
  return Fnv1a64(bytes);
}

}  // namespace microbrowse
