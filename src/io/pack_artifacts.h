// Copyright 2026 The Microbrowse Authors
//
// The mbpack artifact schemas: how the library's serving artefacts — the
// feature-statistics database and the trained classifier — are laid out
// inside the generic mbpack container (src/pack). TSV artifacts
// (io/serialization.h) remain the greppable interchange format; packs are
// the *serving* format: a single mmap at open, binary-search lookups
// straight off the mapping, and no per-record parsing.
//
// Section-id registry (unique within one pack; ids are frozen once shipped):
//
//   stats pack ("stats.mbp")
//     10                     StatsMeta
//     20 + 4c + 0            class-c key offsets   (uint64, count+1 entries)
//     20 + 4c + 1            class-c key bytes     (concatenated, sorted)
//     20 + 4c + 2            class-c records       (FeatureStat, key order)
//   for n-gram classes c in 0..kNumStatsClasses-1 (see StatsKeyClass).
//
//   classifier pack ("model.mbp")
//     40                     ModelMeta
//     50/60 + 0              T/P registry name offsets (uint64, id order)
//     50/60 + 1              T/P registry name bytes
//     50/60 + 2              T/P sorted permutation    (uint32, lookup index)
//     50/60 + 3              T/P initial weights       (double, id order)
//     50/60 + 4              T/P trained weights       (double, id order)
//
// Registry names are stored in *id order* with a separate sorted
// permutation, so a pack-backed FeatureRegistry assigns exactly the ids the
// TSV loader would — trained weight vectors, and therefore scores, are
// bitwise-identical across the two read paths.

#ifndef MICROBROWSE_IO_PACK_ARTIFACTS_H_
#define MICROBROWSE_IO_PACK_ARTIFACTS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "io/serialization.h"
#include "microbrowse/stats_db.h"

namespace microbrowse {

// --- Section ids (see the registry in the header comment).

inline constexpr uint32_t kSecStatsMeta = 10;
/// First section id of stats class `c`; +0 offsets, +1 bytes, +2 records.
inline constexpr uint32_t StatsClassSection(int c) {
  return 20 + 4 * static_cast<uint32_t>(c);
}

inline constexpr uint32_t kSecModelMeta = 40;
/// First section id of a registry block; +0 offsets, +1 bytes, +2 sorted
/// permutation, +3 initial weights, +4 trained weights.
inline constexpr uint32_t kSecTRegistry = 50;
inline constexpr uint32_t kSecPRegistry = 60;

/// Fixed-size metadata record of a stats pack.
struct StatsMeta {
  double smoothing = 1.0;
  int64_t min_count = 0;
  uint64_t class_counts[kNumStatsClasses] = {};  ///< Keys per n-gram class.
};
static_assert(sizeof(StatsMeta) == 16 + 8 * kNumStatsClasses);

/// Fixed-size metadata record of a classifier pack.
struct ModelMeta {
  double bias = 0.0;
  uint64_t t_count = 0;  ///< Features in the T (relevance) registry.
  uint64_t p_count = 0;  ///< Features in the P (position) registry.
};
static_assert(sizeof(ModelMeta) == 24);

/// Writes `db` (both layers) as a stats pack. Keys are partitioned by
/// StatsKeyClass and sorted within each class.
Status SaveStatsPack(const FeatureStatsDb& db, const std::string& path);

/// Opens a stats pack for in-place serving: one mmap, per-class sorted key
/// tables and record arrays attached as the database's immutable base
/// layer. Nothing is copied; the returned database keeps the mapping
/// alive.
Result<FeatureStatsDb> LoadStatsPack(const std::string& path);

/// Writes a trained classifier + registries as a classifier pack.
Status SaveClassifierPack(const SnippetClassifierModel& model,
                          const FeatureRegistry& t_registry, const FeatureRegistry& p_registry,
                          const std::string& path);

/// Opens a classifier pack: registry names / permutations / initial
/// weights are served straight from the mapping; the dense trained weight
/// vectors are memcpy'd into the model (zero parsing — see DESIGN.md
/// section 14 for the tradeoff).
Result<SavedClassifier> LoadClassifierPack(const std::string& path);

/// True when `path` starts with the mbpack magic — the sniff that lets
/// every artifact-loading surface (mbctl flags, bundle paths) accept a TSV
/// file or a pack interchangeably. IOError when the file cannot be read.
Result<bool> IsPackFile(const std::string& path);

/// Human-readable dump of a pack's header, section table (with names for
/// known section ids), checksums and artifact metadata — the body of
/// `mbctl pack-inspect`. Validates exactly as hard as PackReader::Open.
Result<std::string> DescribePack(const std::string& path);

/// Content fingerprint of `path`, used to short-circuit reloads when the
/// bundle on disk is unchanged. TSV artifacts hash every byte (FNV-1a/64).
/// mbpack files combine the whole-file checksum already recorded in their
/// footer with the file size, inode and mtime — O(1) regardless of pack
/// size, and any push (atomic rename or in-place rewrite) moves it, which
/// routes the push to the full reload where the checksummed open verifies
/// it. Does not itself verify the pack.
Result<uint64_t> FileChecksum(const std::string& path);

}  // namespace microbrowse

#endif  // MICROBROWSE_IO_PACK_ARTIFACTS_H_
