// Copyright 2026 The Microbrowse Authors
//
// Persistence for the library's main artefacts, in line-oriented TSV
// formats chosen for greppability and version-control friendliness:
//
//   AdCorpus            <- one creative per row, lines joined with " | "
//   ClickLog            <- one session per row
//   FeatureStatsDb      <- key \t positive \t total
//   SnippetClassifierModel + registries  <- sectioned weight dump
//
// All Save* functions are crash-safe (temp file + fsync + atomic rename —
// see io/atomic_file.h) and append a "#checksum <fnv64> <rows>" footer.
// Every loader verifies the footer and validates each row; the LoadOptions
// overloads select between strict failure and skip_and_log salvage, with a
// LoadReport accounting for every kept and skipped row.

#ifndef MICROBROWSE_IO_SERIALIZATION_H_
#define MICROBROWSE_IO_SERIALIZATION_H_

#include <string>

#include "clickmodels/session.h"
#include "common/result.h"
#include "corpus/ad.h"
#include "io/atomic_file.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"

namespace microbrowse {

/// Writes `corpus` to `path` as TSV:
///   adgroup_id  keyword_id  keyword  creative_id  impressions  clicks
///   true_ctr  line1|line2|line3
Status SaveAdCorpus(const AdCorpus& corpus, const std::string& path);

/// Loads a corpus written by SaveAdCorpus. Creatives are re-grouped by
/// adgroup id; row order within an adgroup is preserved. `report` (when
/// non-null) receives row accounting; the one-argument form is strict.
Result<AdCorpus> LoadAdCorpus(const std::string& path, const LoadOptions& options,
                              LoadReport* report = nullptr);
Result<AdCorpus> LoadAdCorpus(const std::string& path);

/// Writes `log` to `path` as TSV: query_id, then per-position
/// "doc_id:clicked" cells.
Status SaveClickLog(const ClickLog& log, const std::string& path);

/// Loads a click log written by SaveClickLog (bounds are recomputed).
Result<ClickLog> LoadClickLog(const std::string& path, const LoadOptions& options,
                              LoadReport* report = nullptr);
Result<ClickLog> LoadClickLog(const std::string& path);

/// Writes the statistics database as "key \t positive \t total" rows,
/// sorted by key for stable diffs. Smoothing / min-count settings are
/// stored in a header line.
Status SaveFeatureStats(const FeatureStatsDb& db, const std::string& path);

/// Loads a statistics database written by SaveFeatureStats.
Result<FeatureStatsDb> LoadFeatureStats(const std::string& path, const LoadOptions& options,
                                        LoadReport* report = nullptr);
Result<FeatureStatsDb> LoadFeatureStats(const std::string& path);

/// A trained classifier bundled with the registries that give its weight
/// vectors meaning.
struct SavedClassifier {
  SnippetClassifierModel model;
  FeatureRegistry t_registry;
  FeatureRegistry p_registry;
};

/// Writes model weights plus both registries (names, initial and trained
/// weights) in a sectioned text format.
Status SaveClassifier(const SnippetClassifierModel& model, const FeatureRegistry& t_registry,
                      const FeatureRegistry& p_registry, const std::string& path);

/// Loads a classifier written by SaveClassifier. In skip_and_log mode a
/// malformed registry row drops only that feature (each row is a
/// self-contained name/initial/trained triple); structural damage (missing
/// sections, truncation) always fails.
Result<SavedClassifier> LoadClassifier(const std::string& path, const LoadOptions& options,
                                       LoadReport* report = nullptr);
Result<SavedClassifier> LoadClassifier(const std::string& path);

}  // namespace microbrowse

#endif  // MICROBROWSE_IO_SERIALIZATION_H_
