// Copyright 2026 The Microbrowse Authors
//
// Crash-safe artifact I/O: the write-side guarantees (temp file + fsync +
// atomic rename) and the read-side guarantees (checksummed footer, row-level
// corruption recovery) that every serialized artifact in the system builds
// on. A writer crash, a full disk or a torn write can never leave a half
// artifact under the final name — readers either see the complete previous
// version or the complete new one.
//
// Artifact format v2 appends one footer line to the v1 payload:
//
//   #checksum <fnv64-hex> <rows>
//
// where the hash covers every payload byte before the footer line and
// <rows> counts the non-empty data rows (header excluded). v1 files without
// a footer still load (checksum_present = false in the report).
//
// This target (mb_io_base) depends only on mb_common so that higher layers
// (mb_core's pipeline checkpoints, mb_io's serializers) can both link it.

#ifndef MICROBROWSE_IO_ATOMIC_FILE_H_
#define MICROBROWSE_IO_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace microbrowse {

/// Read-side behaviour for serialized artifacts.
struct LoadOptions {
  enum class Recovery {
    /// Any corruption — bad checksum footer or a malformed row — fails the
    /// whole load. The default: corruption should be loud.
    kStrict,
    /// Salvage mode: malformed rows are skipped (and logged), a checksum
    /// mismatch is recorded in the LoadReport instead of failing. For
    /// recovering the healthy majority of a damaged artifact.
    kSkipAndLog,
  };
  Recovery recovery = Recovery::kStrict;
  /// When false, a present checksum footer is stripped but not verified.
  bool verify_checksum = true;
};

/// What a loader did with an artifact: how much survived, what was dropped,
/// and the first problem encountered (with its 1-based line number).
struct LoadReport {
  int64_t rows_kept = 0;
  int64_t rows_skipped = 0;
  bool checksum_present = false;
  bool checksum_ok = true;
  int first_error_line = 0;
  std::string first_error;
};

/// FNV-1a/64 over `payload` — the footer hash.
uint64_t ArtifactChecksum(std::string_view payload);

/// Atomically replaces `path` with `payload`: writes `path`.tmp, flushes,
/// fsyncs file and directory, then renames over `path`. On any failure the
/// previous `path` contents are untouched. Failpoints: io.write.open,
/// io.write.flush, io.write.fsync, io.write.rename.
Status WriteFileAtomic(const std::string& path, std::string_view payload);

/// Appends the v2 checksum footer for `payload` (which must end in '\n')
/// and writes the result atomically. `rows` is the data-row count recorded
/// in the footer.
Status WriteArtifactAtomic(const std::string& path, std::string_view payload, int64_t rows);

/// A loaded artifact with its footer stripped.
struct ArtifactContent {
  std::vector<std::string> lines;  ///< Payload lines, no trailing footer.
  bool checksum_present = false;
  bool checksum_ok = true;         ///< True when absent or not verified.
  int64_t declared_rows = -1;      ///< Row count from the footer, -1 when absent.
};

/// Reads `path` and verifies/strips the checksum footer. In kStrict mode a
/// bad footer (hash or malformed footer fields) fails with IOError; in
/// kSkipAndLog it is recorded in the content flags and the payload is
/// returned for row-level salvage. Failpoints: io.read.open,
/// io.read.checksum.
Result<ArtifactContent> ReadArtifact(const std::string& path, const LoadOptions& options = {});

/// mkdir -p: creates `path` and any missing parents (0755).
Status CreateDirectories(const std::string& path);

}  // namespace microbrowse

#endif  // MICROBROWSE_IO_ATOMIC_FILE_H_
