// Copyright 2026 The Microbrowse Authors
//
// Sharded on-disk ad corpora and the streaming builders that consume them
// with bounded memory. A corpus saved with SaveAdCorpusSharded becomes N
// independent AdCorpus artifacts named
//
//   <stem>-00000-of-00008<ext> ... <stem>-00007-of-00008<ext>
//
// each crash-safe and checksummed like the monolithic format (adgroups are
// never split across shards). ResolveCorpusShards maps a base path to its
// shard set — or to the single monolithic file when one exists — and
// validates the set: a mix of -of- counts, a duplicated index or a gap in
// the index sequence all fail loudly rather than silently training on a
// partial corpus.
//
// The streaming builders (BuildFeatureStatsSharded, BuildCoupledCsrSharded)
// hold ONE shard's rows in memory at a time and produce results bitwise
// identical to loading every shard into a single PairCorpus and running the
// monolithic builders: statistics counts are integer sums (order-
// independent), and the dataset builder draws its per-pair presentation
// coin from one Rng seeded once across the whole stream, in shard-index
// order. Peak memory is bounded by the largest shard plus the accumulated
// model-side state, which is how `mbctl train` reaches million-pair corpora
// without materialising them.

#ifndef MICROBROWSE_IO_CORPUS_SHARDS_H_
#define MICROBROWSE_IO_CORPUS_SHARDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/ad.h"
#include "corpus/pair_extraction.h"
#include "io/atomic_file.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"

namespace microbrowse {

/// Path of shard `index` of `count` for `base_path`: the shard tag is
/// spliced in front of the final extension ("corpus.tsv", 3, 8 ->
/// "corpus-00003-of-00008.tsv").
std::string ShardPath(const std::string& base_path, size_t index, size_t count);

/// A resolved corpus input: either the single monolithic file at the base
/// path, or a complete validated shard set in index order.
struct ShardSetInfo {
  std::vector<std::string> paths;  ///< In shard-index order.
  bool sharded = false;            ///< False: paths holds the one monolithic file.
};

/// Resolves `base_path` into a shard set. A regular file at `base_path`
/// wins (monolithic corpus). Otherwise the directory is scanned for
/// `<stem>-NNNNN-of-MMMMM<ext>` siblings; mixed -of- counts or a duplicate
/// index fail with kFailedPrecondition, a gap in 0..M-1 fails with
/// kNotFound naming the missing shard, and no match at all is kNotFound.
Result<ShardSetInfo> ResolveCorpusShards(const std::string& base_path);

/// Accounting for one streaming pass over a shard set. Row-level numbers
/// aggregate the per-shard LoadReports; shard-level numbers say how many
/// shards loaded versus were skipped whole (skip_and_log mode only —
/// strict mode fails on the first bad shard instead).
struct ShardLoadReport {
  size_t shards_total = 0;
  size_t shards_loaded = 0;
  size_t shards_skipped = 0;
  int64_t rows_kept = 0;
  int64_t rows_skipped = 0;
  int64_t adgroups = 0;
  int64_t pairs = 0;  ///< Significant pairs streamed (builders only).
  std::string first_error;  ///< First shard-level problem, with its path.
};

/// Splits `corpus` into `num_shards` shard files next to `base_path`
/// (adgroups round-robin by position, never split). Each shard is written
/// atomically; existing shards of a DIFFERENT count for the same stem are
/// left behind and will fail resolution, so callers regenerating with a
/// new count should write into a fresh directory or remove the old set.
Status SaveAdCorpusSharded(const AdCorpus& corpus, const std::string& base_path,
                           size_t num_shards);

/// Streams the shard set in index order, loading one shard at a time and
/// handing it to `fn`. Shard read failures follow `options.recovery`:
/// strict propagates the first failure, skip_and_log skips the whole shard
/// (counted in `report`, never silently). Errors returned by `fn` always
/// propagate. `report` may be null.
Status ForEachCorpusShard(const ShardSetInfo& shards, const LoadOptions& options,
                          ShardLoadReport* report,
                          const std::function<Status(const AdCorpus&)>& fn);

/// Loads and concatenates every shard (shard-index order) into one corpus.
/// This is the NON-streaming convenience for consumers that need random
/// access (e.g. cross-validation); memory is proportional to the full
/// corpus.
Result<AdCorpus> LoadShardedAdCorpus(const ShardSetInfo& shards, const LoadOptions& options,
                                     ShardLoadReport* report = nullptr);

/// Streaming BuildFeatureStats over a shard set: per shard, significant
/// pairs are extracted and accumulated; per matching pass, the shards are
/// re-streamed (multi-pass costs one corpus read per pass — the price of
/// bounded memory). Counts are bitwise identical to the monolithic build
/// over the concatenated corpus.
Result<FeatureStatsDb> BuildFeatureStatsSharded(const ShardSetInfo& shards,
                                                const PairExtractionOptions& extraction,
                                                const BuildStatsOptions& options,
                                                const LoadOptions& load_options,
                                                ShardLoadReport* report = nullptr);

/// A classifier dataset built by streaming shards: the flattened CSR plus
/// the registries interned along the way (needed to persist a trained
/// model).
struct ShardedClassifierData {
  CoupledCsr csr;
  FeatureRegistry t_registry;
  FeatureRegistry p_registry;
};

/// Streaming BuildClassifierDataset + FlattenCoupledDataset over a shard
/// set: one Rng seeded with `seed` draws the per-pair presentation coin
/// across the whole stream, occurrences append straight into the CSR
/// arrays, and the registries' initial weights are snapshotted at the end —
/// bitwise identical to the monolithic path on the concatenated corpus,
/// without ever materialising it.
Result<ShardedClassifierData> BuildCoupledCsrSharded(
    const ShardSetInfo& shards, const FeatureStatsDb& db, const ClassifierConfig& config,
    uint64_t seed, const PairExtractionOptions& extraction, const LoadOptions& load_options,
    ShardLoadReport* report = nullptr);

}  // namespace microbrowse

#endif  // MICROBROWSE_IO_CORPUS_SHARDS_H_
