// Copyright 2026 The Microbrowse Authors

#include "io/serialization.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace microbrowse {

namespace {

constexpr char kCorpusHeader[] = "#microbrowse-adcorpus-v1";
constexpr char kClickLogHeader[] = "#microbrowse-clicklog-v1";
constexpr char kStatsHeader[] = "#microbrowse-stats-v1";
constexpr char kModelHeader[] = "#microbrowse-classifier-v1";

Status MalformedRow(const std::string& path, int line_number, const std::string& why) {
  return Status::InvalidArgument(
      StrFormat("%s:%d: %s", path.c_str(), line_number, why.c_str()));
}

/// Per-row error policy shared by all loaders: strict mode propagates the
/// first malformed row, skip_and_log mode records it (first error wins the
/// report slot), logs it, and lets the loader continue.
class RowRecovery {
 public:
  RowRecovery(const std::string& path, const LoadOptions& options, LoadReport* report)
      : path_(path), options_(options), report_(report) {}

  /// Returns non-OK iff the loader must abort (strict mode).
  Status OnBadRow(int line_number, const std::string& why) {
    const Status error = MalformedRow(path_, line_number, why);
    if (options_.recovery == LoadOptions::Recovery::kStrict) return error;
    if (report_ != nullptr) {
      ++report_->rows_skipped;
      if (report_->first_error.empty()) {
        report_->first_error = error.message();
        report_->first_error_line = line_number;
      }
    }
    MB_LOG(kWarning) << "skipping malformed row — " << error.message();
    return Status::OK();
  }

  void OnGoodRow() {
    if (report_ != nullptr) ++report_->rows_kept;
  }

 private:
  const std::string& path_;
  const LoadOptions& options_;
  LoadReport* report_;
};

/// Reads the artifact and mirrors the footer verdict into `report`.
Result<ArtifactContent> ReadArtifactReported(const std::string& path,
                                             const LoadOptions& options, LoadReport* report) {
  Result<ArtifactContent> content = ReadArtifact(path, options);
  if (content.ok() && report != nullptr) {
    report->checksum_present = content->checksum_present;
    report->checksum_ok = content->checksum_ok;
  }
  return content;
}

/// Joins a snippet's lines with " | " (tokens are whitespace-joined).
std::string SnippetToField(const Snippet& snippet) {
  std::vector<std::string> lines;
  for (int l = 0; l < snippet.num_lines(); ++l) {
    lines.push_back(Join(snippet.line(l), " "));
  }
  return Join(lines, " | ");
}

/// Inverse of SnippetToField.
Snippet SnippetFromField(const std::string& field) {
  std::vector<std::vector<std::string>> token_lines;
  for (const std::string& line : Split(field, '|')) {
    token_lines.push_back(SplitWhitespace(line));
  }
  return Snippet::FromTokens(std::move(token_lines));
}

Result<int64_t> ParseInt(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  return value;
}

}  // namespace

Status SaveAdCorpus(const AdCorpus& corpus, const std::string& path) {
  std::ostringstream out;
  int64_t rows = 0;
  out << kCorpusHeader << '\t' << PlacementName(corpus.placement) << '\n';
  for (const AdGroup& group : corpus.adgroups) {
    for (const Creative& creative : group.creatives) {
      out << group.id << '\t' << group.keyword_id << '\t' << group.keyword << '\t'
          << creative.id << '\t' << creative.impressions << '\t' << creative.clicks << '\t'
          << FormatDouble(creative.true_ctr, 8) << '\t' << SnippetToField(creative.snippet)
          << '\n';
      ++rows;
    }
  }
  return WriteArtifactAtomic(path, out.str(), rows);
}

Result<AdCorpus> LoadAdCorpus(const std::string& path, const LoadOptions& options,
                              LoadReport* report) {
  MB_ASSIGN_OR_RETURN(const ArtifactContent content,
                      ReadArtifactReported(path, options, report));
  if (content.lines.empty() || !StartsWith(content.lines[0], kCorpusHeader)) {
    return MalformedRow(path, 1, "missing adcorpus header");
  }
  RowRecovery recovery(path, options, report);
  AdCorpus corpus;
  {
    const auto header_fields = Split(content.lines[0], '\t');
    corpus.placement = header_fields.size() > 1 && header_fields[1] == "rhs"
                           ? Placement::kRhs
                           : Placement::kTop;
  }

  // Collect adgroups in first-seen order.
  std::map<int64_t, size_t> group_index;
  for (size_t i = 1; i < content.lines.size(); ++i) {
    const std::string& line = content.lines[i];
    const int line_number = static_cast<int>(i) + 1;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 8) {
      MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, "expected 8 tab-separated fields"));
      continue;
    }
    auto group_id = ParseInt(fields[0]);
    auto keyword_id = ParseInt(fields[1]);
    auto creative_id = ParseInt(fields[3]);
    auto impressions = ParseInt(fields[4]);
    auto clicks = ParseInt(fields[5]);
    auto true_ctr = ParseDouble(fields[6]);
    bool row_ok = true;
    for (const Status& status :
         {group_id.status(), keyword_id.status(), creative_id.status(), impressions.status(),
          clicks.status(), true_ctr.status()}) {
      if (!status.ok()) {
        MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, status.message()));
        row_ok = false;
        break;
      }
    }
    if (!row_ok) continue;
    if (*clicks < 0 || *impressions < 0 || *clicks > *impressions) {
      MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, "invalid click/impression counts"));
      continue;
    }

    auto [it, inserted] = group_index.try_emplace(*group_id, corpus.adgroups.size());
    if (inserted) {
      AdGroup group;
      group.id = *group_id;
      group.keyword_id = static_cast<int32_t>(*keyword_id);
      group.keyword = fields[2];
      corpus.adgroups.push_back(std::move(group));
    }
    Creative creative;
    creative.id = *creative_id;
    creative.impressions = *impressions;
    creative.clicks = *clicks;
    creative.true_ctr = *true_ctr;
    creative.snippet = SnippetFromField(fields[7]);
    corpus.adgroups[it->second].creatives.push_back(std::move(creative));
    recovery.OnGoodRow();
  }
  return corpus;
}

Result<AdCorpus> LoadAdCorpus(const std::string& path) {
  return LoadAdCorpus(path, LoadOptions{});
}

Status SaveClickLog(const ClickLog& log, const std::string& path) {
  std::ostringstream out;
  int64_t rows = 0;
  out << kClickLogHeader << '\n';
  for (const Session& session : log.sessions) {
    out << session.query_id;
    for (const SessionResult& result : session.results) {
      out << '\t' << result.doc_id << ':' << (result.clicked ? 1 : 0);
    }
    out << '\n';
    ++rows;
  }
  return WriteArtifactAtomic(path, out.str(), rows);
}

Result<ClickLog> LoadClickLog(const std::string& path, const LoadOptions& options,
                              LoadReport* report) {
  MB_ASSIGN_OR_RETURN(const ArtifactContent content,
                      ReadArtifactReported(path, options, report));
  if (content.lines.empty() || content.lines[0] != kClickLogHeader) {
    return MalformedRow(path, 1, "missing clicklog header");
  }
  RowRecovery recovery(path, options, report);
  ClickLog log;
  for (size_t i = 1; i < content.lines.size(); ++i) {
    const std::string& line = content.lines[i];
    const int line_number = static_cast<int>(i) + 1;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    Session session;
    auto query_id = ParseInt(fields[0]);
    if (!query_id.ok()) {
      MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, query_id.status().message()));
      continue;
    }
    session.query_id = static_cast<int32_t>(*query_id);
    bool row_ok = true;
    for (size_t f = 1; f < fields.size(); ++f) {
      const auto parts = Split(fields[f], ':');
      if (parts.size() != 2 || (parts[1] != "0" && parts[1] != "1")) {
        MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, "expected doc_id:clicked cell"));
        row_ok = false;
        break;
      }
      auto doc_id = ParseInt(parts[0]);
      if (!doc_id.ok()) {
        MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, doc_id.status().message()));
        row_ok = false;
        break;
      }
      session.results.push_back(
          SessionResult{static_cast<int32_t>(*doc_id), parts[1] == "1"});
    }
    if (!row_ok) continue;
    log.sessions.push_back(std::move(session));
    recovery.OnGoodRow();
  }
  log.RecomputeBounds();
  return log;
}

Result<ClickLog> LoadClickLog(const std::string& path) {
  return LoadClickLog(path, LoadOptions{});
}

Status SaveFeatureStats(const FeatureStatsDb& db, const std::string& path) {
  std::ostringstream out;
  out << kStatsHeader << '\t' << FormatDouble(db.smoothing(), 6) << '\t' << db.min_count()
      << '\n';
  // ForEach sees both layers, so a pack-backed database round-trips to TSV.
  std::vector<std::pair<std::string_view, const FeatureStat*>> rows;
  rows.reserve(db.size());
  db.ForEach([&rows](std::string_view key, const FeatureStat& stat) {
    rows.emplace_back(key, &stat);
  });
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, stat] : rows) {
    out << key << '\t' << stat->positive << '\t' << stat->total << '\n';
  }
  return WriteArtifactAtomic(path, out.str(), static_cast<int64_t>(rows.size()));
}

Result<FeatureStatsDb> LoadFeatureStats(const std::string& path, const LoadOptions& options,
                                        LoadReport* report) {
  MB_ASSIGN_OR_RETURN(const ArtifactContent content,
                      ReadArtifactReported(path, options, report));
  if (content.lines.empty() || !StartsWith(content.lines[0], kStatsHeader)) {
    return MalformedRow(path, 1, "missing stats header");
  }
  RowRecovery recovery(path, options, report);
  FeatureStatsDb db;
  {
    const auto header_fields = Split(content.lines[0], '\t');
    if (header_fields.size() >= 3) {
      auto smoothing = ParseDouble(header_fields[1]);
      auto min_count = ParseInt(header_fields[2]);
      if (!smoothing.ok()) return MalformedRow(path, 1, smoothing.status().message());
      if (!min_count.ok()) return MalformedRow(path, 1, min_count.status().message());
      db.set_smoothing(*smoothing);
      db.set_min_count(*min_count);
    }
  }
  for (size_t i = 1; i < content.lines.size(); ++i) {
    const std::string& line = content.lines[i];
    const int line_number = static_cast<int>(i) + 1;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 3) {
      MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, "expected 3 fields"));
      continue;
    }
    auto positive = ParseInt(fields[1]);
    auto total = ParseInt(fields[2]);
    if (!positive.ok()) {
      MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, positive.status().message()));
      continue;
    }
    if (!total.ok()) {
      MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, total.status().message()));
      continue;
    }
    if (*positive < 0 || *total < *positive) {
      MB_RETURN_IF_ERROR(recovery.OnBadRow(line_number, "invalid stat counts"));
      continue;
    }
    db.SetStat(fields[0], *positive, *total);
    recovery.OnGoodRow();
  }
  return db;
}

Result<FeatureStatsDb> LoadFeatureStats(const std::string& path) {
  return LoadFeatureStats(path, LoadOptions{});
}

namespace {

void SaveRegistry(std::ostream& out, const char* section, const FeatureRegistry& registry,
                  const std::vector<double>& trained_weights, int64_t* rows) {
  out << section << '\t' << registry.size() << '\n';
  for (FeatureId id = 0; id < registry.size(); ++id) {
    const double trained = id < trained_weights.size() ? trained_weights[id] : 0.0;
    out << registry.NameOf(id) << '\t' << FormatDouble(registry.InitialWeightOf(id), 9)
        << '\t' << FormatDouble(trained, 9) << '\n';
    ++*rows;
  }
}

Status LoadRegistry(const std::vector<std::string>& lines, const std::string& path,
                    const char* section, size_t* index, RowRecovery* recovery,
                    FeatureRegistry* registry, std::vector<double>* trained_weights) {
  if (*index >= lines.size()) {
    return MalformedRow(path, static_cast<int>(lines.size()), "truncated file");
  }
  const int section_line = static_cast<int>(*index) + 1;
  const auto header_fields = Split(lines[*index], '\t');
  ++*index;
  if (header_fields.size() != 2 || header_fields[0] != section) {
    return MalformedRow(path, section_line, std::string("expected section ") + section);
  }
  auto count = ParseInt(header_fields[1]);
  if (!count.ok()) return MalformedRow(path, section_line, count.status().message());
  for (int64_t i = 0; i < *count; ++i) {
    if (*index >= lines.size()) {
      return MalformedRow(path, static_cast<int>(lines.size()), "truncated section");
    }
    const int line_number = static_cast<int>(*index) + 1;
    const auto fields = Split(lines[*index], '\t');
    ++*index;
    if (fields.size() != 3) {
      MB_RETURN_IF_ERROR(recovery->OnBadRow(line_number, "expected 3 fields"));
      continue;
    }
    auto initial = ParseDouble(fields[1]);
    auto trained = ParseDouble(fields[2]);
    if (!initial.ok()) {
      MB_RETURN_IF_ERROR(recovery->OnBadRow(line_number, initial.status().message()));
      continue;
    }
    if (!trained.ok()) {
      MB_RETURN_IF_ERROR(recovery->OnBadRow(line_number, trained.status().message()));
      continue;
    }
    registry->Intern(fields[0], *initial);
    trained_weights->push_back(*trained);
    recovery->OnGoodRow();
  }
  return Status::OK();
}

}  // namespace

Status SaveClassifier(const SnippetClassifierModel& model, const FeatureRegistry& t_registry,
                      const FeatureRegistry& p_registry, const std::string& path) {
  if (model.t_weights.size() != t_registry.size() ||
      model.p_weights.size() != p_registry.size()) {
    return Status::InvalidArgument("SaveClassifier: weight/registry size mismatch");
  }
  std::ostringstream out;
  int64_t rows = 0;
  out << kModelHeader << '\t' << FormatDouble(model.bias, 9) << '\n';
  SaveRegistry(out, "T", t_registry, model.t_weights, &rows);
  SaveRegistry(out, "P", p_registry, model.p_weights, &rows);
  return WriteArtifactAtomic(path, out.str(), rows);
}

Result<SavedClassifier> LoadClassifier(const std::string& path, const LoadOptions& options,
                                       LoadReport* report) {
  MB_ASSIGN_OR_RETURN(const ArtifactContent content,
                      ReadArtifactReported(path, options, report));
  if (content.lines.empty() || !StartsWith(content.lines[0], kModelHeader)) {
    return MalformedRow(path, 1, "missing classifier header");
  }
  RowRecovery recovery(path, options, report);
  SavedClassifier saved;
  {
    const auto header_fields = Split(content.lines[0], '\t');
    if (header_fields.size() != 2) return MalformedRow(path, 1, "expected bias in header");
    auto bias = ParseDouble(header_fields[1]);
    if (!bias.ok()) return MalformedRow(path, 1, bias.status().message());
    saved.model.bias = *bias;
  }
  size_t index = 1;
  MB_RETURN_IF_ERROR(LoadRegistry(content.lines, path, "T", &index, &recovery,
                                  &saved.t_registry, &saved.model.t_weights));
  MB_RETURN_IF_ERROR(LoadRegistry(content.lines, path, "P", &index, &recovery,
                                  &saved.p_registry, &saved.model.p_weights));
  return saved;
}

Result<SavedClassifier> LoadClassifier(const std::string& path) {
  return LoadClassifier(path, LoadOptions{});
}

}  // namespace microbrowse
