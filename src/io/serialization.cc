// Copyright 2026 The Microbrowse Authors

#include "io/serialization.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace microbrowse {

namespace {

constexpr char kCorpusHeader[] = "#microbrowse-adcorpus-v1";
constexpr char kClickLogHeader[] = "#microbrowse-clicklog-v1";
constexpr char kStatsHeader[] = "#microbrowse-stats-v1";
constexpr char kModelHeader[] = "#microbrowse-classifier-v1";

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path, std::ios::out | std::ios::trunc);
  if (!out->is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return Status::OK();
}

Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return Status::OK();
}

Status MalformedRow(const std::string& path, int line_number, const std::string& why) {
  return Status::InvalidArgument(
      StrFormat("%s:%d: %s", path.c_str(), line_number, why.c_str()));
}

/// Joins a snippet's lines with " | " (tokens are whitespace-joined).
std::string SnippetToField(const Snippet& snippet) {
  std::vector<std::string> lines;
  for (int l = 0; l < snippet.num_lines(); ++l) {
    lines.push_back(Join(snippet.line(l), " "));
  }
  return Join(lines, " | ");
}

/// Inverse of SnippetToField.
Snippet SnippetFromField(const std::string& field) {
  std::vector<std::vector<std::string>> token_lines;
  for (const std::string& line : Split(field, '|')) {
    token_lines.push_back(SplitWhitespace(line));
  }
  return Snippet::FromTokens(std::move(token_lines));
}

Result<int64_t> ParseInt(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  return value;
}

}  // namespace

Status SaveAdCorpus(const AdCorpus& corpus, const std::string& path) {
  std::ofstream out;
  MB_RETURN_IF_ERROR(OpenForWrite(path, &out));
  out << kCorpusHeader << '\t' << PlacementName(corpus.placement) << '\n';
  for (const AdGroup& group : corpus.adgroups) {
    for (const Creative& creative : group.creatives) {
      out << group.id << '\t' << group.keyword_id << '\t' << group.keyword << '\t'
          << creative.id << '\t' << creative.impressions << '\t' << creative.clicks << '\t'
          << FormatDouble(creative.true_ctr, 8) << '\t' << SnippetToField(creative.snippet)
          << '\n';
    }
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<AdCorpus> LoadAdCorpus(const std::string& path) {
  std::ifstream in;
  MB_RETURN_IF_ERROR(OpenForRead(path, &in));
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, kCorpusHeader)) {
    return MalformedRow(path, 1, "missing adcorpus header");
  }
  AdCorpus corpus;
  {
    const auto header_fields = Split(line, '\t');
    corpus.placement = header_fields.size() > 1 && header_fields[1] == "rhs"
                           ? Placement::kRhs
                           : Placement::kTop;
  }

  // Collect adgroups in first-seen order.
  std::map<int64_t, size_t> group_index;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 8) {
      return MalformedRow(path, line_number, "expected 8 tab-separated fields");
    }
    auto group_id = ParseInt(fields[0]);
    auto keyword_id = ParseInt(fields[1]);
    auto creative_id = ParseInt(fields[3]);
    auto impressions = ParseInt(fields[4]);
    auto clicks = ParseInt(fields[5]);
    auto true_ctr = ParseDouble(fields[6]);
    for (const Status& status :
         {group_id.status(), keyword_id.status(), creative_id.status(), impressions.status(),
          clicks.status(), true_ctr.status()}) {
      if (!status.ok()) return MalformedRow(path, line_number, status.message());
    }
    if (*clicks < 0 || *impressions < 0 || *clicks > *impressions) {
      return MalformedRow(path, line_number, "invalid click/impression counts");
    }

    auto [it, inserted] = group_index.try_emplace(*group_id, corpus.adgroups.size());
    if (inserted) {
      AdGroup group;
      group.id = *group_id;
      group.keyword_id = static_cast<int32_t>(*keyword_id);
      group.keyword = fields[2];
      corpus.adgroups.push_back(std::move(group));
    }
    Creative creative;
    creative.id = *creative_id;
    creative.impressions = *impressions;
    creative.clicks = *clicks;
    creative.true_ctr = *true_ctr;
    creative.snippet = SnippetFromField(fields[7]);
    corpus.adgroups[it->second].creatives.push_back(std::move(creative));
  }
  return corpus;
}

Status SaveClickLog(const ClickLog& log, const std::string& path) {
  std::ofstream out;
  MB_RETURN_IF_ERROR(OpenForWrite(path, &out));
  out << kClickLogHeader << '\n';
  for (const Session& session : log.sessions) {
    out << session.query_id;
    for (const SessionResult& result : session.results) {
      out << '\t' << result.doc_id << ':' << (result.clicked ? 1 : 0);
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ClickLog> LoadClickLog(const std::string& path) {
  std::ifstream in;
  MB_RETURN_IF_ERROR(OpenForRead(path, &in));
  std::string line;
  if (!std::getline(in, line) || line != kClickLogHeader) {
    return MalformedRow(path, 1, "missing clicklog header");
  }
  ClickLog log;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    Session session;
    auto query_id = ParseInt(fields[0]);
    if (!query_id.ok()) return MalformedRow(path, line_number, query_id.status().message());
    session.query_id = static_cast<int32_t>(*query_id);
    for (size_t f = 1; f < fields.size(); ++f) {
      const auto parts = Split(fields[f], ':');
      if (parts.size() != 2 || (parts[1] != "0" && parts[1] != "1")) {
        return MalformedRow(path, line_number, "expected doc_id:clicked cell");
      }
      auto doc_id = ParseInt(parts[0]);
      if (!doc_id.ok()) return MalformedRow(path, line_number, doc_id.status().message());
      session.results.push_back(
          SessionResult{static_cast<int32_t>(*doc_id), parts[1] == "1"});
    }
    log.sessions.push_back(std::move(session));
  }
  log.RecomputeBounds();
  return log;
}

Status SaveFeatureStats(const FeatureStatsDb& db, const std::string& path) {
  std::ofstream out;
  MB_RETURN_IF_ERROR(OpenForWrite(path, &out));
  out << kStatsHeader << '\t' << FormatDouble(db.smoothing(), 6) << '\t' << db.min_count()
      << '\n';
  std::vector<const std::pair<const std::string, FeatureStat>*> rows;
  rows.reserve(db.stats().size());
  for (const auto& entry : db.stats()) rows.push_back(&entry);
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* row : rows) {
    out << row->first << '\t' << row->second.positive << '\t' << row->second.total << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<FeatureStatsDb> LoadFeatureStats(const std::string& path) {
  std::ifstream in;
  MB_RETURN_IF_ERROR(OpenForRead(path, &in));
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, kStatsHeader)) {
    return MalformedRow(path, 1, "missing stats header");
  }
  FeatureStatsDb db;
  {
    const auto header_fields = Split(line, '\t');
    if (header_fields.size() >= 3) {
      auto smoothing = ParseDouble(header_fields[1]);
      auto min_count = ParseInt(header_fields[2]);
      if (!smoothing.ok()) return MalformedRow(path, 1, smoothing.status().message());
      if (!min_count.ok()) return MalformedRow(path, 1, min_count.status().message());
      db.set_smoothing(*smoothing);
      db.set_min_count(*min_count);
    }
  }
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 3) return MalformedRow(path, line_number, "expected 3 fields");
    auto positive = ParseInt(fields[1]);
    auto total = ParseInt(fields[2]);
    if (!positive.ok()) return MalformedRow(path, line_number, positive.status().message());
    if (!total.ok()) return MalformedRow(path, line_number, total.status().message());
    if (*positive < 0 || *total < *positive) {
      return MalformedRow(path, line_number, "invalid stat counts");
    }
    // Reconstruct the counts through the public observation API.
    for (int64_t i = 0; i < *positive; ++i) db.AddObservation(fields[0], +1);
    for (int64_t i = 0; i < *total - *positive; ++i) db.AddObservation(fields[0], -1);
  }
  return db;
}

namespace {

void SaveRegistry(std::ofstream& out, const char* section, const FeatureRegistry& registry,
                  const std::vector<double>& trained_weights) {
  out << section << '\t' << registry.size() << '\n';
  for (FeatureId id = 0; id < registry.size(); ++id) {
    const double trained = id < trained_weights.size() ? trained_weights[id] : 0.0;
    out << registry.NameOf(id) << '\t' << FormatDouble(registry.InitialWeightOf(id), 9)
        << '\t' << FormatDouble(trained, 9) << '\n';
  }
}

Status LoadRegistry(std::ifstream& in, const std::string& path, const char* section,
                    int* line_number, FeatureRegistry* registry,
                    std::vector<double>* trained_weights) {
  std::string line;
  if (!std::getline(in, line)) return MalformedRow(path, *line_number, "truncated file");
  ++*line_number;
  const auto header_fields = Split(line, '\t');
  if (header_fields.size() != 2 || header_fields[0] != section) {
    return MalformedRow(path, *line_number, std::string("expected section ") + section);
  }
  auto count = ParseInt(header_fields[1]);
  if (!count.ok()) return MalformedRow(path, *line_number, count.status().message());
  for (int64_t i = 0; i < *count; ++i) {
    if (!std::getline(in, line)) return MalformedRow(path, *line_number, "truncated section");
    ++*line_number;
    const auto fields = Split(line, '\t');
    if (fields.size() != 3) return MalformedRow(path, *line_number, "expected 3 fields");
    auto initial = ParseDouble(fields[1]);
    auto trained = ParseDouble(fields[2]);
    if (!initial.ok()) return MalformedRow(path, *line_number, initial.status().message());
    if (!trained.ok()) return MalformedRow(path, *line_number, trained.status().message());
    registry->Intern(fields[0], *initial);
    trained_weights->push_back(*trained);
  }
  return Status::OK();
}

}  // namespace

Status SaveClassifier(const SnippetClassifierModel& model, const FeatureRegistry& t_registry,
                      const FeatureRegistry& p_registry, const std::string& path) {
  if (model.t_weights.size() != t_registry.size() ||
      model.p_weights.size() != p_registry.size()) {
    return Status::InvalidArgument("SaveClassifier: weight/registry size mismatch");
  }
  std::ofstream out;
  MB_RETURN_IF_ERROR(OpenForWrite(path, &out));
  out << kModelHeader << '\t' << FormatDouble(model.bias, 9) << '\n';
  SaveRegistry(out, "T", t_registry, model.t_weights);
  SaveRegistry(out, "P", p_registry, model.p_weights);
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<SavedClassifier> LoadClassifier(const std::string& path) {
  std::ifstream in;
  MB_RETURN_IF_ERROR(OpenForRead(path, &in));
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, kModelHeader)) {
    return MalformedRow(path, 1, "missing classifier header");
  }
  SavedClassifier saved;
  {
    const auto header_fields = Split(line, '\t');
    if (header_fields.size() != 2) return MalformedRow(path, 1, "expected bias in header");
    auto bias = ParseDouble(header_fields[1]);
    if (!bias.ok()) return MalformedRow(path, 1, bias.status().message());
    saved.model.bias = *bias;
  }
  int line_number = 1;
  MB_RETURN_IF_ERROR(LoadRegistry(in, path, "T", &line_number, &saved.t_registry,
                                  &saved.model.t_weights));
  MB_RETURN_IF_ERROR(LoadRegistry(in, path, "P", &line_number, &saved.p_registry,
                                  &saved.model.p_weights));
  return saved;
}

}  // namespace microbrowse
