// Copyright 2026 The Microbrowse Authors

#include "io/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace microbrowse {

namespace {

constexpr char kFooterPrefix[] = "#checksum ";

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IOError("open for fsync failed: " + path + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed: " + path + ": " + std::strerror(saved_errno));
  }
  return Status::OK();
}

Status WriteFileAtomicImpl(const std::string& path, std::string_view payload) {
  const std::string temp = path + ".tmp";
  MB_FAILPOINT("io.write.open");
  std::ofstream out(temp, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + temp + ": " + std::strerror(errno));
  }
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  // ENOSPC and friends only surface through the stream state after the
  // flush — an unchecked close would happily report a truncated file as
  // success.
  if (!out.good()) {
    return Status::IOError("write failed: " + temp);
  }
  MB_FAILPOINT("io.write.flush");
  out.close();
  if (out.fail()) {
    return Status::IOError("close failed: " + temp);
  }
  MB_FAILPOINT("io.write.fsync");
  MB_RETURN_IF_ERROR(FsyncPath(temp, O_RDONLY));
  MB_FAILPOINT("io.write.rename");
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + temp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  // Persist the directory entry so the rename survives a power cut. A
  // failure here is logged, not fatal: the data file itself is durable.
  const Status dir_status = FsyncPath(DirOf(path), O_RDONLY | O_DIRECTORY);
  if (!dir_status.ok()) {
    MB_LOG(kWarning) << "directory fsync after rename: " << dir_status.ToString();
  }
  return Status::OK();
}

}  // namespace

uint64_t ArtifactChecksum(std::string_view payload) { return Fnv1a64(payload); }

Status WriteFileAtomic(const std::string& path, std::string_view payload) {
  const Status status = WriteFileAtomicImpl(path, payload);
  if (!status.ok()) {
    std::remove((path + ".tmp").c_str());  // Best effort; the old file is intact.
  }
  return status;
}

Status WriteArtifactAtomic(const std::string& path, std::string_view payload, int64_t rows) {
  if (!payload.empty() && payload.back() != '\n') {
    return Status::InvalidArgument("artifact payload must end with a newline: " + path);
  }
  std::string full(payload);
  full += StrFormat("%s%016llx %lld\n", kFooterPrefix,
                    static_cast<unsigned long long>(ArtifactChecksum(payload)),
                    static_cast<long long>(rows));
  return WriteFileAtomic(path, full);
}

Result<ArtifactContent> ReadArtifact(const std::string& path, const LoadOptions& options) {
  MB_FAILPOINT("io.read.open");
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path + ": " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed: " + path);
  }
  std::string data = std::move(buffer).str();

  ArtifactContent content;
  std::string_view payload = data;

  // Locate a trailing "#checksum <hex> <rows>" footer line, if any.
  std::string_view footer;
  {
    std::string_view view = data;
    while (!view.empty() && view.back() == '\n') view.remove_suffix(1);
    const size_t line_start = view.find_last_of('\n') + 1;  // 0 when single-line.
    const std::string_view last_line = view.substr(line_start);
    if (StartsWith(last_line, kFooterPrefix)) {
      footer = last_line;
      payload = std::string_view(data).substr(0, line_start);
    }
  }

  if (!footer.empty()) {
    content.checksum_present = true;
    bool footer_ok = false;
    uint64_t declared_hash = 0;
    int64_t declared_rows = -1;
    const auto fields = SplitWhitespace(footer.substr(std::strlen(kFooterPrefix)));
    if (fields.size() == 2) {
      const auto [p1, e1] = std::from_chars(
          fields[0].data(), fields[0].data() + fields[0].size(), declared_hash, 16);
      const auto [p2, e2] = std::from_chars(fields[1].data(),
                                            fields[1].data() + fields[1].size(), declared_rows);
      footer_ok = e1 == std::errc() && p1 == fields[0].data() + fields[0].size() &&
                  e2 == std::errc() && p2 == fields[1].data() + fields[1].size();
    }
    content.declared_rows = footer_ok ? declared_rows : -1;
    if (options.verify_checksum) {
      content.checksum_ok = footer_ok && declared_hash == ArtifactChecksum(payload);
      const Status fp = failpoint::Check("io.read.checksum");
      if (!fp.ok()) content.checksum_ok = false;
      if (!content.checksum_ok) {
        if (options.recovery == LoadOptions::Recovery::kStrict) {
          return Status::IOError(
              StrFormat("%s: checksum mismatch — artifact is corrupt or truncated "
                        "(expected %016llx over %zu payload bytes)",
                        path.c_str(), static_cast<unsigned long long>(declared_hash),
                        payload.size()));
        }
        MB_LOG(kWarning) << path << ": checksum mismatch; salvaging rows (skip_and_log)";
      }
    }
  }

  content.lines = Split(payload, '\n');
  if (!content.lines.empty() && content.lines.back().empty()) {
    content.lines.pop_back();  // Trailing newline artifact of Split.
  }
  return content;
}

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("CreateDirectories: empty path");
  std::string prefix;
  for (const std::string& part : Split(path, '/')) {
    if (prefix.empty() && part.empty()) {
      prefix = "/";
      continue;
    }
    if (part.empty()) continue;  // "a//b" and trailing '/'.
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    prefix += part;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir failed: " + prefix + ": " + std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace microbrowse
