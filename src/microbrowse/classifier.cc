// Copyright 2026 The Microbrowse Authors

#include "microbrowse/classifier.h"

#include <algorithm>
#include <numeric>

#include "microbrowse/feature_keys.h"
#include "ml/csr.h"
#include "text/ngram.h"

namespace microbrowse {

namespace {

LrOptions DefaultTLr() {
  LrOptions options;
  options.solver = LrSolver::kAdaGrad;
  options.l1 = 2e-3;
  options.l2 = 1e-6;
  options.learning_rate = 0.15;
  options.epochs = 12;
  return options;
}

LrOptions DefaultPLr() {
  LrOptions options;
  options.solver = LrSolver::kAdaGrad;
  // The P phase trains the *delta* against the stats-database init (see
  // BuildPDataset), so regularisation pulls toward the init, not zero:
  // no L1 (the position space is tiny and dense), moderate L2.
  options.l1 = 0.0;
  options.l2 = 0.02;
  options.learning_rate = 0.1;
  options.epochs = 8;
  options.fit_bias = false;  // The T phase owns the bias.
  return options;
}

ClassifierConfig BaseConfig(std::string name) {
  ClassifierConfig config;
  config.name = std::move(name);
  config.lr = DefaultTLr();
  config.position_lr = DefaultPLr();
  return config;
}

}  // namespace

ClassifierConfig ClassifierConfig::M1() {
  ClassifierConfig config = BaseConfig("M1");
  config.use_term_features = true;
  config.use_rewrite_features = false;
  config.use_position = false;
  return config;
}

ClassifierConfig ClassifierConfig::M2() {
  ClassifierConfig config = BaseConfig("M2");
  config.use_term_features = true;
  config.use_rewrite_features = false;
  config.use_position = true;
  config.term_position_conjunction = true;
  return config;
}

ClassifierConfig ClassifierConfig::M3() {
  ClassifierConfig config = BaseConfig("M3");
  config.use_term_features = false;
  config.use_rewrite_features = true;
  config.use_position = false;
  return config;
}

ClassifierConfig ClassifierConfig::M4() {
  ClassifierConfig config = BaseConfig("M4");
  config.use_term_features = false;
  config.use_rewrite_features = true;
  config.use_position = true;
  config.leftover_position_conjunction = true;  // Leftover terms mirror M2.
  return config;
}

ClassifierConfig ClassifierConfig::M5() {
  ClassifierConfig config = BaseConfig("M5");
  config.use_term_features = true;
  config.use_rewrite_features = true;
  config.use_position = false;
  return config;
}

ClassifierConfig ClassifierConfig::M6() {
  ClassifierConfig config = BaseConfig("M6");
  config.use_term_features = true;
  config.use_rewrite_features = true;
  config.use_position = true;
  config.term_position_conjunction = true;  // The term part mirrors M2.
  return config;
}

std::vector<ClassifierConfig> ClassifierConfig::AllPaperModels() {
  return {M1(), M2(), M3(), M4(), M5(), M6()};
}

namespace {

/// Interns a T feature with its warm-start log-odds.
FeatureId InternT(const std::string& key, const FeatureStatsDb& db,
                  const ClassifierConfig& config, FeatureRegistry* registry) {
  return registry->Intern(key, config.init_from_stats ? db.LogOdds(key) : 0.0);
}

/// Interns a P feature with its warm-start odds ratio (neutral = 1).
FeatureId InternP(const std::string& key, const FeatureStatsDb& db,
                  const ClassifierConfig& config, FeatureRegistry* registry) {
  return registry->Intern(key, config.init_from_stats ? db.OddsRatio(key) : 1.0);
}

}  // namespace

void ExtractPairOccurrences(const Snippet& first, const Snippet& second,
                            const FeatureStatsDb& db, const ClassifierConfig& config,
                            FeatureRegistry* t_registry, FeatureRegistry* p_registry,
                            std::vector<CoupledOccurrence>* occurrences) {
  auto add_term_impl = [&](const TermSpan& span, double sign, bool conjunction) {
    CoupledOccurrence occ;
    if (config.use_position && conjunction) {
      occ.t = InternT(TermConjunctionKey(span.text, MakePositionKey(span)), db, config,
                      t_registry);
    } else {
      occ.t = InternT(TermKey(span.text), db, config, t_registry);
      if (config.use_position) {
        occ.p = InternP(TermPositionKey(MakePositionKey(span)), db, config, p_registry);
      }
    }
    occ.sign = sign;
    occurrences->push_back(occ);
  };
  auto add_term = [&](const TermSpan& span, double sign) {
    add_term_impl(span, sign, config.leftover_position_conjunction);
  };
  auto add_full_term = [&](const TermSpan& span, double sign) {
    add_term_impl(span, sign, config.term_position_conjunction);
  };
  // Emits every 1..max_ngram sub-gram of a span, mirroring the granularity
  // of the full term extraction (a single span-level feature would be far
  // sparser than the n-gram features the term models see).
  auto add_span_ngrams = [&](const Snippet& snippet, const TermSpan& span, double sign) {
    for (const TermSpan& sub :
         ExtractNGramsInWindow(snippet, span.line, span.pos, span.len, config.max_ngram)) {
      add_term(sub, sign);
    }
  };

  if (config.use_term_features && !config.diff_terms_only) {
    for (const TermSpan& span : ExtractNGrams(first, config.max_ngram)) {
      add_full_term(span, +1.0);
    }
    for (const TermSpan& span : ExtractNGrams(second, config.max_ngram)) {
      add_full_term(span, -1.0);
    }
  }
  if (config.use_term_features && config.diff_terms_only) {
    RewriteMatchOptions match_options;
    match_options.max_ngram = config.max_ngram;
    match_options.strategy = config.matching;
    const PairDiff diff = MatchRewrites(first, second, &db, match_options);
    for (const RewriteMatch& rewrite : diff.rewrites) {
      add_span_ngrams(first, rewrite.r_span, +1.0);
      add_span_ngrams(second, rewrite.s_span, -1.0);
    }
    for (const TermSpan& span : diff.r_only) add_term(span, +1.0);
    for (const TermSpan& span : diff.s_only) add_term(span, -1.0);
  }

  if (config.use_rewrite_features) {
    RewriteMatchOptions match_options;
    match_options.max_ngram = config.max_ngram;
    match_options.strategy = config.matching;
    const PairDiff diff = MatchRewrites(first, second, &db, match_options);
    for (const RewriteMatch& rewrite : diff.rewrites) {
      // Raw direction: second's phrase rewritten into first's phrase.
      const SignedKey key = RewriteKey(rewrite.s_span.text, rewrite.r_span.text);
      const bool thin =
          config.rewrite_min_support > 0 && db.Count(key.key) < config.rewrite_min_support;
      if (config.drop_matched_rewrites || thin) {
        // Decompose the matched pair into signed term occurrences:
        // always under the drop_matched_rewrites ablation, and for tail
        // rewrites below the support threshold (the per-phrase term
        // statistics are far denser than the quadratic rewrite space).
        add_span_ngrams(first, rewrite.r_span, +1.0);
        add_span_ngrams(second, rewrite.s_span, -1.0);
        continue;
      }
      CoupledOccurrence occ;
      occ.t = InternT(key.key, db, config, t_registry);
      if (config.use_position) {
        occ.p = InternP(RewritePositionKey(MakePositionKey(rewrite.r_span),
                                           MakePositionKey(rewrite.s_span)),
                        db, config, p_registry);
      }
      occ.sign = key.sign;
      occurrences->push_back(occ);
    }
    for (const TermSpan& span : diff.r_only) add_term(span, +1.0);
    for (const TermSpan& span : diff.s_only) add_term(span, -1.0);
  }
}

CoupledDataset BuildClassifierDataset(const PairCorpus& corpus, const FeatureStatsDb& db,
                                      const ClassifierConfig& config, uint64_t seed) {
  CoupledDataset dataset;
  dataset.examples.reserve(corpus.pairs.size());
  Rng rng(seed);
  for (const SnippetPair& pair : corpus.pairs) {
    const bool swap = rng.Bernoulli(0.5);
    const SnippetObservation& first = swap ? pair.s : pair.r;
    const SnippetObservation& second = swap ? pair.r : pair.s;
    CoupledExample example;
    example.label = first.serve_weight > second.serve_weight ? 1.0 : 0.0;
    ExtractPairOccurrences(first.snippet, second.snippet, db, config, &dataset.t_registry,
                           &dataset.p_registry, &example.occurrences);
    dataset.examples.push_back(std::move(example));
  }
  return dataset;
}

CoupledCsr FlattenCoupledDataset(const CoupledDataset& dataset) {
  CoupledCsr csr;
  size_t total = 0;
  for (const CoupledExample& example : dataset.examples) total += example.occurrences.size();
  csr.row_offsets.reserve(dataset.examples.size() + 1);
  csr.t_ids.reserve(total);
  csr.p_ids.reserve(total);
  csr.signs.reserve(total);
  csr.labels.reserve(dataset.examples.size());
  csr.row_offsets.push_back(0);
  for (const CoupledExample& example : dataset.examples) {
    for (const CoupledOccurrence& occ : example.occurrences) {
      csr.t_ids.push_back(occ.t);
      csr.p_ids.push_back(occ.p);
      csr.signs.push_back(occ.sign);
    }
    csr.labels.push_back(example.label);
    csr.row_offsets.push_back(csr.t_ids.size());
  }
  csr.t_init = dataset.t_registry.InitialWeights();
  csr.p_init = dataset.p_registry.InitialWeights();
  return csr;
}

double SnippetClassifierModel::Score(const CoupledExample& example) const {
  double score = bias;
  for (const CoupledOccurrence& occ : example.occurrences) {
    const double t = occ.t < t_weights.size() ? t_weights[occ.t] : 0.0;
    const double p =
        occ.p == kInvalidFeatureId ? 1.0 : (occ.p < p_weights.size() ? p_weights[occ.p] : 1.0);
    score += occ.sign * p * t;
  }
  return score;
}

double SnippetClassifierModel::ScoreRow(const CoupledCsr& csr, size_t row) const {
  double score = bias;
  const size_t end = csr.row_offsets[row + 1];
  for (size_t k = csr.row_offsets[row]; k < end; ++k) {
    const FeatureId t_id = csr.t_ids[k];
    const FeatureId p_id = csr.p_ids[k];
    const double t = t_id < t_weights.size() ? t_weights[t_id] : 0.0;
    const double p =
        p_id == kInvalidFeatureId ? 1.0 : (p_id < p_weights.size() ? p_weights[p_id] : 1.0);
    score += csr.signs[k] * p * t;
  }
  return score;
}

namespace {

/// Finishes one accumulated row into `out`, replicating
/// SparseVector::Finish exactly (sort by id, sum duplicate runs in sorted
/// order, drop zero sums) so phase datasets built here are numerically
/// identical to the historical SparseVector path.
void FinishRowInto(std::vector<FeatureEntry>* scratch, CsrDataset* out) {
  std::sort(scratch->begin(), scratch->end(),
            [](const FeatureEntry& a, const FeatureEntry& b) { return a.id < b.id; });
  size_t i = 0;
  while (i < scratch->size()) {
    const FeatureId id = (*scratch)[i].id;
    double sum = 0.0;
    while (i < scratch->size() && (*scratch)[i].id == id) {
      sum += (*scratch)[i].value;
      ++i;
    }
    if (sum != 0.0) {
      out->ids.push_back(id);
      out->values.push_back(sum);
    }
  }
  out->row_offsets.push_back(out->ids.size());
}

/// Builds the T-phase dataset in CSR form: features are T ids with value
/// sign * P[p] (or sign when positionless).
CsrDataset BuildTCsr(const CoupledCsr& coupled, const std::vector<size_t>& indices,
                     const std::vector<double>& p_values) {
  CsrDataset data;
  data.num_features = coupled.num_t_features();
  data.row_offsets.reserve(indices.size() + 1);
  data.row_offsets.push_back(0);
  std::vector<FeatureEntry> scratch;
  for (size_t idx : indices) {
    scratch.clear();
    const size_t end = coupled.row_offsets[idx + 1];
    for (size_t k = coupled.row_offsets[idx]; k < end; ++k) {
      const FeatureId p_id = coupled.p_ids[k];
      const double p = p_id == kInvalidFeatureId ? 1.0 : p_values[p_id];
      scratch.push_back(FeatureEntry{coupled.t_ids[k], coupled.signs[k] * p});
    }
    data.labels.push_back(coupled.labels[idx]);
    data.weights.push_back(1.0);
    data.offsets.push_back(0.0);
    FinishRowInto(&scratch, &data);
  }
  return data;
}

/// Builds the P-phase dataset in *delta* parameterisation: the effective
/// position factor is P = P_init + delta, so each occurrence contributes
/// sign * T * P_init to the fixed offset and exposes sign * T as the
/// feature value whose weight is delta. Regularising delta toward zero
/// (instead of P itself) anchors the factorisation at the statistics-
/// database initialisation and prevents the multiplicative scale race
/// between the P and T factors.
CsrDataset BuildPCsr(const CoupledCsr& coupled, const std::vector<size_t>& indices,
                     const std::vector<double>& t_values, const std::vector<double>& p_init,
                     double bias) {
  CsrDataset data;
  data.num_features = coupled.num_p_features();
  data.row_offsets.reserve(indices.size() + 1);
  data.row_offsets.push_back(0);
  std::vector<FeatureEntry> scratch;
  for (size_t idx : indices) {
    scratch.clear();
    double offset = bias;
    const size_t end = coupled.row_offsets[idx + 1];
    for (size_t k = coupled.row_offsets[idx]; k < end; ++k) {
      const double value = coupled.signs[k] * t_values[coupled.t_ids[k]];
      const FeatureId p_id = coupled.p_ids[k];
      if (p_id == kInvalidFeatureId) {
        offset += value;
      } else {
        offset += value * p_init[p_id];
        scratch.push_back(FeatureEntry{p_id, value});
      }
    }
    data.labels.push_back(coupled.labels[idx]);
    data.weights.push_back(1.0);
    data.offsets.push_back(offset);
    FinishRowInto(&scratch, &data);
  }
  return data;
}

}  // namespace

Result<SnippetClassifierModel> TrainSnippetClassifier(const CoupledDataset& dataset,
                                                      const ClassifierConfig& config,
                                                      const std::vector<size_t>& train_indices) {
  if (dataset.examples.empty()) {
    return Status::InvalidArgument("TrainSnippetClassifier: empty dataset");
  }
  return TrainSnippetClassifier(FlattenCoupledDataset(dataset), config, train_indices);
}

Result<SnippetClassifierModel> TrainSnippetClassifier(const CoupledCsr& csr,
                                                      const ClassifierConfig& config,
                                                      const std::vector<size_t>& train_indices) {
  if (csr.empty()) {
    return Status::InvalidArgument("TrainSnippetClassifier: empty dataset");
  }
  std::vector<size_t> indices = train_indices;
  if (indices.empty()) {
    indices.resize(csr.size());
    std::iota(indices.begin(), indices.end(), 0);
  }

  SnippetClassifierModel model;
  model.t_weights = csr.t_init;
  model.p_weights = csr.p_init;

  if (!config.use_position) {
    const CsrDataset t_data = BuildTCsr(csr, indices, model.p_weights);
    auto trained = TrainLogisticRegression(t_data, config.lr, &model.t_weights);
    if (!trained.ok()) return trained.status();
    model.t_weights = trained->weights();
    model.bias = trained->bias();
    return model;
  }

  LrOptions p_options = config.position_lr;
  p_options.fit_bias = false;  // Enforced regardless of caller settings.
  const std::vector<double>& p_init = csr.p_init;
  std::vector<double> p_delta(p_init.size(), 0.0);
  // Alternating minimisation of Eq. 9, position factor first: P is fit
  // against the statistics-database-calibrated T, then T is retrained
  // consistently with that P. (Ending on a T phase also keeps the bias
  // consistent with the final factor pairing.)
  for (int iteration = 0; iteration < std::max(1, config.coupled_iterations); ++iteration) {
    if (!p_init.empty()) {
      const CsrDataset p_data = BuildPCsr(csr, indices, model.t_weights, p_init, model.bias);
      auto p_trained = TrainLogisticRegression(p_data, p_options, &p_delta);
      if (!p_trained.ok()) return p_trained.status();
      p_delta = p_trained->weights();
      for (size_t j = 0; j < p_init.size(); ++j) model.p_weights[j] = p_init[j] + p_delta[j];
    }

    const CsrDataset t_data = BuildTCsr(csr, indices, model.p_weights);
    auto t_trained = TrainLogisticRegression(t_data, config.lr, &model.t_weights);
    if (!t_trained.ok()) return t_trained.status();
    model.t_weights = t_trained->weights();
    model.bias = t_trained->bias();
  }
  return model;
}

}  // namespace microbrowse
