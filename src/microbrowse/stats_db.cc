// Copyright 2026 The Microbrowse Authors

#include "microbrowse/stats_db.h"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "microbrowse/feature_keys.h"
#include "microbrowse/rewrite.h"
#include "text/ngram.h"

namespace microbrowse {

namespace {

/// Set of n-gram texts in a snippet.
std::unordered_set<std::string> NGramTexts(const Snippet& snippet, int max_ngram) {
  std::unordered_set<std::string> texts;
  for (const TermSpan& span : ExtractNGrams(snippet, max_ngram)) {
    texts.insert(span.text);
  }
  return texts;
}

/// Records term and term-position-conjunction observations for every
/// n-gram of `snippet` whose text is absent from `other_texts`.
void ObserveUniqueTerms(const Snippet& snippet,
                        const std::unordered_set<std::string>& other_texts, int max_ngram,
                        int delta, FeatureStatsDb* out) {
  std::unordered_set<std::string> seen;
  for (const TermSpan& span : ExtractNGrams(snippet, max_ngram)) {
    if (other_texts.count(span.text) != 0) continue;
    // One observation per distinct text for the plain term key (mirroring
    // the set semantics of the original implementation); conjunctions are
    // observed per occurrence since the position is part of the key.
    if (seen.insert(span.text).second) {
      out->AddObservation(TermKey(span.text), delta);
    }
    out->AddObservation(TermConjunctionKey(span.text, MakePositionKey(span)), delta);
  }
}

/// One accumulation pass over pairs [begin, end) of the corpus.
/// `matching_db` (nullable) guides rewrite matching; results go into
/// `out`.
void AccumulateRange(const PairCorpus& corpus, const BuildStatsOptions& options,
                     const FeatureStatsDb* matching_db, size_t begin, size_t end,
                     FeatureStatsDb* out) {
  RewriteMatchOptions match_options;
  match_options.max_ngram = options.max_ngram;

  for (size_t pair_index = begin; pair_index < end; ++pair_index) {
    const SnippetPair& pair = corpus.pairs[pair_index];
    const int delta = pair.delta_sw();

    // --- Term statistics: n-grams unique to one side (plain and
    // position-conjoined variants).
    const auto r_texts = NGramTexts(pair.r.snippet, options.max_ngram);
    const auto s_texts = NGramTexts(pair.s.snippet, options.max_ngram);
    ObserveUniqueTerms(pair.r.snippet, s_texts, options.max_ngram, delta, out);
    ObserveUniqueTerms(pair.s.snippet, r_texts, options.max_ngram, -delta, out);

    // --- Rewrite and position statistics from the diff decomposition.
    const PairDiff diff =
        MatchRewrites(pair.r.snippet, pair.s.snippet, matching_db, match_options);
    for (const RewriteMatch& rewrite : diff.rewrites) {
      // Raw direction: S's phrase was rewritten into R's phrase.
      const SignedKey key = RewriteKey(rewrite.s_span.text, rewrite.r_span.text);
      out->AddObservation(key.key, static_cast<int>(key.sign) * delta);

      const PositionKey r_pos = MakePositionKey(rewrite.r_span);
      const PositionKey s_pos = MakePositionKey(rewrite.s_span);
      if (!(r_pos == s_pos)) {
        // Ordered position-pair statistic (source = S side, target = R
        // side): empirical probability that a rewrite landing at r_pos
        // coincides with R being the better creative.
        out->AddObservation(RewritePositionKey(r_pos, s_pos), delta);
      }
    }
    // Term-position statistics from the unmatched residue.
    for (const TermSpan& span : diff.r_only) {
      out->AddObservation(TermPositionKey(MakePositionKey(span)), delta);
    }
    for (const TermSpan& span : diff.s_only) {
      out->AddObservation(TermPositionKey(MakePositionKey(span)), -delta);
    }
  }
}

/// Below this corpus size one thread wins: the per-chunk databases and the
/// merge cost more than the accumulation they split.
constexpr size_t kParallelStatsThreshold = 256;

/// One accumulation pass over the whole corpus, parallelised over a fixed
/// chunk grid when num_threads > 1. Each chunk accumulates into a private
/// database; the chunk databases are then merged by key, sharded on the
/// key hash so shards can merge in parallel without locking. The merged
/// counts are integer sums, identical for any thread and shard count.
void AccumulatePass(const PairCorpus& corpus, const BuildStatsOptions& options,
                    const FeatureStatsDb* matching_db, FeatureStatsDb* out) {
  const size_t n = corpus.pairs.size();
  if (options.num_threads <= 1 || n < kParallelStatsThreshold) {
    AccumulateRange(corpus, options, matching_db, 0, n, out);
    return;
  }
  const size_t n_chunks = std::min<size_t>(64, std::max<size_t>(1, n / 32));
  std::vector<FeatureStatsDb> chunks(n_chunks);
  ThreadPool pool(static_cast<size_t>(options.num_threads));
  (void)pool.ParallelFor(n_chunks, [&](size_t c) {
    AccumulateRange(corpus, options, matching_db, c * n / n_chunks, (c + 1) * n / n_chunks,
                    &chunks[c]);
  });
  const size_t n_shards = std::min<size_t>(static_cast<size_t>(options.num_threads), 16);
  std::vector<std::unordered_map<std::string, FeatureStat>> shards(n_shards);
  (void)pool.ParallelFor(n_shards, [&](size_t s) {
    for (const FeatureStatsDb& chunk : chunks) {
      for (const auto& [key, stat] : chunk.stats()) {
        if (std::hash<std::string>{}(key) % n_shards != s) continue;
        FeatureStat& merged = shards[s][key];
        merged.positive += stat.positive;
        merged.total += stat.total;
      }
    }
  });
  for (auto& shard : shards) out->mutable_stats().merge(shard);
}

}  // namespace

void AccumulateFeatureStats(const PairCorpus& corpus, const BuildStatsOptions& options,
                            const FeatureStatsDb* matching_db, FeatureStatsDb* out) {
  if (out->stats().empty()) {
    // Fresh target: AccumulatePass's splice-merge fast path applies.
    AccumulatePass(corpus, options, matching_db, out);
    return;
  }
  // Non-empty target (a later shard): accumulate locally, then add counts.
  // AccumulatePass's unordered_map::merge would silently drop counts for
  // keys the target already holds.
  FeatureStatsDb local;
  AccumulatePass(corpus, options, matching_db, &local);
  for (const auto& [key, stat] : local.stats()) {
    out->AddCounts(key, stat.positive, stat.total);
  }
}

FeatureStatsDb BuildFeatureStats(const PairCorpus& corpus, const BuildStatsOptions& options) {
  TraceSpan span("mb.stats.build");
  FeatureStatsDb db;
  db.set_smoothing(options.smoothing);
  db.set_min_count(options.min_count);
  const int passes = options.matching_passes < 1 ? 1 : options.matching_passes;
  for (int pass = 0; pass < passes; ++pass) {
    TraceSpan pass_span("mb.stats.pass");
    FeatureStatsDb next;
    next.set_smoothing(options.smoothing);
    next.set_min_count(options.min_count);
    AccumulatePass(corpus, options, pass == 0 ? nullptr : &db, &next);
    db = std::move(next);
  }
  // Aggregate updates from the (single-threaded) driver, so values are
  // identical for any BuildStatsOptions::num_threads.
  static Counter* passes_counter = MetricRegistry::Global().GetCounter("mb.stats.build_passes");
  static Counter* pairs_counter =
      MetricRegistry::Global().GetCounter("mb.stats.pairs_observed");
  static Gauge* features_gauge = MetricRegistry::Global().GetGauge("mb.stats.features");
  passes_counter->Increment(passes);
  pairs_counter->Increment(static_cast<int64_t>(corpus.pairs.size()) * passes);
  features_gauge->Set(static_cast<double>(db.size()));
  return db;
}

}  // namespace microbrowse
