// Copyright 2026 The Microbrowse Authors

#include "microbrowse/optimizer.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "common/string_util.h"

namespace microbrowse {

namespace {

/// One point in the search space: a phrase index per block plus the
/// arrangement (block order, how many blocks line 1 takes, and whether the
/// first block rides on the brand line).
struct Assignment {
  std::vector<size_t> phrase;      ///< phrase[b] indexes candidates.blocks[b].
  std::vector<size_t> order;       ///< Permutation of block indices.
  int line1_blocks = 1;            ///< Blocks on line 1 (after optional line-0 block).
  bool block_on_line0 = false;     ///< First ordered block appended to the brand line.
};

Snippet Materialize(const SnippetCandidates& candidates, const Assignment& assignment) {
  std::vector<std::vector<std::string>> lines(3);
  for (const std::string& token : SplitWhitespace(candidates.brand)) {
    lines[0].push_back(token);
  }
  size_t index = 0;
  auto emit = [&](int line) {
    const size_t block = assignment.order[index++];
    for (const std::string& token :
         SplitWhitespace(candidates.blocks[block][assignment.phrase[block]])) {
      lines[line].push_back(token);
    }
  };
  const size_t total = assignment.order.size();
  if (assignment.block_on_line0 && index < total) emit(0);
  for (int i = 0; i < assignment.line1_blocks && index < total; ++i) emit(1);
  while (index < total) emit(2);
  return Snippet::FromTokens(std::move(lines));
}

/// Shared mutable evaluation context: registries grow as new candidate
/// creatives introduce unseen features.
struct Evaluator {
  const FeatureStatsDb& db;
  const ClassifierConfig& config;
  const SnippetClassifierModel& model;
  FeatureRegistry t_registry;
  FeatureRegistry p_registry;

  double Margin(const Snippet& challenger, const Snippet& incumbent) {
    return PredictPairMargin(challenger, incumbent, db, config, model, &t_registry,
                             &p_registry);
  }
};

std::vector<Assignment> EnumerateArrangements(const Assignment& base, size_t num_blocks) {
  std::vector<Assignment> arrangements;
  std::vector<size_t> order(num_blocks);
  std::iota(order.begin(), order.end(), 0);
  do {
    for (int line0 = 0; line0 <= 1; ++line0) {
      const int placeable = static_cast<int>(num_blocks) - line0;
      for (int line1 = placeable > 0 ? 1 : 0; line1 <= placeable; ++line1) {
        Assignment arrangement = base;
        arrangement.order = order;
        arrangement.block_on_line0 = line0 == 1;
        arrangement.line1_blocks = line1;
        arrangements.push_back(std::move(arrangement));
      }
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return arrangements;
}

}  // namespace

double PredictPairMargin(const Snippet& challenger, const Snippet& incumbent,
                         const FeatureStatsDb& db, const ClassifierConfig& config,
                         const SnippetClassifierModel& model,
                         const FeatureRegistry& t_registry,
                         const FeatureRegistry& p_registry) {
  Evaluator evaluator{db, config, model, t_registry, p_registry};
  return evaluator.Margin(challenger, incumbent);
}

double PredictPairMargin(const Snippet& challenger, const Snippet& incumbent,
                         const FeatureStatsDb& db, const ClassifierConfig& config,
                         const SnippetClassifierModel& model, FeatureRegistry* t_registry,
                         FeatureRegistry* p_registry) {
  std::vector<CoupledOccurrence> occurrences;
  ExtractPairOccurrences(challenger, incumbent, db, config, t_registry, p_registry,
                         &occurrences);
  return ScoreOccurrences(model, *t_registry, *p_registry, occurrences);
}

double ScoreOccurrences(const SnippetClassifierModel& model,
                        const FeatureRegistry& t_registry,
                        const FeatureRegistry& p_registry,
                        const std::vector<CoupledOccurrence>& occurrences) {
  // Warm-start fallback: features interned after training (ids beyond the
  // trained weight vectors) use their statistics-database initialisation
  // instead of silently scoring zero.
  double score = model.bias;
  for (const CoupledOccurrence& occ : occurrences) {
    const double t = occ.t < model.t_weights.size() ? model.t_weights[occ.t]
                                                    : t_registry.InitialWeightOf(occ.t);
    double p = 1.0;
    if (occ.p != kInvalidFeatureId) {
      p = occ.p < model.p_weights.size() ? model.p_weights[occ.p]
                                         : p_registry.InitialWeightOf(occ.p);
    }
    score += occ.sign * p * t;
  }
  return score;
}

Result<OptimizedSnippet> OptimizeSnippet(const SnippetCandidates& candidates,
                                         const Snippet& reference, const FeatureStatsDb& db,
                                         const ClassifierConfig& config,
                                         const SnippetClassifierModel& model,
                                         const FeatureRegistry& t_registry,
                                         const FeatureRegistry& p_registry,
                                         const OptimizeOptions& options) {
  if (candidates.blocks.empty() || candidates.blocks.size() > 4) {
    return Status::InvalidArgument("OptimizeSnippet: need 1..4 candidate blocks");
  }
  for (const auto& block : candidates.blocks) {
    if (block.empty()) {
      return Status::InvalidArgument("OptimizeSnippet: empty candidate block");
    }
  }
  if (options.beam_width < 1) {
    return Status::InvalidArgument("OptimizeSnippet: beam_width must be positive");
  }

  Evaluator evaluator{db, config, model, t_registry, p_registry};
  const size_t num_blocks = candidates.blocks.size();
  Rng rng(0xbead);

  Assignment best;
  double best_margin = -1e300;

  // Random-restart coordinate ascent: each restart draws an assignment,
  // then alternates "best phrase per block" and "best arrangement" sweeps.
  for (int restart = 0; restart < options.beam_width; ++restart) {
    Assignment current;
    current.phrase.resize(num_blocks);
    current.order.resize(num_blocks);
    std::iota(current.order.begin(), current.order.end(), 0);
    for (size_t b = 0; b < num_blocks; ++b) {
      current.phrase[b] = rng.NextIndex(candidates.blocks[b].size());
    }
    rng.Shuffle(current.order);
    current.line1_blocks = 1 + static_cast<int>(rng.NextIndex(num_blocks));

    double current_margin = evaluator.Margin(Materialize(candidates, current), reference);
    for (int round = 0; round < std::max(1, options.refine_rounds); ++round) {
      // Phrase sweep.
      for (size_t b = 0; b < num_blocks; ++b) {
        for (size_t choice = 0; choice < candidates.blocks[b].size(); ++choice) {
          if (choice == current.phrase[b]) continue;
          Assignment trial = current;
          trial.phrase[b] = choice;
          const double margin = evaluator.Margin(Materialize(candidates, trial), reference);
          if (margin > current_margin) {
            current = trial;
            current_margin = margin;
          }
        }
      }
      // Arrangement sweep.
      for (const Assignment& trial : EnumerateArrangements(current, num_blocks)) {
        const double margin = evaluator.Margin(Materialize(candidates, trial), reference);
        if (margin > current_margin) {
          current = trial;
          current_margin = margin;
        }
      }
    }
    if (current_margin > best_margin) {
      best = current;
      best_margin = current_margin;
    }
  }

  OptimizedSnippet out;
  out.snippet = Materialize(candidates, best);
  out.margin_over_reference = best_margin;
  return out;
}

}  // namespace microbrowse
