// Copyright 2026 The Microbrowse Authors
//
// The feature-statistics database of Section V-C. For every feature (term,
// rewrite, term position, rewrite position pair) it accumulates how often
// the feature's presence coincided with a positive serve-weight difference
// (delta-sw = +1) across the pair corpus; the Laplace-smoothed odds ratio
// of that probability is the feature's statistic, and its log is the warm-
// start weight for the classifier.

#ifndef MICROBROWSE_MICROBROWSE_STATS_DB_H_
#define MICROBROWSE_MICROBROWSE_STATS_DB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/math_util.h"
#include "microbrowse/pair.h"

namespace microbrowse {

/// Counts for one feature key.
struct FeatureStat {
  int64_t positive = 0;  ///< Observations with delta-sw = +1.
  int64_t total = 0;

  /// Laplace-smoothed P(delta-sw = +1).
  double SmoothedP(double alpha = 1.0) const {
    return (static_cast<double>(positive) + alpha * 0.5) /
           (static_cast<double>(total) + alpha);
  }
  /// Odds ratio p / (1 - p) of the smoothed probability — the statistic the
  /// paper records.
  double OddsRatio(double alpha = 1.0) const {
    const double p = SmoothedP(alpha);
    return p / (1.0 - p);
  }
  /// log(p / (1 - p)); the classifier warm-start weight.
  double LogOdds(double alpha = 1.0) const { return Logit(SmoothedP(alpha)); }
};

/// Keyed store of feature statistics. Keys come from feature_keys.h, so
/// term / rewrite / position statistics share one namespace-prefixed map.
class FeatureStatsDb {
 public:
  FeatureStatsDb() = default;

  /// Records one observation: `delta_sw` must be +1 or -1; -1 increments
  /// only the total (the feature coincided with a negative difference).
  void AddObservation(const std::string& key, int delta_sw) {
    FeatureStat& stat = stats_[key];
    ++stat.total;
    if (delta_sw > 0) ++stat.positive;
  }

  /// Installs the exact counts for `key`, replacing any prior value. Used
  /// by deserialization, where counts were already aggregated — going
  /// through AddObservation would cost O(total) per key.
  void SetStat(const std::string& key, int64_t positive, int64_t total) {
    stats_[key] = FeatureStat{positive, total};
  }

  /// Adds pre-aggregated counts for `key` onto any prior value. Used when
  /// merging partial databases accumulated over corpus chunks; integer
  /// counts make the merge order-independent.
  void AddCounts(const std::string& key, int64_t positive, int64_t total) {
    FeatureStat& stat = stats_[key];
    stat.positive += positive;
    stat.total += total;
  }

  /// Stat for `key`, or nullptr when unseen.
  const FeatureStat* Find(std::string_view key) const {
    auto it = stats_.find(std::string(key));
    return it != stats_.end() ? &it->second : nullptr;
  }

  /// Number of observations of `key` (0 when unseen).
  int64_t Count(std::string_view key) const {
    const FeatureStat* stat = Find(key);
    return stat != nullptr ? stat->total : 0;
  }

  /// Warm-start weight: log odds of `key`; 0 (neutral) for unseen features
  /// and for features below the min-count support threshold.
  double LogOdds(std::string_view key) const {
    const FeatureStat* stat = Find(key);
    return stat != nullptr && stat->total >= min_count_ ? stat->LogOdds(smoothing_) : 0.0;
  }

  /// Odds ratio of `key`; 1 (neutral) for unseen or under-supported
  /// features.
  double OddsRatio(std::string_view key) const {
    const FeatureStat* stat = Find(key);
    return stat != nullptr && stat->total >= min_count_ ? stat->OddsRatio(smoothing_) : 1.0;
  }

  /// Laplace smoothing pseudo-count used by the accessors.
  void set_smoothing(double alpha) { smoothing_ = alpha; }
  double smoothing() const { return smoothing_; }

  /// Features observed fewer than `n` times report neutral statistics from
  /// LogOdds / OddsRatio. Rare features — in particular n-grams spanning a
  /// rewrite and its surrounding context — are near-unique to single
  /// adgroups, so their raw statistics memorise individual outcomes rather
  /// than estimate anything.
  void set_min_count(int64_t n) { min_count_ = n; }
  int64_t min_count() const { return min_count_; }

  size_t size() const { return stats_.size(); }
  const std::unordered_map<std::string, FeatureStat>& stats() const { return stats_; }
  /// Mutable access for bulk splicing (unordered_map::merge) when
  /// assembling a database from disjoint shards.
  std::unordered_map<std::string, FeatureStat>& mutable_stats() { return stats_; }

 private:
  double smoothing_ = 1.0;
  int64_t min_count_ = 0;
  std::unordered_map<std::string, FeatureStat> stats_;
};

/// Statistics-builder configuration.
struct BuildStatsOptions {
  int max_ngram = 3;
  double smoothing = 1.0;
  /// Support threshold installed on the database (see
  /// FeatureStatsDb::set_min_count).
  int64_t min_count = 6;
  /// Matching passes: pass 1 matches rewrites without a database (exact
  /// text + positional heuristics); pass >= 2 re-matches with the previous
  /// pass's database, sharpening phrase boundaries (Section IV-A).
  int matching_passes = 2;
  /// Worker threads per accumulation pass. Pairs are accumulated into
  /// per-chunk databases over a fixed chunk grid and merged by key; the
  /// counts are integers, so the resulting database is identical for any
  /// thread count (DESIGN.md section 11).
  int num_threads = 1;
};

/// Builds the feature-statistics database from a pair corpus (phase one of
/// the snippet-classification framework, Fig. 1).
FeatureStatsDb BuildFeatureStats(const PairCorpus& corpus, const BuildStatsOptions& options = {});

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_STATS_DB_H_
