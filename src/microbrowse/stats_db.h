// Copyright 2026 The Microbrowse Authors
//
// The feature-statistics database of Section V-C. For every feature (term,
// rewrite, term position, rewrite position pair) it accumulates how often
// the feature's presence coincided with a positive serve-weight difference
// (delta-sw = +1) across the pair corpus; the Laplace-smoothed odds ratio
// of that probability is the feature's statistic, and its log is the warm-
// start weight for the classifier.

#ifndef MICROBROWSE_MICROBROWSE_STATS_DB_H_
#define MICROBROWSE_MICROBROWSE_STATS_DB_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/math_util.h"
#include "microbrowse/pair.h"
#include "pack/pack_reader.h"

namespace microbrowse {

/// Counts for one feature key. The layout is part of the mbpack stats
/// artifact: record sections hold these structs verbatim, and the mmap
/// read path returns pointers straight into the mapping.
struct FeatureStat {
  int64_t positive = 0;  ///< Observations with delta-sw = +1.
  int64_t total = 0;

  /// Laplace-smoothed P(delta-sw = +1).
  double SmoothedP(double alpha = 1.0) const {
    return (static_cast<double>(positive) + alpha * 0.5) /
           (static_cast<double>(total) + alpha);
  }
  /// Odds ratio p / (1 - p) of the smoothed probability — the statistic the
  /// paper records.
  double OddsRatio(double alpha = 1.0) const {
    const double p = SmoothedP(alpha);
    return p / (1.0 - p);
  }
  /// log(p / (1 - p)); the classifier warm-start weight.
  double LogOdds(double alpha = 1.0) const { return Logit(SmoothedP(alpha)); }
};
static_assert(sizeof(FeatureStat) == 16 && alignof(FeatureStat) == 8,
              "FeatureStat is an on-disk mbpack record; its layout is frozen");

/// Number of n-gram record classes in the mbpack stats layout: class 0
/// holds every non-term key (rewrites, positions, position pairs), classes
/// 1..3 hold term keys by n-gram length (3 = trigrams and longer). The
/// partition exists so stats builds and packs can window per class, in the
/// style of netspeak's per-phrase-length corpus files.
inline constexpr int kNumStatsClasses = 4;

/// Deterministic class of a stats key — writer and mmap lookup must agree.
inline int StatsKeyClass(std::string_view key) {
  if (key.size() < 2 || key[0] != 't' || key[1] != ':') return 0;
  int spaces = 0;
  for (size_t i = 2; i < key.size() && spaces < 2; ++i) {
    if (key[i] == ' ') ++spaces;
  }
  return 1 + spaces;  // 0 spaces = unigram, 1 = bigram, 2+ = trigram+.
}

/// Keyed store of feature statistics. Keys come from feature_keys.h, so
/// term / rewrite / position statistics share one namespace-prefixed map.
///
/// Like FeatureRegistry, the store has up to two layers: an optional
/// immutable mmap-backed base (per-class sorted key tables + FeatureStat
/// record arrays read in place from an mbpack artifact) and the ordinary
/// heap map. Read accessors consult the heap first, then the base; the
/// mutating builders (AddObservation & friends) always write the heap map
/// and are not meant for pack-backed instances — the serving read path
/// never mutates.
class FeatureStatsDb {
 public:
  FeatureStatsDb() = default;

  /// Records one observation: `delta_sw` must be +1 or -1; -1 increments
  /// only the total (the feature coincided with a negative difference).
  void AddObservation(const std::string& key, int delta_sw) {
    FeatureStat& stat = stats_[key];
    ++stat.total;
    if (delta_sw > 0) ++stat.positive;
  }

  /// Installs the exact counts for `key`, replacing any prior value. Used
  /// by deserialization, where counts were already aggregated — going
  /// through AddObservation would cost O(total) per key.
  void SetStat(const std::string& key, int64_t positive, int64_t total) {
    stats_[key] = FeatureStat{positive, total};
  }

  /// Adds pre-aggregated counts for `key` onto any prior value. Used when
  /// merging partial databases accumulated over corpus chunks; integer
  /// counts make the merge order-independent.
  void AddCounts(const std::string& key, int64_t positive, int64_t total) {
    FeatureStat& stat = stats_[key];
    stat.positive += positive;
    stat.total += total;
  }

  /// Stat for `key`, or nullptr when unseen. For base hits the pointer
  /// aims straight into the mmap'd record section (valid for this
  /// object's lifetime).
  const FeatureStat* Find(std::string_view key) const {
    if (!stats_.empty()) {
      auto it = stats_.find(std::string(key));
      if (it != stats_.end()) return &it->second;
    }
    if (base_total_ > 0) {
      const BaseClass& cls = base_[static_cast<size_t>(StatsKeyClass(key))];
      const size_t index = cls.keys.Find(key);
      if (index != pack::StringTable::kNotFound) return &cls.records[index];
    }
    return nullptr;
  }

  /// Number of observations of `key` (0 when unseen).
  int64_t Count(std::string_view key) const {
    const FeatureStat* stat = Find(key);
    return stat != nullptr ? stat->total : 0;
  }

  /// Warm-start weight: log odds of `key`; 0 (neutral) for unseen features
  /// and for features below the min-count support threshold.
  double LogOdds(std::string_view key) const {
    const FeatureStat* stat = Find(key);
    return stat != nullptr && stat->total >= min_count_ ? stat->LogOdds(smoothing_) : 0.0;
  }

  /// Odds ratio of `key`; 1 (neutral) for unseen or under-supported
  /// features.
  double OddsRatio(std::string_view key) const {
    const FeatureStat* stat = Find(key);
    return stat != nullptr && stat->total >= min_count_ ? stat->OddsRatio(smoothing_) : 1.0;
  }

  /// Laplace smoothing pseudo-count used by the accessors.
  void set_smoothing(double alpha) { smoothing_ = alpha; }
  double smoothing() const { return smoothing_; }

  /// Features observed fewer than `n` times report neutral statistics from
  /// LogOdds / OddsRatio. Rare features — in particular n-grams spanning a
  /// rewrite and its surrounding context — are near-unique to single
  /// adgroups, so their raw statistics memorise individual outcomes rather
  /// than estimate anything.
  void set_min_count(int64_t n) { min_count_ = n; }
  int64_t min_count() const { return min_count_; }

  size_t size() const { return base_total_ + stats_.size(); }
  /// The heap layer only — empty for a pack-backed database. Iterating
  /// callers should prefer ForEach, which sees both layers.
  const std::unordered_map<std::string, FeatureStat>& stats() const { return stats_; }
  /// Mutable access for bulk splicing (unordered_map::merge) when
  /// assembling a database from disjoint shards.
  std::unordered_map<std::string, FeatureStat>& mutable_stats() { return stats_; }

  /// Visits every (key, stat) across both layers, heap entries first, then
  /// base entries class by class in their sorted on-disk order. No
  /// deduplication: a heap entry shadowing a base key (which the supported
  /// workflows never create) would be visited twice.
  void ForEach(const std::function<void(std::string_view, const FeatureStat&)>& fn) const {
    for (const auto& [key, stat] : stats_) fn(key, stat);
    for (const BaseClass& cls : base_) {
      for (size_t i = 0; i < cls.keys.size(); ++i) fn(cls.keys.at(i), cls.records[i]);
    }
  }

  /// One immutable per-class view into a stats pack: `keys` sorted
  /// ascending, `records[i]` the stat of `keys.at(i)`.
  struct BaseClass {
    pack::StringTable keys;
    const FeatureStat* records = nullptr;
  };

  /// Installs the immutable mmap-backed base layer (one view per n-gram
  /// class; `pack` anchors the mapped memory). Must be called on an empty
  /// database, at most once.
  void AttachPackBase(std::shared_ptr<const pack::PackReader> pack,
                      const std::array<BaseClass, kNumStatsClasses>& classes) {
    pack_ = std::move(pack);
    base_ = classes;
    base_total_ = 0;
    for (const BaseClass& cls : base_) base_total_ += cls.keys.size();
  }

  /// Number of entries in the immutable base layer (0 when heap-only).
  size_t base_size() const { return base_total_; }

 private:
  double smoothing_ = 1.0;
  int64_t min_count_ = 0;
  std::unordered_map<std::string, FeatureStat> stats_;
  std::shared_ptr<const pack::PackReader> pack_;
  std::array<BaseClass, kNumStatsClasses> base_{};
  size_t base_total_ = 0;
};

/// Statistics-builder configuration.
struct BuildStatsOptions {
  int max_ngram = 3;
  double smoothing = 1.0;
  /// Support threshold installed on the database (see
  /// FeatureStatsDb::set_min_count).
  int64_t min_count = 6;
  /// Matching passes: pass 1 matches rewrites without a database (exact
  /// text + positional heuristics); pass >= 2 re-matches with the previous
  /// pass's database, sharpening phrase boundaries (Section IV-A).
  int matching_passes = 2;
  /// Worker threads per accumulation pass. Pairs are accumulated into
  /// per-chunk databases over a fixed chunk grid and merged by key; the
  /// counts are integers, so the resulting database is identical for any
  /// thread count (DESIGN.md section 11).
  int num_threads = 1;
};

/// Builds the feature-statistics database from a pair corpus (phase one of
/// the snippet-classification framework, Fig. 1).
FeatureStatsDb BuildFeatureStats(const PairCorpus& corpus, const BuildStatsOptions& options = {});

/// One accumulation pass over `corpus` ADDED into `out` — the streaming
/// building block behind BuildFeatureStats. Sharded-corpus builders call
/// this once per shard per matching pass, so only one shard's pairs are in
/// memory at a time; the counts are integer sums, making the cross-shard
/// merge order-independent. `matching_db` is nullptr on the first pass and
/// the previous pass's database afterwards, exactly as in
/// BuildFeatureStats. Does not touch `out`'s smoothing / min-count
/// settings and records no metrics; whole-corpus callers should prefer
/// BuildFeatureStats.
void AccumulateFeatureStats(const PairCorpus& corpus, const BuildStatsOptions& options,
                            const FeatureStatsDb* matching_db, FeatureStatsDb* out);

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_STATS_DB_H_
