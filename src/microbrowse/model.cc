// Copyright 2026 The Microbrowse Authors

#include "microbrowse/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace microbrowse {

ExaminationCurve ExaminationCurve::TopPlacement() {
  return ExaminationCurve({0.95, 0.80, 0.22}, 0.90, 0.02);
}

ExaminationCurve ExaminationCurve::RhsPlacement() {
  return ExaminationCurve({0.55, 0.44, 0.12}, 0.88, 0.02);
}

ExaminationCurve ExaminationCurve::Scaled(double factor) const {
  ExaminationCurve out = *this;
  for (double& base : out.line_bases_) {
    base = std::clamp(base * factor, floor_, 1.0);
  }
  return out;
}

double ExaminationCurve::Probability(int line, int pos) const {
  if (line_bases_.empty()) return floor_;
  const size_t idx = std::min<size_t>(static_cast<size_t>(std::max(line, 0)),
                                      line_bases_.size() - 1);
  const double p = line_bases_[idx] * std::pow(pos_decay_, std::max(pos, 0));
  return std::clamp(p, floor_, 1.0);
}

double MicroBrowsingModel::ExpectedClickProbability(int32_t query_id, const Snippet& snippet,
                                                    const TermRelevance& relevance) const {
  double product = 1.0;
  for (int line = 0; line < snippet.num_lines(); ++line) {
    const auto& tokens = snippet.line(line);
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      const double p = curve_.Probability(line, static_cast<int>(pos));
      const double r = relevance.Relevance(query_id, tokens[pos]);
      // E[r^v] with v ~ Bernoulli(p): p*r + (1-p)*1.
      product *= 1.0 - p * (1.0 - r);
    }
  }
  return std::clamp(base_ctr_ * product, 0.0, 1.0);
}

double MicroBrowsingModel::RelevanceGivenExamination(int32_t query_id, const Snippet& snippet,
                                                     const ExaminationPattern& pattern,
                                                     const TermRelevance& relevance) const {
  assert(static_cast<int>(pattern.size()) == snippet.num_lines());
  double product = 1.0;
  for (int line = 0; line < snippet.num_lines(); ++line) {
    const auto& tokens = snippet.line(line);
    assert(pattern[line].size() == tokens.size());
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      if (pattern[line][pos]) {
        product *= relevance.Relevance(query_id, tokens[pos]);
      }
    }
  }
  return product;
}

ExaminationPattern MicroBrowsingModel::SampleExaminations(const Snippet& snippet,
                                                          Rng* rng) const {
  ExaminationPattern pattern(snippet.num_lines());
  for (int line = 0; line < snippet.num_lines(); ++line) {
    const auto& tokens = snippet.line(line);
    pattern[line].resize(tokens.size());
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      pattern[line][pos] =
          rng->Bernoulli(curve_.Probability(line, static_cast<int>(pos))) ? 1 : 0;
    }
  }
  return pattern;
}

bool MicroBrowsingModel::SampleClick(int32_t query_id, const Snippet& snippet,
                                     const TermRelevance& relevance, Rng* rng) const {
  const ExaminationPattern pattern = SampleExaminations(snippet, rng);
  const double p = base_ctr_ * RelevanceGivenExamination(query_id, snippet, pattern, relevance);
  return rng->Bernoulli(p);
}

std::vector<std::vector<double>> MicroBrowsingModel::ExaminationHeatmap(
    int32_t query_id, const Snippet& snippet, const TermRelevance& relevance,
    double attention_absorb) const {
  std::vector<std::vector<double>> heatmap(snippet.num_lines());
  double attention = 1.0;  // P(user is still scanning), reading order.
  for (int line = 0; line < snippet.num_lines(); ++line) {
    const auto& tokens = snippet.line(line);
    heatmap[line].resize(tokens.size());
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      const double p = attention * curve_.Probability(line, static_cast<int>(pos));
      heatmap[line][pos] = p;
      if (attention_absorb > 0.0) {
        attention *= 1.0 - attention_absorb * p *
                               relevance.Relevance(query_id, tokens[pos]);
      }
    }
  }
  return heatmap;
}

double MicroBrowsingModel::ScorePair(int32_t query_id, const Snippet& r,
                                     const ExaminationPattern& vr, const Snippet& s,
                                     const ExaminationPattern& vs,
                                     const TermRelevance& relevance) const {
  auto half = [&](const Snippet& snip, const ExaminationPattern& pattern) {
    double sum = 0.0;
    for (int line = 0; line < snip.num_lines(); ++line) {
      const auto& tokens = snip.line(line);
      for (size_t pos = 0; pos < tokens.size(); ++pos) {
        if (pattern[line][pos]) {
          sum += std::log(std::max(1e-12, relevance.Relevance(query_id, tokens[pos])));
        }
      }
    }
    return sum;
  };
  return half(r, vr) - half(s, vs);
}

}  // namespace microbrowse
