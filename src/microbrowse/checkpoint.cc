// Copyright 2026 The Microbrowse Authors

#include "microbrowse/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "io/atomic_file.h"
#include "microbrowse/pipeline.h"

namespace microbrowse {

namespace {

constexpr char kManifestHeader[] = "#microbrowse-cv-manifest-v1";
constexpr char kStatsHeader[] = "#microbrowse-cv-stats-v1";
constexpr char kFoldHeader[] = "#microbrowse-cv-fold-v1";

/// Doubles cross the checkpoint as IEEE-754 bit patterns, never as decimal
/// text: resume must reproduce the uninterrupted run exactly.
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<uint64_t> ParseHex64(std::string_view text) {
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad hex field: '" + std::string(text) + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad integer field: '" + std::string(text) + "'");
  }
  return value;
}

uint64_t HashLrOptions(uint64_t h, const LrOptions& lr) {
  h = HashCombine(h, static_cast<uint64_t>(lr.solver));
  h = HashCombine(h, DoubleBits(lr.l1));
  h = HashCombine(h, DoubleBits(lr.l2));
  h = HashCombine(h, DoubleBits(lr.learning_rate));
  h = HashCombine(h, static_cast<uint64_t>(lr.epochs));
  h = HashCombine(h, static_cast<uint64_t>(lr.shuffle_each_epoch));
  h = HashCombine(h, static_cast<uint64_t>(lr.fit_bias));
  h = HashCombine(h, lr.seed);
  h = HashCombine(h, DoubleBits(lr.tolerance));
  return h;
}

bool FileExists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

}  // namespace

uint64_t CvCheckpoint::Fingerprint(size_t corpus_pairs, const ClassifierConfig& config,
                                   const PipelineOptions& options) {
  uint64_t h = Fnv1a64("microbrowse-cv-checkpoint");
  h = HashCombine(h, static_cast<uint64_t>(corpus_pairs));
  h = HashCombine(h, options.seed);
  h = HashCombine(h, static_cast<uint64_t>(options.folds));
  h = HashCombine(h, static_cast<uint64_t>(options.per_fold_stats));
  h = HashCombine(h, static_cast<uint64_t>(options.group_folds_by_adgroup));
  h = HashCombine(h, static_cast<uint64_t>(options.stats.max_ngram));
  h = HashCombine(h, DoubleBits(options.stats.smoothing));
  h = HashCombine(h, static_cast<uint64_t>(options.stats.min_count));
  h = HashCombine(h, static_cast<uint64_t>(options.stats.matching_passes));
  h = HashCombine(h, config.name);
  uint64_t flags = 0;
  for (bool flag : {config.use_term_features, config.use_rewrite_features, config.use_position,
                    config.term_position_conjunction, config.leftover_position_conjunction,
                    config.init_from_stats, config.drop_matched_rewrites,
                    config.diff_terms_only}) {
    flags = (flags << 1) | static_cast<uint64_t>(flag);
  }
  h = HashCombine(h, flags);
  h = HashCombine(h, static_cast<uint64_t>(config.coupled_iterations));
  h = HashCombine(h, static_cast<uint64_t>(config.matching));
  h = HashCombine(h, static_cast<uint64_t>(config.max_ngram));
  h = HashCombine(h, static_cast<uint64_t>(config.rewrite_min_support));
  h = HashLrOptions(h, config.lr);
  h = HashLrOptions(h, config.position_lr);
  return h;
}

Result<CvCheckpoint> CvCheckpoint::Open(const std::string& dir, uint64_t fingerprint) {
  if (dir.empty()) return Status::InvalidArgument("CvCheckpoint::Open: empty directory");
  MB_RETURN_IF_ERROR(CreateDirectories(dir));
  CvCheckpoint checkpoint(dir);
  const std::string manifest_path = dir + "/manifest.tsv";
  if (FileExists(manifest_path)) {
    MB_ASSIGN_OR_RETURN(const ArtifactContent content, ReadArtifact(manifest_path));
    if (content.lines.size() < 2 || content.lines[0] != kManifestHeader) {
      return Status::InvalidArgument(manifest_path + ": not a checkpoint manifest");
    }
    const auto fields = Split(content.lines[1], '\t');
    if (fields.size() != 2 || fields[0] != "fingerprint") {
      return Status::InvalidArgument(manifest_path + ": malformed fingerprint row");
    }
    MB_ASSIGN_OR_RETURN(const uint64_t recorded, ParseHex64(fields[1]));
    if (recorded != fingerprint) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint %s was written by a different run (fingerprint %016llx, this run "
          "%016llx) — corpus, seed, folds or classifier settings changed; use a fresh "
          "directory or delete the stale checkpoint",
          dir.c_str(), static_cast<unsigned long long>(recorded),
          static_cast<unsigned long long>(fingerprint)));
    }
    return checkpoint;
  }
  std::ostringstream out;
  out << kManifestHeader << '\n'
      << "fingerprint\t"
      << StrFormat("%016llx", static_cast<unsigned long long>(fingerprint)) << '\n';
  MB_RETURN_IF_ERROR(WriteArtifactAtomic(manifest_path, out.str(), 1));
  return checkpoint;
}

Status CvCheckpoint::SaveStats(const FeatureStatsDb& db) const {
  std::ostringstream out;
  out << kStatsHeader << '\t'
      << StrFormat("%016llx", static_cast<unsigned long long>(DoubleBits(db.smoothing())))
      << '\t' << db.min_count() << '\n';
  std::vector<const std::pair<const std::string, FeatureStat>*> rows;
  rows.reserve(db.stats().size());
  for (const auto& entry : db.stats()) rows.push_back(&entry);
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* row : rows) {
    out << row->first << '\t' << row->second.positive << '\t' << row->second.total << '\n';
  }
  return WriteArtifactAtomic(dir_ + "/stats.tsv", out.str(),
                             static_cast<int64_t>(rows.size()));
}

Result<bool> CvCheckpoint::LoadStats(FeatureStatsDb* db) const {
  const std::string path = dir_ + "/stats.tsv";
  if (!FileExists(path)) return false;
  MB_ASSIGN_OR_RETURN(const ArtifactContent content, ReadArtifact(path));
  if (content.lines.empty() || !StartsWith(content.lines[0], kStatsHeader)) {
    return Status::InvalidArgument(path + ": not a stats checkpoint");
  }
  const auto header = Split(content.lines[0], '\t');
  if (header.size() != 3) {
    return Status::InvalidArgument(path + ": malformed stats header");
  }
  MB_ASSIGN_OR_RETURN(const uint64_t smoothing_bits, ParseHex64(header[1]));
  MB_ASSIGN_OR_RETURN(const int64_t min_count, ParseInt64(header[2]));
  FeatureStatsDb loaded;
  loaded.set_smoothing(DoubleFromBits(smoothing_bits));
  loaded.set_min_count(min_count);
  for (size_t i = 1; i < content.lines.size(); ++i) {
    if (content.lines[i].empty()) continue;
    const auto fields = Split(content.lines[i], '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed stats row", path.c_str(), i + 1));
    }
    MB_ASSIGN_OR_RETURN(const int64_t positive, ParseInt64(fields[1]));
    MB_ASSIGN_OR_RETURN(const int64_t total, ParseInt64(fields[2]));
    loaded.SetStat(fields[0], positive, total);
  }
  *db = std::move(loaded);
  return true;
}

Status CvCheckpoint::SaveFoldScores(size_t fold,
                                    const std::vector<ScoredLabel>& scored) const {
  std::ostringstream out;
  out << kFoldHeader << '\t' << fold << '\n';
  for (const ScoredLabel& entry : scored) {
    out << StrFormat("%016llx", static_cast<unsigned long long>(DoubleBits(entry.score)))
        << '\t' << (entry.label ? 1 : 0) << '\n';
  }
  return WriteArtifactAtomic(dir_ + StrFormat("/fold_%03zu.tsv", fold), out.str(),
                             static_cast<int64_t>(scored.size()));
}

Result<bool> CvCheckpoint::LoadFoldScores(size_t fold,
                                          std::vector<ScoredLabel>* scored) const {
  const std::string path = dir_ + StrFormat("/fold_%03zu.tsv", fold);
  if (!FileExists(path)) return false;
  MB_ASSIGN_OR_RETURN(const ArtifactContent content, ReadArtifact(path));
  if (content.lines.empty() || !StartsWith(content.lines[0], kFoldHeader)) {
    return Status::InvalidArgument(path + ": not a fold checkpoint");
  }
  std::vector<ScoredLabel> loaded;
  loaded.reserve(content.lines.size() - 1);
  for (size_t i = 1; i < content.lines.size(); ++i) {
    if (content.lines[i].empty()) continue;
    const auto fields = Split(content.lines[i], '\t');
    if (fields.size() != 2 || (fields[1] != "0" && fields[1] != "1")) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed fold row", path.c_str(), i + 1));
    }
    MB_ASSIGN_OR_RETURN(const uint64_t bits, ParseHex64(fields[0]));
    loaded.push_back(ScoredLabel{DoubleFromBits(bits), fields[1] == "1"});
  }
  *scored = std::move(loaded);
  return true;
}

}  // namespace microbrowse
