// Copyright 2026 The Microbrowse Authors
//
// Fold-level checkpointing for the cross-validation pipeline. A checkpoint
// directory holds:
//
//   manifest.tsv    <- run fingerprint (corpus size, seed, fold count, full
//                      classifier + stats configuration)
//   stats.tsv       <- the phase-one feature-statistics database
//   fold_NNN.tsv    <- the scored test labels of each completed fold
//
// Every file is written through the atomic artifact path (io/atomic_file.h),
// so a crash mid-run leaves either a complete fold checkpoint or none — a
// resumed run re-trains exactly the folds that never finished. Doubles
// (scores, smoothing) are stored as IEEE-754 bit patterns in hex, so a
// resumed run reproduces the uninterrupted run's ModelReport bit for bit.
//
// The fingerprint guards against resuming with changed settings: opening an
// existing directory whose manifest disagrees fails with
// kFailedPrecondition rather than silently mixing two runs' folds.

#ifndef MICROBROWSE_MICROBROWSE_CHECKPOINT_H_
#define MICROBROWSE_MICROBROWSE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"
#include "ml/metrics.h"

namespace microbrowse {

struct PipelineOptions;  // pipeline.h; not included to keep the layering acyclic.

/// A cross-validation checkpoint directory, opened (and fingerprint-checked)
/// via Open().
class CvCheckpoint {
 public:
  /// Hash of everything that determines a CV run's outcome: corpus size,
  /// seeds, fold structure, statistics options and the full classifier
  /// configuration. Two runs with equal fingerprints compute identical
  /// folds, so their checkpoints are interchangeable.
  static uint64_t Fingerprint(size_t corpus_pairs, const ClassifierConfig& config,
                              const PipelineOptions& options);

  /// Creates `dir` if needed and writes the manifest, or validates the
  /// manifest of an existing checkpoint. A fingerprint mismatch fails with
  /// kFailedPrecondition (the directory belongs to a different run).
  static Result<CvCheckpoint> Open(const std::string& dir, uint64_t fingerprint);

  /// Persists the feature-statistics database atomically.
  Status SaveStats(const FeatureStatsDb& db) const;

  /// Loads the stats checkpoint into `db`. Returns false (and leaves `db`
  /// untouched) when no stats checkpoint exists yet.
  Result<bool> LoadStats(FeatureStatsDb* db) const;

  /// Persists one completed fold's scored test labels atomically.
  Status SaveFoldScores(size_t fold, const std::vector<ScoredLabel>& scored) const;

  /// Loads fold `fold`'s scores. Returns false when the fold has no
  /// checkpoint yet.
  Result<bool> LoadFoldScores(size_t fold, std::vector<ScoredLabel>* scored) const;

  const std::string& dir() const { return dir_; }

 private:
  explicit CvCheckpoint(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_CHECKPOINT_H_
