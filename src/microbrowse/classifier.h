// Copyright 2026 The Microbrowse Authors
//
// The snippet classifier of Section IV: given a creative pair, predict
// which one has the higher CTR. Six configurations (M1-M6, Section V-D)
// ablate the micro-browsing model's ingredients:
//
//   M1 terms only            M2 terms w. position
//   M3 rewrites only         M4 rewrites w. position
//   M5 rewrites & terms      M6 rewrites & terms w. position
//
// All configurations warm-start their weights from the feature-statistics
// database. Position-aware configurations use the coupled logistic
// regression of Eq. 9: log O = sum_{(p,q)} P_{p,q} T_{p,q}, trained by
// alternating two L1 logistic regressions over the position factor P and
// the relevance factor T.

#ifndef MICROBROWSE_MICROBROWSE_CLASSIFIER_H_
#define MICROBROWSE_MICROBROWSE_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "microbrowse/pair.h"
#include "microbrowse/rewrite.h"
#include "microbrowse/stats_db.h"
#include "ml/dataset.h"
#include "ml/feature_registry.h"
#include "ml/logistic_regression.h"

namespace microbrowse {

/// Classifier configuration; use the M1()..M6() factories for the paper's
/// variants.
struct ClassifierConfig {
  std::string name = "custom";
  bool use_term_features = true;
  bool use_rewrite_features = false;
  bool use_position = false;
  /// How the full term extraction encodes positions when use_position is
  /// set: true = sparse term-x-position conjunction keys (model M2's
  /// "terms w. position"); false = the coupled P*T factorisation. The
  /// matched rewrite features always use the coupled form (Eq. 8/9 is the
  /// paper's construction for rewrites).
  bool term_position_conjunction = false;
  /// Same choice for the rewrite path's leftover / decomposed terms.
  bool leftover_position_conjunction = false;
  /// Warm-start weights from the statistics database (on for all paper
  /// models; exposed for the initialisation ablation).
  bool init_from_stats = true;
  /// Alternating rounds of the coupled LR (position models only). One
  /// round — position factor fit against the statistics-initialised
  /// relevance factor, then one consistent relevance retrain — is the
  /// empirical sweet spot; further rounds let estimation noise feed back
  /// between the factors (see EXPERIMENTS.md).
  int coupled_iterations = 1;
  /// Optimiser for the relevance factor T (and for plain models).
  LrOptions lr;
  /// Optimiser for the position factor P — typically weaker L1, since the
  /// position space is tiny and dense.
  LrOptions position_lr;
  MatchingStrategy matching = MatchingStrategy::kGreedyStats;
  int max_ngram = 3;
  /// Ablation knob: run the rewrite matcher but drop the matched-pair
  /// occurrences, keeping only the leftover term features. Isolates the
  /// contribution of the joint rewrite features.
  bool drop_matched_rewrites = false;
  /// Ablation knob: restrict term features to the expanded diff regions
  /// instead of the full snippets. (Shared content cancels in the full
  /// extraction anyway; this isolates what, if anything, the full view
  /// adds.)
  bool diff_terms_only = false;
  /// Sparsity backoff: a matched rewrite whose canonical key has fewer
  /// than this many observations in the statistics database is decomposed
  /// into its signed term occurrences instead of a joint feature (the
  /// paper's stats pooling exists for the same reason — rewrite-pair
  /// space is quadratically sparse). 0 (the default, matching the paper)
  /// disables the backoff; enable it for corpora whose rewrite traffic is
  /// not concentrated (see the ablation bench).
  int64_t rewrite_min_support = 0;

  static ClassifierConfig M1();
  static ClassifierConfig M2();
  static ClassifierConfig M3();
  static ClassifierConfig M4();
  static ClassifierConfig M5();
  static ClassifierConfig M6();
  /// All six, in order.
  static std::vector<ClassifierConfig> AllPaperModels();
};

/// One feature occurrence: relevance feature `t`, optional position
/// feature `p` (kInvalidFeatureId when positionless), and the occurrence
/// sign (+1 for the first snippet's side, -1 for the second's; rewrite
/// occurrences also fold in the canonicalisation sign).
struct CoupledOccurrence {
  FeatureId t = 0;
  FeatureId p = kInvalidFeatureId;
  double sign = 1.0;
};

/// One classifier example: occurrences plus the 0/1 label ("first snippet
/// has the higher serve weight").
struct CoupledExample {
  std::vector<CoupledOccurrence> occurrences;
  double label = 0.0;
};

/// A full classifier dataset with its feature registries. T-registry
/// initial weights hold log odds from the stats DB; P-registry initial
/// weights hold odds ratios (positive multipliers, neutral = 1).
struct CoupledDataset {
  std::vector<CoupledExample> examples;
  FeatureRegistry t_registry;
  FeatureRegistry p_registry;
};

/// Extracts classifier features for one ordered pair (first, second) into
/// `occurrences`, interning new features into the registries.
void ExtractPairOccurrences(const Snippet& first, const Snippet& second,
                            const FeatureStatsDb& db, const ClassifierConfig& config,
                            FeatureRegistry* t_registry, FeatureRegistry* p_registry,
                            std::vector<CoupledOccurrence>* occurrences);

/// Builds the classifier dataset from a pair corpus: each pair is
/// presented in a random order (seeded) so labels are balanced, and the
/// label says whether the first-presented creative has the higher serve
/// weight.
CoupledDataset BuildClassifierDataset(const PairCorpus& corpus, const FeatureStatsDb& db,
                                      const ClassifierConfig& config, uint64_t seed);

/// A CoupledDataset flattened into compressed-sparse-row form: example
/// i's occurrences live in t_ids/p_ids/signs[row_offsets[i] ..
/// row_offsets[i+1]). Built once per dataset (FlattenCoupledDataset) and
/// streamed by training and scoring, replacing the per-example occurrence
/// vector indirection on the hot path. Registry initial weights are
/// snapshotted at flatten time so the CSR view is self-contained.
struct CoupledCsr {
  std::vector<size_t> row_offsets;  ///< size() + 1 entries; front() == 0.
  std::vector<FeatureId> t_ids;     ///< Packed relevance-feature ids.
  std::vector<FeatureId> p_ids;     ///< Parallel; kInvalidFeatureId = no P.
  std::vector<double> signs;        ///< Parallel occurrence signs.
  std::vector<double> labels;       ///< One per example (0.0 / 1.0).
  std::vector<double> t_init;       ///< T warm-start weights (log odds).
  std::vector<double> p_init;       ///< P warm-start weights (odds ratios).

  size_t size() const { return labels.size(); }
  bool empty() const { return labels.empty(); }
  size_t num_t_features() const { return t_init.size(); }
  size_t num_p_features() const { return p_init.size(); }
};

/// Flattens `dataset` (including the registries' current initial weights)
/// into CSR form. Occurrence order within each example is preserved, so
/// training and scoring results are identical to the per-example path.
CoupledCsr FlattenCoupledDataset(const CoupledDataset& dataset);

/// Trained factor weights.
struct SnippetClassifierModel {
  std::vector<double> t_weights;
  std::vector<double> p_weights;
  double bias = 0.0;

  /// Linear score of an example (positive = first snippet predicted
  /// better).
  double Score(const CoupledExample& example) const;

  /// Linear score of CSR row `row`; identical to Score on the example the
  /// row was flattened from.
  double ScoreRow(const CoupledCsr& csr, size_t row) const;
};

/// Trains the classifier on `train_indices` of `dataset` (all examples
/// when empty). Plain configurations run one L1 LR over T; position
/// configurations alternate T and P phases (Eq. 9). Flattens the dataset
/// once and delegates to the CSR overload.
Result<SnippetClassifierModel> TrainSnippetClassifier(
    const CoupledDataset& dataset, const ClassifierConfig& config,
    const std::vector<size_t>& train_indices = {});

/// CSR entry point for callers that reuse one flattened dataset across
/// many training runs (the CV pipeline trains every fold against the same
/// CoupledCsr). Thread count for the phase solvers comes from
/// config.lr.num_threads / config.position_lr.num_threads.
Result<SnippetClassifierModel> TrainSnippetClassifier(
    const CoupledCsr& csr, const ClassifierConfig& config,
    const std::vector<size_t>& train_indices = {});

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_CLASSIFIER_H_
