// Copyright 2026 The Microbrowse Authors
//
// The two-phase snippet-classification pipeline of Fig. 1: phase one
// builds the feature-statistics database from the pair corpus; phase two
// generates classifier data, trains, and evaluates with k-fold
// cross-validation (the paper uses 10-fold).

#ifndef MICROBROWSE_MICROBROWSE_PIPELINE_H_
#define MICROBROWSE_MICROBROWSE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "microbrowse/classifier.h"
#include "microbrowse/pair.h"
#include "microbrowse/stats_db.h"
#include "ml/metrics.h"

namespace microbrowse {

/// Pipeline configuration.
struct PipelineOptions {
  int folds = 10;
  uint64_t seed = 99;
  BuildStatsOptions stats;
  /// When true, the statistics database is rebuilt from each fold's
  /// training pairs only (no statistics leakage into the test fold, at k
  /// times the cost). The paper builds statistics once over the corpus;
  /// false reproduces that.
  bool per_fold_stats = false;
  /// Assign whole adgroups to folds so same-adgroup pairs never straddle a
  /// train/test boundary (context n-grams are near-unique to an adgroup
  /// and would otherwise let the classifier memorise test outcomes).
  bool group_folds_by_adgroup = true;
  /// Worker threads for training the CV folds (shared-stats path only).
  /// Results are identical regardless of thread count: per-fold scores are
  /// collected in fold order.
  int num_threads = 1;
  /// Worker threads *inside* each training run: forwarded to the LR
  /// solvers (LrOptions::num_threads), the statistics build
  /// (BuildStatsOptions::num_threads) and the final metrics pass.
  /// Orthogonal to `num_threads` (fold-level parallelism). Results are
  /// bitwise identical for any value — see DESIGN.md section 11 — and the
  /// value is deliberately excluded from the checkpoint fingerprint, so
  /// changing it never invalidates a resumable run.
  int train_threads = 1;
  /// When non-empty, the run checkpoints into this directory (created on
  /// demand): the statistics database and each completed fold's scores are
  /// persisted atomically, and a rerun pointed at the same directory
  /// resumes fold-by-fold, reproducing the uninterrupted run's ModelReport
  /// bit for bit. Resuming with changed settings fails with
  /// kFailedPrecondition (see microbrowse/checkpoint.h).
  std::string checkpoint_dir;
};

/// Cross-validated evaluation of one classifier configuration.
struct ModelReport {
  std::string model_name;
  BinaryMetrics metrics;  ///< Confusion counts pooled over the test folds.
  double auc = 0.5;       ///< AUC pooled over all test-fold scores.
  size_t num_t_features = 0;
  size_t num_p_features = 0;
  double train_seconds = 0.0;
};

/// Runs phase one + k-fold phase two for `config` on `corpus`.
Result<ModelReport> RunPairClassificationCv(const PairCorpus& corpus,
                                            const ClassifierConfig& config,
                                            const PipelineOptions& options);

/// Learned position weights, the artefact behind Figure 3: entry
/// [line][bucket] is the trained P weight of term position (line, bucket);
/// NaN where the position never occurred.
struct PositionWeightReport {
  std::vector<std::vector<double>> term_position_weights;
};

/// Trains `config` (which must have use_position = true) on the full
/// corpus and reports the learned term-position factor.
Result<PositionWeightReport> LearnPositionWeights(const PairCorpus& corpus,
                                                  const ClassifierConfig& config,
                                                  const PipelineOptions& options);

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_PIPELINE_H_
