// Copyright 2026 The Microbrowse Authors

#include "microbrowse/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "microbrowse/checkpoint.h"
#include "microbrowse/feature_keys.h"
#include "ml/cross_validation.h"

namespace microbrowse {

namespace {

/// Evaluates `model` on the test indices, appending scored labels.
void ScoreFold(const CoupledCsr& csr, const SnippetClassifierModel& model,
               const std::vector<size_t>& test_indices, std::vector<ScoredLabel>* scored) {
  for (size_t idx : test_indices) {
    scored->push_back(ScoredLabel{model.ScoreRow(csr, idx), csr.labels[idx] > 0.5});
  }
}

/// Copies `config` with the in-training thread count raised to
/// options.train_threads. The copy (not the original) is what trains, so
/// the checkpoint fingerprint — computed from the caller's config — never
/// sees the thread count.
ClassifierConfig ThreadedConfig(const ClassifierConfig& config, const PipelineOptions& options) {
  ClassifierConfig threaded = config;
  threaded.lr.num_threads = std::max(threaded.lr.num_threads, options.train_threads);
  threaded.position_lr.num_threads =
      std::max(threaded.position_lr.num_threads, options.train_threads);
  return threaded;
}

/// Copies the stats-build options with the thread count raised likewise.
BuildStatsOptions ThreadedStats(const PipelineOptions& options) {
  BuildStatsOptions stats = options.stats;
  stats.num_threads = std::max(stats.num_threads, options.train_threads);
  return stats;
}

/// Pipeline-stage metrics, cached once. Trained/resumed counts are added
/// as per-run aggregates from the single-threaded driver; fold seconds are
/// recorded per fold (one sample per trained fold, so the sample *count*
/// is thread-count invariant even though the timings are not).
struct CvMetrics {
  Counter* runs = MetricRegistry::Global().GetCounter("mb.cv.runs");
  Counter* folds_trained = MetricRegistry::Global().GetCounter("mb.cv.folds_trained");
  Counter* folds_resumed = MetricRegistry::Global().GetCounter("mb.cv.folds_resumed");
  ShardedHistogram* fold_seconds = MetricRegistry::Global().GetHistogram("mb.cv.fold_seconds");
};

CvMetrics& GetCvMetrics() {
  static CvMetrics metrics;
  return metrics;
}

}  // namespace

Result<ModelReport> RunPairClassificationCv(const PairCorpus& corpus,
                                            const ClassifierConfig& config,
                                            const PipelineOptions& options) {
  if (corpus.pairs.empty()) {
    return Status::InvalidArgument("RunPairClassificationCv: empty pair corpus");
  }
  TraceSpan run_span("mb.cv.run");
  GetCvMetrics().runs->Increment(1);
  WallTimer timer;
  ModelReport report;
  report.model_name = config.name;

  // Labels (and the fold split) depend only on the corpus and seed, so the
  // shared and per-fold paths agree on which pairs land in which fold.
  std::vector<bool> labels;
  labels.reserve(corpus.pairs.size());
  {
    Rng rng(options.seed);
    for (const SnippetPair& pair : corpus.pairs) {
      const bool swap = rng.Bernoulli(0.5);
      const double first_sw = swap ? pair.s.serve_weight : pair.r.serve_weight;
      const double second_sw = swap ? pair.r.serve_weight : pair.s.serve_weight;
      labels.push_back(first_sw > second_sw);
    }
  }
  Result<std::vector<CvFold>> folds_result =
      options.group_folds_by_adgroup
          ? [&] {
              std::vector<int64_t> groups;
              groups.reserve(corpus.pairs.size());
              for (const SnippetPair& pair : corpus.pairs) groups.push_back(pair.adgroup_id);
              return MakeGroupedKFolds(groups, options.folds, options.seed ^ 0x5f5f5f5fULL);
            }()
          : MakeStratifiedKFolds(labels, options.folds, options.seed ^ 0x5f5f5f5fULL);
  if (!folds_result.ok()) return folds_result.status();
  const std::vector<CvFold>& folds = *folds_result;

  // Open (or resume) the checkpoint directory before any expensive work, so
  // a settings mismatch fails fast.
  std::unique_ptr<CvCheckpoint> checkpoint;
  if (!options.checkpoint_dir.empty()) {
    MB_ASSIGN_OR_RETURN(
        CvCheckpoint opened,
        CvCheckpoint::Open(options.checkpoint_dir,
                           CvCheckpoint::Fingerprint(corpus.pairs.size(), config, options)));
    checkpoint = std::make_unique<CvCheckpoint>(std::move(opened));
  }
  // Checkpoint writes ride the retry wrapper: a transient I/O failure (the
  // kind fault injection simulates) should not cost a finished fold.
  const auto save_fold = [&checkpoint](size_t f,
                                       const std::vector<ScoredLabel>& scored) -> Status {
    if (checkpoint == nullptr) return Status::OK();
    return RetryWithBackoff([&] { return checkpoint->SaveFoldScores(f, scored); });
  };

  std::vector<ScoredLabel> all_scored;
  all_scored.reserve(corpus.pairs.size());
  const ClassifierConfig train_config = ThreadedConfig(config, options);
  const BuildStatsOptions stats_options = ThreadedStats(options);

  if (!options.per_fold_stats) {
    FeatureStatsDb db;
    bool stats_resumed = false;
    if (checkpoint != nullptr) {
      MB_ASSIGN_OR_RETURN(stats_resumed, checkpoint->LoadStats(&db));
    }
    if (!stats_resumed) {
      db = BuildFeatureStats(corpus, stats_options);
      if (checkpoint != nullptr) {
        MB_RETURN_IF_ERROR(RetryWithBackoff([&] { return checkpoint->SaveStats(db); }));
      }
    }
    const CoupledDataset dataset = BuildClassifierDataset(corpus, db, config, options.seed);
    report.num_t_features = dataset.t_registry.size();
    report.num_p_features = dataset.p_registry.size();
    // Flatten once; every fold trains and scores against the same CSR
    // view (DESIGN.md section 11).
    const CoupledCsr csr = FlattenCoupledDataset(dataset);
    // Folds are independent given the shared dataset; train them across
    // the pool and splice the per-fold scores back in fold order so the
    // result is identical for any thread count.
    std::vector<std::vector<ScoredLabel>> fold_scores(folds.size());
    std::vector<Status> fold_status(folds.size());
    std::vector<char> fold_resumed(folds.size(), 0);
    if (checkpoint != nullptr) {
      for (size_t f = 0; f < folds.size(); ++f) {
        MB_ASSIGN_OR_RETURN(const bool resumed, checkpoint->LoadFoldScores(f, &fold_scores[f]));
        fold_resumed[f] = resumed ? 1 : 0;
      }
    }
    {
      ThreadPool pool(static_cast<size_t>(std::max(1, options.num_threads)));
      MB_RETURN_IF_ERROR(pool.ParallelFor(folds.size(), [&](size_t f) {
        if (fold_resumed[f]) return;
        // The fold failpoint fires only for folds that actually train, so
        // an interrupted-then-resumed run re-trains exactly the missing
        // folds.
        fold_status[f] = failpoint::Check("pipeline.fold");
        if (!fold_status[f].ok()) return;
        // Span and timing sample per trained fold: one each regardless of
        // which pool worker picks the fold up.
        TraceSpan fold_span("mb.cv.fold");
        WallTimer fold_timer;
        auto model = TrainSnippetClassifier(csr, train_config, folds[f].train_indices);
        if (!model.ok()) {
          fold_status[f] = model.status();
          return;
        }
        ScoreFold(csr, *model, folds[f].test_indices, &fold_scores[f]);
        GetCvMetrics().fold_seconds->Record(fold_timer.ElapsedSeconds());
        fold_status[f] = save_fold(f, fold_scores[f]);
      }));
    }
    int64_t resumed_count = 0;
    for (size_t f = 0; f < folds.size(); ++f) {
      MB_RETURN_IF_ERROR(fold_status[f]);
      resumed_count += fold_resumed[f] ? 1 : 0;
      all_scored.insert(all_scored.end(), fold_scores[f].begin(), fold_scores[f].end());
    }
    GetCvMetrics().folds_resumed->Increment(resumed_count);
    GetCvMetrics().folds_trained->Increment(static_cast<int64_t>(folds.size()) - resumed_count);
  } else {
    for (size_t f = 0; f < folds.size(); ++f) {
      const CvFold& fold = folds[f];
      std::vector<ScoredLabel> fold_scored;
      bool resumed = false;
      if (checkpoint != nullptr) {
        MB_ASSIGN_OR_RETURN(resumed, checkpoint->LoadFoldScores(f, &fold_scored));
      }
      // The fold's statistics database and dataset are (re)built whether
      // or not its scores were resumed: the feature counts reported below
      // come from the dataset registries, and skipping the build for
      // resumed folds used to leave num_t_features / num_p_features at
      // zero on an all-resumed rerun (see PerFoldStatsResumeReportsFeatureCounts).
      PairCorpus train_corpus;
      train_corpus.pairs.reserve(fold.train_indices.size());
      for (size_t idx : fold.train_indices) train_corpus.pairs.push_back(corpus.pairs[idx]);
      const FeatureStatsDb db = BuildFeatureStats(train_corpus, stats_options);
      const CoupledDataset dataset = BuildClassifierDataset(corpus, db, config, options.seed);
      report.num_t_features = dataset.t_registry.size();
      report.num_p_features = dataset.p_registry.size();
      if (!resumed) {
        MB_FAILPOINT("pipeline.fold");
        TraceSpan fold_span("mb.cv.fold");
        WallTimer fold_timer;
        const CoupledCsr fold_csr = FlattenCoupledDataset(dataset);
        auto model = TrainSnippetClassifier(fold_csr, train_config, fold.train_indices);
        if (!model.ok()) return model.status();
        ScoreFold(fold_csr, *model, fold.test_indices, &fold_scored);
        GetCvMetrics().fold_seconds->Record(fold_timer.ElapsedSeconds());
        MB_RETURN_IF_ERROR(save_fold(f, fold_scored));
        GetCvMetrics().folds_trained->Increment(1);
      } else {
        GetCvMetrics().folds_resumed->Increment(1);
      }
      all_scored.insert(all_scored.end(), fold_scored.begin(), fold_scored.end());
    }
  }

  report.metrics =
      ComputeBinaryMetrics(all_scored, /*threshold=*/0.0, std::max(1, options.train_threads));
  report.auc = ComputeAuc(all_scored, std::max(1, options.train_threads));
  report.train_seconds = timer.ElapsedSeconds();
  return report;
}

Result<PositionWeightReport> LearnPositionWeights(const PairCorpus& corpus,
                                                  const ClassifierConfig& config,
                                                  const PipelineOptions& options) {
  if (!config.use_position) {
    return Status::InvalidArgument("LearnPositionWeights: config must use positions");
  }
  if (corpus.pairs.empty()) {
    return Status::InvalidArgument("LearnPositionWeights: empty pair corpus");
  }
  const FeatureStatsDb db = BuildFeatureStats(corpus, ThreadedStats(options));
  CoupledDataset dataset = BuildClassifierDataset(corpus, db, config, options.seed);
  // Anchor the position factor at zero rather than at its odds-ratio
  // initialisation: the L2 penalty of the P phase then shrinks positions
  // with little evidence toward "not examined" instead of toward the
  // neutral multiplier, which is the interpretable convention for the
  // learned-weights plot (positions the data says nothing about read as
  // invisible, exactly like Figure 3 of the paper).
  for (FeatureId id = 0; id < dataset.p_registry.size(); ++id) {
    dataset.p_registry.SetInitialWeight(id, 0.0);
  }
  auto model = TrainSnippetClassifier(dataset, ThreadedConfig(config, options));
  if (!model.ok()) return model.status();

  PositionWeightReport report;
  report.term_position_weights.assign(
      kMaxLineBucket + 1,
      std::vector<double>(kMaxPosBucket + 1, std::numeric_limits<double>::quiet_NaN()));
  for (int line = 0; line <= kMaxLineBucket; ++line) {
    for (int bucket = 0; bucket <= kMaxPosBucket; ++bucket) {
      const FeatureId id =
          dataset.p_registry.Find(TermPositionKey(PositionKey{line, bucket}));
      if (id != kInvalidFeatureId && id < model->p_weights.size()) {
        report.term_position_weights[line][bucket] = model->p_weights[id];
      }
    }
  }
  return report;
}

}  // namespace microbrowse
