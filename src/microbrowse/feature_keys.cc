// Copyright 2026 The Microbrowse Authors

#include "microbrowse/feature_keys.h"

#include <algorithm>

#include "common/string_util.h"

namespace microbrowse {

PositionKey MakePositionKey(int line, int pos) {
  PositionKey key;
  key.line = std::clamp(line, 0, kMaxLineBucket);
  key.bucket = std::clamp(pos, 0, kMaxPosBucket);
  return key;
}

std::string TermKey(std::string_view text) {
  std::string key = "t:";
  key.append(text);
  return key;
}

std::string TermPositionKey(const PositionKey& position) {
  return StrFormat("p:%d:%d", position.line, position.bucket);
}

std::string TermConjunctionKey(std::string_view text, const PositionKey& position) {
  return StrFormat("tp:%.*s@%d:%d", static_cast<int>(text.size()), text.data(), position.line,
                   position.bucket);
}

SignedKey RewriteKey(std::string_view from, std::string_view to) {
  SignedKey out;
  if (to < from) {
    out.key = StrFormat("rw:%.*s=>%.*s", static_cast<int>(to.size()), to.data(),
                        static_cast<int>(from.size()), from.data());
    out.sign = -1.0;
  } else {
    out.key = StrFormat("rw:%.*s=>%.*s", static_cast<int>(from.size()), from.data(),
                        static_cast<int>(to.size()), to.data());
    out.sign = 1.0;
  }
  return out;
}

std::string RewritePositionKey(const PositionKey& r_pos, const PositionKey& s_pos) {
  return StrFormat("pp:%d:%d=>%d:%d", r_pos.line, r_pos.bucket, s_pos.line, s_pos.bucket);
}

}  // namespace microbrowse
