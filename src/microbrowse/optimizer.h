// Copyright 2026 The Microbrowse Authors
//
// Snippet optimisation — the paper's "automatic generation of snippets"
// future-work direction (Section VI). Given candidate phrases per content
// slot and a trained snippet classifier, the optimiser beam-searches the
// creative (phrase choices AND their arrangement over lines) that the
// classifier predicts to beat a reference creative by the largest margin.
//
// Because the classifier is pairwise, "better" is always relative to the
// current incumbent: the optimiser climbs by repeatedly asking "does this
// variant beat the best creative found so far?".

#ifndef MICROBROWSE_MICROBROWSE_OPTIMIZER_H_
#define MICROBROWSE_MICROBROWSE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "microbrowse/classifier.h"

namespace microbrowse {

/// The building blocks the optimiser may assemble. `brand` is fixed;
/// each inner vector lists the interchangeable phrases for one content
/// block (e.g. all candidate offers). A creative uses exactly one phrase
/// per block.
struct SnippetCandidates {
  std::string brand;
  std::vector<std::vector<std::string>> blocks;
};

/// Optimiser configuration.
struct OptimizeOptions {
  /// Beam width over partial assignments.
  int beam_width = 8;
  /// Hill-climbing refinement rounds after the beam pass.
  int refine_rounds = 2;
};

/// An optimisation outcome: the best creative found and its predicted
/// pairwise margin (classifier score) over the reference.
struct OptimizedSnippet {
  Snippet snippet;
  double margin_over_reference = 0.0;
};

/// Searches for the creative the classifier favours most against
/// `reference`. `model` must be the result of training `config` over
/// registries compatible with `t_registry` / `p_registry` (typically the
/// dataset's registries; unseen features fall back to their warm-start
/// weights when present, otherwise contribute nothing).
Result<OptimizedSnippet> OptimizeSnippet(const SnippetCandidates& candidates,
                                         const Snippet& reference, const FeatureStatsDb& db,
                                         const ClassifierConfig& config,
                                         const SnippetClassifierModel& model,
                                         const FeatureRegistry& t_registry,
                                         const FeatureRegistry& p_registry,
                                         const OptimizeOptions& options = {});

/// Pairwise predicted margin of `challenger` over `incumbent` under the
/// trained model (positive = challenger favoured). Exposed for tooling.
double PredictPairMargin(const Snippet& challenger, const Snippet& incumbent,
                         const FeatureStatsDb& db, const ClassifierConfig& config,
                         const SnippetClassifierModel& model,
                         const FeatureRegistry& t_registry,
                         const FeatureRegistry& p_registry);

/// PredictPairMargin against caller-owned *mutable* registries: unseen
/// features are interned into them (with their statistics warm starts)
/// instead of into per-call copies. The serving hot path reuses one
/// registry pair per worker across requests, so scoring cost stays
/// extraction + dot product instead of extraction + two registry copies.
double PredictPairMargin(const Snippet& challenger, const Snippet& incumbent,
                         const FeatureStatsDb& db, const ClassifierConfig& config,
                         const SnippetClassifierModel& model, FeatureRegistry* t_registry,
                         FeatureRegistry* p_registry);

/// Scores pre-extracted occurrences under `model`, falling back to the
/// registries' warm-start weights for features interned after training
/// (ids beyond the trained weight vectors).
double ScoreOccurrences(const SnippetClassifierModel& model,
                        const FeatureRegistry& t_registry,
                        const FeatureRegistry& p_registry,
                        const std::vector<CoupledOccurrence>& occurrences);

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_OPTIMIZER_H_
