// Copyright 2026 The Microbrowse Authors
//
// Canonical string keys for classifier features and statistics-database
// entries. Keeping every key builder in one place guarantees that the
// statistics phase and the classifier phase agree on naming, which is what
// makes warm-starting work.
//
// Key grammar:
//   term          t:<text>
//   rewrite       rw:<from>=><to>        (canonicalised, see below)
//   term position p:<line>:<bucket>
//   rewrite pos.  pp:<line>:<bucket>=><line>:<bucket>  (canonicalised)
//
// Rewrites are direction-sensitive ("find cheap" -> "get discounts" raising
// CTR means the reverse lowers it), so (from, to) pairs are canonicalised
// to lexicographic order with a sign: a feature occurrence whose raw
// direction was flipped during canonicalisation carries value -1 instead
// of +1. The same sign flips the delta-sw observation when building stats.

#ifndef MICROBROWSE_MICROBROWSE_FEATURE_KEYS_H_
#define MICROBROWSE_MICROBROWSE_FEATURE_KEYS_H_

#include <string>
#include <string_view>

#include "text/snippet.h"

namespace microbrowse {

/// Positions are bucketed to control sparsity: buckets 0..kMaxPosBucket,
/// with everything past the last bucket collapsed into it.
inline constexpr int kMaxPosBucket = 7;
/// Lines past the third are collapsed into line bucket 2.
inline constexpr int kMaxLineBucket = 2;

/// Bucketed position of a span (uses the span's first token).
struct PositionKey {
  int line = 0;    ///< 0..kMaxLineBucket
  int bucket = 0;  ///< 0..kMaxPosBucket

  friend bool operator==(const PositionKey& a, const PositionKey& b) {
    return a.line == b.line && a.bucket == b.bucket;
  }
  friend bool operator<(const PositionKey& a, const PositionKey& b) {
    return a.line != b.line ? a.line < b.line : a.bucket < b.bucket;
  }
};

/// Buckets a raw (line, pos) location.
PositionKey MakePositionKey(int line, int pos);

/// Buckets a span's location.
inline PositionKey MakePositionKey(const TermSpan& span) {
  return MakePositionKey(span.line, span.pos);
}

/// A canonicalised key plus the sign its raw direction maps to.
struct SignedKey {
  std::string key;
  double sign = 1.0;
};

/// "t:<text>".
std::string TermKey(std::string_view text);

/// "p:<line>:<bucket>".
std::string TermPositionKey(const PositionKey& position);

/// Positioned-term conjunction key "tp:<text>@<line>:<bucket>" — the
/// sparse term-x-position features of model M2 (the coupled factorisation
/// of Eq. 8/9 is introduced for the rewrite models; plain positioned term
/// features conjoin text and location in one key).
std::string TermConjunctionKey(std::string_view text, const PositionKey& position);

/// Canonical rewrite key for raw direction `from` -> `to`; sign is -1 when
/// the canonical order is the reverse of the raw order. A self-rewrite
/// (from == to, a pure move) keeps sign +1.
SignedKey RewriteKey(std::string_view from, std::string_view to);

/// Ordered position-pair key "pp:<r>=><s>" for a rewrite whose R-side span
/// sits at `r_pos` and S-side span at `s_pos` — Eq. 8's f(v_p, w_q) with
/// p the position in R and q the position in S. The key is direction-
/// sensitive: presenting the same pair in the opposite order produces the
/// mirrored key, and the two learn consistent (approximately antisymmetric
/// in effect) weights from the randomly-ordered training pairs.
std::string RewritePositionKey(const PositionKey& r_pos, const PositionKey& s_pos);

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_FEATURE_KEYS_H_
