// Copyright 2026 The Microbrowse Authors
//
// Rewrite matching (Section IV-A). Given a creative pair (R, S), localize
// the differing regions with a token diff, enumerate candidate phrase
// pairs, and greedily match them using scores from the feature-statistics
// database — the intuition being that a frequently observed rewrite like
// "find cheap" -> "get discounts" outranks an incidental alignment like
// "find cheap" -> "flying". Unmatched residue becomes term-level features.

#ifndef MICROBROWSE_MICROBROWSE_REWRITE_H_
#define MICROBROWSE_MICROBROWSE_REWRITE_H_

#include <vector>

#include "microbrowse/stats_db.h"
#include "text/snippet.h"

namespace microbrowse {

/// One matched phrase rewrite: `r_span` in R corresponds to `s_span` in S.
/// For a pure move the two spans have identical text.
struct RewriteMatch {
  TermSpan r_span;
  TermSpan s_span;

  friend bool operator==(const RewriteMatch& a, const RewriteMatch& b) {
    return a.r_span == b.r_span && a.s_span == b.s_span;
  }
};

/// The diff decomposition of a creative pair.
struct PairDiff {
  std::vector<RewriteMatch> rewrites;
  /// N-grams over the differing tokens of R left unmatched.
  std::vector<TermSpan> r_only;
  /// N-grams over the differing tokens of S left unmatched.
  std::vector<TermSpan> s_only;

  bool empty() const { return rewrites.empty() && r_only.empty() && s_only.empty(); }
};

/// Matching strategy — kGreedyStats is the paper's algorithm; the others
/// exist for the ablation bench.
enum class MatchingStrategy {
  kGreedyStats,   ///< Greedy by DB frequency / strength, then locality.
  kFirstMatch,    ///< Naive first-come pairing in token order.
  kPositionOnly,  ///< Greedy by locality and span length only (no DB).
};

/// Rewrite-matching configuration.
struct RewriteMatchOptions {
  int max_ngram = 3;
  MatchingStrategy strategy = MatchingStrategy::kGreedyStats;
  /// Tokens of shared context annexed on each side of a diff region before
  /// candidates are enumerated. Rewrites between phrases that share tokens
  /// ("find cheap" -> "find deals on") leave only fragments in the raw
  /// token diff; the expanded window lets the matcher recover the full
  /// phrase pair.
  int context_expansion = 2;
};

/// Computes the rewrite decomposition of the pair (r, s). `db` may be null
/// (phase-one matching); it is only consulted by kGreedyStats.
PairDiff MatchRewrites(const Snippet& r, const Snippet& s, const FeatureStatsDb* db,
                       const RewriteMatchOptions& options = {});

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_REWRITE_H_
