// Copyright 2026 The Microbrowse Authors

#include "microbrowse/rewrite.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "microbrowse/feature_keys.h"
#include "text/diff.h"
#include "text/ngram.h"

namespace microbrowse {

namespace {

/// A contiguous differing token window on one side of the pair.
struct DiffRegion {
  int line = 0;
  int begin = 0;
  int count = 0;
};

/// A candidate phrase pairing with its greedy priority.
struct Candidate {
  TermSpan r_span;
  TermSpan s_span;
  double score = 0.0;
  int order = 0;  ///< Enumeration order, used by kFirstMatch and tie-breaks.
};

/// Expands each region by `expansion` tokens of context on both sides
/// (clamped to the line) and merges regions that then touch or overlap.
/// Regions must arrive sorted by (line, begin), which CollectDiffRegions
/// guarantees.
void ExpandAndMergeRegions(const Snippet& snippet, int expansion,
                           std::vector<DiffRegion>* regions) {
  if (expansion <= 0) return;
  for (DiffRegion& region : *regions) {
    const int line_size = static_cast<int>(snippet.line(region.line).size());
    const int begin = std::max(0, region.begin - expansion);
    const int end = std::min(line_size, region.begin + region.count + expansion);
    region.begin = begin;
    region.count = end - begin;
  }
  size_t out = 0;
  for (size_t i = 0; i < regions->size(); ++i) {
    DiffRegion& current = (*regions)[i];
    if (out > 0) {
      DiffRegion& prev = (*regions)[out - 1];
      if (prev.line == current.line && current.begin <= prev.begin + prev.count) {
        const int end = std::max(prev.begin + prev.count, current.begin + current.count);
        prev.count = end - prev.begin;
        continue;
      }
    }
    (*regions)[out++] = current;
  }
  regions->resize(out);
}

/// Collects per-line diff regions for both snippets.
void CollectDiffRegions(const Snippet& r, const Snippet& s, std::vector<DiffRegion>* r_regions,
                        std::vector<DiffRegion>* s_regions) {
  static const std::vector<std::string> kEmptyLine;
  const int lines = std::max(r.num_lines(), s.num_lines());
  for (int line = 0; line < lines; ++line) {
    const auto& r_tokens = line < r.num_lines() ? r.line(line) : kEmptyLine;
    const auto& s_tokens = line < s.num_lines() ? s.line(line) : kEmptyLine;
    for (const DiffHunk& hunk : TokenDiff(r_tokens, s_tokens)) {
      if (hunk.a_len > 0) r_regions->push_back(DiffRegion{line, hunk.a_pos, hunk.a_len});
      if (hunk.b_len > 0) s_regions->push_back(DiffRegion{line, hunk.b_pos, hunk.b_len});
    }
  }
}

/// Locality bonus: same line and nearby positions score higher.
double Locality(const TermSpan& a, const TermSpan& b) {
  return -3.0 * std::abs(a.line - b.line) - 0.25 * std::abs(a.pos - b.pos);
}

double CandidateScore(const TermSpan& r_span, const TermSpan& s_span, const FeatureStatsDb* db,
                      MatchingStrategy strategy) {
  const double coverage = static_cast<double>(r_span.len + s_span.len);
  const double locality = Locality(r_span, s_span);
  // Exact-text pairings are pure moves — always the best explanation.
  const double exact = r_span.text == s_span.text ? 1e9 : 0.0;
  switch (strategy) {
    case MatchingStrategy::kFirstMatch:
      return 0.0;  // Order decides.
    case MatchingStrategy::kPositionOnly:
      return exact + coverage * 10.0 + locality;
    case MatchingStrategy::kGreedyStats: {
      double db_score = 0.0;
      if (db != nullptr) {
        const SignedKey key = RewriteKey(s_span.text, r_span.text);
        const FeatureStat* stat = db->Find(key.key);
        if (stat != nullptr) {
          // Frequency dominates ("a more probable rewrite has a higher
          // score"); decisiveness (|log odds|) refines.
          db_score = 1e4 * std::log1p(static_cast<double>(stat->total)) +
                     1e2 * std::fabs(stat->LogOdds(db->smoothing()));
        }
      }
      return exact + db_score + coverage * 10.0 + locality;
    }
  }
  return 0.0;
}

/// Marks `span`'s tokens in `covered` (per-line bitmask); returns false if
/// any token is already covered.
bool TryCover(const TermSpan& span, std::vector<std::vector<char>>* covered) {
  auto& line_mask = (*covered)[span.line];
  for (int i = 0; i < span.len; ++i) {
    if (line_mask[span.pos + i]) return false;
  }
  for (int i = 0; i < span.len; ++i) line_mask[span.pos + i] = 1;
  return true;
}

/// Emits all n-grams of the expanded diff regions. With the context
/// expansion these are exactly the n-grams present in one snippet but not
/// the other (plus shared-context grams, which appear on both sides and
/// cancel downstream) — the paper's "terms in R but not in S" after
/// matching.
std::vector<TermSpan> RegionTerms(const Snippet& snippet, const std::vector<DiffRegion>& regions,
                                  int max_ngram) {
  std::vector<TermSpan> out;
  for (const DiffRegion& region : regions) {
    auto grams =
        ExtractNGramsInWindow(snippet, region.line, region.begin, region.count, max_ngram);
    out.insert(out.end(), grams.begin(), grams.end());
  }
  return out;
}

/// Emits *shift rewrites*: identical tokens that the LCS kept aligned but
/// whose positions landed in different buckets (an upstream edit changed
/// their offsets). The paper's rewrite tuples carry positions explicitly —
/// ("find cheap":1:2 -> "get discounts":5:2) — so a term whose position
/// changed while its text did not is a rewrite too, and it is exactly the
/// "location within a snippet" signal the micro-browsing model is about.
/// Tokens already consumed by a matched candidate are skipped.
void AppendShiftRewrites(const Snippet& r, const Snippet& s,
                         const std::vector<std::vector<char>>& r_covered,
                         const std::vector<std::vector<char>>& s_covered, int max_ngram,
                         std::vector<RewriteMatch>* rewrites) {
  static const std::vector<std::string> kEmptyLine;
  const int lines = std::max(r.num_lines(), s.num_lines());
  for (int line = 0; line < lines; ++line) {
    const auto& r_tokens = line < r.num_lines() ? r.line(line) : kEmptyLine;
    const auto& s_tokens = line < s.num_lines() ? s.line(line) : kEmptyLine;
    if (r_tokens.empty() || s_tokens.empty()) continue;
    std::vector<TokenMatch> matches;
    TokenDiff(r_tokens, s_tokens, &matches);

    // Maximal runs of consecutive aligned pairs whose bucketed positions
    // differ and whose tokens are not already covered.
    size_t i = 0;
    while (i < matches.size()) {
      auto shifted = [&](const TokenMatch& match) {
        return !(MakePositionKey(line, match.a_index) == MakePositionKey(line, match.b_index)) &&
               !r_covered[line][match.a_index] && !s_covered[line][match.b_index];
      };
      if (!shifted(matches[i])) {
        ++i;
        continue;
      }
      size_t end = i + 1;
      while (end < matches.size() && shifted(matches[end]) &&
             matches[end].a_index == matches[end - 1].a_index + 1 &&
             matches[end].b_index == matches[end - 1].b_index + 1) {
        ++end;
      }
      // Emit all sub-grams of the run as same-text rewrites.
      const int run_len = static_cast<int>(end - i);
      for (int offset = 0; offset < run_len; ++offset) {
        const int max_len = std::min(max_ngram, run_len - offset);
        for (int len = 1; len <= max_len; ++len) {
          const int a_pos = matches[i + offset].a_index;
          const int b_pos = matches[i + offset].b_index;
          RewriteMatch match;
          match.r_span = TermSpan{line, a_pos, len, r.SpanText(line, a_pos, len)};
          match.s_span = TermSpan{line, b_pos, len, s.SpanText(line, b_pos, len)};
          rewrites->push_back(std::move(match));
        }
      }
      i = end;
    }
  }
}

std::vector<std::vector<char>> MakeCoverage(const Snippet& snippet) {
  std::vector<std::vector<char>> covered(snippet.num_lines());
  for (int line = 0; line < snippet.num_lines(); ++line) {
    covered[line].assign(snippet.line(line).size(), 0);
  }
  return covered;
}

}  // namespace

PairDiff MatchRewrites(const Snippet& r, const Snippet& s, const FeatureStatsDb* db,
                       const RewriteMatchOptions& options) {
  PairDiff out;
  std::vector<DiffRegion> r_regions;
  std::vector<DiffRegion> s_regions;
  CollectDiffRegions(r, s, &r_regions, &s_regions);
  if (r_regions.empty() && s_regions.empty()) return out;
  ExpandAndMergeRegions(r, options.context_expansion, &r_regions);
  ExpandAndMergeRegions(s, options.context_expansion, &s_regions);

  // Enumerate candidate phrase pairs across all region combinations.
  std::vector<TermSpan> r_grams;
  for (const DiffRegion& region : r_regions) {
    auto grams = ExtractNGramsInWindow(r, region.line, region.begin, region.count,
                                       options.max_ngram);
    r_grams.insert(r_grams.end(), grams.begin(), grams.end());
  }
  std::vector<TermSpan> s_grams;
  for (const DiffRegion& region : s_regions) {
    auto grams = ExtractNGramsInWindow(s, region.line, region.begin, region.count,
                                       options.max_ngram);
    s_grams.insert(s_grams.end(), grams.begin(), grams.end());
  }

  std::vector<Candidate> candidates;
  candidates.reserve(r_grams.size() * s_grams.size());
  int order = 0;
  for (const TermSpan& r_span : r_grams) {
    for (const TermSpan& s_span : s_grams) {
      // Identity candidates (same text at the same location) are no-op
      // artifacts of the context expansion; admitting them would let
      // shared context absorb the exact-match bonus and block real phrase
      // pairings.
      if (r_span == s_span) continue;
      candidates.push_back(Candidate{r_span, s_span,
                                     CandidateScore(r_span, s_span, db, options.strategy),
                                     order++});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.order < b.order;
                   });

  // Greedy disjoint cover.
  auto r_covered = MakeCoverage(r);
  auto s_covered = MakeCoverage(s);
  for (const Candidate& candidate : candidates) {
    // Probe coverage without committing: check both sides first.
    bool r_free = true;
    for (int i = 0; i < candidate.r_span.len; ++i) {
      if (r_covered[candidate.r_span.line][candidate.r_span.pos + i]) r_free = false;
    }
    if (!r_free) continue;
    bool s_free = true;
    for (int i = 0; i < candidate.s_span.len; ++i) {
      if (s_covered[candidate.s_span.line][candidate.s_span.pos + i]) s_free = false;
    }
    if (!s_free) continue;
    TryCover(candidate.r_span, &r_covered);
    TryCover(candidate.s_span, &s_covered);
    out.rewrites.push_back(RewriteMatch{candidate.r_span, candidate.s_span});
  }

  out.r_only = RegionTerms(r, r_regions, options.max_ngram);
  out.s_only = RegionTerms(s, s_regions, options.max_ngram);
  AppendShiftRewrites(r, s, r_covered, s_covered, options.max_ngram, &out.rewrites);
  return out;
}

}  // namespace microbrowse
