// Copyright 2026 The Microbrowse Authors
//
// Input records of the snippet-classification framework (Fig. 1 of the
// paper): snippets observed with impression/click counts and serve weights,
// grouped into same-adgroup pairs whose CTRs differ.

#ifndef MICROBROWSE_MICROBROWSE_PAIR_H_
#define MICROBROWSE_MICROBROWSE_PAIR_H_

#include <cstdint>
#include <vector>

#include "text/snippet.h"

namespace microbrowse {

/// One snippet (ad creative) with its observed serving statistics.
struct SnippetObservation {
  Snippet snippet;
  int64_t impressions = 0;
  int64_t clicks = 0;
  /// Serve weight: CTR normalised by the adgroup's mean CTR (Section V-B).
  double serve_weight = 1.0;

  /// Observed click-through rate (0 when never shown).
  double ctr() const {
    return impressions > 0 ? static_cast<double>(clicks) / static_cast<double>(impressions)
                           : 0.0;
  }
};

/// A pair of creatives from the same adgroup / keyword whose observed CTRs
/// differ significantly. By construction `r.serve_weight > s.serve_weight`
/// is NOT guaranteed — the pair is stored in corpus order and consumers use
/// the serve weights to derive labels.
struct SnippetPair {
  int64_t adgroup_id = 0;
  int32_t keyword_id = 0;  ///< Doubles as the query id for the pair.
  SnippetObservation r;
  SnippetObservation s;

  /// Serve-weight difference sw(R) - sw(S).
  double sw_diff() const { return r.serve_weight - s.serve_weight; }

  /// +1 if sw-diff positive else -1 (the paper's delta-sw variable).
  int delta_sw() const { return sw_diff() >= 0.0 ? +1 : -1; }
};

/// The pair corpus fed to both pipeline phases.
struct PairCorpus {
  std::vector<SnippetPair> pairs;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_PAIR_H_
