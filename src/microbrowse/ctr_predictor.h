// Copyright 2026 The Microbrowse Authors
//
// Pointwise creative scoring on top of the pairwise machinery. The paper's
// classifier is pairwise (which of two creatives wins); many production
// uses need a *pointwise* quality score — rank N drafts, screen a new
// creative before serving. This header derives one from the same learned
// artefacts: each term contributes its learned (or statistics-database)
// relevance weight scaled by the learned visibility of its position.
//
// The score is a relative quality in log-odds units: differences of two
// creatives' scores approximate the pairwise classifier's margin (exact
// when the pairwise model is position-decomposable).

#ifndef MICROBROWSE_MICROBROWSE_CTR_PREDICTOR_H_
#define MICROBROWSE_MICROBROWSE_CTR_PREDICTOR_H_

#include <vector>

#include "common/result.h"
#include "microbrowse/classifier.h"
#include "microbrowse/feature_keys.h"
#include "microbrowse/model.h"

namespace microbrowse {

/// Pointwise scorer configuration.
struct CtrPredictorOptions {
  int max_ngram = 3;
  /// Visibility for positions whose weight was never learned: fall back to
  /// this examination curve.
  ExaminationCurve fallback_curve = ExaminationCurve::TopPlacement();
};

/// Scores creatives pointwise from a trained coupled model (or, when the
/// model is empty, straight from the statistics database warm starts).
class CtrPredictor {
 public:
  /// `model` / registries are typically the output of TrainSnippetClassifier
  /// with a coupled-position configuration. They are copied.
  CtrPredictor(const SnippetClassifierModel& model, const FeatureRegistry& t_registry,
               const FeatureRegistry& p_registry, const FeatureStatsDb* db = nullptr,
               CtrPredictorOptions options = {});

  /// Relative quality score of a creative (higher = higher predicted CTR).
  double Score(const Snippet& snippet) const;

  /// Ranks the creatives by descending predicted CTR; returns indices into
  /// `snippets`.
  std::vector<size_t> Rank(const std::vector<Snippet>& snippets) const;

 private:
  /// Learned visibility of a position, falling back to the curve.
  double Visibility(const PositionKey& position) const;

  SnippetClassifierModel model_;
  FeatureRegistry t_registry_;
  FeatureRegistry p_registry_;
  const FeatureStatsDb* db_;  ///< Optional; not owned. May be null.
  CtrPredictorOptions options_;
};

/// Fits the parametric examination curve p(line, pos) = base[line] *
/// decay^pos to a learned position-weight grid (entries may be NaN for
/// unobserved positions) by least squares in log space. Returns
/// InvalidArgument when fewer than three finite positive weights exist.
/// The fitted curve reports the *shape* of the learned weights; its
/// absolute scale is normalised so the largest fitted value is `peak`.
Result<ExaminationCurve> FitExaminationCurve(
    const std::vector<std::vector<double>>& position_weights, double peak = 0.95);

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_CTR_PREDICTOR_H_
