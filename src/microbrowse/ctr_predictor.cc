// Copyright 2026 The Microbrowse Authors

#include "microbrowse/ctr_predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "microbrowse/feature_keys.h"
#include "text/ngram.h"

namespace microbrowse {

CtrPredictor::CtrPredictor(const SnippetClassifierModel& model,
                           const FeatureRegistry& t_registry,
                           const FeatureRegistry& p_registry, const FeatureStatsDb* db,
                           CtrPredictorOptions options)
    : model_(model),
      t_registry_(t_registry),
      p_registry_(p_registry),
      db_(db),
      options_(options) {}

double CtrPredictor::Visibility(const PositionKey& position) const {
  const FeatureId id = p_registry_.Find(TermPositionKey(position));
  if (id != kInvalidFeatureId && id < model_.p_weights.size()) {
    return model_.p_weights[id];
  }
  return options_.fallback_curve.Probability(position.line, position.bucket);
}

double CtrPredictor::Score(const Snippet& snippet) const {
  double score = 0.0;
  for (const TermSpan& span : ExtractNGrams(snippet, options_.max_ngram)) {
    const PositionKey position = MakePositionKey(span);
    // Prefer the positioned conjunction weight when the model has one;
    // otherwise the plain term weight times the learned visibility.
    double term_weight = 0.0;
    bool positioned = false;
    const FeatureId conj = t_registry_.Find(TermConjunctionKey(span.text, position));
    if (conj != kInvalidFeatureId && conj < model_.t_weights.size() &&
        model_.t_weights[conj] != 0.0) {
      term_weight = model_.t_weights[conj];
      positioned = true;
    } else {
      const FeatureId plain = t_registry_.Find(TermKey(span.text));
      if (plain != kInvalidFeatureId && plain < model_.t_weights.size()) {
        term_weight = model_.t_weights[plain];
      } else if (db_ != nullptr) {
        term_weight = db_->LogOdds(TermKey(span.text));
      }
    }
    score += positioned ? term_weight : term_weight * Visibility(position);
  }
  return score;
}

std::vector<size_t> CtrPredictor::Rank(const std::vector<Snippet>& snippets) const {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(snippets.size());
  for (size_t i = 0; i < snippets.size(); ++i) {
    scored.emplace_back(Score(snippets[i]), i);
  }
  std::stable_sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  std::vector<size_t> order;
  order.reserve(scored.size());
  for (const auto& [score, index] : scored) order.push_back(index);
  return order;
}

Result<ExaminationCurve> FitExaminationCurve(
    const std::vector<std::vector<double>>& position_weights, double peak) {
  // Model: log w(line, pos) = a_line + pos * log(decay). Least squares with
  // a shared slope and per-line intercepts.
  struct Point {
    size_t line;
    double pos;
    double log_weight;
  };
  std::vector<Point> points;
  for (size_t line = 0; line < position_weights.size(); ++line) {
    for (size_t pos = 0; pos < position_weights[line].size(); ++pos) {
      const double w = position_weights[line][pos];
      if (std::isfinite(w) && w > 1e-6) {
        points.push_back({line, static_cast<double>(pos), std::log(w)});
      }
    }
  }
  if (points.size() < 3) {
    return Status::InvalidArgument("FitExaminationCurve: need >= 3 positive weights");
  }
  const size_t lines = position_weights.size();

  // Profile out the intercepts: for a fixed slope b, the optimal intercept
  // of a line is mean(log w - b * pos) over its points; the optimal slope
  // solves a 1-d least squares over the centred data.
  std::vector<double> pos_mean(lines, 0.0), logw_mean(lines, 0.0);
  std::vector<int> count(lines, 0);
  for (const Point& point : points) {
    pos_mean[point.line] += point.pos;
    logw_mean[point.line] += point.log_weight;
    ++count[point.line];
  }
  for (size_t l = 0; l < lines; ++l) {
    if (count[l] > 0) {
      pos_mean[l] /= count[l];
      logw_mean[l] /= count[l];
    }
  }
  double sxy = 0.0, sxx = 0.0;
  for (const Point& point : points) {
    const double x = point.pos - pos_mean[point.line];
    const double y = point.log_weight - logw_mean[point.line];
    sxy += x * y;
    sxx += x * x;
  }
  const double slope = sxx > 1e-12 ? sxy / sxx : 0.0;
  // Clamp to a meaningful decay in (0, 1].
  const double decay = std::clamp(std::exp(slope), 0.05, 1.0);

  std::vector<double> bases(lines, 0.0);
  double max_base = 0.0;
  for (size_t l = 0; l < lines; ++l) {
    bases[l] = count[l] > 0 ? std::exp(logw_mean[l] - slope * pos_mean[l]) : 0.0;
    max_base = std::max(max_base, bases[l]);
  }
  if (max_base <= 0.0) {
    return Status::Internal("FitExaminationCurve: degenerate fit");
  }
  for (double& base : bases) base = base / max_base * peak;
  return ExaminationCurve(std::move(bases), decay, /*floor=*/1e-4);
}

}  // namespace microbrowse
