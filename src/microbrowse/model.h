// Copyright 2026 The Microbrowse Authors
//
// The micro-browsing model of Section III: within one snippet the user
// examines the term at (line, pos) with probability p(line, pos) and judges
// relevance only from the examined terms,
//   Pr(R | q) = prod_i r_i ^ v_i                                  (Eq. 3)
// with r_i the term's relevance and v_i the examination indicator. The
// pairwise score between two snippets is the log-probability ratio
//   score(R -> S | q) = sum_i v_i log r_i - sum_j w_j log s_j.     (Eq. 5)
//
// This header provides (a) the examination curve abstraction, (b) a term
// relevance interface, and (c) the combined generative model used both to
// *define* expected snippet CTR analytically and to *sample* examinations
// and clicks. The corpus generator drives this model as ground truth; the
// classifier of Section IV never sees these parameters.

#ifndef MICROBROWSE_MICROBROWSE_MODEL_H_
#define MICROBROWSE_MICROBROWSE_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "text/snippet.h"

namespace microbrowse {

/// Examination probability per (line, position): the probability that a
/// user reading the snippet actually reads the token at that micro-position.
/// Parameterised as p(line, pos) = line_base[line] * pos_decay ^ pos,
/// clamped to [floor, 1]. Line bases decrease with line number and decay
/// < 1 makes later words in a line less likely to be read — the shape
/// Figure 3 of the paper recovers from data.
class ExaminationCurve {
 public:
  ExaminationCurve() = default;

  /// `line_bases[l]` is the examination probability of the first token of
  /// line l; tokens at position p are examined with probability
  /// line_bases[l] * pos_decay^p (>= floor). Lines beyond the vector reuse
  /// the last entry.
  ExaminationCurve(std::vector<double> line_bases, double pos_decay, double floor = 0.02)
      : line_bases_(std::move(line_bases)), pos_decay_(pos_decay), floor_(floor) {}

  /// The default 3-line curve used for TOP-placement ground truth.
  static ExaminationCurve TopPlacement();

  /// A weaker curve for right-hand-side placement (users examine less).
  static ExaminationCurve RhsPlacement();

  /// Returns a copy with every probability scaled by `factor` (still
  /// clamped to [floor, 1]).
  ExaminationCurve Scaled(double factor) const;

  /// Examination probability of token `pos` (0-based) of line `line`.
  double Probability(int line, int pos) const;

  const std::vector<double>& line_bases() const { return line_bases_; }
  double pos_decay() const { return pos_decay_; }

 private:
  std::vector<double> line_bases_{0.9, 0.65, 0.45};
  double pos_decay_ = 0.82;
  double floor_ = 0.02;
};

/// Supplies the per-term relevance r_i in Eq. 3. Implementations may key on
/// the query; the classifier-side code never implements this (relevance is
/// latent there), only ground-truth generators do.
class TermRelevance {
 public:
  virtual ~TermRelevance() = default;

  /// Relevance in (0, 1] of `token` for `query_id`.
  virtual double Relevance(int32_t query_id, std::string_view token) const = 0;
};

/// A trivial TermRelevance backed by a token -> relevance map with a
/// default for unknown tokens. Query-independent; used in tests.
class MapRelevance : public TermRelevance {
 public:
  explicit MapRelevance(double default_relevance = 0.9)
      : default_relevance_(default_relevance) {}

  void Set(std::string token, double relevance) { map_[std::move(token)] = relevance; }

  double Relevance(int32_t /*query_id*/, std::string_view token) const override {
    auto it = map_.find(std::string(token));
    return it != map_.end() ? it->second : default_relevance_;
  }

 private:
  double default_relevance_;
  std::unordered_map<std::string, double> map_;
};

/// A sampled examination pattern: v[line][pos] in {0,1} per token.
using ExaminationPattern = std::vector<std::vector<uint8_t>>;

/// The generative micro-browsing model (Eq. 3) over snippets.
class MicroBrowsingModel {
 public:
  /// `base_ctr` multiplies the relevance product: it models the query
  /// intent / position-on-page effect that Eq. 3 leaves implicit (with no
  /// examined terms the equation's empty product is 1).
  MicroBrowsingModel(ExaminationCurve curve, double base_ctr = 0.08)
      : curve_(std::move(curve)), base_ctr_(base_ctr) {}

  /// Expected click probability of `snippet` for `query_id`:
  ///   base_ctr * prod_i (1 - p_i * (1 - r_i)),
  /// the closed-form expectation of Eq. 3 over independent examinations.
  double ExpectedClickProbability(int32_t query_id, const Snippet& snippet,
                                  const TermRelevance& relevance) const;

  /// Pr(R|q) for a *fixed* examination pattern — Eq. 3 verbatim (without
  /// base_ctr). `pattern` must match the snippet's shape.
  double RelevanceGivenExamination(int32_t query_id, const Snippet& snippet,
                                   const ExaminationPattern& pattern,
                                   const TermRelevance& relevance) const;

  /// Samples which tokens the user examines.
  ExaminationPattern SampleExaminations(const Snippet& snippet, Rng* rng) const;

  /// Samples a click: draws an examination pattern, then clicks with
  /// probability base_ctr * Pr(R|q).
  bool SampleClick(int32_t query_id, const Snippet& snippet, const TermRelevance& relevance,
                   Rng* rng) const;

  /// Pairwise log score of Eq. 5 for fixed examination patterns.
  double ScorePair(int32_t query_id, const Snippet& r, const ExaminationPattern& vr,
                   const Snippet& s, const ExaminationPattern& vs,
                   const TermRelevance& relevance) const;

  /// Expected examination probability of every token — the model's
  /// prediction of an eye-tracking heat map (the paper's Section VI
  /// proposes exactly this comparison). With `attention_absorb` > 0 an
  /// intra-snippet cascade applies: after examining a token the user stops
  /// reading with probability absorb * p * r, so salient early tokens dim
  /// everything after them in reading order.
  std::vector<std::vector<double>> ExaminationHeatmap(int32_t query_id, const Snippet& snippet,
                                                      const TermRelevance& relevance,
                                                      double attention_absorb = 0.0) const;

  const ExaminationCurve& curve() const { return curve_; }
  double base_ctr() const { return base_ctr_; }

 private:
  ExaminationCurve curve_;
  double base_ctr_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_MICROBROWSE_MODEL_H_
