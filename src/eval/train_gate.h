// Copyright 2026 The Microbrowse Authors
//
// The training-benchmark speedup gate, factored out of bench/train_bench.cc
// so the decision logic is unit-testable: given the sweep's measured
// points, decide whether the parallel-training target ("proximal-batch
// examples/sec at 8 threads >= 3x 1 thread on corpora of at least 100k
// pairs") is enforced on this run and whether it passed. The benchmark
// binary maps `passed == false` to a nonzero exit, which is what CI's
// MB_REQUIRE_SPEEDUP=1 leg keys off.

#ifndef MICROBROWSE_EVAL_TRAIN_GATE_H_
#define MICROBROWSE_EVAL_TRAIN_GATE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace microbrowse {

/// One measured sweep point, as written to BENCH_train.json.
struct TrainGatePoint {
  std::string solver;  ///< "adagrad" or "proximal_batch".
  size_t pairs = 0;
  int threads = 0;
  double speedup_vs_1_thread = 1.0;
};

struct TrainGateOptions {
  /// Required 8-thread speedup over 1 thread.
  double min_speedup = 3.0;
  /// Only points at or above this corpus size are gated: below it,
  /// per-epoch parallel overhead dominates and the measurement says
  /// nothing about the training path's scaling.
  size_t min_pairs = 100000;
  /// Thread count the target is stated at.
  int gate_threads = 8;
  /// Force enforcement regardless of detected hardware
  /// (MB_REQUIRE_SPEEDUP=1).
  bool require = false;
  /// std::thread::hardware_concurrency() of the machine that ran the sweep.
  unsigned hardware_threads = 0;
};

struct TrainGateResult {
  /// Whether the gate applies to this run: forced by `require`, or the
  /// hardware can genuinely run `gate_threads` workers and the sweep
  /// contains at least one gateable point.
  bool enforced = false;
  /// False only when the gate is enforced and a gated point missed the
  /// target; an unenforced run always passes.
  bool passed = true;
  /// Indices (into the input vector) of gated points below min_speedup,
  /// populated even when the gate is not enforced so reports can warn.
  std::vector<size_t> failing;
  /// Speedup of the largest gated point (the headline number); 0 when the
  /// sweep has no gateable point.
  double headline_speedup = 0.0;
  size_t headline_pairs = 0;
};

/// True for points the target is stated over: the proximal-batch solver at
/// the gate thread count on a large-enough corpus.
inline bool IsGatedPoint(const TrainGatePoint& point, const TrainGateOptions& options) {
  return point.solver == "proximal_batch" && point.threads == options.gate_threads &&
         point.pairs >= options.min_pairs;
}

inline TrainGateResult EvaluateTrainGate(const std::vector<TrainGatePoint>& points,
                                         const TrainGateOptions& options) {
  TrainGateResult result;
  for (size_t i = 0; i < points.size(); ++i) {
    if (!IsGatedPoint(points[i], options)) continue;
    if (points[i].pairs >= result.headline_pairs) {
      result.headline_pairs = points[i].pairs;
      result.headline_speedup = points[i].speedup_vs_1_thread;
    }
    if (points[i].speedup_vs_1_thread < options.min_speedup) {
      result.failing.push_back(i);
    }
  }
  const bool has_gated = result.headline_pairs > 0;
  result.enforced =
      options.require ||
      (options.hardware_threads >= static_cast<unsigned>(options.gate_threads) && has_gated);
  // An enforced run with no gateable point passes vacuously: the sweep was
  // too small to state the target, which the report surfaces separately.
  result.passed = !result.enforced || result.failing.empty();
  return result;
}

}  // namespace microbrowse

#endif  // MICROBROWSE_EVAL_TRAIN_GATE_H_
