// Copyright 2026 The Microbrowse Authors
//
// Experiment drivers regenerating the paper's evaluation artefacts:
//   Table 2  — recall / precision / F-measure of M1..M6, 10-fold CV
//   Figure 3 — learned term-position weights for lines 1-3
//   Table 4  — accuracy of M1..M6 for TOP vs RHS ad placement
// Each driver generates a synthetic ADCORPUS (see corpus/), extracts
// significant pairs, and runs the two-phase classification pipeline.

#ifndef MICROBROWSE_EVAL_EXPERIMENTS_H_
#define MICROBROWSE_EVAL_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/pipeline.h"

namespace microbrowse {

/// Shared experiment configuration. The default scale finishes in a couple
/// of minutes on one core; scale up via num_adgroups (or the MB_ADGROUPS
/// environment variable in the bench binaries).
struct ExperimentOptions {
  int num_adgroups = 8000;
  int folds = 10;
  uint64_t seed = 2026;
  AdCorpusOptions corpus;          ///< placement/seeds overridden per driver.
  PairExtractionOptions extraction;
  PipelineOptions pipeline;

  /// Applies num_adgroups / seed / folds to the nested option structs.
  void Normalize();
};

/// One Table 2 row.
struct Table2Row {
  std::string model;
  double recall = 0.0;
  double precision = 0.0;
  double f_measure = 0.0;
  double accuracy = 0.0;
  double auc = 0.5;
};

/// Table 2: per-model cross-validated metrics, plus corpus statistics.
struct Table2Result {
  std::vector<Table2Row> rows;
  size_t num_pairs = 0;
  size_t num_adgroups = 0;
};

/// Runs the Table 2 experiment (TOP placement).
Result<Table2Result> RunTable2(const ExperimentOptions& options);

/// Figure 3: learned term-position weights, [line][position bucket]
/// (NaN where a position never occurs in the data).
struct Fig3Result {
  std::vector<std::vector<double>> weights;
};

/// Runs the Figure 3 experiment: trains M6 on the full corpus and reads
/// the learned position factor.
Result<Fig3Result> RunFig3(const ExperimentOptions& options);

/// One Table 4 row: accuracy under the two placements.
struct Table4Row {
  std::string model;
  double top_accuracy = 0.0;
  double rhs_accuracy = 0.0;
};

/// Table 4: per-model accuracy for TOP vs RHS corpora.
struct Table4Result {
  std::vector<Table4Row> rows;
  size_t top_pairs = 0;
  size_t rhs_pairs = 0;
};

/// Runs the Table 4 experiment.
Result<Table4Result> RunTable4(const ExperimentOptions& options);

/// Generates a corpus and extracts its significant pair corpus — the
/// common preamble of all drivers, exposed for examples and tests.
Result<PairCorpus> MakePairCorpus(const ExperimentOptions& options, Placement placement);

/// Reads a positive integer from the environment (for bench-time scaling);
/// returns `fallback` when unset or unparsable.
int64_t EnvInt(const char* name, int64_t fallback);

}  // namespace microbrowse

#endif  // MICROBROWSE_EVAL_EXPERIMENTS_H_
