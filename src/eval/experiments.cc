// Copyright 2026 The Microbrowse Authors

#include "eval/experiments.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace microbrowse {

void ExperimentOptions::Normalize() {
  corpus.num_adgroups = num_adgroups;
  corpus.seed = seed;
  pipeline.folds = folds;
  pipeline.seed = seed ^ 0xfeedULL;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || parsed <= 0) return fallback;
  return static_cast<int64_t>(parsed);
}

Result<PairCorpus> MakePairCorpus(const ExperimentOptions& options, Placement placement) {
  AdCorpusOptions corpus_options = options.corpus;
  corpus_options.placement = placement;
  // Decorrelate the RHS corpus from the TOP corpus.
  if (placement == Placement::kRhs) corpus_options.seed ^= 0xabcdef01ULL;
  auto generated = GenerateAdCorpus(corpus_options);
  if (!generated.ok()) return generated.status();
  return ExtractSignificantPairs(generated->corpus, options.extraction);
}

Result<Table2Result> RunTable2(const ExperimentOptions& raw_options) {
  ExperimentOptions options = raw_options;
  options.Normalize();
  auto pairs = MakePairCorpus(options, Placement::kTop);
  if (!pairs.ok()) return pairs.status();
  MB_LOG(kInfo) << "Table 2: " << pairs->pairs.size() << " significant pairs from "
                << options.num_adgroups << " adgroups";

  Table2Result result;
  result.num_pairs = pairs->pairs.size();
  result.num_adgroups = options.num_adgroups;
  for (const ClassifierConfig& config : ClassifierConfig::AllPaperModels()) {
    auto report = RunPairClassificationCv(*pairs, config, options.pipeline);
    if (!report.ok()) return report.status();
    Table2Row row;
    row.model = config.name;
    row.recall = report->metrics.recall();
    row.precision = report->metrics.precision();
    row.f_measure = report->metrics.f1();
    row.accuracy = report->metrics.accuracy();
    row.auc = report->auc;
    result.rows.push_back(row);
    MB_LOG(kInfo) << config.name << ": F=" << row.f_measure << " acc=" << row.accuracy
                  << " (" << report->train_seconds << "s)";
  }
  return result;
}

Result<Fig3Result> RunFig3(const ExperimentOptions& raw_options) {
  ExperimentOptions options = raw_options;
  options.Normalize();
  auto pairs = MakePairCorpus(options, Placement::kTop);
  if (!pairs.ok()) return pairs.status();
  // The interpretable per-(line, position) factor comes from the coupled
  // P*T parameterisation over term features (conjunction keys tie position
  // to each term and have no standalone position weight to plot; the
  // rewrite-path features would absorb part of the position signal).
  ClassifierConfig config = ClassifierConfig::M2();
  config.term_position_conjunction = false;
  auto report = LearnPositionWeights(*pairs, config, options.pipeline);
  if (!report.ok()) return report.status();
  Fig3Result result;
  result.weights = report->term_position_weights;
  return result;
}

Result<Table4Result> RunTable4(const ExperimentOptions& raw_options) {
  ExperimentOptions options = raw_options;
  options.Normalize();
  auto top_pairs = MakePairCorpus(options, Placement::kTop);
  if (!top_pairs.ok()) return top_pairs.status();
  auto rhs_pairs = MakePairCorpus(options, Placement::kRhs);
  if (!rhs_pairs.ok()) return rhs_pairs.status();
  MB_LOG(kInfo) << "Table 4: " << top_pairs->pairs.size() << " top pairs, "
                << rhs_pairs->pairs.size() << " rhs pairs";

  Table4Result result;
  result.top_pairs = top_pairs->pairs.size();
  result.rhs_pairs = rhs_pairs->pairs.size();
  for (const ClassifierConfig& config : ClassifierConfig::AllPaperModels()) {
    auto top_report = RunPairClassificationCv(*top_pairs, config, options.pipeline);
    if (!top_report.ok()) return top_report.status();
    auto rhs_report = RunPairClassificationCv(*rhs_pairs, config, options.pipeline);
    if (!rhs_report.ok()) return rhs_report.status();
    Table4Row row;
    row.model = config.name;
    row.top_accuracy = top_report->metrics.accuracy();
    row.rhs_accuracy = rhs_report->metrics.accuracy();
    result.rows.push_back(row);
    MB_LOG(kInfo) << config.name << ": top=" << row.top_accuracy
                  << " rhs=" << row.rhs_accuracy;
  }
  return result;
}

}  // namespace microbrowse
