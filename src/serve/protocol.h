// Copyright 2026 The Microbrowse Authors
//
// The mbserved wire protocol: newline-delimited flat JSON objects, one
// request and one response per line. Flat means every value is a string,
// number or boolean — no nesting on the *input* side, which keeps the
// parser small and the protocol driveable with netcat:
//
//   {"type":"score_pair","a":"brand|cheap flights|book now","b":"..."}
//   {"type":"predict_ctr","snippet":"brand|cheap flights|book now"}
//   {"type":"examine","snippet":"brand|cheap flights|book now"}
//   {"type":"reload"}          {"type":"statsz"}          {"type":"ping"}
//   {"type":"healthz"}         {"type":"readyz"}          {"type":"metricsz"}
//
// Responses always carry "ok":true|false; an optional request "id" is
// echoed verbatim so pipelined clients can match responses processed out
// of order by the batching workers (in-order delivery is NOT guaranteed
// across a pipelined connection). Response values may be nested JSON
// (examine's per-token breakdown, statsz's per-endpoint maps) — emitted
// via JsonWriter::Raw, never parsed back by this codec.
//
// Deadlines: any request may carry "deadline_ms":N, the client's queue-wait
// budget measured from the moment the server reads the line (monotonic
// clock; never wall time). A request still queued when its budget runs out
// is answered {"ok":false,"error":"deadline_exceeded"} without being
// scored. Servers may also impose a default via --default-deadline-ms for
// requests that carry no deadline of their own.
//
// Refusal vocabulary — the closed set of "error" values a client must be
// prepared to handle on any request:
//
//   "deadline_exceeded" — queue wait exhausted the deadline budget.
//   "overloaded"        — shed at admission (queue full, or the connection
//                         is over its pipelined in-flight cap). Retry with
//                         backoff.
//   "draining"          — the server is shutting down gracefully and admits
//                         no new work; carries "retry_after_ms":N as the
//                         suggested floor before retrying elsewhere/again.
//
// Health surface: "healthz" is liveness — always "ok":true while the
// process can answer at all, with "state":"serving"|"draining"|"degraded".
// "readyz" is readiness — "ok":false while draining or before a bundle is
// staged, so load balancers stop routing before shutdown completes. Both
// are also served as HTTP GET /healthz and /readyz (readyz maps not-ready
// to 503), and both stay answerable during a drain.

#ifndef MICROBROWSE_SERVE_PROTOCOL_H_
#define MICROBROWSE_SERVE_PROTOCOL_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace microbrowse {
namespace serve {

/// A parsed flat JSON object: field name -> value. Numeric and boolean
/// values are stored as their literal text ("3.5", "true"); string values
/// are stored unescaped.
struct Request {
  std::map<std::string, std::string> fields;

  /// Value of `key`, or `fallback` when absent.
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = fields.find(key);
    return it != fields.end() ? it->second : fallback;
  }
  bool Has(const std::string& key) const { return fields.count(key) > 0; }
};

/// Parses one request line. Accepts exactly one flat JSON object with
/// string / number / boolean / null values; anything else (nesting,
/// trailing garbage, bad escapes) is InvalidArgument with a position hint.
Result<Request> ParseRequest(std::string_view line);

/// Escapes `text` as a JSON string literal body (no surrounding quotes).
std::string JsonEscape(std::string_view text);

/// Builds one response line. Fields appear in insertion order; Raw splices
/// pre-serialized JSON (arrays / objects) under a key.
class JsonWriter {
 public:
  JsonWriter& String(std::string_view key, std::string_view value);
  JsonWriter& Number(std::string_view key, double value);
  JsonWriter& Int(std::string_view key, int64_t value);
  JsonWriter& Bool(std::string_view key, bool value);
  JsonWriter& Raw(std::string_view key, std::string_view json);

  /// The finished object, e.g. {"ok":true,"margin":0.25}. No newline.
  std::string Finish() const { return "{" + body_ + "}"; }

 private:
  void Key(std::string_view key);
  std::string body_;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_PROTOCOL_H_
