// Copyright 2026 The Microbrowse Authors
//
// The mbserved wire protocol: newline-delimited flat JSON objects, one
// request and one response per line. Flat means every value is a string,
// number or boolean — no nesting on the *input* side, which keeps the
// parser small and the protocol driveable with netcat:
//
//   {"type":"score_pair","a":"brand|cheap flights|book now","b":"..."}
//   {"type":"predict_ctr","snippet":"brand|cheap flights|book now"}
//   {"type":"examine","snippet":"brand|cheap flights|book now"}
//   {"type":"reload"}          {"type":"statsz"}          {"type":"ping"}
//   {"type":"healthz"}         {"type":"readyz"}          {"type":"metricsz"}
//
// Responses always carry "ok":true|false; an optional request "id" is
// echoed verbatim. Responses for one connection flush in request order:
// every line read from a connection is stamped with a per-connection
// sequence number at intake, and the transport holds any response that
// completes early until its predecessors have been written (DESIGN.md
// section 17) — so pipelined clients may match responses positionally,
// with "id" kept as a debugging aid and a guard against lossy proxies.
// Response values may be nested JSON (examine's per-token breakdown,
// statsz's per-endpoint maps) — emitted via JsonWriter::Raw, never parsed
// back by this codec.
//
// Deadlines: any request may carry "deadline_ms":N, the client's queue-wait
// budget measured from the moment the server reads the line (monotonic
// clock; never wall time). A request still queued when its budget runs out
// is answered {"ok":false,"error":"deadline_exceeded"} without being
// scored. Servers may also impose a default via --default-deadline-ms for
// requests that carry no deadline of their own.
//
// Refusal vocabulary — the closed set of "error" values a client must be
// prepared to handle on any request:
//
//   "deadline_exceeded" — queue wait exhausted the deadline budget.
//   "overloaded"        — shed at admission (queue full, or the connection
//                         is over its pipelined in-flight cap). Retry with
//                         backoff.
//   "draining"          — the server is shutting down gracefully and admits
//                         no new work; carries "retry_after_ms":N as the
//                         suggested floor before retrying elsewhere/again.
//
// Health surface: "healthz" is liveness — always "ok":true while the
// process can answer at all, with "state":"serving"|"draining"|"degraded".
// "readyz" is readiness — "ok":false while draining or before a bundle is
// staged, so load balancers stop routing before shutdown completes. Both
// are also served as HTTP GET /healthz and /readyz (readyz maps not-ready
// to 503), and both stay answerable during a drain.

#ifndef MICROBROWSE_SERVE_PROTOCOL_H_
#define MICROBROWSE_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/result.h"

namespace microbrowse {
namespace serve {

struct Request;

/// Parses one request line into `out`, reusing its arena and field vector —
/// after warmup a scratch Request parses with zero heap allocations. On
/// failure `out` is left empty. Accepts exactly one flat JSON object with
/// string / number / boolean / null values; anything else (nesting,
/// trailing garbage, bad escapes) is InvalidArgument with a position hint.
Status ParseRequestInto(std::string_view line, Request* out);

/// A parsed flat JSON object. Field order is insertion order; duplicate
/// keys keep one entry (last value wins). Numeric and boolean values are
/// stored as their literal text ("3.5", "true"); string values are stored
/// unescaped. All views point into the Request's own arena, so a Request
/// is self-contained: moving it keeps the views valid, copying re-copies
/// the bytes.
struct Request {
  std::vector<std::pair<std::string_view, std::string_view>> fields;

  Request() = default;
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;
  Request(const Request& other) { *this = other; }
  Request& operator=(const Request& other) {
    if (this == &other) return *this;
    fields.clear();
    arena_.Reset();
    fields.reserve(other.fields.size());
    for (const auto& [key, value] : other.fields) {
      fields.emplace_back(arena_.Dup(key), arena_.Dup(value));
    }
    return *this;
  }

  /// Value of `key`, or `fallback` when absent. The view is valid for the
  /// lifetime of this Request (or until it is re-parsed into).
  std::string_view Get(std::string_view key, std::string_view fallback = {}) const {
    for (const auto& field : fields) {
      if (field.first == key) return field.second;
    }
    return fallback;
  }
  bool Has(std::string_view key) const {
    for (const auto& field : fields) {
      if (field.first == key) return true;
    }
    return false;
  }

 private:
  friend Status ParseRequestInto(std::string_view line, Request* out);
  Arena arena_{1024};
};

/// Parses one request line into a fresh Request. Convenience wrapper over
/// ParseRequestInto for cold paths; the hot path reuses a scratch Request.
Result<Request> ParseRequest(std::string_view line);

/// Escapes `text` as a JSON string literal body (no surrounding quotes).
std::string JsonEscape(std::string_view text);

/// Appending variant: escapes `text` onto `*out` without intermediate
/// allocations.
void JsonEscapeTo(std::string_view text, std::string* out);

/// Builds one response line. Fields appear in insertion order; Raw splices
/// pre-serialized JSON (arrays / objects) under a key. Reset() clears the
/// writer while keeping its buffer capacity, so a per-worker writer builds
/// responses with zero steady-state allocations.
class JsonWriter {
 public:
  JsonWriter& String(std::string_view key, std::string_view value);
  JsonWriter& Number(std::string_view key, double value);
  JsonWriter& Int(std::string_view key, int64_t value);
  JsonWriter& Bool(std::string_view key, bool value);
  JsonWriter& Raw(std::string_view key, std::string_view json);

  /// Clears the fields while retaining buffer capacity for reuse.
  void Reset() { body_.clear(); }

  /// The finished object, e.g. {"ok":true,"margin":0.25}. No newline.
  std::string Finish() const { return "{" + body_ + "}"; }

  /// Appends the finished object to `*out` (which is cleared first).
  void FinishTo(std::string* out) const {
    out->clear();
    out->reserve(body_.size() + 2);
    out->push_back('{');
    out->append(body_);
    out->push_back('}');
  }

 private:
  void Key(std::string_view key);
  std::string body_;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_PROTOCOL_H_
