// Copyright 2026 The Microbrowse Authors
//
// The epoll serving core: one reactor thread multiplexes every connection
// (and the listener) through an epoll set — edge-triggered by default
// (ReactorOptions.edge_triggered), with level-triggered kept as the
// baseline — so connection count costs file descriptors and buffer
// bytes, not threads. In edge mode each readable connection is drained
// until EAGAIN, bounded by max_reads_per_event recv calls per wakeup; a
// connection that exhausts its budget with bytes still unread is
// re-queued and serviced on the next loop pass, so one firehose client
// cannot starve the rest of the set. The reactor
// owns all socket I/O — accepting, reading into pooled per-connection
// buffers (serve/conn_buffer.h), framing request lines, and flushing
// response outboxes on EPOLLOUT write-readiness. Protocol policy (what a
// line *means*, admission control, drain refusals) lives in the handler —
// the Server implements it — so the reactor stays pure transport.
//
// Threading model:
//   - The reactor thread runs epoll_wait, accepts, reads, frames lines
//     (handler callbacks run here), flushes outboxes, and is the only
//     thread that touches epoll state or closes connection fds.
//   - Worker threads deliver responses via ReactorConn::Write, which
//     appends to the connection's mutex-guarded outbox, attempts one
//     opportunistic non-blocking flush, and — when bytes remain — asks the
//     reactor (eventfd wakeup) to arm EPOLLOUT and finish the flush. No
//     thread ever blocks in send(2).
//   - Any thread may Kill() a connection: it marks it dead and shuts the
//     socket down, which surfaces as an event the reactor cleans up.
//
// Slow consumers are bounded twice: an outbox growing past
// max_outbox_bytes evicts immediately (the peer is not reading and the
// server must not buffer its backlog without bound), and an outbox with
// pending bytes that makes no flush progress for write_timeout_ms evicts
// on the tick (the peer is reading too slowly to matter). Both count as
// write-timeout evictions.
//
// Within one epoll batch, events may reference a connection closed earlier
// in the same batch; connections are therefore looked up by fd in the live
// map (a stale fd simply misses) and the closed connection's descriptor is
// kept open until the batch ends, so the kernel cannot recycle the fd into
// a freshly accepted connection mid-batch.

#ifndef MICROBROWSE_SERVE_REACTOR_H_
#define MICROBROWSE_SERVE_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/socket.h"
#include "common/status.h"
#include "serve/conn.h"
#include "serve/conn_buffer.h"

namespace microbrowse {
namespace serve {

class Reactor;

/// Why a connection left the reactor — the handler maps these onto the
/// serve metrics (idle_evicted, write_timeout, ...).
enum class CloseReason {
  kEof,           ///< Peer closed cleanly on a line boundary.
  kError,         ///< Socket error, reset, or EOF mid-line.
  kOverlongLine,  ///< Partial line exceeded max_line_bytes.
  kIdle,          ///< No bytes moved for idle_timeout_ms with nothing owed.
  kWriteTimeout,  ///< Outbox stalled or overflowed — peer not reading.
  kHandler,       ///< Handler-requested close (HTTP response flushed).
  kServerStop,    ///< Reactor shutting down.
};

struct ReactorOptions {
  /// epoll_wait bound and the cadence of the idle / write-stall / quiet
  /// scans. Must divide the idle timeout a few times over so eviction
  /// lands near the configured bound.
  int64_t tick_ms = 100;
  size_t max_line_bytes = 4 << 20;
  /// Pending unflushed response bytes beyond which a connection is evicted
  /// (slow consumer; its responses would otherwise buffer unboundedly).
  size_t max_outbox_bytes = 4 << 20;
  /// A connection with pending output making no flush progress for this
  /// long is evicted. 0 disables the stall check (overflow still applies).
  int64_t write_timeout_ms = 5'000;
  /// A connection moving no bytes for this long with no response owed is
  /// evicted. 0 disables idle eviction.
  int64_t idle_timeout_ms = 60'000;
  /// SO_SNDBUF applied to accepted sockets; 0 keeps the kernel default
  /// (test hook — see ServerOptions.sndbuf_bytes).
  int sndbuf_bytes = 0;
  /// recv(2) chunk size per read event.
  size_t read_chunk_bytes = 16 * 1024;
  /// Edge-triggered epoll (EPOLLET) on connection sockets: each readiness
  /// event drains the socket until EAGAIN instead of taking one chunk and
  /// relying on re-notification. Fewer epoll_wait wakeups per request at
  /// saturation; level-triggered remains the parity baseline.
  bool edge_triggered = false;
  /// Edge mode's starvation bound: recv calls one connection may consume
  /// per wakeup before being re-queued behind the other ready connections.
  int max_reads_per_event = 8;
};

/// One reactor-owned connection. Workers interact through the Conn
/// interface; the fields below the public section are reactor-thread state.
class ReactorConn : public Conn, public std::enable_shared_from_this<ReactorConn> {
 public:
  ReactorConn(Socket socket, Reactor* reactor, const ReactorOptions& options,
              BufferPool* pool)
      : socket_(std::move(socket)),
        reactor_(reactor),
        max_outbox_bytes_(options.max_outbox_bytes),
        in_(options.max_line_bytes, pool) {}

  void Write(std::string_view response_line) override;
  void WriteRaw(std::string_view bytes) override;
  void Kill() override;

  /// Flush the outbox after this write completes, then close (HTTP/1.0
  /// "Connection: close" semantics). Reactor-thread only.
  void CloseAfterFlush() { close_after_flush_ = true; }

  uint64_t bytes_received() const { return in_.total_bytes(); }

  /// Handler scratch: the Server's plain-HTTP state machine. True while
  /// request headers are being consumed; the stored request line is
  /// answered at the blank line or the first quiet tick.
  bool http_pending = false;
  std::string http_request_line;
  /// Response slot reserved for the pending HTTP response (set at GET
  /// intake, consumed by FinishHttp).
  uint64_t http_seq = 0;

 private:
  friend class Reactor;

  /// Appends to the outbox and opportunistically flushes. Shared by
  /// Write/WriteRaw; `terminate` appends the protocol '\n'.
  void Enqueue(std::string_view bytes, bool terminate);
  /// Sends as much pending output as the socket accepts. Returns true when
  /// the outbox drained. Requires out_mu_.
  bool TryFlushLocked();
  /// Pending outbox bytes. Requires out_mu_.
  size_t PendingLocked() const { return outbox_.size() - out_start_; }

  Socket socket_;
  Reactor* reactor_;
  size_t max_outbox_bytes_;
  ConnBuffer in_;

  std::mutex out_mu_;
  std::string outbox_;
  size_t out_start_ = 0;          ///< First unsent outbox byte.
  uint64_t total_flushed_ = 0;    ///< Ever-sent bytes — the stall detector's mark.
  bool flush_requested_ = false;  ///< A wakeup is already queued for this conn.
  bool overflowed_ = false;       ///< Outbox exceeded max_outbox_bytes — evict.
  bool write_error_ = false;      ///< A flush hit a hard socket error — evict.

  // Reactor-thread-only state.
  bool closed_ = false;           ///< Left the reactor; skip stale events/wakeups.
  bool want_write_ = false;       ///< EPOLLOUT currently armed.
  bool close_after_flush_ = false;
  bool read_pending_ = false;     ///< Queued for another edge-mode read pass.
  Deadline idle_ = Deadline::Infinite();
  uint64_t idle_bytes_mark_ = 0;
  uint64_t quiet_bytes_mark_ = 0;
  Deadline write_stall_ = Deadline::Infinite();
  uint64_t write_stall_mark_ = 0;
};

/// Protocol callbacks, all invoked on the reactor thread.
class ReactorHandler {
 public:
  virtual ~ReactorHandler() = default;

  /// One framed request line. The view is valid only for the duration of
  /// the call — copy what must outlive it.
  virtual void OnLine(const std::shared_ptr<ReactorConn>& conn, std::string_view line) = 0;

  /// The connection left the reactor (metrics hook). Runs before the fd is
  /// released.
  virtual void OnClose(const std::shared_ptr<ReactorConn>& conn, CloseReason reason) = 0;

  /// Tick on which `conn` received no new bytes — the HTTP slow-header
  /// backstop (a GET whose headers never finish is answered after the
  /// first quiet tick, matching the legacy path).
  virtual void OnQuietTick(const std::shared_ptr<ReactorConn>& conn) = 0;
};

/// The event loop. Init once, Run on a dedicated thread, Stop from any.
class Reactor {
 public:
  Reactor(ReactorHandler* handler, ReactorOptions options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the epoll set and wakeup eventfd and registers `listener_fd`
  /// (which is switched to non-blocking). The listener fd stays owned by
  /// the caller.
  Status Init(int listener_fd);

  /// Runs the event loop until Stop(); closes every connection on exit.
  void Run();

  /// Ends the loop (idempotent, any thread).
  void Stop();

  /// Deregisters the listener so no further connections are accepted — the
  /// drain state machine's first act. Any thread.
  void StopAccepting();

  /// Asks the reactor to finish flushing `conn`'s outbox on
  /// write-readiness. Called by ReactorConn::Write off-thread.
  void RequestFlush(std::shared_ptr<ReactorConn> conn);

  size_t active_connections() const {
    return active_connections_.load(std::memory_order_acquire);
  }

  /// Response bytes accepted but not yet handed to the kernel, across all
  /// connections — what Drain() waits on (a drained server has delivered
  /// its answers, not parked them in outboxes).
  int64_t pending_out_bytes() const {
    return pending_out_bytes_.load(std::memory_order_acquire);
  }

 private:
  friend class ReactorConn;

  void HandleAccept();
  void HandleReadable(const std::shared_ptr<ReactorConn>& conn);
  void HandleWritable(const std::shared_ptr<ReactorConn>& conn);
  void HandleTick();
  void DrainWakeups();
  /// Updates EPOLLOUT interest to match pending output; closes the
  /// connection when a flush finished under close_after_flush.
  void UpdateWriteInterest(const std::shared_ptr<ReactorConn>& conn);
  void CloseConn(const std::shared_ptr<ReactorConn>& conn, CloseReason reason);
  void Wake();

  ReactorHandler* handler_;
  ReactorOptions options_;
  BufferPool buffer_pool_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listener_fd_ = -1;
  bool listener_registered_ = false;

  std::unordered_map<int, std::shared_ptr<ReactorConn>> conns_;
  /// Connections closed during the current epoll batch; their fds close
  /// when the batch ends (see file comment on fd reuse).
  std::vector<std::shared_ptr<ReactorConn>> deferred_close_;
  /// Edge mode: connections that exhausted max_reads_per_event with bytes
  /// (possibly) still unread — serviced again on the next loop pass, which
  /// polls with a zero timeout while this is non-empty.
  std::vector<std::shared_ptr<ReactorConn>> pending_reads_;

  std::mutex wakeup_mu_;
  std::vector<std::shared_ptr<ReactorConn>> flush_queue_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<size_t> active_connections_{0};
  std::atomic<int64_t> pending_out_bytes_{0};
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_REACTOR_H_
