// Copyright 2026 The Microbrowse Authors
//
// The mbserved network front end. One reader thread per connection parses
// newline-delimited requests and enqueues them into one bounded queue;
// the mb_common thread pool drains the queue in batches (amortising the
// queue lock and keeping workers hot under load) and writes each response
// back on its connection. Admission control is reader-side: when the
// queue is at capacity the request is answered immediately with
// {"ok":false,"error":"overloaded"} instead of queueing unboundedly —
// under overload the server sheds load at constant latency rather than
// building an ever-longer tail.
//
// Responses to a pipelined connection may arrive out of order (batching
// workers run concurrently); clients that pipeline tag requests with
// "id" and match on the echo. mbctl and serve_bench both do.

#ifndef MICROBROWSE_SERVE_SERVER_H_
#define MICROBROWSE_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/socket.h"
#include "common/thread_pool.h"
#include "serve/service.h"

namespace microbrowse {
namespace serve {

/// Server configuration.
struct ServerOptions {
  uint16_t port = 7077;  ///< 0 = kernel-assigned (tests).
  int num_threads = 4;   ///< Scoring worker threads.
  /// Bounded request queue; requests beyond it are rejected with
  /// "overloaded".
  size_t max_queue = 1024;
  /// Maximum requests one worker drains per batch.
  size_t max_batch = 32;
  /// A request line longer than this fails its connection — bounds the
  /// per-connection read buffer against a client that never sends '\n'.
  size_t max_line_bytes = 4 << 20;
};

/// TCP front end over a ScoringService.
class Server {
 public:
  /// `service` must outlive the server.
  Server(ScoringService* service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop + worker pool. Returns the
  /// bound port.
  Result<uint16_t> Start();

  /// Stops accepting, closes every connection, drains workers and joins
  /// all threads. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  /// Connections with a live reader. Drops to zero once every client has
  /// disconnected and been reaped (test hook).
  size_t active_connections();

 private:
  /// One live client connection; readers and workers share it via
  /// shared_ptr so a response can still be written (or skipped) after the
  /// reader saw EOF. Owns its reader thread: the handle is either joined
  /// by Stop() or moved onto the finished-readers list when the reader
  /// exits on its own.
  struct Connection {
    Socket socket;
    std::mutex write_mu;
    std::atomic<bool> alive{true};
    std::thread reader;
  };

  struct PendingRequest {
    std::shared_ptr<Connection> connection;
    std::string line;
  };

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> connection);
  void DrainBatch();
  /// Answers one plain-HTTP GET (the /metricsz scrape path) and leaves the
  /// connection to be closed by the caller.
  void HandleHttpGet(Connection& connection, LineReader& reader,
                     const std::string& request_line);
  void WriteResponse(Connection& connection, const std::string& response);
  /// Joins reader threads whose connections already ended (the threads
  /// have exited or are about to).
  void ReapFinishedReaders();

  ScoringService* service_;
  ServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;

  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;

  std::mutex queue_mu_;
  std::deque<PendingRequest> queue_;

  std::mutex connections_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  /// Handles of readers that removed themselves from connections_; joined
  /// by AcceptLoop before each accept and by Stop().
  std::vector<std::thread> finished_readers_;

  std::mutex stop_mu_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_SERVER_H_
