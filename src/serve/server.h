// Copyright 2026 The Microbrowse Authors
//
// The mbserved network front end. Two I/O cores share one request path:
//
//   kEpoll (default): a single reactor thread multiplexes every
//   connection through a level-triggered epoll set (serve/reactor.h) —
//   non-blocking sockets, pooled zero-copy line framing, responses queued
//   into per-connection outboxes and flushed on write-readiness. 10k
//   connections cost 10k fds and buffers, not 10k threads.
//
//   kLegacyThreads: the original thread-per-connection path — one reader
//   thread per socket, blocking reads under a receive-timeout tick,
//   responses delivered synchronously under a per-connection write lock
//   (bounded by write_timeout_ms). Kept as an operational escape hatch
//   (mbserved --io-model=threads) and as the parity baseline for the
//   reactor test suite.
//
// Both cores feed the same bounded request queue; the mb_common thread
// pool drains it in batches (amortising the queue lock and keeping
// workers hot under load) and writes each response back through the
// transport-agnostic Conn interface (serve/conn.h). Admission control is
// intake-side: when the queue is at capacity (or one connection exceeds
// its in-flight cap) the request is answered immediately with
// {"ok":false,"error":"overloaded"} instead of queueing unboundedly —
// under overload the server sheds load at constant latency rather than
// building an ever-longer tail.
//
// Every request carries a deadline (its own "deadline_ms" field, or
// ServerOptions.default_deadline_ms): a queued request whose budget is
// already spent when a worker reaches it is answered
// {"ok":false,"error":"deadline_exceeded"} *without* being scored, so an
// overloaded server burns no work on answers nobody is waiting for.
// Connections that move no bytes past the idle timeout are evicted (on
// the reactor's tick, or the legacy reader's receive-timeout tick), and
// connections whose peer stops *reading* are evicted after
// write_timeout_ms (the mb.serve.write_timeout counter) — a stalled
// consumer can pin neither a worker nor unbounded outbox memory.
//
// Shutdown is a state machine: serving -> draining -> stopped. Drain()
// (SIGTERM in mbserved) closes the listener, refuses new work with
// {"ok":false,"error":"draining","retry_after_ms":N}, lets in-flight
// requests finish — and, on the reactor path, their responses flush —
// up to a drain deadline, then hard-stops. healthz/readyz keep answering
// through the drain so routers can see the state flip.
//
// Responses to a pipelined connection are delivered in request order:
// every response-bearing line is stamped with a per-connection sequence
// number at intake, and workers deliver through Conn::WriteSeq, which
// holds early completions until their predecessors flush (serve/conn.h,
// DESIGN.md §17). Clients that pipeline may still tag requests with "id"
// and match on the echo — mbctl and serve_bench both do — but ordering
// alone now suffices.
//
// Scoring is scheduled by one of two interchangeable schedulers
// (ServerOptions.scheduler): the work-stealing ScoringPool (default) —
// per-worker bounded deques, randomized steal-half, near-zero lock
// contention at saturation — or the original single-mutex FIFO queue
// drained through the mb_common thread pool, kept as the bench baseline
// and operational escape hatch. Admission, deadline and refusal
// semantics are identical between the two.

#ifndef MICROBROWSE_SERVE_SERVER_H_
#define MICROBROWSE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/thread_pool.h"
#include "serve/conn.h"
#include "serve/health.h"
#include "serve/reactor.h"
#include "serve/scoring_pool.h"
#include "serve/service.h"

namespace microbrowse {
namespace serve {

/// Which serving core owns the sockets.
enum class IoModel {
  kEpoll = 0,          ///< One reactor thread, non-blocking I/O (default).
  kLegacyThreads = 1,  ///< One blocking reader thread per connection.
};

/// Reactor epoll triggering discipline (kEpoll only).
enum class EpollMode {
  kLevel = 0,  ///< Level-triggered: one recv per readiness event.
  kEdge = 1,   ///< Edge-triggered: drain until EAGAIN, starvation-bounded
               ///< per wakeup (default).
};

/// Which scheduler feeds admitted requests to the scoring workers.
enum class Scheduler {
  kFifo = 0,          ///< Single-mutex FIFO queue + mb_common thread pool
                      ///< (the pre-work-stealing baseline).
  kWorkStealing = 1,  ///< Per-worker deques with steal-half (default).
};

/// Server configuration.
struct ServerOptions {
  uint16_t port = 7077;  ///< 0 = kernel-assigned (tests).
  int num_threads = 4;   ///< Scoring worker threads.
  /// Serving core; kLegacyThreads is the operational escape hatch should
  /// the reactor misbehave in some environment.
  IoModel io_model = IoModel::kEpoll;
  /// Reactor triggering discipline (mbserved --epoll-mode level|edge).
  /// Edge-triggered is the throughput default; level-triggered is the
  /// baseline and escape hatch. Ignored under kLegacyThreads.
  EpollMode epoll_mode = EpollMode::kEdge;
  /// Request scheduler. kWorkStealing is the throughput default; kFifo is
  /// the pre-PR-10 baseline kept for benchmarking and as an escape hatch.
  Scheduler scheduler = Scheduler::kWorkStealing;
  /// Bounded request queue; requests beyond it are rejected with
  /// "overloaded".
  size_t max_queue = 1024;
  /// Maximum requests one worker drains per batch.
  size_t max_batch = 32;
  /// A request line longer than this fails its connection — bounds the
  /// per-connection read buffer against a client that never sends '\n'.
  size_t max_line_bytes = 4 << 20;
  /// Deadline budget applied to requests that carry no "deadline_ms"
  /// field, in milliseconds. 0 = no default deadline (a request without
  /// its own budget waits however long the queue takes).
  int64_t default_deadline_ms = 0;
  /// A connection that moves no bytes for this long is evicted (the
  /// mb.serve.idle_evicted counter tracks it). Connections with requests
  /// still in flight are never idle-evicted — a client silently awaiting
  /// a slow response is waiting, not dead. 0 disables eviction.
  int64_t idle_timeout_ms = 60'000;
  /// A connection whose peer stops reading our responses is evicted after
  /// this long without write progress (mb.serve.write_timeout). On the
  /// legacy path this bounds the blocking send; on the reactor path it
  /// bounds outbox staleness. 0 disables the bound (legacy sends may then
  /// block indefinitely — the pre-timeout behaviour).
  int64_t write_timeout_ms = 5'000;
  /// Reactor path only: pending unflushed response bytes beyond which a
  /// slow consumer is evicted immediately (also mb.serve.write_timeout).
  size_t max_outbox_bytes = 4 << 20;
  /// Requests one connection may have queued or executing before further
  /// reads on it are refused with "overloaded". 0 = unlimited.
  size_t max_inflight_per_connection = 128;
  /// How long Drain() waits for in-flight requests before hard-stopping.
  int64_t drain_deadline_ms = 5'000;
  /// Advertised in "draining" refusals and the readyz response.
  int64_t drain_retry_after_ms = 500;
  /// Test hook: SO_SNDBUF for accepted sockets (0 = kernel default). A
  /// tiny send buffer makes "peer stopped reading" reproducible in
  /// milliseconds instead of after megabytes.
  int sndbuf_bytes = 0;
  /// listen(2) backlog. The default rides out ordinary bursts; the c10k
  /// bench raises it so a connect storm is not throttled by SYN drops
  /// (the kernel clamps to net.core.somaxconn).
  int listen_backlog = 64;
};

/// TCP front end over a ScoringService.
class Server : private ReactorHandler {
 public:
  /// `service` must outlive the server.
  Server(ScoringService* service, ServerOptions options);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the serving core + worker pool. Returns
  /// the bound port.
  Result<uint16_t> Start();

  /// Graceful drain: closes the listener, flips healthz/readyz to
  /// "draining", answers new requests on existing connections with
  /// {"error":"draining","retry_after_ms":N}, waits for queued and
  /// executing requests (and, on the reactor path, unflushed responses)
  /// up to options.drain_deadline_ms, then Stop()s. Returns OK when
  /// everything in flight completed, kDeadlineExceeded when the hard stop
  /// abandoned work. FailedPrecondition when not serving (never started,
  /// already draining, or stopped).
  Status Drain();

  /// Stops accepting, closes every connection, drains workers and joins
  /// all threads. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  /// Live connections (reactor-registered, or with a live legacy reader).
  /// Drops to zero once every client has disconnected and been reaped
  /// (test hook).
  size_t active_connections();

  /// Legacy path: reader thread handles awaiting a join. Bounded by the
  /// exit-path reap — each exiting reader joins its predecessors — so it
  /// cannot grow with connection churn (test hook; the reactor path has
  /// no reader threads and always reports 0).
  size_t finished_reader_handles();

  /// True from Drain() (or Stop()) onward — new scoring work is refused.
  bool draining() const {
    return state_.load(std::memory_order_acquire) != kServing;
  }

  /// Queued + executing requests (test hook).
  int64_t inflight_requests() const {
    return inflight_total_.load(std::memory_order_acquire);
  }

 private:
  /// serving -> draining -> stopped; the only legal transitions.
  enum State : int { kServing = 0, kDraining = 1, kStopped = 2 };

  /// One legacy-path client connection: a blocking socket written under a
  /// per-connection lock, owned by its reader thread. The reader's handle
  /// is either joined by Stop() or moved onto the finished-readers list
  /// when the reader exits on its own.
  struct LegacyConn : Conn {
    explicit LegacyConn(Server* server) : server(server) {}

    /// Bounded synchronous delivery: SendAllTimed under write_mu. A send
    /// that cannot finish within write_timeout_ms evicts the connection
    /// (mb.serve.write_timeout) instead of pinning the calling worker.
    void Write(std::string_view response_line) override;
    void WriteRaw(std::string_view bytes) override;
    void Kill() override;

    Server* server;
    Socket socket;
    std::mutex write_mu;
    std::thread reader;

   private:
    void SendBounded(std::string_view framed);
  };

  struct PendingRequest {
    std::shared_ptr<Conn> connection;
    std::string line;
    Deadline deadline;
    uint64_t seq = 0;
  };

  // --- Request path shared by both cores -----------------------------------

  /// Dispatches one request line from a serving connection: admission
  /// control, deadline stamping, queueing. Refusals are written inline.
  void HandleRequestLine(const std::shared_ptr<Conn>& connection, std::string_view line);
  void DrainBatch();
  /// Work-stealing scheduler's batch handler: deadline check, scoring,
  /// ordered delivery and drain accounting for one claimed batch.
  void ProcessBatch(std::vector<ScoringTask>& batch);
  /// The deadline for one request line: its own "deadline_ms" field when
  /// present and parsable, else the server default.
  Deadline RequestDeadline(std::string_view line) const;
  /// Answers one request received while draining: observability types are
  /// served inline, everything else is refused with "draining".
  void HandleLineDuringDrain(Conn& connection, std::string_view line, uint64_t seq);
  /// Writes an {"ok":false,...} refusal into response slot `seq`, echoing
  /// the request id when the line parses. `retry_after_ms` < 0 omits the
  /// field.
  void WriteRefusal(Conn& connection, std::string_view line, std::string_view error,
                    int64_t retry_after_ms, uint64_t seq);
  /// The full raw response (status line, headers, body) for one plain-HTTP
  /// GET request line — the /metricsz, /healthz and /readyz scrape paths.
  std::string BuildHttpResponse(std::string_view request_line);

  // --- Reactor core (ReactorHandler) ---------------------------------------

  void OnLine(const std::shared_ptr<ReactorConn>& conn, std::string_view line) override;
  void OnClose(const std::shared_ptr<ReactorConn>& conn, CloseReason reason) override;
  void OnQuietTick(const std::shared_ptr<ReactorConn>& conn) override;
  /// Sends the buffered HTTP response and schedules the close-after-flush.
  void FinishHttp(const std::shared_ptr<ReactorConn>& conn);

  // --- Legacy thread-per-connection core -----------------------------------

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<LegacyConn> connection);
  /// Answers one plain-HTTP GET into response slot `seq` and leaves the
  /// connection to be closed by the caller.
  void HandleHttpGet(LegacyConn& connection, LineReader& reader,
                     const std::string& request_line, uint64_t seq);
  /// Joins reader threads whose connections already ended (the threads
  /// have exited or are about to).
  void ReapFinishedReaders();

  ScoringService* service_;
  ServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;

  /// FIFO scheduler only (options.scheduler == kFifo).
  std::unique_ptr<ThreadPool> pool_;
  /// Work-stealing scheduler only (options.scheduler == kWorkStealing).
  std::unique_ptr<ScoringPool> steal_pool_;

  std::unique_ptr<Reactor> reactor_;
  std::thread reactor_thread_;

  std::thread accept_thread_;

  std::mutex queue_mu_;
  std::deque<PendingRequest> queue_;
  /// Requests admitted but not yet answered (queued + executing), across
  /// all connections; what Drain() waits on.
  std::atomic<int64_t> inflight_total_{0};

  std::mutex connections_mu_;
  std::vector<std::shared_ptr<LegacyConn>> connections_;
  /// Handles of readers that removed themselves from connections_; joined
  /// by each subsequently-exiting reader (which bounds the list under
  /// churn), by AcceptLoop before each accept, and by Stop().
  std::vector<std::thread> finished_readers_;

  std::mutex stop_mu_;
  std::atomic<int> state_{kServing};
  HealthState health_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_SERVER_H_
