// Copyright 2026 The Microbrowse Authors
//
// The mbserved network front end. One reader thread per connection parses
// newline-delimited requests and enqueues them into one bounded queue;
// the mb_common thread pool drains the queue in batches (amortising the
// queue lock and keeping workers hot under load) and writes each response
// back on its connection. Admission control is reader-side: when the
// queue is at capacity (or one connection exceeds its in-flight cap) the
// request is answered immediately with {"ok":false,"error":"overloaded"}
// instead of queueing unboundedly — under overload the server sheds load
// at constant latency rather than building an ever-longer tail.
//
// Every request carries a deadline (its own "deadline_ms" field, or
// ServerOptions.default_deadline_ms): a queued request whose budget is
// already spent when a worker reaches it is answered
// {"ok":false,"error":"deadline_exceeded"} *without* being scored, so an
// overloaded server burns no work on answers nobody is waiting for.
// Connections that go quiet past the idle timeout are evicted by a
// receive-timeout tick in the reader (slow-loris defence; the tick also
// makes Stop() prompt for connected-but-silent peers).
//
// Shutdown is a state machine: serving -> draining -> stopped. Drain()
// (SIGTERM in mbserved) closes the listener, refuses new work with
// {"ok":false,"error":"draining","retry_after_ms":N}, lets in-flight
// requests finish up to a drain deadline, then hard-stops. healthz/readyz
// keep answering through the drain so routers can see the state flip.
//
// Responses to a pipelined connection may arrive out of order (batching
// workers run concurrently); clients that pipeline tag requests with
// "id" and match on the echo. mbctl and serve_bench both do.

#ifndef MICROBROWSE_SERVE_SERVER_H_
#define MICROBROWSE_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/thread_pool.h"
#include "serve/health.h"
#include "serve/service.h"

namespace microbrowse {
namespace serve {

/// Server configuration.
struct ServerOptions {
  uint16_t port = 7077;  ///< 0 = kernel-assigned (tests).
  int num_threads = 4;   ///< Scoring worker threads.
  /// Bounded request queue; requests beyond it are rejected with
  /// "overloaded".
  size_t max_queue = 1024;
  /// Maximum requests one worker drains per batch.
  size_t max_batch = 32;
  /// A request line longer than this fails its connection — bounds the
  /// per-connection read buffer against a client that never sends '\n'.
  size_t max_line_bytes = 4 << 20;
  /// Deadline budget applied to requests that carry no "deadline_ms"
  /// field, in milliseconds. 0 = no default deadline (a request without
  /// its own budget waits however long the queue takes).
  int64_t default_deadline_ms = 0;
  /// A connection that moves no bytes for this long is evicted (the
  /// mb.serve.idle_evicted counter tracks it). Connections with requests
  /// still in flight are never idle-evicted — a client silently awaiting
  /// a slow response is waiting, not dead. 0 disables eviction.
  int64_t idle_timeout_ms = 60'000;
  /// Requests one connection may have queued or executing before further
  /// reads on it are refused with "overloaded". 0 = unlimited.
  size_t max_inflight_per_connection = 128;
  /// How long Drain() waits for in-flight requests before hard-stopping.
  int64_t drain_deadline_ms = 5'000;
  /// Advertised in "draining" refusals and the readyz response.
  int64_t drain_retry_after_ms = 500;
};

/// TCP front end over a ScoringService.
class Server {
 public:
  /// `service` must outlive the server.
  Server(ScoringService* service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop + worker pool. Returns the
  /// bound port.
  Result<uint16_t> Start();

  /// Graceful drain: closes the listener, flips healthz/readyz to
  /// "draining", answers new requests on existing connections with
  /// {"error":"draining","retry_after_ms":N}, waits for queued and
  /// executing requests up to options.drain_deadline_ms, then Stop()s.
  /// Returns OK when everything in flight completed, kDeadlineExceeded
  /// when the hard stop abandoned work. FailedPrecondition when not
  /// serving (never started, already draining, or stopped).
  Status Drain();

  /// Stops accepting, closes every connection, drains workers and joins
  /// all threads. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  /// Connections with a live reader. Drops to zero once every client has
  /// disconnected and been reaped (test hook).
  size_t active_connections();

  /// True from Drain() (or Stop()) onward — new scoring work is refused.
  bool draining() const {
    return state_.load(std::memory_order_acquire) != kServing;
  }

  /// Queued + executing requests (test hook).
  int64_t inflight_requests() const {
    return inflight_total_.load(std::memory_order_acquire);
  }

 private:
  /// serving -> draining -> stopped; the only legal transitions.
  enum State : int { kServing = 0, kDraining = 1, kStopped = 2 };

  /// One live client connection; readers and workers share it via
  /// shared_ptr so a response can still be written (or skipped) after the
  /// reader saw EOF. Owns its reader thread: the handle is either joined
  /// by Stop() or moved onto the finished-readers list when the reader
  /// exits on its own.
  struct Connection {
    Socket socket;
    std::mutex write_mu;
    std::atomic<bool> alive{true};
    /// Requests from this connection currently queued or executing —
    /// bounds per-connection pipelining and defers idle eviction while a
    /// response is still owed.
    std::atomic<int64_t> inflight{0};
    std::thread reader;
  };

  struct PendingRequest {
    std::shared_ptr<Connection> connection;
    std::string line;
    Deadline deadline;
  };

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> connection);
  void DrainBatch();
  /// The deadline for one request line: its own "deadline_ms" field when
  /// present and parsable, else the server default.
  Deadline RequestDeadline(const std::string& line) const;
  /// Answers one request received while draining: observability types are
  /// served inline, everything else is refused with "draining".
  void HandleLineDuringDrain(Connection& connection, const std::string& line);
  /// Writes an {"ok":false,...} refusal, echoing the request id when the
  /// line parses. `retry_after_ms` < 0 omits the field.
  void WriteRefusal(Connection& connection, const std::string& line,
                    std::string_view error, int64_t retry_after_ms);
  /// Answers one plain-HTTP GET (the /metricsz, /healthz and /readyz
  /// scrape paths) and leaves the connection to be closed by the caller.
  void HandleHttpGet(Connection& connection, LineReader& reader,
                     const std::string& request_line);
  void WriteResponse(Connection& connection, const std::string& response);
  /// Joins reader threads whose connections already ended (the threads
  /// have exited or are about to).
  void ReapFinishedReaders();

  ScoringService* service_;
  ServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;

  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;

  std::mutex queue_mu_;
  std::deque<PendingRequest> queue_;
  /// Requests admitted but not yet answered (queued + executing), across
  /// all connections; what Drain() waits on.
  std::atomic<int64_t> inflight_total_{0};

  std::mutex connections_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  /// Handles of readers that removed themselves from connections_; joined
  /// by AcceptLoop before each accept and by Stop().
  std::vector<std::thread> finished_readers_;

  std::mutex stop_mu_;
  std::atomic<int> state_{kServing};
  HealthState health_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_SERVER_H_
