// Copyright 2026 The Microbrowse Authors
//
// A sharded LRU cache for the serving hot path. Keys are pre-hashed
// 64-bit content hashes (the caller hashes snippet text, see
// service.cc); the high bits pick the shard, so lock contention scales
// down with the shard count while each shard keeps exact LRU order.
//
// Values are returned by copy — entries are small (a double score, a
// shared_ptr) and copying under the shard lock keeps the API race-free
// without handing out references into a structure another thread may
// evict from.

#ifndef MICROBROWSE_SERVE_LRU_CACHE_H_
#define MICROBROWSE_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace microbrowse {
namespace serve {

/// Cache hit/miss counters (monotonic; read via statsz).
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t size = 0;

  double hit_rate() const {
    const int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split across `num_shards`. The
  /// shard count is clamped to `capacity` and the per-shard slice rounds
  /// up, so the cache always admits at least `capacity` entries before
  /// evicting and never holds more than one extra entry per shard. A
  /// capacity of 0 disables the cache: Get always misses, Put is a no-op.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8) {
    if (num_shards == 0) num_shards = 1;
    // More shards than entries would inflate the budget through the
    // one-slot-per-shard minimum; small caches get fewer shards instead.
    if (capacity > 0 && num_shards > capacity) num_shards = capacity;
    // Shard count rounded down to a power of two so shard selection is a
    // mask, not a modulo.
    while ((num_shards & (num_shards - 1)) != 0) num_shards &= num_shards - 1;
    shards_ = std::vector<Shard>(num_shards);
    mask_ = num_shards - 1;
    per_shard_capacity_ =
        capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
  }

  bool enabled() const { return per_shard_capacity_ > 0; }

  /// Returns the cached value for `key`, refreshing its recency.
  std::optional<Value> Get(uint64_t key) {
    if (!enabled()) return std::nullopt;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// of the shard when full.
  void Put(uint64_t key, Value value) {
    if (!enabled()) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.push_front(Entry{key, std::move(value)});
    shard.index[key] = shard.order.begin();
    if (shard.order.size() > per_shard_capacity_) {
      shard.index.erase(shard.order.back().key);
      shard.order.pop_back();
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drops every entry (hit/miss counters survive). Used on hot reload —
  /// cached scores are generation-specific and the keys embed the
  /// generation, but flushing eagerly frees memory for dead generations.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.order.clear();
      shard.index.clear();
    }
  }

  CacheStats Stats() const {
    CacheStats stats;
    for (const Shard& shard : shards_) {
      stats.hits += shard.hits.load(std::memory_order_relaxed);
      stats.misses += shard.misses.load(std::memory_order_relaxed);
      stats.evictions += shard.evictions.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.size += static_cast<int64_t>(shard.order.size());
    }
    return stats;
  }

 private:
  struct Entry {
    uint64_t key;
    Value value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> order;  ///< Front = most recent.
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index;
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> evictions{0};
  };

  Shard& ShardFor(uint64_t key) { return shards_[(key >> 48) & mask_]; }

  std::vector<Shard> shards_;
  size_t mask_ = 0;
  size_t per_shard_capacity_ = 0;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_LRU_CACHE_H_
