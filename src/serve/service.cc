// Copyright 2026 The Microbrowse Authors

#include "serve/service.h"

#include <charconv>
#include <chrono>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "microbrowse/feature_keys.h"
#include "microbrowse/optimizer.h"

namespace microbrowse {
namespace serve {

namespace {

/// A context whose registries grew past this many interned features beyond
/// the bundle's is discarded instead of reused — adversarial traffic of
/// all-new creatives must not grow worker memory without bound.
constexpr size_t kMaxInternedGrowth = 1 << 16;
/// Free-context pool bound; beyond it returned contexts are dropped.
constexpr size_t kMaxPooledContexts = 64;

Snippet ParseSnippetField(std::string_view field) {
  return Snippet::FromLines(Split(field, '|'));
}

/// Content hash of one request payload string under one generation.
uint64_t ContentKey(uint64_t generation, std::string_view kind, std::string_view text) {
  return HashCombine(HashCombine(Mix64(generation), kind), text);
}

}  // namespace

ScoringService::ScoringService(BundleRegistry* registry, ServiceOptions options)
    : registry_(registry),
      options_(options),
      owned_registry_(options.registry == nullptr ? std::make_unique<MetricRegistry>()
                                                  : nullptr),
      metric_registry_(options.registry != nullptr ? options.registry : owned_registry_.get()),
      metrics_(metric_registry_),
      reload_success_(metric_registry_->GetCounter("mb.serve.reload_success")),
      reload_failure_(metric_registry_->GetCounter("mb.serve.reload_failure")),
      pair_cache_(options.cache_capacity, options.cache_shards),
      point_cache_(options.cache_capacity, options.cache_shards) {}

std::unique_ptr<ScoringService::EvalContext> ScoringService::BorrowContext(
    const ModelBundle& bundle) {
  std::unique_ptr<EvalContext> context;
  {
    std::lock_guard<std::mutex> lock(context_mu_);
    if (!free_contexts_.empty()) {
      context = std::move(free_contexts_.back());
      free_contexts_.pop_back();
    }
  }
  const bool stale =
      context == nullptr || context->generation != bundle.generation ||
      context->t_registry.size() > context->base_t_size + kMaxInternedGrowth ||
      context->p_registry.size() > context->base_p_size + kMaxInternedGrowth;
  if (stale) {
    context = std::make_unique<EvalContext>();
    context->generation = bundle.generation;
    context->t_registry = bundle.classifier.t_registry;
    context->p_registry = bundle.classifier.p_registry;
    context->base_t_size = context->t_registry.size();
    context->base_p_size = context->p_registry.size();
  }
  return context;
}

void ScoringService::ReturnContext(std::unique_ptr<EvalContext> context) {
  std::lock_guard<std::mutex> lock(context_mu_);
  if (free_contexts_.size() < kMaxPooledContexts) {
    free_contexts_.push_back(std::move(context));
  }
}

std::string ScoringService::HandleLine(std::string_view line) {
  std::string response;
  HandleLineTo(line, &response);
  return response;
}

void ScoringService::HandleLineTo(std::string_view line, std::string* out) {
  WallTimer timer;
  // Per-thread scratch: the Request's arena and the writer's buffer reach a
  // steady-state capacity after a few requests, after which this function
  // performs no heap allocations for cached/refused/ping traffic.
  thread_local Request request;
  thread_local JsonWriter response;
  response.Reset();
  const Status parsed = ParseRequestInto(line, &request);
  Endpoint endpoint = Endpoint::kOther;
  bool ok = false;
  if (!parsed.ok()) {
    response.Bool("ok", false).String("error", parsed.message());
  } else {
    const std::string_view type = request.Get("type");
    endpoint = EndpointByName(type);
    if (request.Has("id")) response.String("id", request.Get("id"));
    Dispatch(request, endpoint, response, &ok);
  }
  metrics_.endpoint(endpoint).RecordRequest(timer.ElapsedSeconds(), ok);
  response.FinishTo(out);
}

void ScoringService::Dispatch(const Request& request, Endpoint endpoint,
                              JsonWriter& response, bool* ok) {
  Status status = Status::OK();
  switch (endpoint) {
    case Endpoint::kScorePair:
      status = HandleScorePair(request, response);
      break;
    case Endpoint::kPredictCtr:
      status = HandlePredictCtr(request, response);
      break;
    case Endpoint::kExamine:
      status = HandleExamine(request, response);
      break;
    case Endpoint::kReload:
      status = HandleReload(request, response);
      break;
    case Endpoint::kStatsz:
      status = HandleStatsz(response);
      break;
    case Endpoint::kMetricsz:
      status = HandleMetricsz(response);
      break;
    case Endpoint::kHealthz:
      status = HandleHealthz(response);
      break;
    case Endpoint::kReadyz:
      status = HandleReadyz(response);
      break;
    case Endpoint::kPing:
      break;
    case Endpoint::kOther: {
      const std::string_view type = request.Get("type");
      if (type == "debug_sleep" && options_.allow_debug_sleep) {
        int64_t ms = 0;
        const std::string_view text = request.Get("ms", "0");
        std::from_chars(text.data(), text.data() + text.size(), ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        break;
      }
      status = Status::InvalidArgument(
          type.empty() ? "missing request field 'type'"
                       : "unknown type '" + std::string(type) + "'");
      break;
    }
  }
  *ok = status.ok();
  if (status.ok()) {
    response.Bool("ok", true);
  } else {
    response.Bool("ok", false).String("error", status.message());
  }
}

Status ScoringService::HandleScorePair(const Request& request, JsonWriter& response) {
  const std::string_view a_text = request.Get("a");
  const std::string_view b_text = request.Get("b");
  if (a_text.empty() || b_text.empty()) {
    return Status::InvalidArgument("score_pair needs non-empty 'a' and 'b' fields");
  }
  const auto bundle = registry_->Current();
  if (bundle == nullptr) return Status::FailedPrecondition("no model bundle loaded");

  const uint64_t key =
      HashCombine(ContentKey(bundle->generation, "pair:a", a_text), b_text);
  EndpointMetrics& metrics = metrics_.endpoint(Endpoint::kScorePair);
  double margin = 0.0;
  bool hit = false;
  if (auto cached = pair_cache_.Get(key)) {
    margin = *cached;
    hit = true;
  } else {
    // Chaos hook on the uncached scoring path: `serve.score=delay:<ms>`
    // injects latency (slow-model rehearsal), error specs inject typed
    // scoring failures.
    MB_FAILPOINT("serve.score");
    const Snippet a = ParseSnippetField(a_text);
    const Snippet b = ParseSnippetField(b_text);
    auto context = BorrowContext(*bundle);
    margin = PredictPairMargin(a, b, bundle->stats, bundle->config,
                               bundle->classifier.model, &context->t_registry,
                               &context->p_registry);
    ReturnContext(std::move(context));
    pair_cache_.Put(key, margin);
  }
  metrics.RecordCache(hit);
  response.String("winner", margin >= 0 ? "a" : "b")
      .Number("margin", margin)
      .Int("gen", static_cast<int64_t>(bundle->generation))
      .String("cache", hit ? "hit" : "miss");
  return Status::OK();
}

Status ScoringService::HandlePredictCtr(const Request& request, JsonWriter& response) {
  const std::string_view text = request.Get("snippet");
  if (text.empty()) {
    return Status::InvalidArgument("predict_ctr needs a non-empty 'snippet' field");
  }
  const auto bundle = registry_->Current();
  if (bundle == nullptr) return Status::FailedPrecondition("no model bundle loaded");

  const uint64_t key = ContentKey(bundle->generation, "point", text);
  EndpointMetrics& metrics = metrics_.endpoint(Endpoint::kPredictCtr);
  double score = 0.0;
  bool hit = false;
  if (auto cached = point_cache_.Get(key)) {
    score = *cached;
    hit = true;
  } else {
    MB_FAILPOINT("serve.score");
    score = bundle->predictor->Score(ParseSnippetField(text));
    point_cache_.Put(key, score);
  }
  metrics.RecordCache(hit);
  // The pointwise score is a relative quality in log-odds units (see
  // ctr_predictor.h); "ctr" squashes it to (0,1) for consumers that want a
  // probability-shaped number. It is rank-consistent, not calibrated.
  response.Number("score", score)
      .Number("ctr", Sigmoid(score))
      .Int("gen", static_cast<int64_t>(bundle->generation))
      .String("cache", hit ? "hit" : "miss");
  return Status::OK();
}

Status ScoringService::HandleExamine(const Request& request, JsonWriter& response) {
  const std::string_view text = request.Get("snippet");
  if (text.empty()) {
    return Status::InvalidArgument("examine needs a non-empty 'snippet' field");
  }
  const auto bundle = registry_->Current();
  if (bundle == nullptr) return Status::FailedPrecondition("no model bundle loaded");

  const Snippet snippet = ParseSnippetField(text);
  // Per-token micro-browsing breakdown: examination probability from the
  // bundle's (fitted) curve, relevance proxy from the statistics database's
  // smoothed win probability of the unigram.
  std::string lines_json = "[";
  for (int line = 0; line < snippet.num_lines(); ++line) {
    if (line > 0) lines_json.push_back(',');
    lines_json.push_back('[');
    const auto& tokens = snippet.line(line);
    for (int pos = 0; pos < static_cast<int>(tokens.size()); ++pos) {
      if (pos > 0) lines_json.push_back(',');
      JsonWriter token;
      token.String("token", tokens[pos])
          .Number("examine", bundle->curve.Probability(line, pos))
          .Number("relevance", Sigmoid(bundle->stats.LogOdds(TermKey(tokens[pos]))));
      lines_json += token.Finish();
    }
    lines_json.push_back(']');
  }
  lines_json.push_back(']');
  response.Raw("lines", lines_json)
      .Bool("curve_fitted", bundle->curve_fitted)
      .Int("gen", static_cast<int64_t>(bundle->generation));
  return Status::OK();
}

Status ScoringService::HandleReload(const Request& request, JsonWriter& response) {
  // "force" bypasses the unchanged-artifacts short-circuit (operator
  // escape hatch; see BundleRegistry::Reload).
  const bool force = request.Get("force", "false") == "true";
  const uint64_t before = registry_->generation();
  const Status status = registry_->Reload(force);
  const uint64_t after = registry_->generation();
  if (status.ok()) {
    if (after != before) {
      // Entries of dead generations can never be hit again (keys embed the
      // generation); flush them eagerly rather than waiting for LRU churn.
      // A short-circuited reload (byte-identical artifacts) keeps both the
      // generation and the warm caches.
      pair_cache_.Clear();
      point_cache_.Clear();
    }
    reload_success_->Increment(1);
  } else {
    reload_failure_->Increment(1);
  }
  response.Int("gen", static_cast<int64_t>(after)).Bool("skipped", status.ok() && after == before);
  return status;
}

Status ScoringService::HandleStatsz(JsonWriter& response) {
  response.Raw("endpoints", metrics_.RenderStatszJson());
  const CacheStats pair = pair_cache_stats();
  const CacheStats point = point_cache_stats();
  response.Raw("pair_cache", JsonWriter()
                                 .Int("size", pair.size)
                                 .Int("hits", pair.hits)
                                 .Int("misses", pair.misses)
                                 .Int("evictions", pair.evictions)
                                 .Number("hit_rate", pair.hit_rate())
                                 .Finish());
  response.Raw("point_cache", JsonWriter()
                                  .Int("size", point.size)
                                  .Int("hits", point.hits)
                                  .Int("misses", point.misses)
                                  .Int("evictions", point.evictions)
                                  .Number("hit_rate", point.hit_rate())
                                  .Finish());
  response.Int("gen", static_cast<int64_t>(registry_->generation()))
      .Int("reloads", registry_->reload_count())
      .Int("skipped_reloads", registry_->skipped_reload_count())
      .Int("failed_reloads", registry_->failed_reload_count());
  return Status::OK();
}

Status ScoringService::HandleHealthz(JsonWriter& response) {
  // Liveness: the process is up and answering protocol lines — true in
  // every state, including mid-drain (a draining task is alive; it is just
  // not *ready*). The state string still tells the whole story.
  const uint64_t generation = registry_->generation();
  std::string state = "serving";
  if (draining()) {
    state = "draining";
  } else if (generation == 0 || registry_->last_reload_failed()) {
    state = "degraded";
  }
  response.String("state", state).Int("gen", static_cast<int64_t>(generation));
  return Status::OK();
}

Status ScoringService::HandleReadyz(JsonWriter& response) {
  // Readiness: should a router send this task *new* traffic? No while
  // draining (the listener is already closed to fresh connections) and no
  // without a bundle; a stale generation after a failed reload is degraded
  // but still ready — serving the old model beats serving nothing.
  const uint64_t generation = registry_->generation();
  if (draining()) {
    const HealthState* health = health_.load(std::memory_order_acquire);
    response.String("state", "draining")
        .Int("gen", static_cast<int64_t>(generation))
        .Int("retry_after_ms", health->retry_after_ms.load(std::memory_order_relaxed));
    return Status::Unavailable("draining");
  }
  if (generation == 0) {
    response.String("state", "degraded").Int("gen", 0);
    return Status::FailedPrecondition("no model bundle loaded");
  }
  response.String("state", registry_->last_reload_failed() ? "degraded" : "serving")
      .Int("gen", static_cast<int64_t>(generation));
  return Status::OK();
}

Status ScoringService::HandleMetricsz(JsonWriter& response) {
  // The Prometheus text rides inside the newline-JSON envelope as one
  // escaped string; mbserved additionally answers plain HTTP GET /metricsz
  // with the raw text (see Server::ReadLoop).
  response.String("metrics", RenderMetricsText())
      .Int("gen", static_cast<int64_t>(registry_->generation()));
  return Status::OK();
}

}  // namespace serve
}  // namespace microbrowse
