// Copyright 2026 The Microbrowse Authors
//
// The serving model bundle: everything one request needs to score —
// trained classifier + registries, feature-statistics database, the
// classifier configuration, a pointwise CTR predictor and an examination
// curve fitted from the learned position weights. Bundles are immutable
// once published; BundleRegistry swaps a generation-counted
// shared_ptr<const ModelBundle> atomically, so hot reload never blocks
// or tears in-flight requests: they finish on the generation they
// started with, and the old bundle is freed when its last request drops
// the reference.
//
// Reload is all-or-nothing: the replacement artifacts are loaded and
// validated (checksummed strict loads via io/serialization) into a fresh
// bundle *before* the swap. A corrupt or missing replacement leaves the
// previous generation serving — the failure mode the paper's production
// setting cares about most (an ad server must keep scoring through a bad
// model push).

#ifndef MICROBROWSE_SERVE_BUNDLE_H_
#define MICROBROWSE_SERVE_BUNDLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/ctr_predictor.h"
#include "microbrowse/model.h"

namespace microbrowse {
namespace serve {

/// Artifact paths + model type for one bundle load. Each path may name a
/// TSV artifact (io/serialization.h) or an mbpack container
/// (io/pack_artifacts.h) — LoadBundle sniffs the magic bytes and picks the
/// loader, so operators switch formats by swapping files, not flags.
struct BundlePaths {
  std::string model_path;
  std::string stats_path;
  /// Name of the classifier configuration the model was trained with
  /// (M1..M6); selects the feature-extraction recipe at serve time.
  std::string model_type = "M6";
};

/// One immutable serving generation.
struct ModelBundle {
  uint64_t generation = 0;
  SavedClassifier classifier;
  FeatureStatsDb stats;
  ClassifierConfig config;
  /// Examination curve fitted from the learned position factor (fallback:
  /// the TOP-placement prior when the model has no usable position grid).
  ExaminationCurve curve;
  /// True when `curve` was fitted from the model rather than the prior.
  bool curve_fitted = false;
  /// Pointwise scorer over this bundle's artifacts (constructed after the
  /// members above are at their final addresses — see MakeBundle).
  std::optional<CtrPredictor> predictor;
  BundlePaths paths;
  /// Combined FNV-1a/64 over the raw bytes of both artifact files —
  /// Reload() compares the fingerprint of the files on disk against this
  /// to skip the swap when nothing changed (a SIGHUP against unchanged
  /// files costs two file reads, no parsing, no generation bump).
  uint64_t content_checksum = 0;
};

/// Loads a bundle from `paths` (strict checksummed loads) and assigns it
/// `generation`. Fails without side effects on any artifact problem.
/// Failpoint: serve.bundle.load fires after the artifact loads succeed —
/// the hook reload tests use to fail a structurally-valid replacement.
Result<std::shared_ptr<const ModelBundle>> LoadBundle(const BundlePaths& paths,
                                                      uint64_t generation);

/// Holds the current serving bundle and performs atomic hot reloads.
class BundleRegistry {
 public:
  BundleRegistry() = default;

  /// Loads the initial generation (generation 1). Must be called once,
  /// before Current().
  Status LoadInitial(const BundlePaths& paths);

  /// Re-loads from the same paths into generation N+1 and publishes it.
  /// When the artifacts on disk are unchanged since the serving bundle
  /// loaded (content fingerprint match) the reload is skipped: OK is
  /// returned, no generation bump, skipped_reload_count() increments.
  /// `force` bypasses the fingerprint and always performs the full load —
  /// the operator escape hatch for e.g. picking up a filesystem remount.
  /// On failure the previous generation keeps serving and the error is
  /// returned. Concurrent Reload calls are serialized.
  Status Reload(bool force = false);

  /// The current bundle; never null after a successful LoadInitial.
  /// Lock-free (atomic shared_ptr load) — callers hold the returned
  /// pointer for the duration of one request.
  std::shared_ptr<const ModelBundle> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Generation of the current bundle (0 before LoadInitial).
  uint64_t generation() const {
    const auto bundle = Current();
    return bundle ? bundle->generation : 0;
  }

  /// Number of successful reloads (initial load excluded; short-circuited
  /// reloads are counted separately).
  int64_t reload_count() const { return reloads_.load(std::memory_order_relaxed); }
  /// Number of reloads skipped because the artifact files were
  /// byte-identical to the serving bundle.
  int64_t skipped_reload_count() const {
    return skipped_reloads_.load(std::memory_order_relaxed);
  }
  /// Number of failed reload attempts.
  int64_t failed_reload_count() const {
    return failed_reloads_.load(std::memory_order_relaxed);
  }
  /// True when the most recent reload attempt failed — the registry is
  /// still serving, but on a generation older than the operator intended.
  /// The readyz health surface reports this as "degraded"; a later
  /// successful reload clears it.
  bool last_reload_failed() const {
    return last_reload_failed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const ModelBundle>> current_;
  std::mutex reload_mu_;  ///< Serializes Reload; never held on the read path.
  std::atomic<int64_t> reloads_{0};
  std::atomic<int64_t> skipped_reloads_{0};
  std::atomic<int64_t> failed_reloads_{0};
  std::atomic<bool> last_reload_failed_{false};
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_BUNDLE_H_
