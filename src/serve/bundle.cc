// Copyright 2026 The Microbrowse Authors

#include "serve/bundle.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "io/pack_artifacts.h"
#include "microbrowse/feature_keys.h"

namespace microbrowse {
namespace serve {

namespace {

Result<ClassifierConfig> ConfigByName(const std::string& name) {
  for (const auto& config : ClassifierConfig::AllPaperModels()) {
    if (config.name == name) return config;
  }
  return Status::InvalidArgument("unknown model type '" + name + "' (expected M1..M6)");
}

/// Grid of learned term-position weights (NaN = never observed), the input
/// FitExaminationCurve expects.
std::vector<std::vector<double>> LearnedPositionGrid(const SavedClassifier& classifier) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> grid(kMaxLineBucket + 1,
                                        std::vector<double>(kMaxPosBucket + 1, nan));
  for (int line = 0; line <= kMaxLineBucket; ++line) {
    for (int bucket = 0; bucket <= kMaxPosBucket; ++bucket) {
      const FeatureId id =
          classifier.p_registry.Find(TermPositionKey(PositionKey{line, bucket}));
      if (id != kInvalidFeatureId && id < classifier.model.p_weights.size()) {
        grid[line][bucket] = classifier.model.p_weights[id];
      }
    }
  }
  return grid;
}

/// Loads a classifier from either artifact format (magic-byte sniff).
Result<SavedClassifier> LoadClassifierAny(const std::string& path) {
  MB_ASSIGN_OR_RETURN(const bool is_pack, IsPackFile(path));
  if (is_pack) return LoadClassifierPack(path);
  return LoadClassifier(path);
}

/// Loads a stats database from either artifact format.
Result<FeatureStatsDb> LoadStatsAny(const std::string& path) {
  MB_ASSIGN_OR_RETURN(const bool is_pack, IsPackFile(path));
  if (is_pack) return LoadStatsPack(path);
  return LoadFeatureStats(path);
}

}  // namespace

/// Combined raw-byte fingerprint of the two artifact files.
static Result<uint64_t> BundleContentChecksum(const BundlePaths& paths) {
  MB_ASSIGN_OR_RETURN(const uint64_t model_checksum, FileChecksum(paths.model_path));
  MB_ASSIGN_OR_RETURN(const uint64_t stats_checksum, FileChecksum(paths.stats_path));
  return HashCombine(model_checksum, stats_checksum);
}

Result<std::shared_ptr<const ModelBundle>> LoadBundle(const BundlePaths& paths,
                                                      uint64_t generation) {
  MB_ASSIGN_OR_RETURN(ClassifierConfig config, ConfigByName(paths.model_type));
  MB_ASSIGN_OR_RETURN(const uint64_t content_checksum, BundleContentChecksum(paths));
  MB_ASSIGN_OR_RETURN(SavedClassifier classifier, LoadClassifierAny(paths.model_path));
  MB_ASSIGN_OR_RETURN(FeatureStatsDb stats, LoadStatsAny(paths.stats_path));
  MB_FAILPOINT("serve.bundle.load");

  auto bundle = std::make_shared<ModelBundle>();
  bundle->generation = generation;
  bundle->classifier = std::move(classifier);
  bundle->stats = std::move(stats);
  bundle->config = std::move(config);
  bundle->paths = paths;
  bundle->content_checksum = content_checksum;

  auto fitted = FitExaminationCurve(LearnedPositionGrid(bundle->classifier));
  if (fitted.ok()) {
    bundle->curve = *std::move(fitted);
    bundle->curve_fitted = true;
  } else {
    bundle->curve = ExaminationCurve::TopPlacement();
    bundle->curve_fitted = false;
  }

  // The predictor keeps a raw pointer to the stats DB, so it must be
  // constructed after the bundle members reached their final heap address.
  CtrPredictorOptions predictor_options;
  predictor_options.max_ngram = bundle->config.max_ngram;
  predictor_options.fallback_curve = bundle->curve;
  bundle->predictor.emplace(bundle->classifier.model, bundle->classifier.t_registry,
                            bundle->classifier.p_registry, &bundle->stats,
                            predictor_options);
  return std::shared_ptr<const ModelBundle>(std::move(bundle));
}

Status BundleRegistry::LoadInitial(const BundlePaths& paths) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  if (current_.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition("BundleRegistry: already loaded");
  }
  auto bundle = LoadBundle(paths, /*generation=*/1);
  if (!bundle.ok()) return bundle.status();
  current_.store(*std::move(bundle), std::memory_order_release);
  return Status::OK();
}

Status BundleRegistry::Reload(bool force) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  const auto current = current_.load(std::memory_order_acquire);
  if (current == nullptr) {
    return Status::FailedPrecondition("BundleRegistry: LoadInitial has not run");
  }
  // Short-circuit: when the files on disk are unchanged since the serving
  // bundle loaded there is nothing to do — skip the parse and the
  // generation bump entirely. A fingerprint failure (e.g. a file
  // mid-replace) falls through to the full load, whose own error handling
  // applies.
  if (!force) {
    const auto on_disk = BundleContentChecksum(current->paths);
    if (on_disk.ok() && *on_disk == current->content_checksum) {
      skipped_reloads_.fetch_add(1, std::memory_order_relaxed);
      MB_LOG(kInfo) << "reload skipped: artifacts unchanged (generation "
                    << current->generation << ")";
      return Status::OK();
    }
  }
  auto bundle = LoadBundle(current->paths, current->generation + 1);
  if (!bundle.ok()) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    last_reload_failed_.store(true, std::memory_order_relaxed);
    MB_LOG(kWarning) << "reload failed, keeping generation " << current->generation
                     << ": " << bundle.status().ToString();
    return bundle.status();
  }
  current_.store(*std::move(bundle), std::memory_order_release);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  last_reload_failed_.store(false, std::memory_order_relaxed);
  MB_LOG(kInfo) << "reloaded model bundle: generation " << current->generation << " -> "
                << current->generation + 1;
  return Status::OK();
}

}  // namespace serve
}  // namespace microbrowse
