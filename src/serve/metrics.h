// Copyright 2026 The Microbrowse Authors
//
// Per-endpoint serving metrics: request/error counters, a latency
// histogram (p50/p95/p99 via common/histogram.h) and cache hit counters,
// plus server-level gauges (queue depth, rejected requests, batch sizes).
// Everything on the request path is an atomic increment; statsz
// aggregates on demand.

#ifndef MICROBROWSE_SERVE_METRICS_H_
#define MICROBROWSE_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace microbrowse {
namespace serve {

/// The serviced endpoints, in statsz order.
enum class Endpoint : int {
  kScorePair = 0,
  kPredictCtr,
  kExamine,
  kReload,
  kStatsz,
  kPing,
  kOther,  ///< Unknown / malformed request types.
};
inline constexpr int kNumEndpoints = 7;

/// Stable wire name of an endpoint ("score_pair", ...).
std::string_view EndpointName(Endpoint endpoint);
/// Inverse of EndpointName; kOther for unknown names.
Endpoint EndpointByName(std::string_view name);

/// Counters for one endpoint.
class EndpointMetrics {
 public:
  void RecordRequest(double latency_seconds, bool ok) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
    latency_.Record(latency_seconds);
  }
  void RecordCache(bool hit) {
    (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
  }

  int64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  int64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  int64_t cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }
  int64_t cache_misses() const { return cache_misses_.load(std::memory_order_relaxed); }
  const Histogram& latency() const { return latency_; }

 private:
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  Histogram latency_;
};

/// All serving metrics; one instance per ScoringService.
class ServerMetrics {
 public:
  EndpointMetrics& endpoint(Endpoint endpoint) {
    return endpoints_[static_cast<int>(endpoint)];
  }
  const EndpointMetrics& endpoint(Endpoint endpoint) const {
    return endpoints_[static_cast<int>(endpoint)];
  }

  /// Requests rejected by admission control (queue full).
  std::atomic<int64_t> rejected_overload{0};
  /// Batch-size distribution of the worker drain loop.
  Histogram batch_size;

  /// Renders the nested statsz JSON object (cache stats are appended by
  /// the service, which owns the caches): {"score_pair":{"requests":...},
  /// ...,"rejected_overload":N}.
  std::string RenderStatszJson() const;

 private:
  std::array<EndpointMetrics, kNumEndpoints> endpoints_;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_METRICS_H_
