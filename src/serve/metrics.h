// Copyright 2026 The Microbrowse Authors
//
// Per-endpoint serving metrics backed by the process-wide metric registry
// (common/metrics.h): request/error counters, a sharded latency histogram
// (p50/p95/p99) and cache hit counters, plus server-level counters (queue
// rejections) and a batch-size histogram. Everything on the request path
// is an atomic increment; statsz and /metricsz aggregate on demand.
//
// Metric names follow the mb.<subsystem>.<name> scheme:
// mb.serve.<endpoint>.{requests,errors,cache_hits,cache_misses,latency}
// plus the server-level counters mb.serve.rejected_overload,
// mb.serve.deadline_exceeded, mb.serve.drained, mb.serve.idle_evicted,
// mb.serve.write_timeout, mb.serve.steal_count and the mb.serve.batch_size
// histogram. The four
// refusal counters plus per-
// endpoint ok responses exactly account for every request the server ever
// read — the invariant the chaos soak harness asserts.

#ifndef MICROBROWSE_SERVE_METRICS_H_
#define MICROBROWSE_SERVE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/metrics.h"

namespace microbrowse {
namespace serve {

/// The serviced endpoints, in statsz order.
enum class Endpoint : int {
  kScorePair = 0,
  kPredictCtr,
  kExamine,
  kReload,
  kStatsz,
  kMetricsz,
  kHealthz,
  kReadyz,
  kPing,
  kOther,  ///< Unknown / malformed request types.
};
inline constexpr int kNumEndpoints = 10;

/// Stable wire name of an endpoint ("score_pair", ...).
std::string_view EndpointName(Endpoint endpoint);
/// Inverse of EndpointName; kOther for unknown names.
Endpoint EndpointByName(std::string_view name);

/// Counters for one endpoint; thin handles into a MetricRegistry. The
/// registry owns the metrics and must outlive this object.
class EndpointMetrics {
 public:
  EndpointMetrics(MetricRegistry* registry, std::string_view endpoint_name);

  void RecordRequest(double latency_seconds, bool ok) {
    requests_->Increment(1);
    if (!ok) errors_->Increment(1);
    latency_->Record(latency_seconds);
  }
  void RecordCache(bool hit) { (hit ? cache_hits_ : cache_misses_)->Increment(1); }

  int64_t requests() const { return requests_->Value(); }
  int64_t errors() const { return errors_->Value(); }
  int64_t cache_hits() const { return cache_hits_->Value(); }
  int64_t cache_misses() const { return cache_misses_->Value(); }
  const ShardedHistogram& latency() const { return *latency_; }

 private:
  Counter* requests_;
  Counter* errors_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  ShardedHistogram* latency_;
};

/// All serving metrics; one instance per ScoringService, registered in the
/// service's MetricRegistry (the global one in mbserved, a private one in
/// tests that want isolation).
class ServerMetrics {
 public:
  explicit ServerMetrics(MetricRegistry* registry);

  EndpointMetrics& endpoint(Endpoint endpoint) {
    return endpoints_[static_cast<int>(endpoint)];
  }
  const EndpointMetrics& endpoint(Endpoint endpoint) const {
    return endpoints_[static_cast<int>(endpoint)];
  }

  /// Requests rejected by admission control (queue full or the
  /// per-connection in-flight cap).
  Counter* rejected_overload;
  /// Requests refused because their deadline budget was spent before a
  /// worker reached them.
  Counter* deadline_exceeded;
  /// Requests refused with "draining" after the server began its drain.
  Counter* drained;
  /// Connections evicted by the idle reaper (slow-loris / silent peers).
  Counter* idle_evicted;
  /// Connections evicted because the peer stopped reading: a response
  /// write made no progress for write_timeout_ms, or the pending-response
  /// outbox outgrew its byte cap. Responses already accounted per-endpoint
  /// may be dropped on such a connection — eviction is connection-scoped,
  /// so this counter sits outside the request accounting invariant.
  Counter* write_timeout;
  /// Batch-size distribution of the worker drain loop (both the FIFO
  /// baseline and the work-stealing pool record here).
  ShardedHistogram* batch_size;
  /// Tasks migrated between workers by the work-stealing scheduler
  /// (steal-half events count every task moved).
  Counter* steal_count;

  /// Renders the nested statsz JSON object (cache stats are appended by
  /// the service, which owns the caches): {"score_pair":{"requests":...},
  /// ...,"rejected_overload":N}.
  std::string RenderStatszJson() const;

 private:
  std::array<EndpointMetrics, kNumEndpoints> endpoints_;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_METRICS_H_
