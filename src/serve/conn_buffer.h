// Copyright 2026 The Microbrowse Authors
//
// Per-connection input buffering for the epoll reactor: the kernel writes
// straight into the buffer's tail (ReserveTail/CommitTail — no intermediate
// chunk copy), and complete lines come back as string_views into the same
// storage (NextLine — no per-line allocation). Only a request that is
// actually admitted to the scoring queue is ever copied; refusals, HTTP
// headers and health probes are parsed in place.
//
// Consumed bytes are reclaimed by offset, not erase: when every buffered
// byte has been consumed the buffer resets to empty for free (the common
// case — most reads end on a line boundary), and only a large consumed
// prefix under a still-pending partial line triggers a memmove compaction.
//
// A BufferPool recycles the underlying storage across connections so 10k
// clients churning through short-lived connections reuse a bounded set of
// allocations instead of hammering the allocator. Buffers that grew past
// the retention cap are dropped rather than pooled — one 4 MB request must
// not permanently inflate the pool.

#ifndef MICROBROWSE_SERVE_CONN_BUFFER_H_
#define MICROBROWSE_SERVE_CONN_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

namespace microbrowse {
namespace serve {

/// Bounded free list of reusable byte buffers, shared by every connection
/// of one reactor. Thread-compatible with the reactor's single-threaded
/// connection lifecycle, but locked anyway — acquisition/release is rare
/// (connection open/close), never per request.
class BufferPool {
 public:
  /// At most this many buffers are retained; beyond it releases free.
  static constexpr size_t kMaxPooled = 256;
  /// A buffer whose capacity grew past this is freed instead of pooled.
  static constexpr size_t kMaxPooledCapacity = 256 * 1024;

  std::vector<char> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return {};
    std::vector<char> buffer = std::move(free_.back());
    free_.pop_back();
    return buffer;
  }

  void Release(std::vector<char>&& buffer) {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < kMaxPooled && buffer.capacity() <= kMaxPooledCapacity) {
      buffer.clear();
      free_.push_back(std::move(buffer));
    }
  }

  size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<char>> free_;
};

/// Line-framing input buffer for one connection. Not thread-safe: owned by
/// the reactor thread.
class ConnBuffer {
 public:
  /// `pool` may be null (tests); storage is then plain-allocated. A partial
  /// line longer than `max_line_bytes` flips overlong() permanently — the
  /// caller evicts the connection.
  explicit ConnBuffer(size_t max_line_bytes, BufferPool* pool = nullptr)
      : max_line_bytes_(max_line_bytes), pool_(pool) {
    if (pool_ != nullptr) data_ = pool_->Acquire();
  }

  ~ConnBuffer() {
    if (pool_ != nullptr) pool_->Release(std::move(data_));
  }

  ConnBuffer(const ConnBuffer&) = delete;
  ConnBuffer& operator=(const ConnBuffer&) = delete;

  /// A writable tail of at least `n` bytes for the kernel to fill.
  /// Invalidates views returned by NextLine.
  char* ReserveTail(size_t n) {
    if (data_.size() < size_ + n) data_.resize(size_ + n);
    return data_.data() + size_;
  }

  /// Publishes `n` bytes the kernel wrote into ReserveTail's span.
  void CommitTail(size_t n) {
    size_ += n;
    total_bytes_ += n;
    if (size_ - start_ > max_line_bytes_) overlong_ = true;
  }

  /// Next complete line as a view into the buffer ('\n' stripped, a '\r'
  /// before it too). The view stays valid until the next ReserveTail.
  /// Returns false when no complete line is buffered; check overlong()
  /// then — a partial line past the bound never completes.
  bool NextLine(std::string_view* line) {
    const char* base = data_.data();
    const void* found = std::memchr(base + start_, '\n', size_ - start_);
    if (found == nullptr) {
      MaybeCompact();
      return false;
    }
    const size_t newline = static_cast<size_t>(static_cast<const char*>(found) - base);
    size_t end = newline;
    if (end > start_ && base[end - 1] == '\r') --end;
    *line = std::string_view(base + start_, end - start_);
    start_ = newline + 1;
    return true;
  }

  /// True once a partial line exceeded max_line_bytes.
  bool overlong() const { return overlong_; }

  /// Unconsumed bytes (the pending partial line after NextLine ran dry).
  size_t pending_bytes() const { return size_ - start_; }

  /// Total bytes ever committed — the idle reaper's byte-movement mark.
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  void MaybeCompact() {
    if (start_ == size_) {
      // Everything consumed: reset for free. This is the steady state for
      // well-formed traffic, so the buffer almost never memmoves.
      start_ = 0;
      size_ = 0;
    } else if (start_ > 64 * 1024 && start_ * 2 > size_) {
      std::memmove(data_.data(), data_.data() + start_, size_ - start_);
      size_ -= start_;
      start_ = 0;
    }
  }

  size_t max_line_bytes_;
  BufferPool* pool_;
  std::vector<char> data_;
  size_t start_ = 0;  ///< First unconsumed byte.
  size_t size_ = 0;   ///< One past the last committed byte.
  uint64_t total_bytes_ = 0;
  bool overlong_ = false;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_CONN_BUFFER_H_
