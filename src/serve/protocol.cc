// Copyright 2026 The Microbrowse Authors

#include "serve/protocol.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace microbrowse {
namespace serve {

namespace {

/// Cursor over the request line with one-token-lookahead helpers. All
/// errors funnel through Error() so messages carry the byte offset.
/// Decoded keys and values land in the caller's arena: unescaped spans are
/// memcpy'd verbatim, escaped strings are validated in place first and then
/// decoded into an arena buffer sized by the raw span (the decoded form is
/// never longer), so a warm scratch Request parses with zero allocations.
class Parser {
 public:
  Parser(std::string_view text, Arena* arena,
         std::vector<std::pair<std::string_view, std::string_view>>* fields)
      : text_(text), arena_(arena), fields_(fields) {}

  Status Parse() {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return Finish();
    for (;;) {
      SkipSpace();
      std::string_view key;
      if (auto status = ParseString(&key); !status.ok()) return status;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipSpace();
      std::string_view value;
      if (auto status = ParseValue(&value); !status.ok()) return status;
      AddField(key, value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Finish();
      return Error("expected ',' or '}'");
    }
  }

 private:
  Status Finish() {
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters after object");
    return Status::OK();
  }

  /// Last value wins for duplicate keys, with one entry kept — the same
  /// observable behavior as the map-backed Request this replaced.
  void AddField(std::string_view key, std::string_view value) {
    for (auto& field : *fields_) {
      if (field.first == key) {
        field.second = value;
        return;
      }
    }
    fields_->emplace_back(key, value);
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("bad request at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(std::string_view* out) {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '"') return ParseString(out);
    if (c == '{' || c == '[') return Error("nested values are not supported");
    // Bare literal: number, true, false, null. Take the maximal run of
    // literal characters and validate it.
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ' ' && text_[pos_] != '\t') {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token == "true" || token == "false" || token == "null") {
      *out = arena_->Dup(token);
      return Status::OK();
    }
    // strtod needs a terminated buffer; the arena copy doubles as the value.
    char* copy = arena_->Allocate(token.size() + 1);
    std::memcpy(copy, token.data(), token.size());
    copy[token.size()] = '\0';
    char* end = nullptr;
    std::strtod(copy, &end);
    if (token.empty() || end != copy + token.size()) {
      return Error("invalid literal '" + std::string(token) + "'");
    }
    *out = std::string_view(copy, token.size());
    return Status::OK();
  }

  /// Validation pass: scans to the closing quote with exactly the original
  /// error positions/messages, then either aliases the raw span (no
  /// escapes) or decodes it into the arena.
  Status ParseString(std::string_view* out) {
    if (!Consume('"')) return Error("expected '\"'");
    const size_t start = pos_;
    bool has_escape = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        const std::string_view raw = text_.substr(start, pos_ - 1 - start);
        *out = has_escape ? Decode(raw) : arena_->Dup(raw);
        return Status::OK();
      }
      if (c != '\\') continue;
      has_escape = true;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': case '\\': case '/': case 'b':
        case 'f': case 'n': case 'r': case 't':
          break;
        case 'u': {
          if (auto status = CheckUnicodeEscape(); !status.ok()) return status;
          break;
        }
        default:
          return Error(StrFormat("invalid escape '\\%c'", esc));
      }
    }
    return Error("unterminated string");
  }

  Status CheckUnicodeEscape() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      const bool hex = (h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                       (h >= 'A' && h <= 'F');
      if (!hex) return Error("invalid \\u escape digit");
    }
    return Status::OK();
  }

  /// Decodes an already-validated raw string body into the arena. The
  /// decoded form never exceeds the raw length (every escape shrinks).
  std::string_view Decode(std::string_view raw) {
    char* buffer = arena_->Allocate(raw.size());
    size_t len = 0;
    size_t i = 0;
    while (i < raw.size()) {
      const char c = raw[i++];
      if (c != '\\') {
        buffer[len++] = c;
        continue;
      }
      const char esc = raw[i++];
      switch (esc) {
        case '"': buffer[len++] = '"'; break;
        case '\\': buffer[len++] = '\\'; break;
        case '/': buffer[len++] = '/'; break;
        case 'b': buffer[len++] = '\b'; break;
        case 'f': buffer[len++] = '\f'; break;
        case 'n': buffer[len++] = '\n'; break;
        case 'r': buffer[len++] = '\r'; break;
        case 't': buffer[len++] = '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int d = 0; d < 4; ++d) {
            const char h = raw[i++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else code |= static_cast<unsigned>(h - 'A' + 10);
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as individual units — snippet text is ASCII-tokenized anyway).
          if (code < 0x80) {
            buffer[len++] = static_cast<char>(code);
          } else if (code < 0x800) {
            buffer[len++] = static_cast<char>(0xC0 | (code >> 6));
            buffer[len++] = static_cast<char>(0x80 | (code & 0x3F));
          } else {
            buffer[len++] = static_cast<char>(0xE0 | (code >> 12));
            buffer[len++] = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            buffer[len++] = static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: break;  // Unreachable: the scan pass rejected it.
      }
    }
    return std::string_view(buffer, len);
  }

  std::string_view text_;
  Arena* arena_;
  std::vector<std::pair<std::string_view, std::string_view>>* fields_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseRequestInto(std::string_view line, Request* out) {
  out->fields.clear();
  out->arena_.Reset();
  Status status = Parser(line, &out->arena_, &out->fields).Parse();
  if (!status.ok()) {
    out->fields.clear();
    out->arena_.Reset();
  }
  return status;
}

Result<Request> ParseRequest(std::string_view line) {
  Request request;
  if (auto status = ParseRequestInto(line, &request); !status.ok()) {
    return status;
  }
  return std::move(request);
}

void JsonEscapeTo(std::string_view text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  JsonEscapeTo(text, &out);
  return out;
}

void JsonWriter::Key(std::string_view key) {
  if (!body_.empty()) body_.push_back(',');
  body_.push_back('"');
  JsonEscapeTo(key, &body_);
  body_ += "\":";
}

JsonWriter& JsonWriter::String(std::string_view key, std::string_view value) {
  Key(key);
  body_.push_back('"');
  JsonEscapeTo(value, &body_);
  body_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Number(std::string_view key, double value) {
  Key(key);
  if (std::isfinite(value)) {
    // Shortest round-trip representation: a client parsing the field gets
    // the bit-identical double back, so server-side scores match local
    // batch scoring exactly (the serve-vs-batch parity check relies on
    // this).
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    body_.append(buffer, end);
  } else {
    body_ += "null";  // JSON has no Inf/NaN literals.
  }
  return *this;
}

JsonWriter& JsonWriter::Int(std::string_view key, int64_t value) {
  Key(key);
  body_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view key, std::string_view json) {
  Key(key);
  body_ += json;
  return *this;
}

}  // namespace serve
}  // namespace microbrowse
