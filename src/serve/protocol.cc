// Copyright 2026 The Microbrowse Authors

#include "serve/protocol.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace microbrowse {
namespace serve {

namespace {

/// Cursor over the request line with one-token-lookahead helpers. All
/// errors funnel through Error() so messages carry the byte offset.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Request> Parse() {
    Request request;
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return FinishAt(request);
    for (;;) {
      SkipSpace();
      std::string key;
      if (auto status = ParseString(&key); !status.ok()) return status;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipSpace();
      std::string value;
      if (auto status = ParseValue(&value); !status.ok()) return status;
      request.fields[std::move(key)] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return FinishAt(request);
      return Error("expected ',' or '}'");
    }
  }

 private:
  Result<Request> FinishAt(Request& request) {
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters after object");
    return std::move(request);
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("bad request at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(std::string* out) {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '"') return ParseString(out);
    if (c == '{' || c == '[') return Error("nested values are not supported");
    // Bare literal: number, true, false, null. Take the maximal run of
    // literal characters and validate it.
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ' ' && text_[pos_] != '\t') {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token == "true" || token == "false" || token == "null") {
      *out = token;
      return Status::OK();
    }
    char* end = nullptr;
    const std::string copy = token;  // strtod needs a terminated buffer.
    std::strtod(copy.c_str(), &end);
    if (copy.empty() || end != copy.c_str() + copy.size()) {
      return Error("invalid literal '" + token + "'");
    }
    *out = token;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (auto status = ParseUnicodeEscape(out); !status.ok()) return status;
          break;
        }
        default:
          return Error(StrFormat("invalid escape '\\%c'", esc));
      }
    }
    return Error("unterminated string");
  }

  Status ParseUnicodeEscape(std::string* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return Error("invalid \\u escape digit");
    }
    // UTF-8 encode the code point (surrogate pairs are passed through as
    // individual units — snippet text is ASCII-tokenized anyway).
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Request> ParseRequest(std::string_view line) { return Parser(line).Parse(); }

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::Key(std::string_view key) {
  if (!body_.empty()) body_.push_back(',');
  body_.push_back('"');
  body_ += JsonEscape(key);
  body_ += "\":";
}

JsonWriter& JsonWriter::String(std::string_view key, std::string_view value) {
  Key(key);
  body_.push_back('"');
  body_ += JsonEscape(value);
  body_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Number(std::string_view key, double value) {
  Key(key);
  if (std::isfinite(value)) {
    // Shortest round-trip representation: a client parsing the field gets
    // the bit-identical double back, so server-side scores match local
    // batch scoring exactly (the serve-vs-batch parity check relies on
    // this).
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    body_.append(buffer, end);
  } else {
    body_ += "null";  // JSON has no Inf/NaN literals.
  }
  return *this;
}

JsonWriter& JsonWriter::Int(std::string_view key, int64_t value) {
  Key(key);
  body_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view key, std::string_view json) {
  Key(key);
  body_ += json;
  return *this;
}

}  // namespace serve
}  // namespace microbrowse
