// Copyright 2026 The Microbrowse Authors

#include "serve/metrics.h"

#include <utility>

#include "serve/protocol.h"

namespace microbrowse {
namespace serve {

namespace {
constexpr std::string_view kNames[kNumEndpoints] = {
    "score_pair", "predict_ctr", "examine", "reload", "statsz",
    "metricsz",   "healthz",     "readyz",  "ping",   "other",
};

std::string MetricName(std::string_view endpoint_name, std::string_view suffix) {
  std::string name = "mb.serve.";
  name.append(endpoint_name);
  name.push_back('.');
  name.append(suffix);
  return name;
}
}  // namespace

std::string_view EndpointName(Endpoint endpoint) {
  return kNames[static_cast<int>(endpoint)];
}

Endpoint EndpointByName(std::string_view name) {
  for (int i = 0; i < kNumEndpoints; ++i) {
    if (kNames[i] == name) return static_cast<Endpoint>(i);
  }
  return Endpoint::kOther;
}

EndpointMetrics::EndpointMetrics(MetricRegistry* registry, std::string_view endpoint_name)
    : requests_(registry->GetCounter(MetricName(endpoint_name, "requests"))),
      errors_(registry->GetCounter(MetricName(endpoint_name, "errors"))),
      cache_hits_(registry->GetCounter(MetricName(endpoint_name, "cache_hits"))),
      cache_misses_(registry->GetCounter(MetricName(endpoint_name, "cache_misses"))),
      latency_(registry->GetHistogram(MetricName(endpoint_name, "latency"))) {}

namespace {
template <size_t... kIndex>
std::array<EndpointMetrics, kNumEndpoints> MakeEndpoints(MetricRegistry* registry,
                                                         std::index_sequence<kIndex...>) {
  return {EndpointMetrics(registry, kNames[kIndex])...};
}
}  // namespace

ServerMetrics::ServerMetrics(MetricRegistry* registry)
    : rejected_overload(registry->GetCounter("mb.serve.rejected_overload")),
      deadline_exceeded(registry->GetCounter("mb.serve.deadline_exceeded")),
      drained(registry->GetCounter("mb.serve.drained")),
      idle_evicted(registry->GetCounter("mb.serve.idle_evicted")),
      write_timeout(registry->GetCounter("mb.serve.write_timeout")),
      batch_size(registry->GetHistogram("mb.serve.batch_size")),
      steal_count(registry->GetCounter("mb.serve.steal_count")),
      endpoints_(MakeEndpoints(registry, std::make_index_sequence<kNumEndpoints>())) {}

std::string ServerMetrics::RenderStatszJson() const {
  JsonWriter top;
  for (int i = 0; i < kNumEndpoints; ++i) {
    const EndpointMetrics& metrics = endpoints_[i];
    if (metrics.requests() == 0) continue;
    const HistogramSnapshot latency = metrics.latency().Snapshot();
    JsonWriter entry;
    entry.Int("requests", metrics.requests())
        .Int("errors", metrics.errors())
        .Int("cache_hits", metrics.cache_hits())
        .Int("cache_misses", metrics.cache_misses())
        .Number("latency_p50_ms", latency.p50 * 1e3)
        .Number("latency_p95_ms", latency.p95 * 1e3)
        .Number("latency_p99_ms", latency.p99 * 1e3)
        .Number("latency_mean_ms", latency.mean() * 1e3);
    top.Raw(kNames[i], entry.Finish());
  }
  top.Int("rejected_overload", rejected_overload->Value());
  top.Int("deadline_exceeded", deadline_exceeded->Value());
  top.Int("drained", drained->Value());
  top.Int("idle_evicted", idle_evicted->Value());
  top.Int("write_timeout", write_timeout->Value());
  top.Int("steal_count", steal_count->Value());
  const HistogramSnapshot batches = batch_size->Snapshot();
  if (batches.count > 0) {
    top.Number("batch_size_mean", batches.mean()).Number("batch_size_max", batches.max);
  }
  return top.Finish();
}

}  // namespace serve
}  // namespace microbrowse
