// Copyright 2026 The Microbrowse Authors
//
// The serving health surface shared between the network front end (which
// owns the drain state machine) and the scoring service (which answers
// healthz/readyz requests and knows the bundle generation). The states:
//
//   serving   accepting and scoring traffic
//   draining  SIGTERM received: listener closed, in-flight work finishing,
//             new requests refused with {"error":"draining",
//             "retry_after_ms":N}
//   degraded  still serving, but on a stale bundle generation (the most
//             recent hot reload failed) or with no bundle loaded at all
//
// healthz is *liveness* — "the process is up and answering lines"; it is
// ok:true in every state. readyz is *readiness* — ok:false while draining
// or without a loaded bundle, so a load balancer or router stops sending
// new traffic before the hard stop. Both report the bundle generation so
// fleet tooling can key health to the model push that is actually live.

#ifndef MICROBROWSE_SERVE_HEALTH_H_
#define MICROBROWSE_SERVE_HEALTH_H_

#include <atomic>
#include <cstdint>

namespace microbrowse {
namespace serve {

/// Drain-side health bits, written by the Server's state machine and read
/// by the ScoringService's healthz/readyz handlers. One instance per
/// Server; attached to the service at Start.
struct HealthState {
  /// True from the moment a drain begins until the process exits.
  std::atomic<bool> draining{false};
  /// Advertised in "draining" refusals: how long a client should wait
  /// before retrying (typically against the replacement task).
  std::atomic<int64_t> retry_after_ms{500};
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_HEALTH_H_
