// Copyright 2026 The Microbrowse Authors

#include "serve/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace microbrowse {
namespace serve {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

// ---------------------------------------------------------------------------
// ReactorConn
// ---------------------------------------------------------------------------

void ReactorConn::Write(std::string_view response_line) { Enqueue(response_line, true); }

void ReactorConn::WriteRaw(std::string_view bytes) { Enqueue(bytes, false); }

void ReactorConn::Enqueue(std::string_view bytes, bool terminate) {
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    if (!alive.load(std::memory_order_acquire) || overflowed_ || write_error_) return;
    const size_t added = bytes.size() + (terminate ? 1 : 0);
    outbox_.append(bytes.data(), bytes.size());
    if (terminate) outbox_.push_back('\n');
    reactor_->pending_out_bytes_.fetch_add(static_cast<int64_t>(added),
                                           std::memory_order_acq_rel);
    TryFlushLocked();
    const size_t pending = PendingLocked();
    if (pending > max_outbox_bytes_) {
      // The peer is not reading: buffering its backlog without bound would
      // let one stalled client consume arbitrary memory. Mark it for
      // eviction; the reactor maps this onto mb.serve.write_timeout.
      overflowed_ = true;
    }
    if ((pending > 0 || write_error_ || overflowed_) && !flush_requested_) {
      flush_requested_ = true;
      need_wake = true;
    }
  }
  if (need_wake) reactor_->RequestFlush(shared_from_this());
}

bool ReactorConn::TryFlushLocked() {
  while (out_start_ < outbox_.size()) {
    Result<size_t> sent = SendSome(
        socket_, std::string_view(outbox_.data() + out_start_, outbox_.size() - out_start_));
    if (!sent.ok()) {
      write_error_ = true;
      return false;
    }
    if (*sent == 0) return false;  // Kernel buffer full — wait for EPOLLOUT.
    out_start_ += *sent;
    total_flushed_ += *sent;
    reactor_->pending_out_bytes_.fetch_sub(static_cast<int64_t>(*sent),
                                           std::memory_order_acq_rel);
  }
  outbox_.clear();
  out_start_ = 0;
  return true;
}

void ReactorConn::Kill() {
  // Only mark and wake: the reactor thread alone releases the fd, so a
  // worker's Kill can never race a close into a recycled descriptor.
  if (alive.exchange(false, std::memory_order_acq_rel)) {
    reactor_->RequestFlush(shared_from_this());
  }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

Reactor::Reactor(ReactorHandler* handler, ReactorOptions options)
    : handler_(handler), options_(std::move(options)) {}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status Reactor::Init(int listener_fd) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  listener_fd_ = listener_fd;
  const int flags = ::fcntl(listener_fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(listener_fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(listener O_NONBLOCK)");
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(ADD wakeup)");
  }
  ev.data.fd = listener_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_fd_, &ev) != 0) {
    return Errno("epoll_ctl(ADD listener)");
  }
  listener_registered_ = true;
  return Status::OK();
}

void Reactor::Run() {
  constexpr int kMaxEvents = 256;
  std::vector<epoll_event> events(kMaxEvents);
  Deadline next_tick = Deadline::AfterMillis(options_.tick_ms);

  while (!stop_.load(std::memory_order_acquire)) {
    if (stop_accepting_.load(std::memory_order_acquire) && listener_registered_) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_fd_, nullptr);
      listener_registered_ = false;
    }

    // Connections still owed an edge-mode read pass must not wait for the
    // next kernel event (none may come — the edge already fired): poll
    // without blocking until the backlog clears.
    const int64_t wait_ms =
        pending_reads_.empty()
            ? std::min<int64_t>(options_.tick_ms, next_tick.remaining_millis())
            : 0;
    const int n = ::epoll_wait(epoll_fd_, events.data(), kMaxEvents,
                               static_cast<int>(wait_ms));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // The epoll set itself failed; nothing recoverable remains.
    }

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        uint64_t count = 0;
        while (::read(wake_fd_, &count, sizeof(count)) > 0) {
        }
        continue;
      }
      if (fd == listener_fd_) {
        HandleAccept();
        continue;
      }
      // Look the connection up by fd: an event for a connection closed
      // earlier in this same batch simply misses (its fd is still held
      // open in deferred_close_, so the kernel cannot have recycled it
      // into a new connection yet).
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<ReactorConn> conn = it->second;
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) HandleReadable(conn);
      if ((ev & EPOLLOUT) && !conn->closed_) HandleWritable(conn);
    }

    DrainWakeups();

    // Service the edge-mode read backlog: one more budgeted pass per
    // connection per loop iteration, interleaved with fresh events so a
    // drain-until-EAGAIN on one firehose cannot starve the others.
    if (!pending_reads_.empty()) {
      std::vector<std::shared_ptr<ReactorConn>> again;
      again.swap(pending_reads_);
      for (const auto& conn : again) {
        conn->read_pending_ = false;
        if (!conn->closed_) HandleReadable(conn);
      }
    }

    if (next_tick.expired()) {
      HandleTick();
      next_tick = Deadline::AfterMillis(options_.tick_ms);
    }

    deferred_close_.clear();  // Now the batch is over, released fds may close.
  }

  // Shutdown: every remaining connection leaves through the same door.
  std::vector<std::shared_ptr<ReactorConn>> remaining;
  remaining.reserve(conns_.size());
  for (auto& entry : conns_) remaining.push_back(entry.second);
  for (auto& conn : remaining) CloseConn(conn, CloseReason::kServerStop);
  deferred_close_.clear();
}

void Reactor::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void Reactor::StopAccepting() {
  stop_accepting_.store(true, std::memory_order_release);
  Wake();
}

void Reactor::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::RequestFlush(std::shared_ptr<ReactorConn> conn) {
  {
    std::lock_guard<std::mutex> lock(wakeup_mu_);
    flush_queue_.push_back(std::move(conn));
  }
  Wake();
}

void Reactor::DrainWakeups() {
  std::vector<std::shared_ptr<ReactorConn>> pending;
  {
    std::lock_guard<std::mutex> lock(wakeup_mu_);
    pending.swap(flush_queue_);
  }
  for (const auto& conn : pending) {
    {
      std::lock_guard<std::mutex> lock(conn->out_mu_);
      conn->flush_requested_ = false;
      if (!conn->closed_) conn->TryFlushLocked();
    }
    if (!conn->closed_) UpdateWriteInterest(conn);
  }
}

void Reactor::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listener_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN: backlog dry. Other errors: wait for the next event.
    }
    Socket socket(fd);
    if (stop_accepting_.load(std::memory_order_acquire)) continue;  // Drop it.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      (void)SetSendBufferBytes(socket, options_.sndbuf_bytes);
    }

    auto conn =
        std::make_shared<ReactorConn>(std::move(socket), this, options_, &buffer_pool_);
    if (options_.idle_timeout_ms > 0) {
      conn->idle_ = Deadline::AfterMillis(options_.idle_timeout_ms);
    }

    epoll_event ev{};
    ev.events = EPOLLIN;
    if (options_.edge_triggered) ev.events |= EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) continue;  // Dtor closes.
    conns_.emplace(fd, std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void Reactor::HandleReadable(const std::shared_ptr<ReactorConn>& conn) {
  if (conn->closed_) return;

  // Level mode takes one chunk and relies on epoll re-notification; edge
  // mode must drain until EAGAIN (the kernel will not re-arm) but stops
  // after max_reads_per_event recvs so one firehose connection cannot
  // starve the rest of the set — a budget-exhausted connection is
  // re-queued via pending_reads_.
  const int max_reads =
      options_.edge_triggered ? std::max(1, options_.max_reads_per_event) : 1;
  bool maybe_more = false;
  for (int read_count = 0; read_count < max_reads; ++read_count) {
    char* tail = conn->in_.ReserveTail(options_.read_chunk_bytes);
    const ssize_t n =
        ::recv(conn->socket_.fd(), tail, options_.read_chunk_bytes, 0);
    if (n == 0) {
      CloseConn(conn, conn->in_.pending_bytes() > 0 ? CloseReason::kError
                                                    : CloseReason::kEof);
      return;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        maybe_more = false;
        break;
      }
      CloseConn(conn, CloseReason::kError);
      return;
    }
    conn->in_.CommitTail(static_cast<size_t>(n));
    if (conn->in_.overlong()) {
      CloseConn(conn, CloseReason::kOverlongLine);
      return;
    }
    // The budget may expire with bytes still buffered in the kernel; only
    // a short read proves the socket drained at this instant.
    maybe_more = static_cast<size_t>(n) == options_.read_chunk_bytes;

    // Dispatch every complete line this chunk finished: pipelined requests
    // already buffered dispatch without further syscalls.
    std::string_view line;
    while (!conn->closed_ && !conn->close_after_flush_ &&
           conn->alive.load(std::memory_order_acquire) && conn->in_.NextLine(&line)) {
      handler_->OnLine(conn, line);
    }
    if (conn->closed_) return;
    if (conn->close_after_flush_ ||
        !conn->alive.load(std::memory_order_acquire)) {
      maybe_more = false;
      break;
    }
    if (!maybe_more) break;
  }
  if (options_.edge_triggered && maybe_more && !conn->closed_ &&
      !conn->read_pending_) {
    conn->read_pending_ = true;
    pending_reads_.push_back(conn);
  }
  if (!conn->closed_) UpdateWriteInterest(conn);
}

void Reactor::HandleWritable(const std::shared_ptr<ReactorConn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu_);
    conn->TryFlushLocked();
  }
  UpdateWriteInterest(conn);
}

void Reactor::UpdateWriteInterest(const std::shared_ptr<ReactorConn>& conn) {
  if (conn->closed_) return;
  bool error = false;
  bool overflowed = false;
  size_t pending = 0;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu_);
    error = conn->write_error_;
    overflowed = conn->overflowed_;
    pending = conn->PendingLocked();
  }
  if (error) {
    CloseConn(conn, CloseReason::kError);
    return;
  }
  if (overflowed) {
    CloseConn(conn, CloseReason::kWriteTimeout);
    return;
  }
  if (!conn->alive.load(std::memory_order_acquire)) {
    CloseConn(conn, CloseReason::kHandler);
    return;
  }
  const uint32_t base_events =
      options_.edge_triggered ? (EPOLLIN | EPOLLET) : EPOLLIN;
  if (pending == 0) {
    // close_after_flush waits for SeqDrained too: an empty outbox with a
    // response still parked in the sequencer (an HTTP close racing owed
    // pipelined responses) is not yet flushed. SeqDrained is checked
    // outside out_mu_ — seq_mu_ orders before the transport lock.
    if (conn->close_after_flush_ && conn->SeqDrained()) {
      CloseConn(conn, CloseReason::kHandler);
      return;
    }
    if (conn->want_write_) {
      epoll_event ev{};
      ev.events = base_events;
      ev.data.fd = conn->socket_.fd();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->socket_.fd(), &ev);
      conn->want_write_ = false;
    }
  } else if (!conn->want_write_) {
    epoll_event ev{};
    ev.events = base_events | EPOLLOUT;
    ev.data.fd = conn->socket_.fd();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->socket_.fd(), &ev);
    conn->want_write_ = true;
  }
}

void Reactor::HandleTick() {
  std::vector<std::shared_ptr<ReactorConn>> snapshot;
  snapshot.reserve(conns_.size());
  for (auto& entry : conns_) snapshot.push_back(entry.second);

  for (const auto& conn : snapshot) {
    if (conn->closed_) continue;

    const uint64_t bytes = conn->in_.total_bytes();
    const bool quiet = bytes == conn->quiet_bytes_mark_;
    conn->quiet_bytes_mark_ = bytes;
    if (quiet) {
      handler_->OnQuietTick(conn);
      if (conn->closed_) continue;
    }

    size_t pending = 0;
    uint64_t flushed = 0;
    bool overflowed = false;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu_);
      pending = conn->PendingLocked();
      flushed = conn->total_flushed_;
      overflowed = conn->overflowed_;
    }
    if (overflowed) {
      CloseConn(conn, CloseReason::kWriteTimeout);
      continue;
    }

    // Write-stall detection: pending output that makes no flush progress
    // across write_timeout_ms means the peer stopped reading. Progress is
    // measured by ever-flushed bytes, so a trickling reader that still
    // absorbs data keeps its connection.
    if (pending == 0) {
      conn->write_stall_ = Deadline::Infinite();
    } else if (options_.write_timeout_ms > 0) {
      if (conn->write_stall_.infinite() || flushed != conn->write_stall_mark_) {
        conn->write_stall_mark_ = flushed;
        conn->write_stall_ = Deadline::AfterMillis(options_.write_timeout_ms);
      } else if (conn->write_stall_.expired()) {
        CloseConn(conn, CloseReason::kWriteTimeout);
        continue;
      }
    }

    // Idle eviction mirrors the legacy reaper: byte movement (not complete
    // requests) resets the clock, and a connection still owed a response
    // (inflight > 0 or unflushed output) is busy, not idle.
    if (options_.idle_timeout_ms > 0) {
      if (bytes != conn->idle_bytes_mark_) {
        conn->idle_bytes_mark_ = bytes;
        conn->idle_ = Deadline::AfterMillis(options_.idle_timeout_ms);
      } else if (conn->idle_.expired() &&
                 conn->inflight.load(std::memory_order_acquire) == 0 &&
                 pending == 0) {
        CloseConn(conn, CloseReason::kIdle);
        continue;
      }
    }

    UpdateWriteInterest(conn);  // A quiet-tick HTTP response may be pending.
  }
}

void Reactor::CloseConn(const std::shared_ptr<ReactorConn>& conn, CloseReason reason) {
  if (conn->closed_) return;
  conn->closed_ = true;
  {
    // Flip alive under out_mu_ so no Enqueue can add bytes after the
    // pending-out accounting settles below.
    std::lock_guard<std::mutex> lock(conn->out_mu_);
    conn->alive.store(false, std::memory_order_release);
    pending_out_bytes_.fetch_sub(static_cast<int64_t>(conn->PendingLocked()),
                                 std::memory_order_acq_rel);
    conn->outbox_.clear();
    conn->out_start_ = 0;
  }
  handler_->OnClose(conn, reason);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->socket_.fd(), nullptr);
  conn->socket_.Shutdown();
  conns_.erase(conn->socket_.fd());
  active_connections_.fetch_sub(1, std::memory_order_acq_rel);
  // The fd itself closes when the last reference drops — after this batch
  // at the earliest (deferred_close_), later if a worker still owes the
  // connection a (now dropped) response.
  deferred_close_.push_back(conn);
}

}  // namespace serve
}  // namespace microbrowse
