// Copyright 2026 The Microbrowse Authors
//
// The request-handling core of mbserved, decoupled from sockets so tests
// and the serve_bench load generator can drive it in-process. One
// HandleLine call maps one request line to one response line; the method
// is fully thread-safe and lock-free on the hot path apart from one
// cache-shard lock and one context-pool pop/push.
//
// Scoring reuses per-worker evaluation contexts: the pairwise extractor
// interns unseen features into mutable registries, so each borrowed
// context carries its own copies seeded from the bundle's registries
// (rebuilt lazily when the bundle generation moves or growth exceeds a
// bound). Results are memoised in sharded LRU caches keyed by
// generation + snippet content hash — ad serving re-scores the same
// creatives constantly, and a warm hit skips tokenization, n-gram
// extraction and rewrite matching entirely.

#ifndef MICROBROWSE_SERVE_SERVICE_H_
#define MICROBROWSE_SERVE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include <atomic>

#include "ml/feature_registry.h"
#include "serve/bundle.h"
#include "serve/health.h"
#include "serve/lru_cache.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

namespace microbrowse {
namespace serve {

/// Service configuration.
struct ServiceOptions {
  /// Total cached entries per cache (pair margins and pointwise scores are
  /// cached separately). 0 disables caching.
  size_t cache_capacity = 1 << 16;
  size_t cache_shards = 16;
  /// Honour {"type":"debug_sleep","ms":N} requests — a test/bench hook for
  /// making worker occupancy deterministic. Never enable in production.
  bool allow_debug_sleep = false;
  /// Registry the serve metrics live in. mbserved passes
  /// &MetricRegistry::Global() so /metricsz also exports pipeline-stage
  /// counters; nullptr gives the service a private registry, which keeps
  /// counters isolated between tests sharing a process.
  MetricRegistry* registry = nullptr;
};

class ScoringService {
 public:
  /// `registry` must outlive the service and have a loaded bundle before
  /// the first scoring request.
  ScoringService(BundleRegistry* registry, ServiceOptions options = {});

  /// Handles one request line, returning the response line (no trailing
  /// newline). Never throws; every failure is an {"ok":false,...} response.
  std::string HandleLine(std::string_view line);

  /// Allocation-free variant for the serving hot path: parses into a
  /// per-thread scratch Request (arena-backed) and builds the response into
  /// `*response` (cleared first), so a warm worker thread handles a cached
  /// request with zero heap allocations. Byte-identical output to
  /// HandleLine.
  void HandleLineTo(std::string_view line, std::string* response);

  /// Attaches the server's drain-state bits so healthz/readyz can report
  /// "draining". Called by Server::Start; tests driving the service
  /// in-process may leave it unset (the service then reports serving or
  /// degraded purely from bundle state). `health` must outlive the
  /// service's last HandleLine call; nullptr detaches.
  void AttachHealth(const HealthState* health) {
    health_.store(health, std::memory_order_release);
  }

  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }
  /// The registry the serve metrics live in (options.registry, or the
  /// service-private one when that was null).
  MetricRegistry& metric_registry() { return *metric_registry_; }
  /// Prometheus text exposition of every metric in the registry; what the
  /// metricsz endpoint (and mbserved's HTTP GET /metricsz) serves.
  std::string RenderMetricsText() const { return metric_registry_->RenderPrometheusText(); }
  CacheStats pair_cache_stats() const { return pair_cache_.Stats(); }
  CacheStats point_cache_stats() const { return point_cache_.Stats(); }

 private:
  /// Mutable registries for the pairwise extractor, seeded from one bundle
  /// generation.
  struct EvalContext {
    uint64_t generation = 0;
    FeatureRegistry t_registry;
    FeatureRegistry p_registry;
    size_t base_t_size = 0;
    size_t base_p_size = 0;
  };

  std::unique_ptr<EvalContext> BorrowContext(const ModelBundle& bundle);
  void ReturnContext(std::unique_ptr<EvalContext> context);

  void Dispatch(const Request& request, Endpoint endpoint, JsonWriter& response,
                bool* ok);
  Status HandleScorePair(const Request& request, JsonWriter& response);
  Status HandlePredictCtr(const Request& request, JsonWriter& response);
  Status HandleExamine(const Request& request, JsonWriter& response);
  Status HandleReload(const Request& request, JsonWriter& response);
  Status HandleStatsz(JsonWriter& response);
  Status HandleMetricsz(JsonWriter& response);
  Status HandleHealthz(JsonWriter& response);
  Status HandleReadyz(JsonWriter& response);
  bool draining() const {
    const HealthState* health = health_.load(std::memory_order_acquire);
    return health != nullptr && health->draining.load(std::memory_order_acquire);
  }

  BundleRegistry* registry_;
  std::atomic<const HealthState*> health_{nullptr};
  ServiceOptions options_;
  /// Present only when options.registry was null; declared before the
  /// metric handles below so it outlives them during destruction.
  std::unique_ptr<MetricRegistry> owned_registry_;
  MetricRegistry* metric_registry_;
  ServerMetrics metrics_;
  Counter* reload_success_;
  Counter* reload_failure_;
  ShardedLruCache<double> pair_cache_;
  ShardedLruCache<double> point_cache_;

  std::mutex context_mu_;
  std::vector<std::unique_ptr<EvalContext>> free_contexts_;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_SERVICE_H_
