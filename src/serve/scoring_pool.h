// Copyright 2026 The Microbrowse Authors
//
// The work-stealing scoring scheduler (DESIGN.md §17). Each worker owns a
// bounded deque of pending requests; Submit routes round-robin to spread
// intake, workers drain their own deque from the front in batches, and an
// idle worker steals the older half of a randomly-ordered victim's deque
// before sleeping. Compared to the single-mutex FIFO queue this replaces,
// a saturated server contends on a per-worker mutex instead of one global
// one, and the common case (worker pops its own deque) never touches
// another worker's lock.
//
// Scheduling policy lives here; request policy does not: the server's
// batch handler still performs the deadline check, scoring, response
// sequencing and drain accounting, so admission/refusal semantics are
// identical between schedulers. Stop() drains every queued task through
// the handler (mirroring ThreadPool::Wait), which is what keeps the chaos
// soak's exact request accounting invariant true under work stealing.

#ifndef MICROBROWSE_SERVE_SCORING_POOL_H_
#define MICROBROWSE_SERVE_SCORING_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "serve/conn.h"

namespace microbrowse {
namespace serve {

/// One admitted request: the connection it came from, the raw line, the
/// queue-wait budget and the connection-order response slot.
struct ScoringTask {
  std::shared_ptr<Conn> connection;
  std::string line;
  Deadline deadline;
  uint64_t seq = 0;
};

class ScoringPool {
 public:
  struct Options {
    int num_workers = 4;
    /// Total queued tasks across all deques; Submit refuses beyond it (the
    /// same admission bound as the FIFO queue's max_queue).
    size_t max_queue = 1024;
    /// Upper bound on tasks a worker takes per drain.
    size_t max_batch = 32;
    /// Optional metric hooks (may be nullptr).
    ShardedHistogram* batch_size = nullptr;
    Counter* steal_count = nullptr;
  };

  /// `handler` is invoked on worker threads with a non-empty batch; it owns
  /// deadline checks, scoring and per-task accounting. It must not call
  /// back into this pool.
  using BatchHandler = std::function<void(std::vector<ScoringTask>&)>;

  ScoringPool(Options options, BatchHandler handler);
  ~ScoringPool();

  ScoringPool(const ScoringPool&) = delete;
  ScoringPool& operator=(const ScoringPool&) = delete;

  /// Queues one task. Returns false (without queueing) when the pool is at
  /// max_queue or stopping — the caller refuses the request. The line is
  /// copied into a pooled buffer; steady-state submission allocates
  /// nothing.
  bool Submit(const std::shared_ptr<Conn>& connection, std::string_view line,
              Deadline deadline, uint64_t seq);

  /// Stops intake, drains every queued task through the handler and joins
  /// the workers. Idempotent; called by the destructor if needed.
  void Stop();

  /// Tasks currently queued (not yet claimed by a worker). Test hook.
  size_t queued() const { return queued_total_.load(std::memory_order_acquire); }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<ScoringTask> deque;
    /// Retired line buffers, reused by Submit via the free-list below.
    std::vector<std::string> spare_lines;
  };

  void WorkerLoop(int index);
  /// Pops up to max_batch tasks from the front of `worker`'s own deque.
  void PopOwn(Worker& worker, std::vector<ScoringTask>* batch);
  /// Steals the older half of one victim's deque (victims visited in a
  /// per-worker randomized rotation) into `batch`, up to max_batch.
  bool StealInto(int thief, std::vector<ScoringTask>* batch);

  Options options_;
  BatchHandler handler_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<size_t> queued_total_{0};
  std::atomic<uint64_t> next_intake_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::mutex cv_mu_;
  std::condition_variable work_cv_;
  std::atomic<int> sleepers_{0};
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_SCORING_POOL_H_
