// Copyright 2026 The Microbrowse Authors

#include "serve/client.h"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace microbrowse {
namespace serve {

namespace {

/// Splices "deadline_ms":N into a finished JSON object line. The protocol
/// is flat JSON, so the last '}' always closes the object itself.
std::string WithDeadline(const std::string& line, int64_t deadline_ms) {
  if (deadline_ms <= 0 || line.find("\"deadline_ms\"") != std::string::npos) {
    return line;
  }
  const size_t close = line.rfind('}');
  if (close == std::string::npos) return line;
  const bool empty_object = line.find_first_not_of(" \t", line.find('{') + 1) == close;
  std::string out = line.substr(0, close);
  if (!empty_object) out += ',';
  out += "\"deadline_ms\":" + std::to_string(deadline_ms) + "}";
  out += line.substr(close + 1);
  return out;
}

int64_t ParseInt64(std::string_view text, int64_t fallback) {
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return fallback;
  return value;
}

}  // namespace

RetryOptions DefaultServeRetry() {
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 50;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_ms = 2000;
  retry.jitter = 1.0;
  return retry;
}

ResilientClient::ResilientClient(ClientOptions options) : options_(std::move(options)) {
  if (options_.retry.max_attempts < 1) options_.retry.max_attempts = 1;
}

Result<ClientOptions> ResilientClient::ParseTarget(const std::string& spec) {
  ClientOptions options;
  std::string port_text = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) options.host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  const int64_t port = ParseInt64(port_text, -1);
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("expected host:port, got '" + spec + "'");
  }
  options.port = static_cast<uint16_t>(port);
  return options;
}

Status ResilientClient::EnsureConnected() {
  if (socket_ != nullptr) return Status::OK();
  auto socket = TcpConnect(options_.host, options_.port);
  if (!socket.ok()) return socket.status();
  socket_ = std::make_unique<Socket>(std::move(*socket));
  if (options_.recv_timeout_ms > 0) {
    if (const Status status = SetRecvTimeoutMs(*socket_, options_.recv_timeout_ms);
        !status.ok()) {
      socket_.reset();
      return status;
    }
  }
  reader_ = std::make_unique<LineReader>(*socket_);
  if (ever_connected_) stats_.reconnects++;
  ever_connected_ = true;
  return Status::OK();
}

void ResilientClient::Disconnect() {
  reader_.reset();
  socket_.reset();
}

Result<Request> ResilientClient::RoundTripOnce(const std::string& line) {
  if (const Status status = EnsureConnected(); !status.ok()) return status;
  if (const Status status = SendAll(*socket_, line + "\n"); !status.ok()) {
    Disconnect();
    return status;
  }
  std::string response_line;
  auto got = reader_->ReadLine(&response_line);
  if (!got.ok()) {
    // Either the connection broke (kIOError — retryable) or the receive
    // timeout fired (kDeadlineExceeded). A timed-out response may still be
    // in flight, so the connection cannot be reused either way.
    Disconnect();
    return got.status();
  }
  if (!*got) {
    Disconnect();
    return Status::IOError("server closed the connection");
  }
  auto response = ParseRequest(response_line);
  if (!response.ok()) return response.status();
  if (response->Get("ok") == "true") return response;
  // The connection survives a refusal; only the request was rejected.
  const std::string error(response->Get("error", "(no detail)"));
  if (error == "overloaded" || error == "draining") {
    last_retry_after_ms_ = ParseInt64(response->Get("retry_after_ms"), 0);
    return Status::Unavailable("server refused: " + error);
  }
  if (error == "deadline_exceeded") {
    return Status::DeadlineExceeded("server refused: deadline_exceeded");
  }
  return Status::Internal("server error: " + error);
}

Result<Request> ResilientClient::Call(const std::string& request_line) {
  const std::string line = WithDeadline(request_line, options_.deadline_ms);
  Result<Request> result = Status::Internal("unreachable");
  for (int attempt = 1;; ++attempt) {
    stats_.attempts++;
    last_retry_after_ms_ = 0;
    result = RoundTripOnce(line);
    if (result.ok() || !IsTransient(result.status()) ||
        attempt >= options_.retry.max_attempts) {
      break;
    }
    // Back off before the retry; a server-provided retry_after_ms floors
    // the jittered delay (retrying sooner than the server asked is wasted
    // work on both sides).
    int64_t delay_ms = JitteredBackoffDelayMs(options_.retry, attempt);
    if (last_retry_after_ms_ > delay_ms) delay_ms = last_retry_after_ms_;
    stats_.retries++;
    if (delay_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return result;
}

Result<double> ResilientClient::ScorePair(const std::string& a, const std::string& b) {
  JsonWriter request;
  request.String("type", "score_pair").String("a", a).String("b", b);
  auto response = Call(request.Finish());
  if (!response.ok()) return response.status();
  const std::string margin_text(response->Get("margin"));
  char* end = nullptr;
  const double margin = std::strtod(margin_text.c_str(), &end);
  if (margin_text.empty() || end != margin_text.c_str() + margin_text.size()) {
    return Status::Internal("server response has no parsable margin");
  }
  return margin;
}

Status ResilientClient::Ping() {
  auto response = Call(R"({"type":"ping"})");
  return response.ok() ? Status::OK() : response.status();
}

}  // namespace serve
}  // namespace microbrowse
