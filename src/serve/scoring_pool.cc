// Copyright 2026 The Microbrowse Authors

#include "serve/scoring_pool.h"

#include <algorithm>
#include <chrono>
#include <random>

namespace microbrowse {
namespace serve {

namespace {
/// Per-worker retired-line-buffer pool bounds (the BufferPool idiom):
/// bounded count, and oversized buffers are freed rather than pooled.
constexpr size_t kMaxSpareLines = 64;
constexpr size_t kMaxSpareLineBytes = 64 * 1024;
}  // namespace

ScoringPool::ScoringPool(Options options, BatchHandler handler)
    : options_(options), handler_(std::move(handler)) {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ScoringPool::~ScoringPool() { Stop(); }

bool ScoringPool::Submit(const std::shared_ptr<Conn>& connection,
                         std::string_view line, Deadline deadline, uint64_t seq) {
  if (stopping_.load(std::memory_order_acquire)) return false;
  // Reserve a slot under the global bound first; the per-deque caps below
  // only shape placement, never admission.
  if (queued_total_.fetch_add(1, std::memory_order_acq_rel) >= options_.max_queue) {
    queued_total_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  const int num_workers = static_cast<int>(workers_.size());
  const size_t per_worker_cap =
      (options_.max_queue + num_workers - 1) / num_workers;
  const int start = static_cast<int>(next_intake_.fetch_add(1, std::memory_order_relaxed) %
                                     static_cast<uint64_t>(num_workers));
  for (int attempt = 0; attempt <= num_workers; ++attempt) {
    const int index = (start + attempt) % num_workers;
    Worker& worker = *workers_[index];
    std::lock_guard<std::mutex> lock(worker.mu);
    // The last attempt forces placement at the round-robin target: the
    // global reservation already succeeded, so the task must land somewhere
    // even if a racing burst filled every deque past its shaping cap.
    if (attempt < num_workers && worker.deque.size() >= per_worker_cap) continue;
    ScoringTask task;
    task.connection = connection;
    if (!worker.spare_lines.empty()) {
      task.line = std::move(worker.spare_lines.back());
      worker.spare_lines.pop_back();
    }
    task.line.assign(line);
    task.deadline = deadline;
    task.seq = seq;
    worker.deque.push_back(std::move(task));
    break;
  }
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    // Pair the notify with cv_mu_ so a worker between its queue check and
    // its wait cannot miss this task (the timed wait is only a backstop).
    std::lock_guard<std::mutex> lock(cv_mu_);
    work_cv_.notify_one();
  }
  return true;
}

void ScoringPool::PopOwn(Worker& worker, std::vector<ScoringTask>* batch) {
  std::lock_guard<std::mutex> lock(worker.mu);
  const size_t take = std::min(worker.deque.size(), options_.max_batch);
  for (size_t i = 0; i < take; ++i) {
    batch->push_back(std::move(worker.deque.front()));
    worker.deque.pop_front();
  }
  if (take > 0) queued_total_.fetch_sub(take, std::memory_order_acq_rel);
}

bool ScoringPool::StealInto(int thief, std::vector<ScoringTask>* batch) {
  const int num_workers = static_cast<int>(workers_.size());
  if (num_workers <= 1) return false;
  // Randomized victim rotation: thieves starting at different points avoids
  // every idle worker hammering worker 0's lock.
  thread_local std::minstd_rand rng(std::random_device{}());
  const int start = static_cast<int>(rng() % static_cast<unsigned>(num_workers));
  for (int k = 0; k < num_workers; ++k) {
    const int index = (start + k) % num_workers;
    if (index == thief) continue;
    Worker& victim = *workers_[index];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.deque.empty()) continue;
    // Steal the older half from the front — those tasks waited longest and
    // are closest to their deadlines.
    const size_t half = (victim.deque.size() + 1) / 2;
    const size_t take = std::min(half, options_.max_batch);
    for (size_t i = 0; i < take; ++i) {
      batch->push_back(std::move(victim.deque.front()));
      victim.deque.pop_front();
    }
    queued_total_.fetch_sub(take, std::memory_order_acq_rel);
    if (options_.steal_count != nullptr) {
      options_.steal_count->Increment(static_cast<int64_t>(take));
    }
    return true;
  }
  return false;
}

void ScoringPool::WorkerLoop(int index) {
  Worker& self = *workers_[index];
  // Pooled batch vector: capacity is retained across drains, so a warm
  // worker's claim-score-respond cycle performs no vector allocations.
  std::vector<ScoringTask> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    batch.clear();
    PopOwn(self, &batch);
    if (batch.empty()) StealInto(index, &batch);
    if (batch.empty()) {
      if (stopping_.load(std::memory_order_acquire) &&
          queued_total_.load(std::memory_order_acquire) == 0) {
        return;
      }
      std::unique_lock<std::mutex> lock(cv_mu_);
      sleepers_.fetch_add(1, std::memory_order_acq_rel);
      work_cv_.wait_for(lock, std::chrono::milliseconds(5));
      sleepers_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (options_.batch_size != nullptr) {
      options_.batch_size->Record(static_cast<double>(batch.size()));
    }
    handler_(batch);
    // Retire the line buffers for reuse by future Submits to this worker.
    std::lock_guard<std::mutex> lock(self.mu);
    for (ScoringTask& task : batch) {
      if (self.spare_lines.size() >= kMaxSpareLines) break;
      if (task.line.capacity() > kMaxSpareLineBytes) continue;
      task.line.clear();
      self.spare_lines.push_back(std::move(task.line));
    }
  }
}

void ScoringPool::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    work_cv_.notify_all();
  }
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  // Belt and braces: a Submit racing Stop could in principle land a task
  // after the workers' final sweep. Drain any stragglers inline so every
  // admitted request is always answered (the drain accounting invariant).
  std::vector<ScoringTask> leftovers;
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    while (!worker->deque.empty()) {
      leftovers.push_back(std::move(worker->deque.front()));
      worker->deque.pop_front();
    }
  }
  if (!leftovers.empty()) {
    queued_total_.fetch_sub(leftovers.size(), std::memory_order_acq_rel);
    handler_(leftovers);
  }
}

}  // namespace serve
}  // namespace microbrowse
