// Copyright 2026 The Microbrowse Authors
//
// The connection contract between the server's request queue / worker pool
// and whichever I/O core owns the transport. Both serving cores — the
// epoll reactor (serve/reactor.h) and the legacy thread-per-connection
// path (serve/server.cc) — hand the workers a Conn; the workers neither
// know nor care whether a Write lands in a reactor outbox flushed on
// EPOLLOUT or a bounded blocking send on a dedicated reader's socket.
//
// Lifetime: connections are shared_ptr-owned. The I/O core drops its
// reference when the peer disconnects or is evicted; queued requests keep
// theirs until answered, so a worker can always Write (the write is
// silently dropped once `alive` is false — the response's requests were
// already accounted in the serve metrics at HandleLine time, which is what
// keeps the chaos accounting invariant exact across disconnects).
//
// Ordering: every response-bearing line read from a connection is stamped
// with a sequence number (AssignSeq) on the intake thread, in read order.
// Workers deliver through WriteSeq, which writes a response the moment it
// is next in line and holds early completions until their predecessors
// land — so pipelined responses always flush in request order even when
// the work-stealing pool finishes them out of order (DESIGN.md §17).

#ifndef MICROBROWSE_SERVE_CONN_H_
#define MICROBROWSE_SERVE_CONN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace microbrowse {
namespace serve {

/// One live client connection as seen by the request queue and workers.
class Conn {
 public:
  virtual ~Conn() = default;

  /// Queues or sends one protocol response line; the '\n' terminator is
  /// appended by the transport. Never blocks unboundedly: the reactor
  /// enqueues and flushes on write-readiness, the legacy path sends under
  /// a wall-clock bound and evicts on expiry. Dropped once !alive.
  virtual void Write(std::string_view response_line) = 0;

  /// Queues or sends raw bytes verbatim (the plain-HTTP fast path, where
  /// the payload carries its own framing).
  virtual void WriteRaw(std::string_view bytes) = 0;

  /// Marks the connection dead and wakes/shuts the transport so its
  /// resources are reclaimed. Safe from any thread; idempotent.
  virtual void Kill() = 0;

  /// False once the peer disconnected or the connection was evicted;
  /// writes after that are dropped.
  std::atomic<bool> alive{true};

  /// Requests from this connection currently queued or executing — bounds
  /// per-connection pipelining and defers idle eviction while a response
  /// is still owed.
  std::atomic<int64_t> inflight{0};

  /// Stamps the next response slot. Called only on the intake thread (the
  /// reactor thread or the legacy per-connection reader), once per line
  /// that will produce a response, in read order.
  uint64_t AssignSeq() { return next_seq_assign_.fetch_add(1, std::memory_order_acq_rel); }

  /// Delivers the response for slot `seq`: written through immediately when
  /// every earlier slot has been written, held (copied) otherwise and
  /// flushed the moment its predecessors land. `raw` responses bypass line
  /// framing (plain-HTTP payloads). Safe from any thread.
  void WriteSeq(uint64_t seq, std::string_view payload, bool raw = false) {
    std::lock_guard<std::mutex> lock(seq_mu_);
    if (seq != next_flush_) {
      // Early completion: park a copy, reusing a retired buffer when one is
      // available so steady-state holds allocate nothing.
      HeldResponse held;
      if (!spare_payloads_.empty()) {
        held.payload = std::move(spare_payloads_.back());
        spare_payloads_.pop_back();
      }
      held.seq = seq;
      held.raw = raw;
      held.payload.assign(payload);
      held_.push_back(std::move(held));
      return;
    }
    Deliver(payload, raw);
    ++next_flush_;
    // Release any parked successors that are now in line.
    bool progressed = true;
    while (progressed && !held_.empty()) {
      progressed = false;
      for (size_t i = 0; i < held_.size(); ++i) {
        if (held_[i].seq != next_flush_) continue;
        Deliver(held_[i].payload, held_[i].raw);
        ++next_flush_;
        if (spare_payloads_.size() < kMaxSparePayloads &&
            held_[i].payload.capacity() <= kMaxSparePayloadBytes) {
          held_[i].payload.clear();
          spare_payloads_.push_back(std::move(held_[i].payload));
        }
        held_[i] = std::move(held_.back());
        held_.pop_back();
        progressed = true;
        break;
      }
    }
  }

  /// True when every assigned slot has been written — the transport's
  /// close-after-flush paths wait for this so a trailing HTTP response
  /// cannot outrun still-owed pipelined responses. Safe from any thread.
  bool SeqDrained() {
    std::lock_guard<std::mutex> lock(seq_mu_);
    return next_flush_ == next_seq_assign_.load(std::memory_order_acquire);
  }

 private:
  void Deliver(std::string_view payload, bool raw) {
    // Dead connections still advance the cursor (Write/WriteRaw drop the
    // bytes internally) so SeqDrained converges and successors release.
    if (raw) {
      WriteRaw(payload);
    } else {
      Write(payload);
    }
  }

  struct HeldResponse {
    uint64_t seq = 0;
    bool raw = false;
    std::string payload;
  };
  static constexpr size_t kMaxSparePayloads = 16;
  /// Oversized retired buffers (a parked /metricsz scrape, say) are freed
  /// rather than pooled — the BufferPool capacity-cap idiom.
  static constexpr size_t kMaxSparePayloadBytes = 64 * 1024;

  std::atomic<uint64_t> next_seq_assign_{0};
  /// seq_mu_ guards next_flush_/held_/spare_payloads_ and orders before any
  /// transport lock (ReactorConn::out_mu_, LegacyConn::write_mu) — never
  /// acquire seq_mu_ while holding those.
  std::mutex seq_mu_;
  uint64_t next_flush_ = 0;
  std::vector<HeldResponse> held_;
  std::vector<std::string> spare_payloads_;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_CONN_H_
