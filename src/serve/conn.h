// Copyright 2026 The Microbrowse Authors
//
// The connection contract between the server's request queue / worker pool
// and whichever I/O core owns the transport. Both serving cores — the
// epoll reactor (serve/reactor.h) and the legacy thread-per-connection
// path (serve/server.cc) — hand the workers a Conn; the workers neither
// know nor care whether a Write lands in a reactor outbox flushed on
// EPOLLOUT or a bounded blocking send on a dedicated reader's socket.
//
// Lifetime: connections are shared_ptr-owned. The I/O core drops its
// reference when the peer disconnects or is evicted; queued requests keep
// theirs until answered, so a worker can always Write (the write is
// silently dropped once `alive` is false — the response's requests were
// already accounted in the serve metrics at HandleLine time, which is what
// keeps the chaos accounting invariant exact across disconnects).

#ifndef MICROBROWSE_SERVE_CONN_H_
#define MICROBROWSE_SERVE_CONN_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace microbrowse {
namespace serve {

/// One live client connection as seen by the request queue and workers.
class Conn {
 public:
  virtual ~Conn() = default;

  /// Queues or sends one protocol response line; the '\n' terminator is
  /// appended by the transport. Never blocks unboundedly: the reactor
  /// enqueues and flushes on write-readiness, the legacy path sends under
  /// a wall-clock bound and evicts on expiry. Dropped once !alive.
  virtual void Write(std::string_view response_line) = 0;

  /// Queues or sends raw bytes verbatim (the plain-HTTP fast path, where
  /// the payload carries its own framing).
  virtual void WriteRaw(std::string_view bytes) = 0;

  /// Marks the connection dead and wakes/shuts the transport so its
  /// resources are reclaimed. Safe from any thread; idempotent.
  virtual void Kill() = 0;

  /// False once the peer disconnected or the connection was evicted;
  /// writes after that are dropped.
  std::atomic<bool> alive{true};

  /// Requests from this connection currently queued or executing — bounds
  /// per-connection pipelining and defers idle eviction while a response
  /// is still owed.
  std::atomic<int64_t> inflight{0};
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_CONN_H_
