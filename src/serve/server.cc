// Copyright 2026 The Microbrowse Authors

#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace microbrowse {
namespace serve {

Server::Server(ScoringService* service, ServerOptions options)
    : service_(service), options_(options) {
  if (options_.num_threads < 1) options_.num_threads = 1;
  if (options_.max_batch < 1) options_.max_batch = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
}

Server::~Server() { Stop(); }

Result<uint16_t> Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto listener = TcpListen(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  auto port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = *port;
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(options_.num_threads));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return port_;
}

void Server::Stop() {
  // Serializes concurrent Stop calls; the destructor's call is then a
  // no-op after an explicit one.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!started_ || stopping_.exchange(true)) return;
  // Shutdown wakes an accept(2) blocked on the listener; the fd itself must
  // stay open until the accept thread has joined, or the loop could race
  // the close (and, with fd reuse, accept on an unrelated descriptor).
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Wake every reader blocked in recv, then join them. Taking ownership of
  // connections_ here means a reader exiting concurrently finds itself
  // already removed and leaves its thread handle for us to join via the
  // Connection we hold.
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
    finished.swap(finished_readers_);
  }
  for (const auto& connection : connections) {
    connection->alive.store(false, std::memory_order_relaxed);
    connection->socket.Shutdown();
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  for (std::thread& reader : finished) {
    if (reader.joinable()) reader.join();
  }
  // Drain the worker pool: queued batches still run (their writes fail
  // fast on the shut-down sockets), then the workers exit.
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
}

size_t Server::active_connections() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  return connections_.size();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    ReapFinishedReaders();
    auto accepted = TcpAccept(listener_);
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      // accept() errors are transient from the listener's point of view —
      // a peer that reset before the handshake finished (ECONNABORTED) or
      // fd exhaustion (EMFILE/ENFILE, which clears as connections close).
      // Killing the loop would leave a zombie server that never answers
      // again; log, back off briefly and keep accepting. Only Stop() (via
      // stopping_) ends the loop.
      MB_LOG(kWarning) << "accept failed (retrying): "
                       << accepted.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      connection->socket.Shutdown();
      break;
    }
    connections_.push_back(connection);
    connection->reader = std::thread([this, connection] { ReadLoop(connection); });
  }
}

void Server::ReapFinishedReaders() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    finished.swap(finished_readers_);
  }
  for (std::thread& reader : finished) {
    if (reader.joinable()) reader.join();
  }
}

void Server::ReadLoop(std::shared_ptr<Connection> connection) {
  LineReader reader(connection->socket, options_.max_line_bytes);
  std::string line;
  for (;;) {
    auto got = reader.ReadLine(&line);
    if (!got.ok() || !*got) break;
    if (line.empty()) continue;
    if (StartsWith(line, "GET ")) {
      // Plain-HTTP fast path so `curl http://host:port/metricsz` works
      // without speaking the newline-JSON protocol. One response, then
      // close (HTTP/1.0 semantics).
      HandleHttpGet(*connection, reader, line);
      break;
    }

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < options_.max_queue &&
          !stopping_.load(std::memory_order_relaxed)) {
        queue_.push_back(PendingRequest{connection, line});
        admitted = true;
      }
    }
    if (admitted) {
      pool_->Submit([this] { DrainBatch(); });
      continue;
    }
    // Admission control: reject instead of queueing unboundedly. The
    // response still echoes the id (when parseable) so pipelined clients
    // can account for the shed request.
    service_->metrics().rejected_overload->Increment(1);
    JsonWriter response;
    if (auto request = ParseRequest(line); request.ok() && request->Has("id")) {
      response.String("id", request->Get("id"));
    }
    response.Bool("ok", false).String("error", "overloaded");
    WriteResponse(*connection, response.Finish());
  }
  connection->alive.store(false, std::memory_order_relaxed);
  connection->socket.Shutdown();
  // Reclaim per-connection resources now, not at Stop(): remove the
  // connection from connections_ and leave this thread's own handle on the
  // finished list for AcceptLoop/Stop to join. Queued requests still hold
  // the shared_ptr; the fd closes when the last reference drops. If Stop()
  // already emptied connections_, it owns the join via its snapshot.
  std::lock_guard<std::mutex> lock(connections_mu_);
  auto it = std::find(connections_.begin(), connections_.end(), connection);
  if (it != connections_.end()) {
    finished_readers_.push_back(std::move(connection->reader));
    connections_.erase(it);
  }
}

void Server::DrainBatch() {
  std::vector<PendingRequest> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const size_t take = std::min(options_.max_batch, queue_.size());
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  // An earlier drain task may have taken this task's request already — one
  // task is submitted per enqueue, and each drains up to max_batch.
  if (batch.empty()) return;
  service_->metrics().batch_size->Record(static_cast<double>(batch.size()));
  for (PendingRequest& pending : batch) {
    const std::string response = service_->HandleLine(pending.line);
    WriteResponse(*pending.connection, response);
  }
}

void Server::HandleHttpGet(Connection& connection, LineReader& reader,
                           const std::string& request_line) {
  // "GET <path> HTTP/1.x" — split out the path (strip a trailing '\r'
  // left by the CRLF line ending first).
  std::string path;
  {
    std::string_view view = request_line;
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    const size_t path_begin = view.find(' ');
    const size_t path_end = view.find(' ', path_begin + 1);
    if (path_begin != std::string_view::npos) {
      path = std::string(view.substr(path_begin + 1, path_end == std::string_view::npos
                                                         ? std::string_view::npos
                                                         : path_end - path_begin - 1));
    }
  }
  // Drain the request headers up to the blank line; their content is
  // irrelevant for a metrics scrape.
  std::string header;
  while (true) {
    auto got = reader.ReadLine(&header);
    if (!got.ok() || !*got) break;
    if (header.empty() || header == "\r") break;
  }
  std::string body;
  std::string status_line;
  if (path == "/metricsz" || path == "/metricsz/") {
    status_line = "HTTP/1.0 200 OK";
    body = service_->RenderMetricsText();
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found; try /metricsz\n";
  }
  std::string response = status_line + "\r\n";
  response += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  std::lock_guard<std::mutex> lock(connection.write_mu);
  (void)SendAll(connection.socket, response);
}

void Server::WriteResponse(Connection& connection, const std::string& response) {
  if (!connection.alive.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(connection.write_mu);
  const Status status = SendAll(connection.socket, response + "\n");
  if (!status.ok()) {
    connection.alive.store(false, std::memory_order_relaxed);
    connection.socket.Shutdown();
  }
}

}  // namespace serve
}  // namespace microbrowse
