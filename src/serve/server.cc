// Copyright 2026 The Microbrowse Authors

#include "serve/server.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace microbrowse {
namespace serve {

namespace {

/// Tick cadence for the quiet-connection scans: the reactor's epoll_wait
/// bound, and the receive timeout armed on every legacy socket. The tick
/// bounds how long a silent peer goes unexamined, which is what makes
/// both the idle reaper and Stop() prompt; it must divide the idle
/// timeout a few times over so eviction lands near the configured bound
/// rather than up to a tick late.
int64_t ReadTickMs(int64_t idle_timeout_ms) {
  if (idle_timeout_ms <= 0) return 1000;
  return std::clamp<int64_t>(idle_timeout_ms / 4, 10, 1000);
}

/// Request types still answered while draining: a drain must stay
/// observable (health probes, metric scrapes) right up to the hard stop.
bool ServedDuringDrain(std::string_view type) {
  return type == "healthz" || type == "readyz" || type == "statsz" ||
         type == "metricsz" || type == "ping";
}

/// Per-thread scratch for the server's own parses (deadline extraction,
/// id echo in refusals): the arena-backed Request is reused across
/// requests, so intake-side parsing allocates nothing steady-state.
Request& ScratchRequest() {
  thread_local Request request;
  return request;
}

}  // namespace

Server::Server(ScoringService* service, ServerOptions options)
    : service_(service), options_(options) {
  if (options_.num_threads < 1) options_.num_threads = 1;
  if (options_.max_batch < 1) options_.max_batch = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
}

Server::~Server() {
  Stop();
  // Only now may healthz stop reporting this server's drain state; until
  // the last moment a stopped-but-live server should still look draining
  // to in-process probes.
  service_->AttachHealth(nullptr);
}

Result<uint16_t> Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto listener = TcpListen(options_.port, options_.listen_backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  auto port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = *port;
  health_.retry_after_ms.store(options_.drain_retry_after_ms,
                               std::memory_order_relaxed);
  service_->AttachHealth(&health_);
  if (options_.scheduler == Scheduler::kWorkStealing) {
    ScoringPool::Options pool_options;
    pool_options.num_workers = options_.num_threads;
    pool_options.max_queue = options_.max_queue;
    pool_options.max_batch = options_.max_batch;
    pool_options.batch_size = service_->metrics().batch_size;
    pool_options.steal_count = service_->metrics().steal_count;
    steal_pool_ = std::make_unique<ScoringPool>(
        pool_options,
        [this](std::vector<ScoringTask>& batch) { ProcessBatch(batch); });
  } else {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(options_.num_threads));
  }
  if (options_.io_model == IoModel::kEpoll) {
    ReactorOptions reactor_options;
    reactor_options.tick_ms = ReadTickMs(options_.idle_timeout_ms);
    reactor_options.max_line_bytes = options_.max_line_bytes;
    reactor_options.max_outbox_bytes = options_.max_outbox_bytes;
    reactor_options.write_timeout_ms = options_.write_timeout_ms;
    reactor_options.idle_timeout_ms = options_.idle_timeout_ms;
    reactor_options.sndbuf_bytes = options_.sndbuf_bytes;
    reactor_options.edge_triggered = options_.epoll_mode == EpollMode::kEdge;
    reactor_ = std::make_unique<Reactor>(static_cast<ReactorHandler*>(this),
                                         reactor_options);
    const Status init = reactor_->Init(listener_.fd());
    if (!init.ok()) {
      reactor_.reset();
      return init;
    }
    reactor_thread_ = std::thread([this] { reactor_->Run(); });
  } else {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }
  started_ = true;
  return port_;
}

Status Server::Drain() {
  if (!started_) return Status::FailedPrecondition("server not started");
  int expected = kServing;
  if (!state_.compare_exchange_strong(expected, kDraining,
                                      std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("server is not serving");
  }
  // Flip the health surface first so probes see "draining" before (not
  // after) requests start being refused.
  health_.draining.store(true, std::memory_order_release);
  // Refuse new connections. The reactor stops polling the listener; the
  // shutdown additionally makes in-progress connects fail at the TCP
  // level (and, on the legacy path, wakes the blocking accept). Only shut
  // the listener down — the fd stays open until Stop() has joined the
  // serving threads.
  if (reactor_ != nullptr) reactor_->StopAccepting();
  listener_.Shutdown();
  MB_LOG(kInfo) << "drain started: waiting for "
                << inflight_total_.load(std::memory_order_acquire)
                << " in-flight requests (deadline " << options_.drain_deadline_ms
                << " ms)";
  const Deadline deadline = options_.drain_deadline_ms > 0
                                ? Deadline::AfterMillis(options_.drain_deadline_ms)
                                : Deadline::Infinite();
  bool drained = false;
  for (;;) {
    // A drained server has *delivered* its in-flight answers: on the
    // reactor path a finished request may still sit in a connection
    // outbox, so wait for those bytes to flush too (the legacy path
    // delivers synchronously and always reports zero pending).
    if (inflight_total_.load(std::memory_order_acquire) == 0 &&
        (reactor_ == nullptr || reactor_->pending_out_bytes() == 0)) {
      drained = true;
      break;
    }
    if (deadline.expired()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const int64_t abandoned = inflight_total_.load(std::memory_order_acquire);
  Stop();
  if (!drained) {
    return Status::DeadlineExceeded(
        StrFormat("drain deadline (%lld ms) exceeded; %lld requests abandoned",
                  static_cast<long long>(options_.drain_deadline_ms),
                  static_cast<long long>(abandoned)));
  }
  MB_LOG(kInfo) << "drain complete";
  return Status::OK();
}

void Server::Stop() {
  // Serializes concurrent Stop calls; the destructor's call is then a
  // no-op after an explicit one.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!started_ || state_.exchange(kStopped, std::memory_order_acq_rel) == kStopped) {
    return;
  }
  // Shutdown wakes an accept(2) blocked on the listener; the fd itself must
  // stay open until the serving threads have joined, or the loop could race
  // the close (and, with fd reuse, accept on an unrelated descriptor).
  listener_.Shutdown();
  if (reactor_ != nullptr) {
    reactor_->Stop();
    if (reactor_thread_.joinable()) reactor_thread_.join();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Legacy path: wake every reader blocked in recv, then join them. Taking
  // ownership of connections_ here means a reader exiting concurrently
  // finds itself already removed and leaves its thread handle for us to
  // join via the LegacyConn we hold. (The reactor path keeps both lists
  // empty; its connections were closed when Run() returned.)
  std::vector<std::shared_ptr<LegacyConn>> connections;
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
    finished.swap(finished_readers_);
  }
  for (const auto& connection : connections) {
    connection->alive.store(false, std::memory_order_relaxed);
    connection->socket.Shutdown();
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  for (std::thread& reader : finished) {
    if (reader.joinable()) reader.join();
  }
  // Drain the scheduler: queued work still runs (its writes drop or fail
  // fast on the dead connections), then the workers exit.
  if (steal_pool_ != nullptr) {
    steal_pool_->Stop();
    steal_pool_.reset();
  }
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
  // The workers are gone, so no Conn can reach into the reactor any more;
  // only now may its wakeup plumbing be torn down.
  reactor_.reset();
}

size_t Server::active_connections() {
  if (reactor_ != nullptr) return reactor_->active_connections();
  std::lock_guard<std::mutex> lock(connections_mu_);
  return connections_.size();
}

size_t Server::finished_reader_handles() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  return finished_readers_.size();
}

// ---------------------------------------------------------------------------
// Request path shared by both serving cores
// ---------------------------------------------------------------------------

Deadline Server::RequestDeadline(std::string_view line) const {
  // The substring probe keeps the common case (no per-request deadline)
  // free of a second full parse; requests that do carry the field are
  // parsed once here and once by the service, which is still cheap next
  // to scoring.
  if (line.find("\"deadline_ms\"") != std::string_view::npos) {
    Request& request = ScratchRequest();
    if (ParseRequestInto(line, &request).ok() && request.Has("deadline_ms")) {
      const std::string_view value = request.Get("deadline_ms");
      int64_t ms = 0;
      auto [end, ec] = std::from_chars(value.data(), value.data() + value.size(), ms);
      if (ec == std::errc() && end == value.data() + value.size()) {
        // Non-positive budgets are legal and already expired — the request
        // is answered deadline_exceeded without scoring.
        return Deadline::AfterMillis(ms);
      }
    }
    // Malformed deadline_ms falls through to the server default; the
    // request itself will fail field validation in the service if the
    // whole line is unparsable.
  }
  return options_.default_deadline_ms > 0
             ? Deadline::AfterMillis(options_.default_deadline_ms)
             : Deadline::Infinite();
}

void Server::HandleRequestLine(const std::shared_ptr<Conn>& connection,
                               std::string_view line) {
  const int state = state_.load(std::memory_order_acquire);
  if (state == kStopped) {
    connection->Kill();
    return;
  }
  // Stamp the response slot on the intake thread, in read order: every
  // path below (served, refused, drained) answers exactly once through
  // WriteSeq, which is what keeps pipelined responses in request order.
  const uint64_t seq = connection->AssignSeq();
  if (state == kDraining) {
    HandleLineDuringDrain(*connection, line, seq);
    return;
  }

  const size_t per_connection_cap = options_.max_inflight_per_connection;
  if (per_connection_cap > 0 &&
      connection->inflight.load(std::memory_order_acquire) >=
          static_cast<int64_t>(per_connection_cap)) {
    // One pipelining client may not monopolise the queue; the cap is a
    // per-connection slice of admission control, so it reports as the
    // same "overloaded" refusal as a full queue.
    service_->metrics().rejected_overload->Increment(1);
    WriteRefusal(*connection, line, "overloaded", -1, seq);
    return;
  }

  const Deadline request_deadline = RequestDeadline(line);
  bool admitted = false;
  if (steal_pool_ != nullptr) {
    // Work-stealing path: account the request in flight before Submit so
    // a worker that claims it instantly still decrements a non-zero
    // count; undone below when admission refuses it.
    connection->inflight.fetch_add(1, std::memory_order_acq_rel);
    inflight_total_.fetch_add(1, std::memory_order_acq_rel);
    admitted = steal_pool_->Submit(connection, line, request_deadline, seq);
    if (!admitted) {
      connection->inflight.fetch_sub(1, std::memory_order_acq_rel);
      inflight_total_.fetch_sub(1, std::memory_order_acq_rel);
    }
  } else {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < options_.max_queue &&
        state_.load(std::memory_order_relaxed) == kServing) {
      // The only copy a served request ever takes: framing handed the
      // line as a view into the connection's input buffer, and it must
      // outlive the buffer once queued.
      queue_.push_back(
          PendingRequest{connection, std::string(line), request_deadline, seq});
      connection->inflight.fetch_add(1, std::memory_order_acq_rel);
      inflight_total_.fetch_add(1, std::memory_order_acq_rel);
      admitted = true;
    }
  }
  if (admitted) {
    if (pool_ != nullptr) pool_->Submit([this] { DrainBatch(); });
    return;
  }
  if (state_.load(std::memory_order_acquire) == kDraining) {
    // The drain flipped between the line read and the queue lock.
    HandleLineDuringDrain(*connection, line, seq);
    return;
  }
  // Admission control: reject instead of queueing unboundedly. The
  // response still echoes the id (when parseable) so pipelined clients
  // can account for the shed request.
  service_->metrics().rejected_overload->Increment(1);
  WriteRefusal(*connection, line, "overloaded", -1, seq);
}

void Server::HandleLineDuringDrain(Conn& connection, std::string_view line,
                                   uint64_t seq) {
  Request& request = ScratchRequest();
  const bool parsed = ParseRequestInto(line, &request).ok();
  const std::string_view type = parsed ? request.Get("type") : std::string_view();
  if (ServedDuringDrain(type)) {
    thread_local std::string response;
    service_->HandleLineTo(line, &response);
    connection.WriteSeq(seq, response);
    return;
  }
  service_->metrics().drained->Increment(1);
  WriteRefusal(connection, line, "draining",
               health_.retry_after_ms.load(std::memory_order_relaxed), seq);
}

void Server::WriteRefusal(Conn& connection, std::string_view line,
                          std::string_view error, int64_t retry_after_ms,
                          uint64_t seq) {
  thread_local JsonWriter response;
  response.Reset();
  Request& request = ScratchRequest();
  if (ParseRequestInto(line, &request).ok() && request.Has("id")) {
    response.String("id", request.Get("id"));
  }
  response.Bool("ok", false).String("error", error);
  if (retry_after_ms >= 0) response.Int("retry_after_ms", retry_after_ms);
  thread_local std::string rendered;
  response.FinishTo(&rendered);
  connection.WriteSeq(seq, rendered);
}

void Server::DrainBatch() {
  std::vector<PendingRequest> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const size_t take = std::min(options_.max_batch, queue_.size());
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  // An earlier drain task may have taken this task's request already — one
  // task is submitted per enqueue, and each drains up to max_batch.
  if (batch.empty()) return;
  service_->metrics().batch_size->Record(static_cast<double>(batch.size()));
  for (PendingRequest& pending : batch) {
    // Deadline check sits immediately before scoring: a request whose
    // budget died in the queue is answered without burning a context on
    // it. The deadline covers queue wait, not scoring — a request that
    // starts in time finishes and is delivered.
    if (pending.deadline.expired()) {
      service_->metrics().deadline_exceeded->Increment(1);
      WriteRefusal(*pending.connection, pending.line, "deadline_exceeded", -1,
                   pending.seq);
    } else {
      thread_local std::string response;
      service_->HandleLineTo(pending.line, &response);
      pending.connection->WriteSeq(pending.seq, response);
    }
    // Deliver before the decrements: when inflight_total_ reaches zero
    // during a drain, every admitted response has already been handed to
    // its transport.
    pending.connection->inflight.fetch_sub(1, std::memory_order_acq_rel);
    inflight_total_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Server::ProcessBatch(std::vector<ScoringTask>& batch) {
  // The work-stealing scheduler records batch_size itself; everything else
  // mirrors DrainBatch so the two schedulers answer identically.
  thread_local std::string response;
  for (ScoringTask& task : batch) {
    if (task.deadline.expired()) {
      service_->metrics().deadline_exceeded->Increment(1);
      WriteRefusal(*task.connection, task.line, "deadline_exceeded", -1, task.seq);
    } else {
      service_->HandleLineTo(task.line, &response);
      task.connection->WriteSeq(task.seq, response);
    }
    task.connection->inflight.fetch_sub(1, std::memory_order_acq_rel);
    inflight_total_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

std::string Server::BuildHttpResponse(std::string_view request_line) {
  // "GET <path> HTTP/1.x" — split out the path (strip a trailing '\r'
  // left by the CRLF line ending first).
  std::string path;
  {
    std::string_view view = request_line;
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    const size_t path_begin = view.find(' ');
    const size_t path_end = view.find(' ', path_begin + 1);
    if (path_begin != std::string_view::npos) {
      path = std::string(view.substr(path_begin + 1, path_end == std::string_view::npos
                                                         ? std::string_view::npos
                                                         : path_end - path_begin - 1));
    }
  }
  if (!path.empty() && path.size() > 1 && path.back() == '/') path.pop_back();
  std::string body;
  std::string status_line;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (path == "/metricsz") {
    status_line = "HTTP/1.0 200 OK";
    body = service_->RenderMetricsText();
  } else if (path == "/healthz" || path == "/readyz") {
    // Route through the same service handlers as the protocol endpoints
    // so HTTP probes and protocol probes can never disagree. readyz maps
    // not-ready onto 503 for load balancers that only look at the status.
    const std::string request =
        path == "/healthz" ? R"({"type":"healthz"})" : R"({"type":"readyz"})";
    body = service_->HandleLine(request);
    const bool ready = body.find("\"ok\":true") != std::string::npos;
    status_line = (path == "/healthz" || ready) ? "HTTP/1.0 200 OK"
                                                : "HTTP/1.0 503 Service Unavailable";
    content_type = "application/json";
    body += "\n";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found; try /metricsz, /healthz or /readyz\n";
  }
  std::string response = status_line + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

// ---------------------------------------------------------------------------
// Reactor core (ReactorHandler)
// ---------------------------------------------------------------------------

void Server::OnLine(const std::shared_ptr<ReactorConn>& conn, std::string_view line) {
  if (conn->http_pending) {
    // An HTTP request's header lines; their content is irrelevant for a
    // scrape. The blank line ends them and triggers the response.
    if (line.empty()) FinishHttp(conn);
    return;
  }
  if (line.empty()) return;
  if (StartsWith(line, "GET ")) {
    // Plain-HTTP fast path so `curl http://host:port/metricsz` (and
    // /healthz, /readyz) works without speaking the newline-JSON
    // protocol. One response, then close (HTTP/1.0 semantics). The GET
    // takes a response slot like any other line, so its response cannot
    // outrun still-owed pipelined protocol responses.
    conn->http_pending = true;
    conn->http_seq = conn->AssignSeq();
    conn->http_request_line.assign(line.data(), line.size());
    return;
  }
  HandleRequestLine(conn, line);
}

void Server::FinishHttp(const std::shared_ptr<ReactorConn>& conn) {
  conn->http_pending = false;
  conn->WriteSeq(conn->http_seq, BuildHttpResponse(conn->http_request_line),
                 /*raw=*/true);
  conn->CloseAfterFlush();
}

void Server::OnQuietTick(const std::shared_ptr<ReactorConn>& conn) {
  if (conn->http_pending) {
    // Slow-loris backstop: a GET whose headers never finish is answered
    // after the first quiet tick, matching the legacy receive-timeout
    // behaviour.
    FinishHttp(conn);
  }
}

void Server::OnClose(const std::shared_ptr<ReactorConn>& conn, CloseReason reason) {
  (void)conn;
  switch (reason) {
    case CloseReason::kIdle:
      service_->metrics().idle_evicted->Increment(1);
      break;
    case CloseReason::kWriteTimeout:
      service_->metrics().write_timeout->Increment(1);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Legacy thread-per-connection core
// ---------------------------------------------------------------------------

void Server::LegacyConn::Write(std::string_view response_line) {
  std::string framed;
  framed.reserve(response_line.size() + 1);
  framed.append(response_line);
  framed.push_back('\n');
  SendBounded(framed);
}

void Server::LegacyConn::WriteRaw(std::string_view bytes) { SendBounded(bytes); }

void Server::LegacyConn::SendBounded(std::string_view framed) {
  if (!alive.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(write_mu);
  const Status status =
      SendAllTimed(socket, framed, server->options_.write_timeout_ms);
  if (status.ok()) return;
  if (status.code() == StatusCode::kDeadlineExceeded) {
    // The peer stopped reading: an unbounded send here would pin the
    // calling worker inside write_mu (and every other worker with a
    // response for this connection behind it) indefinitely. Evict.
    server->service_->metrics().write_timeout->Increment(1);
  }
  alive.store(false, std::memory_order_relaxed);
  socket.Shutdown();
}

void Server::LegacyConn::Kill() {
  alive.store(false, std::memory_order_relaxed);
  socket.Shutdown();
}

void Server::AcceptLoop() {
  while (state_.load(std::memory_order_acquire) == kServing) {
    ReapFinishedReaders();
    auto accepted = TcpAccept(listener_);
    if (!accepted.ok()) {
      if (state_.load(std::memory_order_acquire) != kServing) break;
      // accept() errors are transient from the listener's point of view —
      // a peer that reset before the handshake finished (ECONNABORTED) or
      // fd exhaustion (EMFILE/ENFILE, which clears as connections close).
      // Killing the loop would leave a zombie server that never answers
      // again; log, back off briefly and keep accepting. Only Drain/Stop
      // (via the state machine) end the loop.
      MB_LOG(kWarning) << "accept failed (retrying): "
                       << accepted.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    auto connection = std::make_shared<LegacyConn>(this);
    connection->socket = std::move(*accepted);
    if (options_.sndbuf_bytes > 0) {
      (void)SetSendBufferBytes(connection->socket, options_.sndbuf_bytes);
    }
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (state_.load(std::memory_order_acquire) != kServing) {
      connection->socket.Shutdown();
      break;
    }
    connections_.push_back(connection);
    connection->reader = std::thread([this, connection] { ReadLoop(connection); });
  }
}

void Server::ReapFinishedReaders() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    finished.swap(finished_readers_);
  }
  for (std::thread& reader : finished) {
    if (reader.joinable()) reader.join();
  }
}

void Server::ReadLoop(std::shared_ptr<LegacyConn> connection) {
  const int64_t idle_timeout_ms = options_.idle_timeout_ms;
  const int64_t tick_ms = ReadTickMs(idle_timeout_ms);
  // The receive timeout turns a reader parked in recv(2) into a polling
  // loop at tick granularity: each timeout surfaces as kDeadlineExceeded,
  // where we check for shutdown and idleness, then resume. Without it a
  // silent peer would pin this thread in recv until the process exited.
  (void)SetRecvTimeoutMs(connection->socket, tick_ms);
  LineReader reader(connection->socket, options_.max_line_bytes);
  Deadline idle = idle_timeout_ms > 0 ? Deadline::AfterMillis(idle_timeout_ms)
                                      : Deadline::Infinite();
  uint64_t idle_bytes_mark = 0;
  std::string line;
  for (;;) {
    auto got = reader.ReadLine(&line);
    if (!got.ok()) {
      if (got.status().code() != StatusCode::kDeadlineExceeded) break;
      // Tick: no complete line arrived within the receive timeout.
      if (state_.load(std::memory_order_acquire) == kStopped) break;
      if (reader.total_bytes_read() != idle_bytes_mark) {
        // Bytes moved since the last mark — a trickling client is slow,
        // not idle. Partial lines therefore reset the idle clock; only a
        // peer moving *nothing* for the whole timeout is evicted.
        idle_bytes_mark = reader.total_bytes_read();
        idle = idle_timeout_ms > 0 ? Deadline::AfterMillis(idle_timeout_ms)
                                   : Deadline::Infinite();
        continue;
      }
      if (idle.expired() &&
          connection->inflight.load(std::memory_order_acquire) == 0) {
        // Idle past the bound with no response owed: evict. (A client
        // silently awaiting a slow response is waiting, not dead.)
        service_->metrics().idle_evicted->Increment(1);
        break;
      }
      continue;
    }
    if (!*got) break;  // EOF.
    idle_bytes_mark = reader.total_bytes_read();
    idle = idle_timeout_ms > 0 ? Deadline::AfterMillis(idle_timeout_ms)
                               : Deadline::Infinite();
    if (line.empty()) continue;
    if (StartsWith(line, "GET ")) {
      HandleHttpGet(*connection, reader, line, connection->AssignSeq());
      // The HTTP response may be parked behind still-owed pipelined
      // responses; give the workers a bounded window to deliver them (and
      // it) before the shutdown below tears the socket down.
      const int64_t wait_ms =
          options_.write_timeout_ms > 0 ? options_.write_timeout_ms : 5'000;
      const Deadline flush_deadline = Deadline::AfterMillis(wait_ms);
      while (!connection->SeqDrained() &&
             connection->alive.load(std::memory_order_acquire) &&
             !flush_deadline.expired()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      break;
    }
    HandleRequestLine(connection, line);
    if (!connection->alive.load(std::memory_order_acquire)) break;
  }
  connection->alive.store(false, std::memory_order_relaxed);
  connection->socket.Shutdown();
  // Reclaim per-connection resources now, not at Stop(): remove the
  // connection from connections_ and leave this thread's own handle on the
  // finished list — after taking over the handles earlier exits left
  // there, so churn against a quiet listener cannot accumulate unjoined
  // threads (the accept loop only reaps when a *new* connection arrives).
  // Joining happens outside the lock; the swap can never hand this thread
  // its own handle, because that is pushed only after the swap. Queued
  // requests still hold the shared_ptr; the fd closes when the last
  // reference drops. If Stop() already emptied connections_, it owns the
  // join via its snapshot.
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    auto it = std::find(connections_.begin(), connections_.end(), connection);
    if (it != connections_.end()) {
      finished.swap(finished_readers_);
      finished_readers_.push_back(std::move(connection->reader));
      connections_.erase(it);
    }
  }
  for (std::thread& exited : finished) {
    if (exited.joinable()) exited.join();
  }
}

void Server::HandleHttpGet(LegacyConn& connection, LineReader& reader,
                           const std::string& request_line, uint64_t seq) {
  // Drain the request headers up to the blank line; their content is
  // irrelevant for a scrape. (The receive-timeout tick bounds this loop
  // too: a slow-loris that sends "GET / HTTP/1.0" and then dribbles
  // headers forever gets its response after the first quiet tick.)
  std::string header;
  while (true) {
    auto got = reader.ReadLine(&header);
    if (!got.ok() || !*got) break;
    if (header.empty() || header == "\r") break;
  }
  connection.WriteSeq(seq, BuildHttpResponse(request_line), /*raw=*/true);
}

}  // namespace serve
}  // namespace microbrowse
