// Copyright 2026 The Microbrowse Authors
//
// Resilient client for the mbserved line protocol, shared by mbctl's
// --server mode, the resilience tests and the chaos soak harness. One
// request is in flight at a time (responses therefore arrive in order; no
// id matching needed), and every transient failure — connect refusal, a
// dropped connection, an "overloaded" shed or a "draining" refusal — is
// retried with exponential backoff and full jitter, reconnecting as
// needed. A "draining" refusal's retry_after_ms is honoured as the floor
// of the next delay: the server names the earliest useful retry time, and
// hammering a draining server any sooner is wasted work on both sides.
//
// Deterministic failures (a malformed request, a scoring error, a
// deadline_exceeded refusal — the budget is spent; retrying cannot
// unspend it) are returned immediately. Tests inject a seeded Rng via
// ClientOptions::retry.rng to make backoff schedules reproducible.

#ifndef MICROBROWSE_SERVE_CLIENT_H_
#define MICROBROWSE_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/retry.h"
#include "common/socket.h"
#include "serve/protocol.h"

namespace microbrowse {
namespace serve {

/// The serve-path retry schedule: more attempts and longer initial waits
/// than the artifact-write default, and full jitter ON — a fleet of
/// clients bounced by one draining server must not thunder back in
/// lockstep.
RetryOptions DefaultServeRetry();

/// Client configuration.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 7077;
  /// Backoff schedule for transient failures. max_attempts bounds total
  /// tries per Call (including the first).
  RetryOptions retry = DefaultServeRetry();
  /// Attached as "deadline_ms" to every request that does not already
  /// carry the field; 0 sends no deadline. Each retry gets a fresh budget
  /// (the deadline bounds one attempt's queue wait, not the whole Call).
  int64_t deadline_ms = 0;
  /// Client-side bound on waiting for a response; a quiet server surfaces
  /// as kDeadlineExceeded and the connection is re-established on the
  /// next attempt. 0 waits forever.
  int64_t recv_timeout_ms = 10'000;
};

/// Counters a Call loop accumulates; the chaos harness reads these to
/// account for every request it sent.
struct ClientStats {
  int64_t attempts = 0;    ///< Round trips tried (includes retries).
  int64_t retries = 0;     ///< Backoff sleeps taken.
  int64_t reconnects = 0;  ///< Connections re-established after a failure.
};

class ResilientClient {
 public:
  explicit ResilientClient(ClientOptions options);

  /// Parses "host:port" (or bare "port", defaulting the host to
  /// 127.0.0.1) into options with everything else defaulted.
  static Result<ClientOptions> ParseTarget(const std::string& spec);

  /// Sends one request line (no trailing newline) and returns the parsed
  /// {"ok":true,...} response, retrying transient failures per
  /// options.retry. The request is augmented with options.deadline_ms
  /// unless it already carries a "deadline_ms" field.
  Result<Request> Call(const std::string& request_line);

  /// score_pair round trip; returns the margin of a over b.
  Result<double> ScorePair(const std::string& a, const std::string& b);

  /// {"type":"ping"} round trip; cheap liveness probe.
  Status Ping();

  const ClientStats& stats() const { return stats_; }
  bool connected() const { return socket_ != nullptr; }
  /// Drops the connection; the next Call reconnects. (Test hook.)
  void Disconnect();

 private:
  Status EnsureConnected();
  /// One attempt: send, read one response, classify. Transient statuses
  /// (kIOError, kUnavailable) are what Call retries.
  Result<Request> RoundTripOnce(const std::string& line);

  ClientOptions options_;
  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;
  ClientStats stats_;
  bool ever_connected_ = false;
  /// retry_after_ms from the most recent refusal, 0 when none; floors the
  /// next backoff delay.
  int64_t last_retry_after_ms_ = 0;
};

}  // namespace serve
}  // namespace microbrowse

#endif  // MICROBROWSE_SERVE_CLIENT_H_
