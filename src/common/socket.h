// Copyright 2026 The Microbrowse Authors
//
// Minimal TCP socket helpers for the serving subsystem: IPv4 listen /
// connect / full-buffer send, plus a buffered newline-delimited reader.
// Errors surface as Status (kIOError) rather than errno checks at every
// call site; EINTR is retried throughout.

#ifndef MICROBROWSE_COMMON_SOCKET_H_
#define MICROBROWSE_COMMON_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace microbrowse {

/// An owned socket file descriptor (closed on destruction, movable).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor now (idempotent). Any concurrent reader blocked
  /// on the fd is *not* woken on all platforms — use Shutdown first for
  /// that.
  void Close();

  /// shutdown(2) both directions — wakes readers blocked in recv so their
  /// threads can exit. No-op on an invalid socket.
  void Shutdown();

 private:
  int fd_ = -1;
};

/// Listens on `port` (0 = kernel-assigned) on all IPv4 interfaces with
/// SO_REUSEADDR. Returns the listening socket.
Result<Socket> TcpListen(uint16_t port, int backlog = 64);

/// The locally bound port of a listening (or connected) socket — the way to
/// discover a port-0 assignment.
Result<uint16_t> LocalPort(const Socket& socket);

/// Blocking accept; returns the connection socket. TCP_NODELAY is set (the
/// protocol is small request/response lines, where Nagle only adds
/// latency).
Result<Socket> TcpAccept(const Socket& listener);

/// Connects to `host:port` (IPv4 literal or "localhost"). TCP_NODELAY set.
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// Writes all of `data`, looping over partial sends. SIGPIPE is suppressed
/// (MSG_NOSIGNAL); a closed peer surfaces as kIOError. A send that cannot
/// make progress blocks indefinitely — serving paths that must never pin a
/// thread on a slow consumer use SendAllTimed or SendSome instead.
Status SendAll(const Socket& socket, std::string_view data);

/// SendAll with an overall wall-clock bound: each wait for socket-buffer
/// space is a poll(POLLOUT) capped by the time remaining, so a peer that
/// stops reading (or trickles acknowledgements) surfaces as
/// kDeadlineExceeded within ~`timeout_ms` instead of pinning the caller in
/// send(2) forever. `timeout_ms` <= 0 degrades to plain SendAll.
Status SendAllTimed(const Socket& socket, std::string_view data, int64_t timeout_ms);

/// One non-blocking send attempt: writes as much of `data` as the socket
/// buffer accepts and returns the byte count (0 when the buffer is full —
/// EAGAIN is not an error). The socket should be in non-blocking mode;
/// kIOError covers real failures (EPIPE, ECONNRESET, ...).
Result<size_t> SendSome(const Socket& socket, std::string_view data);

/// Switches O_NONBLOCK on or off. The epoll reactor runs every connection
/// (and its listener) non-blocking; the thread-per-connection path keeps
/// blocking sockets.
Status SetNonBlocking(const Socket& socket, bool non_blocking);

/// accept(2) that treats an empty backlog as a normal outcome: returns an
/// invalid Socket (valid() == false) on EAGAIN/EWOULDBLOCK instead of an
/// error, for level-triggered accept loops on a non-blocking listener. The
/// accepted socket is returned non-blocking with TCP_NODELAY set.
Result<Socket> AcceptNonBlocking(const Socket& listener);

/// Caps the kernel send buffer (SO_SNDBUF). Test hook: a tiny send buffer
/// makes "peer stopped reading" reproducible in milliseconds.
Status SetSendBufferBytes(const Socket& socket, int bytes);

/// Arms SO_RCVTIMEO: a recv(2) with no data for `ms` milliseconds returns
/// instead of blocking forever, surfacing through LineReader::ReadLine as
/// kDeadlineExceeded. The connection stays healthy — callers decide whether
/// a quiet interval is idle-eviction-worthy or just a slow client. 0
/// restores fully blocking reads.
Status SetRecvTimeoutMs(const Socket& socket, int64_t ms);

/// poll(2)s for readability up to `timeout_ms`. Returns true when the fd
/// has data (or EOF) to read, false on timeout, kIOError on poll failure.
Result<bool> WaitReadable(const Socket& socket, int64_t timeout_ms);

/// Buffered reader returning one '\n'-terminated line at a time (terminator
/// stripped, '\r' before it too). Reads from the fd only when the buffer
/// runs dry, so pipelined requests already received are served without
/// another syscall. A line longer than `max_line_bytes` fails with
/// kIOError instead of buffering without bound — a peer that never sends
/// '\n' cannot grow the buffer past the limit.
class LineReader {
 public:
  static constexpr size_t kDefaultMaxLineBytes = 4 << 20;

  explicit LineReader(const Socket& socket,
                      size_t max_line_bytes = kDefaultMaxLineBytes)
      : socket_(socket),
        max_line_bytes_(max_line_bytes > 0 ? max_line_bytes
                                           : kDefaultMaxLineBytes) {}

  /// Reads the next line into `line`. Returns OK with true on a line,
  /// OK with false on clean EOF (no partial line pending), and kIOError on
  /// socket errors, EOF in the middle of a line, or an over-long line.
  /// When the socket has a receive timeout armed (SetRecvTimeoutMs), a
  /// quiet interval surfaces as kDeadlineExceeded — the connection is
  /// still usable and the call can simply be repeated.
  Result<bool> ReadLine(std::string* line);

  /// Total bytes ever received from the socket. An idle reaper compares
  /// this across timeouts: a trickling client (bytes moved, no complete
  /// line yet) is slow, not idle.
  uint64_t total_bytes_read() const { return total_bytes_read_; }

 private:
  const Socket& socket_;
  size_t max_line_bytes_;
  std::string buffer_;
  size_t start_ = 0;
  uint64_t total_bytes_read_ = 0;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_SOCKET_H_
