// Copyright 2026 The Microbrowse Authors

#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace microbrowse {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %9.3f %s:%d] %s\n", LevelTag(level_), SecondsSinceStart(),
               Basename(file_), line_, stream_.str().c_str());
}

CheckFailure::CheckFailure(const char* file, int line, const char* condition)
    : file_(file), line_(line), condition_(condition) {}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "[CHECK FAILED %s:%d] %s %s\n", Basename(file_), line_, condition_,
               stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace microbrowse
