// Copyright 2026 The Microbrowse Authors
//
// Error handling primitives. Public APIs that can fail return Status (or
// Result<T>, see result.h) instead of throwing: the codebase is built and
// consumed with exceptions conceptually disabled, following the conventions
// of production database code.

#ifndef MICROBROWSE_COMMON_STATUS_H_
#define MICROBROWSE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace microbrowse {

/// Canonical error space, a deliberately small subset of the usual
/// absl/gRPC codes — enough to express every failure mode in this library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIOError = 8,
  /// A request or operation ran out of its time budget (common/deadline.h).
  kDeadlineExceeded = 9,
  /// The target is temporarily refusing work (draining, overloaded); the
  /// condition is expected to clear, so the retry layer treats it as
  /// transient.
  kUnavailable = 10,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a descriptive `message`.
  /// `message` is ignored for kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error code (kOk for success).
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Two statuses compare equal iff code and message match.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error status out of the enclosing function.
#define MB_RETURN_IF_ERROR(expr)                         \
  do {                                                   \
    ::microbrowse::Status _mb_status = (expr);           \
    if (!_mb_status.ok()) return _mb_status;             \
  } while (false)

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_STATUS_H_
