// Copyright 2026 The Microbrowse Authors

#include "common/random.h"

#include <algorithm>

namespace microbrowse {

int64_t Rng::Binomial(int64_t n, double p) {
  if (n <= 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double variance = static_cast<double>(n) * p * (1.0 - p);
  if (n <= 64 || variance < 25.0) {
    // Exact: sum of Bernoullis for small n; for larger n with tiny variance,
    // fall back to counting in blocks via the geometric trick.
    if (n <= 512) {
      int64_t count = 0;
      for (int64_t i = 0; i < n; ++i) count += Bernoulli(p) ? 1 : 0;
      return count;
    }
    // Waiting-time method: number of successes equals the number of
    // geometric inter-arrival gaps that fit in n trials.
    const double log1mp = std::log1p(-p);
    int64_t count = 0;
    int64_t trials = 0;
    while (true) {
      double u = 0.0;
      while (u <= 1e-300) u = NextDouble();
      trials += static_cast<int64_t>(std::floor(std::log(u) / log1mp)) + 1;
      if (trials > n) break;
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction, clamped to [0, n].
  const double mean = static_cast<double>(n) * p;
  const double draw = Gaussian(mean, std::sqrt(variance));
  const double rounded = std::floor(draw + 0.5);
  return static_cast<int64_t>(std::clamp(rounded, 0.0, static_cast<double>(n)));
}

int64_t Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  const double draw = Gaussian(lambda, std::sqrt(lambda));
  return static_cast<int64_t>(std::max(0.0, std::floor(draw + 0.5)));
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return Categorical(weights);
}

}  // namespace microbrowse
