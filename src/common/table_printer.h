// Copyright 2026 The Microbrowse Authors
//
// Fixed-width text table rendering for the repro_* binaries, so that
// experiment output visually matches the paper's tables.

#ifndef MICROBROWSE_COMMON_TABLE_PRINTER_H_
#define MICROBROWSE_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace microbrowse {

/// Accumulates rows of string cells and renders an aligned ASCII table with
/// a header rule. Left-aligns the first column, right-aligns the rest
/// (matching how the paper lays out model-name vs metric columns).
class TablePrinter {
 public:
  /// Creates a printer with a title printed above the table (may be empty).
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Must be called before Print.
  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table to `os`.
  void Print(std::ostream& os) const;

  /// Renders the table into a string.
  std::string ToString() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_TABLE_PRINTER_H_
