// Copyright 2026 The Microbrowse Authors
//
// Small string helpers used across the library. These deliberately cover
// only what the codebase needs; they are not a general-purpose string
// library.

#ifndef MICROBROWSE_COMMON_STRING_UTIL_H_
#define MICROBROWSE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace microbrowse {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on ASCII whitespace runs, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale-independent).
std::string ToLowerAscii(std::string_view text);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// True iff `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats a fraction in [0,1] as a percentage string, e.g. 0.5832 -> "58.3%".
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_STRING_UTIL_H_
