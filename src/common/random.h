// Copyright 2026 The Microbrowse Authors
//
// Deterministic pseudo-random number generation. Every stochastic component
// in the library (corpus generation, click simulation, k-fold shuffling,
// SGD example order) draws from an explicitly seeded Rng so that experiments
// reproduce bit-for-bit across runs and platforms.

#ifndef MICROBROWSE_COMMON_RANDOM_H_
#define MICROBROWSE_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace microbrowse {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state, and as a cheap standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with convenience distributions. Not thread-safe;
/// create one Rng per thread/stream (see Fork()).
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed = 0x1234abcdULL) { Seed(seed); }

  /// Re-seeds in place.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64 bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextIndex(uint64_t n) {
    assert(n > 0);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(NextIndex(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Standard normal via Box–Muller (caches the second deviate).
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  /// Binomial(n, p) sample. Exact inversion for small n, Gaussian
  /// approximation with continuity correction for large n*p(1-p).
  int64_t Binomial(int64_t n, double p);

  /// Poisson(lambda) sample (Knuth for small lambda, PTRS-style normal
  /// approximation for large lambda).
  int64_t Poisson(double lambda);

  /// Samples an index from an unnormalised non-negative weight vector.
  /// The weights need not sum to one; at least one must be positive.
  size_t Categorical(const std::vector<double>& weights);

  /// Zipf-distributed integer in [0, n) with exponent `s` (>0), via inverse
  /// CDF over precomputed weights — suitable for modest n.
  size_t Zipf(size_t n, double s);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextIndex(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; the (seed, salt) pair fully
  /// determines the child's stream.
  Rng Fork(uint64_t salt) {
    uint64_t mix = NextU64() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(SplitMix64(mix));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_RANDOM_H_
