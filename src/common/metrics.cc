// Copyright 2026 The Microbrowse Authors

#include "common/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace microbrowse {

namespace {

/// Shortest round-trip decimal rendering (Prometheus has no NaN/Inf in
/// practice for our metrics, but render them as Prometheus expects).
std::string FormatMetricValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, end);
}

/// Appends one "name{labels} value\n" sample line.
void AppendSample(std::string* out, const std::string& name, const char* labels,
                  const std::string& value) {
  *out += name;
  *out += labels;
  out->push_back(' ');
  *out += value;
  out->push_back('\n');
}

}  // namespace

MetricRegistry& MetricRegistry::Global() {
  // Leaked on purpose: call sites cache metric pointers in function-local
  // statics, which may be touched by detached threads after main returns.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Shard& MetricRegistry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kNumShards];
}

const MetricRegistry::Shard& MetricRegistry::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kNumShards];
}

MetricRegistry::Metric* MetricRegistry::FindOrCreate(std::string_view name, Kind kind,
                                                     int num_shards) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.metrics.find(std::string(name));
  if (it == shard.metrics.end()) {
    Metric metric;
    metric.kind = kind;
    switch (kind) {
      case Kind::kCounter: metric.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: metric.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        metric.histogram = std::make_unique<ShardedHistogram>(num_shards);
        break;
    }
    it = shard.metrics.emplace(std::string(name), std::move(metric)).first;
  }
  if (it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  Metric* metric = FindOrCreate(name, Kind::kCounter, 0);
  if (metric == nullptr) {
    MB_LOG(kWarning) << "metric '" << name
                     << "' already registered with a different kind; returning a "
                        "detached counter";
    static Counter* dummy = new Counter();
    return dummy;
  }
  return metric->counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  Metric* metric = FindOrCreate(name, Kind::kGauge, 0);
  if (metric == nullptr) {
    MB_LOG(kWarning) << "metric '" << name
                     << "' already registered with a different kind; returning a "
                        "detached gauge";
    static Gauge* dummy = new Gauge();
    return dummy;
  }
  return metric->gauge.get();
}

ShardedHistogram* MetricRegistry::GetHistogram(std::string_view name, int num_shards) {
  Metric* metric = FindOrCreate(name, Kind::kHistogram, num_shards);
  if (metric == nullptr) {
    MB_LOG(kWarning) << "metric '" << name
                     << "' already registered with a different kind; returning a "
                        "detached histogram";
    static ShardedHistogram* dummy = new ShardedHistogram(1);
    return dummy;
  }
  return metric->histogram.get();
}

std::vector<MetricRegistry::Entry> MetricRegistry::Snapshot() const {
  std::vector<Entry> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, metric] : shard.metrics) {
      Entry entry;
      entry.name = name;
      entry.kind = metric.kind;
      switch (metric.kind) {
        case Kind::kCounter: entry.counter_value = metric.counter->Value(); break;
        case Kind::kGauge: entry.gauge_value = metric.gauge->Value(); break;
        case Kind::kHistogram: entry.histogram = metric.histogram->Snapshot(); break;
      }
      entries.push_back(std::move(entry));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return entries;
}

std::string MetricRegistry::RenderPrometheusText() const {
  std::string out;
  for (const Entry& entry : Snapshot()) {
    const std::string name = PrometheusName(entry.name);
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        AppendSample(&out, name, "",
                     StrFormat("%lld", static_cast<long long>(entry.counter_value)));
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        AppendSample(&out, name, "", FormatMetricValue(entry.gauge_value));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot& h = entry.histogram;
        out += "# TYPE " + name + " summary\n";
        AppendSample(&out, name, "{quantile=\"0.5\"}", FormatMetricValue(h.p50));
        AppendSample(&out, name, "{quantile=\"0.95\"}", FormatMetricValue(h.p95));
        AppendSample(&out, name, "{quantile=\"0.99\"}", FormatMetricValue(h.p99));
        AppendSample(&out, name + "_sum", "", FormatMetricValue(h.sum));
        AppendSample(&out, name + "_count", "",
                     StrFormat("%lld", static_cast<long long>(h.count)));
        break;
      }
    }
  }
  return out;
}

void MetricRegistry::ResetAllForTest() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, metric] : shard.metrics) {
      switch (metric.kind) {
        case Kind::kCounter: metric.counter->Reset(); break;
        case Kind::kGauge: metric.gauge->Reset(); break;
        case Kind::kHistogram: metric.histogram->Reset(); break;
      }
    }
  }
}

size_t MetricRegistry::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.metrics.size();
  }
  return total;
}

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void PreregisterPipelineMetrics(MetricRegistry* registry) {
  // The canonical train-stage metric set (DESIGN.md section 12). Kept in
  // sync with the instrumentation in corpus/, microbrowse/, and ml/.
  for (const char* name : {
           "mb.corpus.adgroups_generated",
           "mb.corpus.creatives_generated",
           "mb.stats.build_passes",
           "mb.stats.pairs_observed",
           "mb.train.runs",
           "mb.train.epochs",
           "mb.train.examples",
           "mb.cv.runs",
           "mb.cv.fold_splits",
           "mb.cv.folds_trained",
           "mb.cv.folds_resumed",
       }) {
    registry->GetCounter(name);
  }
  registry->GetGauge("mb.stats.features");
  registry->GetHistogram("mb.cv.fold_seconds");
}

}  // namespace microbrowse
