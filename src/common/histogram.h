// Copyright 2026 The Microbrowse Authors
//
// A thread-safe log-bucketed histogram for latency and size distributions.
// Recording is lock-free (one relaxed atomic increment per sample plus a
// few atomic accumulators), so the serving hot path can record every
// request. Quantiles are reconstructed from the bucket counts by linear
// interpolation inside the containing bucket — accurate to the bucket
// resolution (~7% with the default growth factor), which is plenty for
// p50/p95/p99 reporting.

#ifndef MICROBROWSE_COMMON_HISTOGRAM_H_
#define MICROBROWSE_COMMON_HISTOGRAM_H_

#include <atomic>
#include <array>
#include <cstdint>
#include <limits>
#include <string>

namespace microbrowse {

/// Aggregated view of a histogram at one point in time.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Fixed-geometry log histogram over (0, +inf). Values are assigned to
/// bucket floor(log(value / kFirstBucket) / log(kGrowth)), clamped to the
/// bucket range; zero and negative values land in bucket 0. With
/// kFirstBucket = 1e-6 (1 microsecond when recording seconds) and ~1.15x
/// growth, 128 buckets span beyond 10^4 seconds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 128;

  Histogram() = default;

  /// Records one sample. Thread-safe, wait-free.
  void Record(double value);

  /// Number of recorded samples.
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Consistent-enough snapshot with interpolated quantiles. Concurrent
  /// Record calls may or may not be included; the snapshot is never torn
  /// in a way that produces out-of-range quantiles.
  HistogramSnapshot Snapshot() const;

  /// Resets all counters to zero. Not atomic with respect to concurrent
  /// Record calls (samples landing mid-reset may survive); intended for
  /// between-phase resets in benchmarks.
  void Reset();

 private:
  static int BucketOf(double value);
  /// Lower edge of bucket `index`.
  static double BucketLow(int index);

  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  /// Sum/min/max in fixed-point nanos-style resolution is overkill here;
  /// doubles via CAS loops keep the API in natural units. Min and max are
  /// seeded with +/-infinity sentinels so the first Record wins the CAS
  /// race outright for any sample value (a 0.0 seed silently floored the
  /// max at zero for all-negative samples and raced on the min);
  /// Snapshot masks the sentinels back to 0 while the histogram is empty.
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Renders "p50=1.2ms p95=3.4ms p99=9ms n=1234" for logs; values are
/// treated as seconds.
std::string FormatLatencySnapshot(const HistogramSnapshot& snapshot);

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_HISTOGRAM_H_
