// Copyright 2026 The Microbrowse Authors
//
// A thread-safe log-bucketed histogram for latency and size distributions.
// Recording is lock-free (one relaxed atomic increment per sample plus a
// few atomic accumulators), so the serving hot path can record every
// request. Quantiles are reconstructed from the bucket counts by linear
// interpolation inside the containing bucket — accurate to the bucket
// resolution (~7% with the default growth factor), which is plenty for
// p50/p95/p99 reporting.
//
// For heavily contended recorders (every serving worker hammering one
// latency histogram) ShardedHistogram spreads the atomic traffic over
// per-thread shards; Snapshot() merges the shards through one shared
// Histogram::Accumulator, using the memoized bucket-bound table so the
// bound computation is paid once per process, not once per snapshot or
// per shard.

#ifndef MICROBROWSE_COMMON_HISTOGRAM_H_
#define MICROBROWSE_COMMON_HISTOGRAM_H_

#include <atomic>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

namespace microbrowse {

/// Aggregated view of a histogram at one point in time.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Fixed-geometry log histogram over (0, +inf). Values are assigned to
/// bucket floor(log(value / kFirstBucket) / log(kGrowth)), clamped to the
/// bucket range; zero and negative values land in bucket 0. With
/// kFirstBucket = 1e-6 (1 microsecond when recording seconds) and ~1.15x
/// growth, 128 buckets span beyond 10^4 seconds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 128;

  /// Raw additive state of one or more histograms. Accumulating N shards
  /// into one Accumulator and finalizing once is equivalent to having
  /// recorded every sample into a single histogram (bucket counts, count
  /// and sum are plain integer/double sums; min/max combine by min/max).
  struct Accumulator {
    std::array<int64_t, kNumBuckets> buckets{};
    int64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  Histogram() = default;

  /// Records one sample. Thread-safe, wait-free.
  void Record(double value);

  /// Number of recorded samples.
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Consistent-enough snapshot with interpolated quantiles. Concurrent
  /// Record calls may or may not be included; the snapshot is never torn
  /// in a way that produces out-of-range quantiles.
  HistogramSnapshot Snapshot() const;

  /// Adds this histogram's current state onto `*acc` (shard merging).
  void AccumulateTo(Accumulator* acc) const;

  /// Finalizes an accumulator into a snapshot (quantile interpolation over
  /// the merged bucket counts).
  static HistogramSnapshot SnapshotFrom(const Accumulator& acc);

  /// Lower bucket edges, computed once per process and memoized — every
  /// snapshot/merge reads this table instead of recomputing pow() per
  /// bucket per call.
  static const std::array<double, kNumBuckets>& BucketBounds();

  /// Resets all counters to zero. Not atomic with respect to concurrent
  /// Record calls (samples landing mid-reset may survive); intended for
  /// between-phase resets in benchmarks.
  void Reset();

 private:
  static int BucketOf(double value);

  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  /// Sum/min/max in fixed-point nanos-style resolution is overkill here;
  /// doubles via CAS loops keep the API in natural units. Min and max are
  /// seeded with +/-infinity sentinels so the first Record wins the CAS
  /// race outright for any sample value (a 0.0 seed silently floored the
  /// max at zero for all-negative samples and raced on the min);
  /// Snapshot masks the sentinels back to 0 while the histogram is empty.
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// A histogram whose atomic state is spread over several shards to cut
/// cache-line contention between recording threads. Each thread sticks to
/// one shard (round-robin assignment on first use); Snapshot() merges all
/// shards into one Accumulator and finalizes once.
class ShardedHistogram {
 public:
  explicit ShardedHistogram(int num_shards = 8);

  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  /// Records into the calling thread's shard. Thread-safe, wait-free.
  void Record(double value);

  /// Total samples across all shards.
  int64_t Count() const;

  /// Merged snapshot over all shards; equal to the snapshot a single
  /// Histogram fed the same samples would produce.
  HistogramSnapshot Snapshot() const;

  /// Resets every shard (same caveats as Histogram::Reset).
  void Reset();

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  std::unique_ptr<Histogram[]> shards_;
};

/// Renders "p50=1.2ms p95=3.4ms p99=9ms n=1234" for logs; values are
/// treated as seconds.
std::string FormatLatencySnapshot(const HistogramSnapshot& snapshot);

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_HISTOGRAM_H_
