// Copyright 2026 The Microbrowse Authors
//
// Lightweight span tracing for offline pipeline runs. A TraceSpan is an
// RAII scope marker; spans nest per thread (each span's parent is the
// innermost span open on the same thread at construction). Completed
// spans land in per-thread buffers — recording takes one uncontended
// buffer lock per span close and zero global locks — and are drained into
// one JSON file by trace::WriteJson.
//
// Tracing is off by default: a disabled TraceSpan costs one relaxed
// atomic load and nothing else, so instrumentation can stay compiled into
// the hot paths of the pipeline. `mbctl <cmd> --trace-out=FILE` enables
// collection for the run and writes the trace on exit.
//
// Determinism contract: the *number* of spans recorded by instrumented
// code must depend only on the work done, never on thread count or timing
// (span timestamps and thread ids naturally differ run to run). The
// determinism suite asserts span-count invariance across thread counts.

#ifndef MICROBROWSE_COMMON_TRACE_H_
#define MICROBROWSE_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace microbrowse {

namespace trace {

/// True while span collection is active.
bool IsEnabled();

/// Clears previously collected spans and starts collecting.
void Enable();

/// Stops collecting. Spans still open finish silently (they are dropped).
void Disable();

/// Writes every collected span as JSON to `path`:
///   {"trace_version":1,"span_count":N,"spans":[
///     {"name":"mb.cv.run","id":0,"parent":-1,"tid":0,"depth":0,
///      "start_us":0.0,"dur_us":1234.5}, ...]}
/// Spans are sorted by start time; `parent` is the id of the enclosing
/// span on the same thread (-1 for roots), `depth` its nesting level.
/// Collection keeps running (call Disable() first for a final drain).
Status WriteJson(const std::string& path);

/// Number of completed spans collected since the last Enable(). Test hook;
/// takes the same locks as WriteJson.
size_t CollectedSpanCount();

}  // namespace trace

/// RAII span: records [construction, destruction) under `name` when
/// tracing is enabled, and is a near-no-op (one relaxed load) otherwise.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  std::string name_;
  int64_t id_ = -1;
  int64_t parent_ = -1;
  int depth_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_TRACE_H_
