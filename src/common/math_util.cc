// Copyright 2026 The Microbrowse Authors

#include "common/math_util.h"

#include <limits>

namespace microbrowse {

double LogSumExp(const std::vector<double>& values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  const double max_value = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(max_value)) return max_value;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - max_value);
  return max_value + std::log(sum);
}

TwoProportionTest TwoProportionZTest(int64_t successes1, int64_t trials1, int64_t successes2,
                                     int64_t trials2) {
  TwoProportionTest out;
  if (trials1 <= 0 || trials2 <= 0) return out;
  const double n1 = static_cast<double>(trials1);
  const double n2 = static_cast<double>(trials2);
  const double p1 = static_cast<double>(successes1) / n1;
  const double p2 = static_cast<double>(successes2) / n2;
  const double pooled = static_cast<double>(successes1 + successes2) / (n1 + n2);
  const double variance = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
  if (variance <= 0.0) return out;
  out.z = (p1 - p2) / std::sqrt(variance);
  out.p_value = 2.0 * (1.0 - StdNormalCdf(std::fabs(out.z)));
  return out;
}

double WilsonLowerBound(int64_t successes, int64_t trials, double z) {
  if (trials <= 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt((p * (1.0 - p) + z2 / (4.0 * n)) / n);
  return std::max(0.0, (center - margin) / denom);
}

}  // namespace microbrowse
