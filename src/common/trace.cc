// Copyright 2026 The Microbrowse Authors

#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/string_util.h"

namespace microbrowse {

namespace {

/// One completed span.
struct SpanEvent {
  std::string name;
  int64_t id = -1;
  int64_t parent = -1;
  int tid = 0;
  int depth = 0;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ThreadBuffer;

/// Global trace state. Buffers register on a thread's first span and
/// unregister (moving their events to the orphan list) at thread exit, so
/// WriteJson sees spans from pool threads that have already terminated.
struct GlobalState {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  std::vector<SpanEvent> orphans;
  std::atomic<bool> enabled{false};
  std::atomic<int64_t> next_id{0};
  std::atomic<int> next_tid{0};
  std::atomic<int64_t> epoch_ns{0};
};

GlobalState& State() {
  // Leaked: thread-exit destructors of ThreadBuffers may run after main.
  static GlobalState* state = new GlobalState();
  return *state;
}

struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanEvent> events;
  int tid;

  ThreadBuffer() : tid(State().next_tid.fetch_add(1, std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(State().mu);
    State().buffers.push_back(this);
  }

  ~ThreadBuffer() {
    GlobalState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    {
      std::lock_guard<std::mutex> buffer_lock(mu);
      state.orphans.insert(state.orphans.end(), events.begin(), events.end());
    }
    state.buffers.erase(std::remove(state.buffers.begin(), state.buffers.end(), this),
                        state.buffers.end());
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

/// Innermost open span on this thread (parent for the next TraceSpan).
thread_local int64_t tls_parent = -1;
thread_local int tls_depth = 0;

/// Snapshot of every collected span, start-ordered.
std::vector<SpanEvent> DrainCopy() {
  GlobalState& state = State();
  std::vector<SpanEvent> all;
  std::lock_guard<std::mutex> lock(state.mu);
  all = state.orphans;
  for (ThreadBuffer* buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(all.begin(), all.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.id < b.id;
  });
  return all;
}

std::string JsonEscapeName(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

namespace trace {

bool IsEnabled() { return State().enabled.load(std::memory_order_relaxed); }

void Enable() {
  GlobalState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.orphans.clear();
    for (ThreadBuffer* buffer : state.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
  }
  state.next_id.store(0, std::memory_order_relaxed);
  state.epoch_ns.store(NowNs(), std::memory_order_relaxed);
  state.enabled.store(true, std::memory_order_release);
}

void Disable() { State().enabled.store(false, std::memory_order_release); }

size_t CollectedSpanCount() { return DrainCopy().size(); }

Status WriteJson(const std::string& path) {
  const std::vector<SpanEvent> spans = DrainCopy();
  const int64_t epoch = State().epoch_ns.load(std::memory_order_relaxed);

  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open trace file: " + path);
  out << "{\"trace_version\":1,\"span_count\":" << spans.size() << ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanEvent& span = spans[i];
    if (i > 0) out << ',';
    out << "\n{\"name\":\"" << JsonEscapeName(span.name) << "\",\"id\":" << span.id
        << ",\"parent\":" << span.parent << ",\"tid\":" << span.tid
        << ",\"depth\":" << span.depth << ",\"start_us\":"
        << StrFormat("%.3f", static_cast<double>(span.start_ns - epoch) / 1e3)
        << ",\"dur_us\":" << StrFormat("%.3f", static_cast<double>(span.dur_ns) / 1e3)
        << "}";
  }
  out << "\n]}\n";
  out.close();
  if (out.fail()) return Status::IOError("write failed for trace file: " + path);
  return Status::OK();
}

}  // namespace trace

TraceSpan::TraceSpan(std::string_view name) : active_(trace::IsEnabled()) {
  if (!active_) return;
  name_ = std::string(name);
  id_ = State().next_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = tls_parent;
  depth_ = tls_depth;
  tls_parent = id_;
  ++tls_depth;
  start_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const int64_t end_ns = NowNs();
  tls_parent = parent_;
  tls_depth = depth_;
  // A span closing after Disable() is dropped: the file for this run was
  // (or is about to be) written, and the next Enable() starts clean.
  if (!trace::IsEnabled()) return;
  SpanEvent event;
  event.name = std::move(name_);
  event.id = id_;
  event.parent = parent_;
  event.depth = depth_;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

}  // namespace microbrowse
