// Copyright 2026 The Microbrowse Authors
//
// CSV output for experiment artefacts. Every repro_* bench writes its table
// as CSV next to stdout output so results can be diffed and plotted.

#ifndef MICROBROWSE_COMMON_CSV_H_
#define MICROBROWSE_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace microbrowse {

/// Quotes a CSV field per RFC 4180 when it contains separators, quotes or
/// newlines; otherwise returns it unchanged.
std::string CsvEscape(std::string_view field);

/// Parses one CSV record (the inverse of joining CsvEscape'd cells with
/// commas). Quoted fields may contain commas, doubled quotes and newlines,
/// so `record` is the full record text, not necessarily a single file
/// line. Strict per RFC 4180: a quote inside an unquoted field, text after
/// a closing quote, or an unterminated quoted field is InvalidArgument.
/// An empty record parses as one empty field.
Result<std::vector<std::string>> ParseCsvRecord(std::string_view record);

/// Streams rows to a CSV file. Not thread-safe.
class CsvWriter {
 public:
  CsvWriter() = default;

  /// Opens `path` for writing, truncating any existing file.
  Status Open(const std::string& path);

  /// Writes one row; each cell is escaped as needed.
  Status WriteRow(const std::vector<std::string>& cells);

  /// Flushes and closes. Safe to call when never opened.
  Status Close();

  /// True while a file is open.
  bool is_open() const { return out_.is_open(); }

 private:
  std::ofstream out_;
  std::string path_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_CSV_H_
