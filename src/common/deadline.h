// Copyright 2026 The Microbrowse Authors
//
// A monotonic request deadline. Serving threads a Deadline through the
// request path so a queued request whose budget is already spent can be
// refused *before* scoring, and drain/idle loops can wait "until T or the
// work is done" without re-deriving absolute times at every call site.
// Built on steady_clock: wall-clock jumps (NTP slews, suspend/resume)
// never extend or shorten a budget.

#ifndef MICROBROWSE_COMMON_DEADLINE_H_
#define MICROBROWSE_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>

namespace microbrowse {

/// A point on the monotonic clock by which some work must finish. Default
/// constructed (or Infinite()) it never expires — "no deadline" is the
/// same type as "a deadline", so call sites need no optional wrapper.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// The deadline that never expires (explicit-named form of the default).
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Non-positive budgets are already
  /// expired (a request that arrives with a spent budget must be refused,
  /// not given a free pass through an "infinite" sentinel).
  static Deadline AfterMillis(int64_t ms) {
    Deadline deadline;
    deadline.infinite_ = false;
    deadline.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return deadline;
  }

  /// True when this deadline can never expire.
  bool infinite() const { return infinite_; }

  /// True when the deadline has passed. Infinite deadlines never expire.
  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds left before expiry, clamped to >= 0. Infinite deadlines
  /// report INT64_MAX — large enough that any sleep derived from it should
  /// be clamped by the caller's own tick.
  int64_t remaining_millis() const {
    if (infinite_) return std::numeric_limits<int64_t>::max();
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(at_ - Clock::now()).count();
    return left > 0 ? left : 0;
  }

  /// The earlier (stricter) of two deadlines.
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    if (a.infinite_) return b;
    if (b.infinite_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_DEADLINE_H_
