// Copyright 2026 The Microbrowse Authors
//
// Result<T>: a value-or-Status union, the return type of fallible factory
// functions and parsers throughout the library.

#ifndef MICROBROWSE_COMMON_RESULT_H_
#define MICROBROWSE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace microbrowse {

/// Holds either a `T` or a non-OK Status explaining why no value exists.
///
/// Usage:
///   Result<Corpus> r = Corpus::Load(path);
///   if (!r.ok()) return r.status();
///   Corpus corpus = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors StatusOr.
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without a value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK iff a value is present.
  const Status& status() const { return status_; }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its status on error,
/// otherwise assigning the value to `lhs`.
#define MB_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto MB_CONCAT_(_mb_result_, __LINE__) = (rexpr);                \
  if (!MB_CONCAT_(_mb_result_, __LINE__).ok())                     \
    return MB_CONCAT_(_mb_result_, __LINE__).status();             \
  lhs = std::move(MB_CONCAT_(_mb_result_, __LINE__)).value()

#define MB_CONCAT_INNER_(a, b) a##b
#define MB_CONCAT_(a, b) MB_CONCAT_INNER_(a, b)

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_RESULT_H_
