// Copyright 2026 The Microbrowse Authors
//
// Fault-injection framework. A *failpoint* is a named hook compiled into a
// production code path (serialization writes, the thread pool, the pipeline
// fold loop) that can be armed to return an injected error, so tests and
// operators can rehearse crashes, full disks and flaky storage without
// special builds.
//
//   Status SaveThing(...) {
//     MB_FAILPOINT("io.write.flush");   // returns an error when armed + fired
//     ...
//   }
//
// Failpoints are armed programmatically (Activate) or from the environment:
//
//   MB_FAILPOINTS="io.write.rename=always,pipeline.fold=nth:3,io.read.open=0.25"
//
// Spec grammar, per comma-separated `name=spec` entry:
//   always      fire on every hit
//   off         registered but never fires (hit counting only)
//   p:<float>   fire with probability <float> per hit (deterministic RNG
//               seeded from the failpoint name)
//   nth:<int>   fire on exactly the <int>-th hit (1-based), once
//   delay:<ms>  inject <ms> milliseconds of latency on every hit instead
//               of an error (Check sleeps, then returns OK) — how timeout
//               and chaos tests create slow paths without hand-rolled
//               sleeps in production code
//   <float>     shorthand for p:<float> (must contain '.')
//   <int>       shorthand for nth:<int>
//
// When no failpoint is armed anywhere in the process, MB_FAILPOINT compiles
// down to one relaxed atomic load — effectively free on hot paths.

#ifndef MICROBROWSE_COMMON_FAILPOINT_H_
#define MICROBROWSE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace microbrowse {
namespace failpoint {

/// How an armed failpoint decides to fire.
struct Spec {
  enum class Mode {
    kAlways,       ///< Fire on every hit.
    kNever,        ///< Never fire; hits are still counted.
    kProbability,  ///< Fire with `probability` per hit.
    kNth,          ///< Fire on exactly the `nth` hit (1-based), once.
    kDelay,        ///< Sleep `delay_ms` on every hit, then return OK.
  };
  Mode mode = Mode::kAlways;
  double probability = 1.0;
  int64_t nth = 1;
  int64_t delay_ms = 0;
  /// Error code of the injected Status. Defaults to kIOError — failpoints
  /// model storage faults, which the retry layer treats as transient.
  StatusCode code = StatusCode::kIOError;
};

/// Arms `name` with `spec`, replacing any previous arming (hit and fire
/// counters reset).
void Activate(const std::string& name, const Spec& spec);

/// Disarms `name`. No-op when not armed.
void Deactivate(const std::string& name);

/// Disarms every failpoint (used by tests to restore a clean slate).
void DeactivateAll();

/// True iff `name` is currently armed (any mode, including kNever).
bool IsActive(const std::string& name);

/// Number of times an armed `name` was evaluated. Hits are only counted
/// while armed — the disarmed fast path does not track anything.
int64_t HitCount(const std::string& name);

/// Number of times `name` actually fired.
int64_t FireCount(const std::string& name);

/// Evaluates the failpoint: returns the injected error when `name` is armed
/// and its spec says this hit fires, OK otherwise. Prefer the MB_FAILPOINT
/// macro in Status/Result-returning functions.
Status Check(std::string_view name);

/// Parses one spec string (the grammar in the file header). Fails with
/// InvalidArgument on garbage.
Result<Spec> ParseSpec(const std::string& text);

/// Arms every `name=spec` entry of a comma-separated list (the MB_FAILPOINTS
/// syntax). Entries are applied left to right; the first malformed entry
/// aborts with InvalidArgument (entries before it stay armed).
Status ActivateFromList(const std::string& list);

/// Names of all currently armed failpoints, sorted.
std::vector<std::string> ActiveNames();

namespace internal {

extern std::atomic<int> g_active_count;

/// Fast-path guard: false whenever no failpoint is armed process-wide.
inline bool AnyActive() { return g_active_count.load(std::memory_order_relaxed) > 0; }

}  // namespace internal
}  // namespace failpoint

/// Evaluates a failpoint inside a Status- or Result-returning function,
/// propagating the injected error out of the enclosing function when armed
/// and fired. Near-zero cost when no failpoint is armed.
#define MB_FAILPOINT(name)                                                        \
  do {                                                                            \
    if (::microbrowse::failpoint::internal::AnyActive()) {                        \
      ::microbrowse::Status _mb_fp_status = ::microbrowse::failpoint::Check(name); \
      if (!_mb_fp_status.ok()) return _mb_fp_status;                              \
    }                                                                             \
  } while (false)

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_FAILPOINT_H_
