// Copyright 2026 The Microbrowse Authors

#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace microbrowse {

namespace {

constexpr double kFirstBucket = 1e-6;
// 128 buckets at 1.15x growth cover [1e-6, 1e-6 * 1.15^127 ~ 5.6e1] ... the
// exact top is irrelevant: the last bucket absorbs everything beyond it.
constexpr double kGrowth = 1.15;
const double kLogGrowth = std::log(kGrowth);

void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::BucketOf(double value) {
  if (!(value > kFirstBucket)) return 0;  // Also catches NaN.
  const int bucket = static_cast<int>(std::log(value / kFirstBucket) / kLogGrowth) + 1;
  return std::min(bucket, kNumBuckets - 1);
}

const std::array<double, Histogram::kNumBuckets>& Histogram::BucketBounds() {
  // Memoized once per process: quantile reconstruction used to recompute
  // pow(kGrowth, i) for every bucket of every snapshot, which multiplied
  // out to real work once sharded histograms merged dozens of snapshots
  // per scrape.
  static const std::array<double, kNumBuckets> bounds = [] {
    std::array<double, kNumBuckets> table{};
    table[0] = 0.0;
    for (int i = 1; i < kNumBuckets; ++i) {
      table[i] = kFirstBucket * std::pow(kGrowth, i - 1);
    }
    return table;
  }();
  return bounds;
}

void Histogram::Record(double value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  // The +/-infinity seeds make the first sample win both CAS loops for any
  // value, so no first-sample special case (and no race window) exists.
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

void Histogram::AccumulateTo(Accumulator* acc) const {
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t n = buckets_[i].load(std::memory_order_relaxed);
    acc->buckets[i] += n;
    acc->count += n;
  }
  acc->sum += sum_.load(std::memory_order_relaxed);
  acc->min = std::min(acc->min, min_.load(std::memory_order_relaxed));
  acc->max = std::max(acc->max, max_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::SnapshotFrom(const Accumulator& acc) {
  HistogramSnapshot snapshot;
  snapshot.count = acc.count;
  snapshot.sum = acc.sum;
  // Mask the +/-infinity seeds to 0: always while empty, and in the
  // unlikely race where a concurrent Record has bumped a bucket but not
  // yet updated the extrema.
  snapshot.min = std::isfinite(acc.min) ? acc.min : 0.0;
  snapshot.max = std::isfinite(acc.max) ? acc.max : 0.0;
  if (acc.count == 0) return snapshot;

  const std::array<double, kNumBuckets>& bounds = BucketBounds();
  const auto quantile = [&](double q) {
    // Rank of the q-quantile sample (1-based), clamped into range.
    const int64_t rank = std::clamp<int64_t>(
        static_cast<int64_t>(std::ceil(q * static_cast<double>(acc.count))), 1, acc.count);
    int64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      if (acc.buckets[i] == 0) continue;
      if (seen + acc.buckets[i] >= rank) {
        const double low = bounds[i];
        const double high = i + 1 < kNumBuckets ? bounds[i + 1] : snapshot.max;
        const double frac =
            static_cast<double>(rank - seen) / static_cast<double>(acc.buckets[i]);
        return low + (std::max(high, low) - low) * frac;
      }
      seen += acc.buckets[i];
    }
    return snapshot.max;
  };
  snapshot.p50 = quantile(0.50);
  snapshot.p95 = quantile(0.95);
  snapshot.p99 = quantile(0.99);
  return snapshot;
}

HistogramSnapshot Histogram::Snapshot() const {
  Accumulator acc;
  AccumulateTo(&acc);
  return SnapshotFrom(acc);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

ShardedHistogram::ShardedHistogram(int num_shards)
    : num_shards_(std::max(1, num_shards)),
      shards_(std::make_unique<Histogram[]>(static_cast<size_t>(num_shards_))) {}

void ShardedHistogram::Record(double value) {
  // Sticky per-thread shard: one atomic fetch_add per thread lifetime, then
  // a plain thread-local read. Threads spread round-robin, so the worker
  // pool's recorders land on distinct cache lines.
  static std::atomic<unsigned> next_slot{0};
  thread_local unsigned slot = next_slot.fetch_add(1, std::memory_order_relaxed);
  shards_[slot % static_cast<unsigned>(num_shards_)].Record(value);
}

int64_t ShardedHistogram::Count() const {
  int64_t total = 0;
  for (int s = 0; s < num_shards_; ++s) total += shards_[s].Count();
  return total;
}

HistogramSnapshot ShardedHistogram::Snapshot() const {
  Histogram::Accumulator acc;
  for (int s = 0; s < num_shards_; ++s) shards_[s].AccumulateTo(&acc);
  return Histogram::SnapshotFrom(acc);
}

void ShardedHistogram::Reset() {
  for (int s = 0; s < num_shards_; ++s) shards_[s].Reset();
}

std::string FormatLatencySnapshot(const HistogramSnapshot& snapshot) {
  const auto ms = [](double seconds) { return seconds * 1e3; };
  return StrFormat("p50=%.3fms p95=%.3fms p99=%.3fms mean=%.3fms n=%lld",
                   ms(snapshot.p50), ms(snapshot.p95), ms(snapshot.p99),
                   ms(snapshot.mean()), static_cast<long long>(snapshot.count));
}

}  // namespace microbrowse
