// Copyright 2026 The Microbrowse Authors

#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace microbrowse {

namespace {

constexpr double kFirstBucket = 1e-6;
// 128 buckets at 1.15x growth cover [1e-6, 1e-6 * 1.15^127 ~ 5.6e1] ... the
// exact top is irrelevant: the last bucket absorbs everything beyond it.
constexpr double kGrowth = 1.15;
const double kLogGrowth = std::log(kGrowth);

void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::BucketOf(double value) {
  if (!(value > kFirstBucket)) return 0;  // Also catches NaN.
  const int bucket = static_cast<int>(std::log(value / kFirstBucket) / kLogGrowth) + 1;
  return std::min(bucket, kNumBuckets - 1);
}

double Histogram::BucketLow(int index) {
  if (index <= 0) return 0.0;
  return kFirstBucket * std::pow(kGrowth, index - 1);
}

void Histogram::Record(double value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  // The +/-infinity seeds make the first sample win both CAS loops for any
  // value, so no first-sample special case (and no race window) exists.
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  std::array<int64_t, kNumBuckets> counts;
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  HistogramSnapshot snapshot;
  snapshot.count = total;
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  // Mask the +/-infinity seeds to 0: always while empty, and in the
  // unlikely race where a concurrent Record has bumped a bucket but not
  // yet updated the extrema.
  const double raw_min = min_.load(std::memory_order_relaxed);
  const double raw_max = max_.load(std::memory_order_relaxed);
  snapshot.min = std::isfinite(raw_min) ? raw_min : 0.0;
  snapshot.max = std::isfinite(raw_max) ? raw_max : 0.0;
  if (total == 0) return snapshot;

  const auto quantile = [&](double q) {
    // Rank of the q-quantile sample (1-based), clamped into range.
    const int64_t rank = std::clamp<int64_t>(
        static_cast<int64_t>(std::ceil(q * static_cast<double>(total))), 1, total);
    int64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      if (counts[i] == 0) continue;
      if (seen + counts[i] >= rank) {
        const double low = BucketLow(i);
        const double high = i + 1 < kNumBuckets ? BucketLow(i + 1) : snapshot.max;
        const double frac =
            static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
        return low + (std::max(high, low) - low) * frac;
      }
      seen += counts[i];
    }
    return snapshot.max;
  };
  snapshot.p50 = quantile(0.50);
  snapshot.p95 = quantile(0.95);
  snapshot.p99 = quantile(0.99);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::string FormatLatencySnapshot(const HistogramSnapshot& snapshot) {
  const auto ms = [](double seconds) { return seconds * 1e3; };
  return StrFormat("p50=%.3fms p95=%.3fms p99=%.3fms mean=%.3fms n=%lld",
                   ms(snapshot.p50), ms(snapshot.p95), ms(snapshot.p99),
                   ms(snapshot.mean()), static_cast<long long>(snapshot.count));
}

}  // namespace microbrowse
