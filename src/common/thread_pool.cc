// Copyright 2026 The Microbrowse Authors

#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/failpoint.h"

namespace microbrowse {

namespace {

/// Runs one task, translating escaped exceptions into Status — a worker
/// thread must never unwind into std::terminate.
Status RunGuarded(const std::function<Status()>& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in pool task: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-std exception in pool task");
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(Task{[fn = std::move(task)] {
                            fn();
                            return Status::OK();
                          },
                          /*fallible=*/false});
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitFallible(std::function<Status()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(task), /*fallible=*/true});
    ++in_flight_;
  }
  work_available_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  Status status = std::move(first_failure_);
  first_failure_ = Status::OK();
  has_failure_ = false;
  return status;
}

Status ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < count; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  return Wait();
}

Status ThreadPool::ParallelForFallible(size_t count,
                                       const std::function<Status(size_t)>& fn) {
  for (size_t i = 0; i < count; ++i) {
    SubmitFallible([&fn, i] { return fn(i); });
  }
  return Wait();
}

void ThreadPool::RecordFailure(const Status& status) {
  if (!has_failure_) {
    has_failure_ = true;
    first_failure_ = status;
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    bool skip = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      // Graceful drain: once one fallible task failed, the remaining
      // fallible queue is discarded unrun — its results would be thrown
      // away by the caller anyway. Infallible tasks still run (their side
      // effects were unconditionally requested).
      skip = task.fallible && has_failure_;
    }
    if (!skip) {
      // Injection point for rehearsing worker faults without a crafted task.
      Status status = failpoint::Check("threadpool.task");
      if (status.ok()) status = RunGuarded(task.fn);
      if (!status.ok()) {
        std::unique_lock<std::mutex> lock(mu_);
        RecordFailure(status);
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace microbrowse
