// Copyright 2026 The Microbrowse Authors

#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"

namespace microbrowse {

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kUnavailable;
}

int BackoffDelayMs(const RetryOptions& options, int retry) {
  const double delay = static_cast<double>(options.initial_backoff_ms) *
                       std::pow(options.backoff_multiplier, retry - 1);
  return static_cast<int>(std::min(delay, static_cast<double>(options.max_backoff_ms)));
}

int JitteredBackoffDelayMs(const RetryOptions& options, int retry) {
  const int base = BackoffDelayMs(options, retry);
  const double jitter = std::min(1.0, std::max(0.0, options.jitter));
  if (jitter <= 0.0 || base <= 0) return base;
  Rng* rng = options.rng;
  if (rng == nullptr) {
    // Per-thread stream so concurrent retriers do not share (or contend
    // on) one generator; seeded from the thread identity so different
    // clients of the same process desynchronize — the entire point of
    // jitter.
    thread_local Rng local(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) ^ 0x6d625f726aULL);
    rng = &local;
  }
  const double fixed = base * (1.0 - jitter);
  return static_cast<int>(fixed + rng->NextDouble() * (base - fixed));
}

namespace internal {

void SleepForMs(int ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void LogRetry(const Status& status, int retry, int delay_ms) {
  MB_LOG(kWarning) << "transient failure (" << status.ToString() << "); retry " << retry
                   << " in " << delay_ms << "ms";
}

}  // namespace internal

Status RetryWithBackoff(const std::function<Status()>& fn, const RetryOptions& options) {
  Status status = fn();
  for (int retry = 1; retry < options.max_attempts && !status.ok() && IsTransient(status);
       ++retry) {
    const int delay_ms = JitteredBackoffDelayMs(options, retry);
    internal::LogRetry(status, retry, delay_ms);
    internal::SleepForMs(delay_ms);
    status = fn();
  }
  return status;
}

}  // namespace microbrowse
