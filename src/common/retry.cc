// Copyright 2026 The Microbrowse Authors

#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"

namespace microbrowse {

bool IsTransient(const Status& status) { return status.code() == StatusCode::kIOError; }

int BackoffDelayMs(const RetryOptions& options, int retry) {
  const double delay = static_cast<double>(options.initial_backoff_ms) *
                       std::pow(options.backoff_multiplier, retry - 1);
  return static_cast<int>(std::min(delay, static_cast<double>(options.max_backoff_ms)));
}

namespace internal {

void SleepForMs(int ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void LogRetry(const Status& status, int retry, int delay_ms) {
  MB_LOG(kWarning) << "transient failure (" << status.ToString() << "); retry " << retry
                   << " in " << delay_ms << "ms";
}

}  // namespace internal

Status RetryWithBackoff(const std::function<Status()>& fn, const RetryOptions& options) {
  Status status = fn();
  for (int retry = 1; retry < options.max_attempts && !status.ok() && IsTransient(status);
       ++retry) {
    const int delay_ms = BackoffDelayMs(options, retry);
    internal::LogRetry(status, retry, delay_ms);
    internal::SleepForMs(delay_ms);
    status = fn();
  }
  return status;
}

}  // namespace microbrowse
