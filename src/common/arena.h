// Copyright 2026 The Microbrowse Authors
//
// A bump-pointer arena for the serving hot path. Allocation is a pointer
// increment inside the current block; Reset() rewinds to the first block
// without returning memory to the heap, so a long-lived arena reaches a
// steady state where parsing and response building perform zero heap
// allocations per request (DESIGN.md section 17).
//
// Not thread-safe: each arena belongs to exactly one thread (or one
// request scratch object). Pointers handed out stay valid until Reset()
// or destruction — moving the Arena does NOT invalidate them, because the
// blocks themselves are heap allocations owned by unique_ptr.

#ifndef MICROBROWSE_COMMON_ARENA_H_
#define MICROBROWSE_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace microbrowse {

class Arena {
 public:
  explicit Arena(size_t block_bytes = 4096)
      : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `n` bytes (unaligned; callers store character data). The
  /// returned pointer stays valid until Reset() or destruction.
  char* Allocate(size_t n) {
    while (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      if (block.size - offset_ >= n) {
        char* out = block.data.get() + offset_;
        offset_ += n;
        return out;
      }
      // Oversized request relative to this block's remaining space: move on
      // to the next retained block (after Reset they may already exist).
      ++current_;
      offset_ = 0;
    }
    Block block;
    block.size = std::max(block_bytes_, n);
    block.data.reset(new char[block.size]);
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
    offset_ = n;
    return blocks_[current_].data.get();
  }

  /// Copies `text` into the arena and returns a stable view of the copy.
  std::string_view Dup(std::string_view text) {
    if (text.empty()) return std::string_view();
    char* out = Allocate(text.size());
    std::memcpy(out, text.data(), text.size());
    return std::string_view(out, text.size());
  }

  /// Rewinds to the start, keeping every block for reuse. Everything
  /// previously allocated becomes dangling.
  void Reset() {
    current_ = 0;
    offset_ = 0;
  }

  /// Test/metrics hooks.
  size_t block_count() const { return blocks_.size(); }
  size_t retained_bytes() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;
  size_t offset_ = 0;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_ARENA_H_
