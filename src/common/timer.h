// Copyright 2026 The Microbrowse Authors
//
// Wall-clock timing for experiment drivers and benchmarks.

#ifndef MICROBROWSE_COMMON_TIMER_H_
#define MICROBROWSE_COMMON_TIMER_H_

#include <chrono>

namespace microbrowse {

/// Measures elapsed wall time from construction (or the last Reset).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_TIMER_H_
