// Copyright 2026 The Microbrowse Authors
//
// Minimal leveled logging to stderr. Long-running experiment drivers use
// this for progress reporting; library code logs sparingly (warnings on
// recoverable oddities only — errors are reported through Status).

#ifndef MICROBROWSE_COMMON_LOGGING_H_
#define MICROBROWSE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace microbrowse {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Collects a message and emits it (with timestamp, level and location) on
/// destruction. Use via the MB_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level.
class NullLogStream {
 public:
  template <typename T>
  NullLogStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define MB_LOG(level)                                                       \
  if (::microbrowse::LogLevel::level < ::microbrowse::GetLogLevel()) {      \
  } else                                                                    \
    ::microbrowse::internal::LogMessage(::microbrowse::LogLevel::level,     \
                                        __FILE__, __LINE__)                 \
        .stream()

/// Fatal check macro: aborts with a message when `cond` is false. Used for
/// programmer errors (contract violations), not data errors.
#define MB_CHECK(cond)                                                        \
  if (cond) {                                                                 \
  } else                                                                      \
    ::microbrowse::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {

/// Prints the failed condition and aborts in the destructor.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_LOGGING_H_
