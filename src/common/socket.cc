// Copyright 2026 The Microbrowse Authors

#include "common/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"

namespace microbrowse {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> TcpListen(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return socket;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> TcpAccept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    // ECONNABORTED: the peer reset between the handshake and our accept —
    // a fact about that one connection, not the listener; take the next.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Errno("accept");
  }
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("TcpConnect: not an IPv4 address: '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    if (errno == EINTR) continue;
    return Errno("connect");
  }
  SetNoDelay(fd);
  return socket;
}

Status SetRecvTimeoutMs(const Socket& socket, int64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Result<bool> WaitReadable(const Socket& socket, int64_t timeout_ms) {
  pollfd pfd{};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  for (;;) {
    const int n = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (n > 0) return true;
    if (n == 0) return false;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

Status SendAll(const Socket& socket, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(socket.fd(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status SendAllTimed(const Socket& socket, std::string_view data, int64_t timeout_ms) {
  if (timeout_ms <= 0) return SendAll(socket, data);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t sent = 0;
  while (sent < data.size()) {
    // Wait for buffer space first: POLLOUT guarantees the following send
    // accepts at least one byte, so each iteration either makes progress or
    // charges the remaining budget. Total wall time is bounded by
    // timeout_ms even against a peer that drains one byte per poll.
    const auto now = std::chrono::steady_clock::now();
    const int64_t remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    if (remaining_ms <= 0) {
      return Status::DeadlineExceeded("send timed out: peer not reading");
    }
    pollfd pfd{};
    pfd.fd = socket.fd();
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("send timed out: peer not reading");
    }
    const ssize_t n =
        ::send(socket.fd(), data.data() + sent, data.size() - sent,
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<size_t> SendSome(const Socket& socket, std::string_view data) {
  for (;;) {
    const ssize_t n =
        ::send(socket.fd(), data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("send");
  }
}

Status SetNonBlocking(const Socket& socket, bool non_blocking) {
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int wanted = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(socket.fd(), F_SETFL, wanted) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Result<Socket> AcceptNonBlocking(const Socket& listener) {
  for (;;) {
    const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();  // Backlog empty.
    return Errno("accept");
  }
}

Status SetSendBufferBytes(const Socket& socket, int bytes) {
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    return Errno("setsockopt(SO_SNDBUF)");
  }
  return Status::OK();
}

Result<bool> LineReader::ReadLine(std::string* line) {
  for (;;) {
    const size_t newline = buffer_.find('\n', start_);
    if (newline != std::string::npos) {
      size_t end = newline;
      if (end > start_ && buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, start_, end - start_);
      start_ = newline + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (start_ > 64 * 1024 && start_ * 2 > buffer_.size()) {
        buffer_.erase(0, start_);
        start_ = 0;
      }
      return true;
    }
    // No complete line buffered: bound the partial line before reading
    // more, so a peer that never sends '\n' cannot grow the buffer
    // without limit.
    if (buffer_.size() - start_ >= max_line_bytes_) {
      return Status::IOError(
          StrFormat("line exceeds maximum length (%zu bytes)", max_line_bytes_));
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      total_bytes_read_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n == 0) {
      if (start_ < buffer_.size()) {
        return Status::IOError("connection closed mid-line");
      }
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO elapsed with no data. Not a connection failure: the
      // caller's idle/shutdown policy decides what a quiet interval means.
      return Status::DeadlineExceeded("recv timed out");
    }
    return Errno("recv");
  }
}

}  // namespace microbrowse
