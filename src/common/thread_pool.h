// Copyright 2026 The Microbrowse Authors
//
// A small fixed-size thread pool. Cross-validation folds and corpus shards
// are embarrassingly parallel; the pool keeps that parallelism explicit and
// bounded. On single-core hosts a pool of one thread degenerates gracefully.
//
// Error handling: tasks may return Status (SubmitFallible / the fallible
// ParallelFor), and a failing task no longer takes the process down — the
// pool records the first failure, skips still-queued fallible tasks (the
// queue drains gracefully), and Wait() surfaces that first Status to the
// caller. Exceptions escaping a task are captured as kInternal.

#ifndef MICROBROWSE_COMMON_THREAD_POOL_H_
#define MICROBROWSE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace microbrowse {

/// Fixed-size worker pool executing std::function tasks FIFO.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Must not be called after destruction
  /// began. Infallible tasks always run, even after another task failed.
  void Submit(std::function<void()> task);

  /// Enqueues a fallible task. The first non-OK return (or escaped
  /// exception) is recorded and reported by the next Wait(); once a failure
  /// is recorded, fallible tasks still in the queue are drained without
  /// running (their work would be discarded anyway).
  void SubmitFallible(std::function<Status()> task);

  /// Blocks until every submitted task has finished or been drained, then
  /// returns the first recorded failure (OK when none). The failure is
  /// cleared, so the pool is reusable for another round of work.
  Status Wait();

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, count) across the pool and waits. `fn` must
  /// be safe to invoke concurrently for distinct indices. The returned
  /// Status reports failures from previously submitted fallible tasks (the
  /// infallible `fn` itself cannot fail).
  Status ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Fallible variant: runs `fn(i)` for i in [0, count), waits, and returns
  /// the first failure. After a failure, not-yet-started indices are
  /// skipped. (Distinct name: a Status-returning lambda would otherwise be
  /// ambiguous against the infallible overload.)
  Status ParallelForFallible(size_t count, const std::function<Status(size_t)>& fn);

 private:
  struct Task {
    std::function<Status()> fn;
    bool fallible = false;
  };

  void WorkerLoop();
  void RecordFailure(const Status& status);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  bool has_failure_ = false;
  Status first_failure_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_THREAD_POOL_H_
