// Copyright 2026 The Microbrowse Authors
//
// A small fixed-size thread pool. Cross-validation folds and corpus shards
// are embarrassingly parallel; the pool keeps that parallelism explicit and
// bounded. On single-core hosts a pool of one thread degenerates gracefully.

#ifndef MICROBROWSE_COMMON_THREAD_POOL_H_
#define MICROBROWSE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace microbrowse {

/// Fixed-size worker pool executing std::function tasks FIFO.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Must not be called after Wait began
  /// destruction. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, count) across the pool and waits. `fn` must
  /// be safe to invoke concurrently for distinct indices.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_THREAD_POOL_H_
