// Copyright 2026 The Microbrowse Authors

#include "common/failpoint.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace microbrowse {
namespace failpoint {

namespace internal {
std::atomic<int> g_active_count{0};
}  // namespace internal

namespace {

/// Mutable per-failpoint state behind the registry mutex.
struct Armed {
  Spec spec;
  int64_t hits = 0;
  int64_t fires = 0;
  Rng rng{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Armed> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;  // Leaked: usable during shutdown.
  return *registry;
}

/// Arms failpoints from MB_FAILPOINTS once per process, before main() in
/// practice (first static use of this translation unit). A malformed value
/// is a loud warning, not a crash: fault injection must never take down a
/// production binary on its own.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("MB_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    const Status status = ActivateFromList(env);
    if (!status.ok()) {
      MB_LOG(kWarning) << "ignoring malformed MB_FAILPOINTS entry: " << status.ToString();
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void Activate(const std::string& name, const Spec& spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.points.insert_or_assign(name, Armed{});
  it->second.spec = spec;
  // Deterministic per-point stream: same name + spec order => same firing
  // pattern on every run, keeping fault-injected tests reproducible.
  it->second.rng.Seed(Fnv1a64(name) ^ 0x6d625f6670ULL);
  if (inserted) {
    internal::g_active_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Deactivate(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(name) > 0) {
    internal::g_active_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DeactivateAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  internal::g_active_count.fetch_sub(static_cast<int>(registry.points.size()),
                                     std::memory_order_relaxed);
  registry.points.clear();
}

bool IsActive(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.points.count(name) > 0;
}

int64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it != registry.points.end() ? it->second.hits : 0;
}

int64_t FireCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it != registry.points.end() ? it->second.fires : 0;
}

Status Check(std::string_view name) {
  if (!internal::AnyActive()) return Status::OK();
  Registry& registry = GetRegistry();
  // The firing decision happens under the registry lock; the injected
  // *latency* must not — a delay failpoint sleeping with the mutex held
  // would serialize every other failpoint in the process behind it.
  int64_t delay_ms = 0;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(std::string(name));
    if (it == registry.points.end()) return Status::OK();
    Armed& armed = it->second;
    ++armed.hits;
    bool fire = false;
    switch (armed.spec.mode) {
      case Spec::Mode::kAlways:
        fire = true;
        break;
      case Spec::Mode::kNever:
        break;
      case Spec::Mode::kProbability:
        fire = armed.rng.Bernoulli(armed.spec.probability);
        break;
      case Spec::Mode::kNth:
        fire = armed.hits == armed.spec.nth;
        break;
      case Spec::Mode::kDelay:
        fire = true;
        break;
    }
    if (!fire) return Status::OK();
    ++armed.fires;
    if (armed.spec.mode == Spec::Mode::kDelay) {
      delay_ms = armed.spec.delay_ms;
    } else {
      injected = Status(armed.spec.code,
                        StrFormat("failpoint '%.*s' fired (hit %lld)",
                                  static_cast<int>(name.size()), name.data(),
                                  static_cast<long long>(armed.hits)));
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return injected;
}

Result<Spec> ParseSpec(const std::string& text) {
  Spec spec;
  if (text == "always") {
    spec.mode = Spec::Mode::kAlways;
    return spec;
  }
  if (text == "off") {
    spec.mode = Spec::Mode::kNever;
    return spec;
  }
  std::string value = text;
  bool explicit_prob = false;
  bool explicit_nth = false;
  if (StartsWith(text, "p:")) {
    explicit_prob = true;
    value = text.substr(2);
  } else if (StartsWith(text, "nth:")) {
    explicit_nth = true;
    value = text.substr(4);
  } else if (StartsWith(text, "delay:")) {
    value = text.substr(6);
    int64_t delay_ms = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), delay_ms);
    if (ec != std::errc() || ptr != value.data() + value.size() || delay_ms < 0) {
      return Status::InvalidArgument(
          "failpoint delay must be a non-negative integer of milliseconds: '" + text + "'");
    }
    spec.mode = Spec::Mode::kDelay;
    spec.delay_ms = delay_ms;
    return spec;
  }
  const bool looks_float = value.find('.') != std::string::npos;
  if (explicit_prob || (!explicit_nth && looks_float)) {
    double probability = 0.0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), probability);
    if (ec != std::errc() || ptr != value.data() + value.size() || probability < 0.0 ||
        probability > 1.0) {
      return Status::InvalidArgument("failpoint probability must be in [0,1]: '" + text + "'");
    }
    spec.mode = Spec::Mode::kProbability;
    spec.probability = probability;
    return spec;
  }
  int64_t nth = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), nth);
  if (ec != std::errc() || ptr != value.data() + value.size() || nth < 1) {
    return Status::InvalidArgument("failpoint nth must be a positive integer: '" + text + "'");
  }
  spec.mode = Spec::Mode::kNth;
  spec.nth = nth;
  return spec;
}

Status ActivateFromList(const std::string& list) {
  for (const std::string& entry : Split(list, ',')) {
    const std::string trimmed(StripAsciiWhitespace(entry));
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected name=spec, got '" + trimmed + "'");
    }
    MB_ASSIGN_OR_RETURN(const Spec spec, ParseSpec(trimmed.substr(eq + 1)));
    Activate(trimmed.substr(0, eq), spec);
  }
  return Status::OK();
}

std::vector<std::string> ActiveNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const auto& [name, armed] : registry.points) names.push_back(name);
  return names;
}

}  // namespace failpoint
}  // namespace microbrowse
