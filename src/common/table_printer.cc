// Copyright 2026 The Microbrowse Authors

#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

namespace microbrowse {

void TablePrinter::Print(std::ostream& os) const {
  const size_t columns = header_.size();
  std::vector<size_t> widths(columns, 0);
  for (size_t c = 0; c < columns; ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_cell = [&os, &widths](size_t c, const std::string& cell) {
    if (c == 0) {
      os << cell << std::string(widths[c] - cell.size(), ' ');
    } else {
      os << std::string(widths[c] - cell.size(), ' ') << cell;
    }
  };

  if (!title_.empty()) os << title_ << '\n';
  for (size_t c = 0; c < columns; ++c) {
    if (c > 0) os << "  ";
    print_cell(c, header_[c]);
  }
  os << '\n';
  size_t total = 0;
  for (size_t c = 0; c < columns; ++c) total += widths[c] + (c > 0 ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns; ++c) {
      if (c > 0) os << "  ";
      print_cell(c, c < row.size() ? row[c] : std::string());
    }
    os << '\n';
  }
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace microbrowse
