// Copyright 2026 The Microbrowse Authors
//
// Hashing utilities shared by the vocabulary, feature registry and
// statistics database. All hashes are deterministic across runs (no
// per-process salting) so that feature ids are stable in logs and tests.

#ifndef MICROBROWSE_COMMON_HASH_H_
#define MICROBROWSE_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace microbrowse {

/// 64-bit FNV-1a over a byte string.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV-1a/64 folded eight bytes at a time: each little-endian 64-bit word
/// (zero-padded tail) is XORed in and multiplied once, instead of per byte.
/// Not wire-compatible with Fnv1a64 — a distinct checksum function with the
/// same diffusion per multiply but ~8x the throughput, used for bulk
/// payloads (mbpack sections and whole files) where the serial multiply
/// chain of byte-at-a-time FNV would dominate cold-start time.
inline uint64_t Fnv1a64Wide(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * 0x100000001b3ULL;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p, n);
    // Fold the byte count in with the tail so "abc" and "abc\0" differ.
    h = (h ^ w ^ (static_cast<uint64_t>(n) << 56)) * 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit finalizer (MurmurHash3 fmix64).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hashes a string then combines it into `seed`.
inline uint64_t HashCombine(uint64_t seed, std::string_view value) {
  return HashCombine(seed, Fnv1a64(value));
}

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_HASH_H_
