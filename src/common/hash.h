// Copyright 2026 The Microbrowse Authors
//
// Hashing utilities shared by the vocabulary, feature registry and
// statistics database. All hashes are deterministic across runs (no
// per-process salting) so that feature ids are stable in logs and tests.

#ifndef MICROBROWSE_COMMON_HASH_H_
#define MICROBROWSE_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace microbrowse {

/// 64-bit FNV-1a over a byte string.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit finalizer (MurmurHash3 fmix64).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hashes a string then combines it into `seed`.
inline uint64_t HashCombine(uint64_t seed, std::string_view value) {
  return HashCombine(seed, Fnv1a64(value));
}

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_HASH_H_
