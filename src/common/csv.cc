// Copyright 2026 The Microbrowse Authors

#include "common/csv.h"

#include "common/string_util.h"

namespace microbrowse {

std::string CsvEscape(std::string_view field) {
  const bool needs_quoting = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Result<std::vector<std::string>> ParseCsvRecord(std::string_view record) {
  std::vector<std::string> fields;
  std::string field;
  size_t pos = 0;
  const size_t n = record.size();
  while (true) {
    field.clear();
    if (pos < n && record[pos] == '"') {
      // Quoted field: runs to the matching quote; "" is a literal quote.
      ++pos;
      bool closed = false;
      while (pos < n) {
        const char c = record[pos++];
        if (c != '"') {
          field.push_back(c);
          continue;
        }
        if (pos < n && record[pos] == '"') {
          field.push_back('"');
          ++pos;
          continue;
        }
        closed = true;
        break;
      }
      if (!closed) {
        return Status::InvalidArgument("CSV: unterminated quoted field");
      }
      if (pos < n && record[pos] != ',') {
        return Status::InvalidArgument(
            StrFormat("CSV: unexpected character after closing quote at byte %zu", pos));
      }
    } else {
      // Unquoted field: runs to the next comma; bare quotes are invalid.
      while (pos < n && record[pos] != ',') {
        if (record[pos] == '"') {
          return Status::InvalidArgument(
              StrFormat("CSV: quote inside unquoted field at byte %zu", pos));
        }
        field.push_back(record[pos++]);
      }
    }
    fields.push_back(field);
    if (pos >= n) break;
    ++pos;  // Consume the comma; a trailing comma yields a final empty field.
    if (pos == n) {
      fields.push_back(std::string());
      break;
    }
  }
  return fields;
}

Status CsvWriter::Open(const std::string& path) {
  if (out_.is_open()) {
    return Status::FailedPrecondition("CsvWriter already open for " + path_);
  }
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) return Status::IOError("cannot open " + path);
  path_ = path;
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return Status::FailedPrecondition("CsvWriter not open");
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << CsvEscape(cells[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IOError("write failed for " + path_);
  return Status::OK();
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.close();
  if (out_.fail()) return Status::IOError("close failed for " + path_);
  return Status::OK();
}

}  // namespace microbrowse
