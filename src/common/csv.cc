// Copyright 2026 The Microbrowse Authors

#include "common/csv.h"

namespace microbrowse {

std::string CsvEscape(std::string_view field) {
  const bool needs_quoting = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Status CsvWriter::Open(const std::string& path) {
  if (out_.is_open()) {
    return Status::FailedPrecondition("CsvWriter already open for " + path_);
  }
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) return Status::IOError("cannot open " + path);
  path_ = path;
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return Status::FailedPrecondition("CsvWriter not open");
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << CsvEscape(cells[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IOError("write failed for " + path_);
  return Status::OK();
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.close();
  if (out_.fail()) return Status::IOError("close failed for " + path_);
  return Status::OK();
}

}  // namespace microbrowse
