// Copyright 2026 The Microbrowse Authors
//
// Numerics shared by the learners, click models and statistics database:
// stable logistic transforms, streaming moments, and the two-proportion
// z-test used to gate creative pairs into the corpus.

#ifndef MICROBROWSE_COMMON_MATH_UTIL_H_
#define MICROBROWSE_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace microbrowse {

/// Numerically stable logistic function 1 / (1 + exp(-x)).
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// Stable log(1 + exp(x)).
inline double Log1pExp(double x) {
  if (x > 35.0) return x;
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

/// log(p / (1-p)) with clamping away from the boundaries.
inline double Logit(double p, double epsilon = 1e-12) {
  p = std::clamp(p, epsilon, 1.0 - epsilon);
  return std::log(p / (1.0 - p));
}

/// Binary cross-entropy for a single prediction, with probability clamping.
inline double LogLoss(double label, double predicted, double epsilon = 1e-12) {
  predicted = std::clamp(predicted, epsilon, 1.0 - epsilon);
  return -(label * std::log(predicted) + (1.0 - label) * std::log(1.0 - predicted));
}

/// Stable log(sum_i exp(x_i)); returns -inf for an empty input.
double LogSumExp(const std::vector<double>& values);

/// Standard-normal cumulative distribution function.
inline double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Welford streaming mean/variance accumulator.
class OnlineStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of a two-proportion z-test.
struct TwoProportionTest {
  double z = 0.0;        ///< Signed z statistic (positive when p1 > p2).
  double p_value = 1.0;  ///< Two-sided p-value.
};

/// Tests H0: p1 == p2 given successes/trials for two samples. Degenerate
/// inputs (zero trials, pooled variance zero) return z = 0, p = 1.
TwoProportionTest TwoProportionZTest(int64_t successes1, int64_t trials1, int64_t successes2,
                                     int64_t trials2);

/// Wilson score interval lower bound for a binomial proportion — a robust
/// small-sample CTR estimate used in ranking diagnostics.
double WilsonLowerBound(int64_t successes, int64_t trials, double z = 1.96);

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_MATH_UTIL_H_
