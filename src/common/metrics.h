// Copyright 2026 The Microbrowse Authors
//
// Process-wide metric registry shared by the training pipeline, the batch
// tools and the online server. Three metric kinds:
//
//   Counter — monotonically increasing int64 (requests, folds trained)
//   Gauge   — last-write-wins double (feature counts, queue depth)
//   ShardedHistogram — latency / size distributions (common/histogram.h)
//
// Metrics are created on first use by name and live for the registry's
// lifetime, so call sites can cache the returned pointer in a static and
// update it with a single relaxed atomic op. The registry itself is
// lock-sharded: the name -> metric map is split over 16 shards, each with
// its own mutex, so concurrent first-registrations (and snapshot scrapes)
// do not serialize the process behind one lock. After the first lookup no
// registry lock is touched on any update path.
//
// Naming scheme: `mb.<subsystem>.<name>` with dot separators, e.g.
// `mb.serve.score_pair.requests`, `mb.train.epochs`. Prometheus rendering
// (RenderPrometheusText) maps dots to underscores.
//
// Determinism contract: instrumented library code must update metrics at
// work-item granularity (per fold, per epoch, per request), never at
// thread-chunk granularity, so counter values are identical for any
// --train-threads setting. tests/ml/determinism_test.cc asserts this.

#ifndef MICROBROWSE_COMMON_METRICS_H_
#define MICROBROWSE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"

namespace microbrowse {

/// Monotonic event counter. Updates are one relaxed atomic add.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-sharded name -> metric registry. Thread-safe; returned pointers
/// stay valid for the registry's lifetime (metrics are never deleted).
class MetricRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// One metric's state at snapshot time.
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    int64_t counter_value = 0;
    double gauge_value = 0.0;
    HistogramSnapshot histogram;
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide default registry. Library instrumentation (train
  /// pipeline, corpus generator) records here; servers export it.
  static MetricRegistry& Global();

  /// Finds or creates the named metric. On a kind clash (the name already
  /// exists as a different kind) a warning is logged and a detached dummy
  /// metric is returned, so the caller never crashes and the original
  /// metric keeps its kind.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  ShardedHistogram* GetHistogram(std::string_view name, int num_shards = 8);

  /// Consistent-enough view of every registered metric, sorted by name.
  /// Values are read with relaxed atomics; no update is ever torn (each
  /// scalar is a single atomic), though concurrent updates may or may not
  /// be included.
  std::vector<Entry> Snapshot() const;

  /// Prometheus text exposition (version 0.0.4): counters and gauges as
  /// single samples, histograms as summaries with quantile labels plus
  /// _sum/_count. Metric names have dots mapped to underscores.
  std::string RenderPrometheusText() const;

  /// Zeroes every registered metric (pointers stay valid). For tests and
  /// between-phase bench resets; not atomic against concurrent updates.
  void ResetAllForTest();

  /// Number of registered metrics.
  size_t size() const;

 private:
  struct Metric {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<ShardedHistogram> histogram;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Metric> metrics;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(std::string_view name);
  const Shard& ShardFor(std::string_view name) const;
  Metric* FindOrCreate(std::string_view name, Kind kind, int num_shards);

  std::array<Shard, kNumShards> shards_;
};

/// Sanitizes a dotted metric name into the Prometheus charset
/// [a-zA-Z0-9_:] ("mb.serve.score_pair.requests" ->
/// "mb_serve_score_pair_requests").
std::string PrometheusName(std::string_view name);

/// Eagerly registers the canonical train-stage metric names (mb.corpus.*,
/// mb.stats.*, mb.train.*, mb.cv.*) into `registry`, so a process that
/// never trains (mbserved) still exports them at zero — scrapers see a
/// stable metric set across the fleet.
void PreregisterPipelineMetrics(MetricRegistry* registry);

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_METRICS_H_
