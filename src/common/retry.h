// Copyright 2026 The Microbrowse Authors
//
// Retry with exponential backoff for transient failures. Artifact writes
// and checkpoint persistence go through this wrapper so that a flaky disk
// or a transiently full volume degrades a pipeline run into a short stall
// instead of a lost night of cross-validation.

#ifndef MICROBROWSE_COMMON_RETRY_H_
#define MICROBROWSE_COMMON_RETRY_H_

#include <functional>

#include "common/result.h"
#include "common/status.h"

namespace microbrowse {

/// Backoff schedule: attempt k (1-based, after the first failure) sleeps
/// `initial_backoff_ms * multiplier^(k-1)`, capped at `max_backoff_ms`.
struct RetryOptions {
  int max_attempts = 3;           ///< Total attempts, including the first.
  int initial_backoff_ms = 5;     ///< Sleep before the first retry.
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 2000;
};

/// Default transience policy: IOError is retryable (disks flake; the
/// failpoint framework injects it for exactly that reason), everything else
/// is a deterministic failure that retrying cannot fix.
bool IsTransient(const Status& status);

/// Delay before retry number `retry` (1-based) under `options`.
int BackoffDelayMs(const RetryOptions& options, int retry);

namespace internal {
/// Sleeps for `ms` milliseconds (no-op for ms <= 0); hoisted out of the
/// header so tests can keep backoff at zero without timing dependencies.
void SleepForMs(int ms);
/// Logs one retry decision at warning level.
void LogRetry(const Status& status, int retry, int delay_ms);
}  // namespace internal

/// Runs `fn` up to `options.max_attempts` times, sleeping with exponential
/// backoff between attempts, while it returns a transient error (per
/// IsTransient). Returns the first success or the last failure.
Status RetryWithBackoff(const std::function<Status()>& fn, const RetryOptions& options = {});

/// Result<T> variant of RetryWithBackoff.
template <typename T>
Result<T> RetryWithBackoff(const std::function<Result<T>()>& fn,
                           const RetryOptions& options = {}) {
  Result<T> result = fn();
  for (int retry = 1; retry < options.max_attempts && !result.ok() &&
                      IsTransient(result.status());
       ++retry) {
    const int delay_ms = BackoffDelayMs(options, retry);
    internal::LogRetry(result.status(), retry, delay_ms);
    internal::SleepForMs(delay_ms);
    result = fn();
  }
  return result;
}

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_RETRY_H_
