// Copyright 2026 The Microbrowse Authors
//
// Retry with exponential backoff for transient failures. Artifact writes
// and checkpoint persistence go through this wrapper so that a flaky disk
// or a transiently full volume degrades a pipeline run into a short stall
// instead of a lost night of cross-validation.

#ifndef MICROBROWSE_COMMON_RETRY_H_
#define MICROBROWSE_COMMON_RETRY_H_

#include <functional>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace microbrowse {

/// Backoff schedule: attempt k (1-based, after the first failure) sleeps
/// `initial_backoff_ms * multiplier^(k-1)`, capped at `max_backoff_ms`.
/// With `jitter > 0` a fraction of each delay is drawn uniformly at random
/// ("full jitter" at 1.0), so a fleet of clients that failed together does
/// not thunder back in lockstep.
struct RetryOptions {
  int max_attempts = 3;           ///< Total attempts, including the first.
  int initial_backoff_ms = 5;     ///< Sleep before the first retry.
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 2000;
  /// Fraction of each delay that is randomized, in [0,1]. 0 keeps the
  /// fully deterministic schedule (the default — artifact-write call sites
  /// rely on bitwise-reproducible behavior); 1 draws the whole delay from
  /// uniform(0, schedule), AWS-style full jitter. Serve-path retries
  /// default this on (see serve/client.h).
  double jitter = 0.0;
  /// RNG the jittered fraction draws from; tests inject a seeded Rng for
  /// deterministic schedules. nullptr uses a process-local thread-local
  /// generator.
  Rng* rng = nullptr;
};

/// Default transience policy: IOError is retryable (disks flake; the
/// failpoint framework injects it for exactly that reason), and Unavailable
/// is an explicit "try again later" from a server (draining, overloaded).
/// Everything else is a deterministic failure that retrying cannot fix.
bool IsTransient(const Status& status);

/// Deterministic delay before retry number `retry` (1-based) under
/// `options` — the schedule prior to jitter.
int BackoffDelayMs(const RetryOptions& options, int retry);

/// BackoffDelayMs with the options' jitter applied: the deterministic
/// schedule scaled so that `jitter` of it is drawn from uniform(0, x).
/// Equals BackoffDelayMs exactly when jitter == 0.
int JitteredBackoffDelayMs(const RetryOptions& options, int retry);

namespace internal {
/// Sleeps for `ms` milliseconds (no-op for ms <= 0); hoisted out of the
/// header so tests can keep backoff at zero without timing dependencies.
void SleepForMs(int ms);
/// Logs one retry decision at warning level.
void LogRetry(const Status& status, int retry, int delay_ms);
}  // namespace internal

/// Runs `fn` up to `options.max_attempts` times, sleeping with exponential
/// backoff between attempts, while it returns a transient error (per
/// IsTransient). Returns the first success or the last failure.
Status RetryWithBackoff(const std::function<Status()>& fn, const RetryOptions& options = {});

/// Result<T> variant of RetryWithBackoff.
template <typename T>
Result<T> RetryWithBackoff(const std::function<Result<T>()>& fn,
                           const RetryOptions& options = {}) {
  Result<T> result = fn();
  for (int retry = 1; retry < options.max_attempts && !result.ok() &&
                      IsTransient(result.status());
       ++retry) {
    const int delay_ms = JitteredBackoffDelayMs(options, retry);
    internal::LogRetry(result.status(), retry, delay_ms);
    internal::SleepForMs(delay_ms);
    result = fn();
  }
  return result;
}

}  // namespace microbrowse

#endif  // MICROBROWSE_COMMON_RETRY_H_
