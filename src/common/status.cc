// Copyright 2026 The Microbrowse Authors

#include "common/status.h"

namespace microbrowse {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out.append(": ");
  out.append(message_);
  return out;
}

}  // namespace microbrowse
