// Copyright 2026 The Microbrowse Authors
//
// Snippet tokenization. Creative text like "No reservation costs. Great
// rates!" becomes the token stream {no, reservation, costs, great, rates}.
// Tokens such as "20%" and "$99" are kept whole because offer markers are
// exactly the kind of salient term the micro-browsing model cares about.

#ifndef MICROBROWSE_TEXT_TOKENIZER_H_
#define MICROBROWSE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace microbrowse {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// Lower-case ASCII letters in tokens.
  bool lowercase = true;
  /// Keep '%' and '$' attached to numeric tokens ("20%", "$99").
  bool keep_offer_symbols = true;
};

/// Splits text into word tokens. Stateless and cheap to copy.
class Tokenizer {
 public:
  Tokenizer() = default;
  explicit Tokenizer(TokenizerOptions options) : options_(options) {}

  /// Tokenizes one line of snippet text.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_TEXT_TOKENIZER_H_
