// Copyright 2026 The Microbrowse Authors

#include "text/tokenizer.h"

#include <cctype>

namespace microbrowse {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '\'';
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  const size_t n = text.size();
  size_t i = 0;
  while (i < n) {
    // '$' opens a token when followed by an alphanumeric ("$99").
    const bool dollar_start = options_.keep_offer_symbols && text[i] == '$' && i + 1 < n &&
                              IsWordChar(text[i + 1]);
    if (!IsWordChar(text[i]) && !dollar_start) {
      ++i;
      continue;
    }
    std::string token;
    if (dollar_start) {
      token.push_back('$');
      ++i;
    }
    while (i < n && IsWordChar(text[i])) {
      char c = text[i];
      if (options_.lowercase) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      token.push_back(c);
      ++i;
    }
    // '%' closes a token when it directly follows it ("20%").
    if (options_.keep_offer_symbols && i < n && text[i] == '%') {
      token.push_back('%');
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace microbrowse
