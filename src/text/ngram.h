// Copyright 2026 The Microbrowse Authors
//
// N-gram extraction over snippets. The paper's term features are unigrams,
// bigrams and trigrams, each carrying its line number and within-line
// position (Section IV-A).

#ifndef MICROBROWSE_TEXT_NGRAM_H_
#define MICROBROWSE_TEXT_NGRAM_H_

#include <vector>

#include "text/snippet.h"

namespace microbrowse {

/// Extracts all n-grams of length 1..max_n from every line of `snippet`,
/// in (line, pos, len) lexicographic order.
std::vector<TermSpan> ExtractNGrams(const Snippet& snippet, int max_n = 3);

/// Extracts n-grams of length 1..max_n from a single token window
/// [begin, begin+count) of line `line`. Used to enumerate phrase candidates
/// inside diff regions.
std::vector<TermSpan> ExtractNGramsInWindow(const Snippet& snippet, int line, int begin, int count,
                                            int max_n = 3);

}  // namespace microbrowse

#endif  // MICROBROWSE_TEXT_NGRAM_H_
