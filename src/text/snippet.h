// Copyright 2026 The Microbrowse Authors
//
// The snippet representation used throughout the micro-browsing model: a
// result snippet (or ad creative) is a short list of lines, each line a
// sequence of word tokens with meaningful positions. Positions are 0-based
// internally; the paper's prose uses 1-based positions.

#ifndef MICROBROWSE_TEXT_SNIPPET_H_
#define MICROBROWSE_TEXT_SNIPPET_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace microbrowse {

/// A contiguous phrase inside a snippet: `len` tokens starting at token
/// index `pos` of line `line`. `text` is the tokens joined with spaces.
struct TermSpan {
  int line = 0;
  int pos = 0;
  int len = 1;
  std::string text;

  friend bool operator==(const TermSpan& a, const TermSpan& b) {
    return a.line == b.line && a.pos == b.pos && a.len == b.len && a.text == b.text;
  }
};

/// A tokenized snippet: lines of tokens.
class Snippet {
 public:
  Snippet() = default;

  /// Builds a snippet by tokenizing each raw text line.
  static Snippet FromLines(const std::vector<std::string>& raw_lines,
                           const Tokenizer& tokenizer = Tokenizer());

  /// Builds a snippet from already-tokenized lines.
  static Snippet FromTokens(std::vector<std::vector<std::string>> token_lines);

  /// Number of lines.
  int num_lines() const { return static_cast<int>(lines_.size()); }

  /// Tokens of line `line` (0-based); `line` must be in range.
  const std::vector<std::string>& line(int line) const { return lines_[line]; }

  /// All lines.
  const std::vector<std::vector<std::string>>& lines() const { return lines_; }

  /// Total number of tokens across lines.
  int num_tokens() const;

  /// The phrase text for a span (tokens joined by ' '). The span must lie
  /// within bounds.
  std::string SpanText(int line, int pos, int len) const;

  /// Renders the snippet as lines joined by " / " — for logs and tests.
  std::string ToString() const;

  friend bool operator==(const Snippet& a, const Snippet& b) { return a.lines_ == b.lines_; }

 private:
  std::vector<std::vector<std::string>> lines_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_TEXT_SNIPPET_H_
