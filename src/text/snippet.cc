// Copyright 2026 The Microbrowse Authors

#include "text/snippet.h"

#include <cassert>

namespace microbrowse {

Snippet Snippet::FromLines(const std::vector<std::string>& raw_lines, const Tokenizer& tokenizer) {
  Snippet snippet;
  snippet.lines_.reserve(raw_lines.size());
  for (const auto& raw : raw_lines) {
    snippet.lines_.push_back(tokenizer.Tokenize(raw));
  }
  return snippet;
}

Snippet Snippet::FromTokens(std::vector<std::vector<std::string>> token_lines) {
  Snippet snippet;
  snippet.lines_ = std::move(token_lines);
  return snippet;
}

int Snippet::num_tokens() const {
  int total = 0;
  for (const auto& line : lines_) total += static_cast<int>(line.size());
  return total;
}

std::string Snippet::SpanText(int line, int pos, int len) const {
  assert(line >= 0 && line < num_lines());
  const auto& tokens = lines_[line];
  assert(pos >= 0 && len >= 1 && static_cast<size_t>(pos + len) <= tokens.size());
  std::string out = tokens[pos];
  for (int i = 1; i < len; ++i) {
    out.push_back(' ');
    out.append(tokens[pos + i]);
  }
  return out;
}

std::string Snippet::ToString() const {
  std::string out;
  for (size_t l = 0; l < lines_.size(); ++l) {
    if (l > 0) out.append(" / ");
    for (size_t t = 0; t < lines_[l].size(); ++t) {
      if (t > 0) out.push_back(' ');
      out.append(lines_[l][t]);
    }
  }
  return out;
}

}  // namespace microbrowse
