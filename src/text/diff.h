// Copyright 2026 The Microbrowse Authors
//
// Token-level diff between two snippet lines. The rewrite-feature extractor
// (Section IV-A of the paper) first localizes the regions where a pair of
// creatives differ; phrase-rewrite candidates are then enumerated inside
// those regions.

#ifndef MICROBROWSE_TEXT_DIFF_H_
#define MICROBROWSE_TEXT_DIFF_H_

#include <string>
#include <vector>

namespace microbrowse {

/// One maximal region of disagreement between token sequences A and B:
/// tokens [a_pos, a_pos + a_len) of A were replaced by tokens
/// [b_pos, b_pos + b_len) of B. Either length (but not both) may be zero,
/// representing a pure deletion or insertion.
struct DiffHunk {
  int a_pos = 0;
  int a_len = 0;
  int b_pos = 0;
  int b_len = 0;

  friend bool operator==(const DiffHunk& x, const DiffHunk& y) {
    return x.a_pos == y.a_pos && x.a_len == y.a_len && x.b_pos == y.b_pos && x.b_len == y.b_len;
  }
};

/// One LCS-matched token pair: a[a_index] == b[b_index].
struct TokenMatch {
  int a_index = 0;
  int b_index = 0;

  friend bool operator==(const TokenMatch& x, const TokenMatch& y) {
    return x.a_index == y.a_index && x.b_index == y.b_index;
  }
};

/// Computes the minimal (LCS-based) hunk list turning `a` into `b`.
/// Adjacent delete/insert runs are merged into single replace hunks. The
/// result is ordered by position and hunks never overlap. When `matches`
/// is non-null it receives the aligned token pairs (the LCS itself), in
/// order.
std::vector<DiffHunk> TokenDiff(const std::vector<std::string>& a,
                                const std::vector<std::string>& b,
                                std::vector<TokenMatch>* matches = nullptr);

/// Length of the longest common subsequence of `a` and `b`.
int LcsLength(const std::vector<std::string>& a, const std::vector<std::string>& b);

}  // namespace microbrowse

#endif  // MICROBROWSE_TEXT_DIFF_H_
