// Copyright 2026 The Microbrowse Authors

#include "text/diff.h"

namespace microbrowse {

namespace {

/// Fills the (n+1) x (m+1) LCS length table for suffixes; cell (i, j) holds
/// the LCS length of a[i:] and b[j:].
std::vector<std::vector<int>> LcsSuffixTable(const std::vector<std::string>& a,
                                             const std::vector<std::string>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  std::vector<std::vector<int>> table(n + 1, std::vector<int>(m + 1, 0));
  for (int i = n - 1; i >= 0; --i) {
    for (int j = m - 1; j >= 0; --j) {
      if (a[i] == b[j]) {
        table[i][j] = table[i + 1][j + 1] + 1;
      } else {
        table[i][j] = std::max(table[i + 1][j], table[i][j + 1]);
      }
    }
  }
  return table;
}

}  // namespace

int LcsLength(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0;
  return LcsSuffixTable(a, b)[0][0];
}

std::vector<DiffHunk> TokenDiff(const std::vector<std::string>& a,
                                const std::vector<std::string>& b,
                                std::vector<TokenMatch>* matches) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const auto table = LcsSuffixTable(a, b);

  std::vector<DiffHunk> hunks;
  int i = 0;
  int j = 0;
  int hunk_a_start = -1;
  int hunk_b_start = -1;

  auto open_hunk = [&](int ai, int bj) {
    if (hunk_a_start < 0) {
      hunk_a_start = ai;
      hunk_b_start = bj;
    }
  };
  auto close_hunk = [&](int ai, int bj) {
    if (hunk_a_start >= 0) {
      hunks.push_back(DiffHunk{hunk_a_start, ai - hunk_a_start, hunk_b_start, bj - hunk_b_start});
      hunk_a_start = -1;
      hunk_b_start = -1;
    }
  };

  while (i < n && j < m) {
    if (a[i] == b[j]) {
      close_hunk(i, j);
      if (matches != nullptr) matches->push_back(TokenMatch{i, j});
      ++i;
      ++j;
    } else if (table[i + 1][j] >= table[i][j + 1]) {
      open_hunk(i, j);
      ++i;  // a[i] deleted.
    } else {
      open_hunk(i, j);
      ++j;  // b[j] inserted.
    }
  }
  if (i < n || j < m) {
    open_hunk(i, j);
    i = n;
    j = m;
  }
  close_hunk(i, j);
  return hunks;
}

}  // namespace microbrowse
