// Copyright 2026 The Microbrowse Authors

#include "text/ngram.h"

#include <algorithm>
#include <cassert>

namespace microbrowse {

std::vector<TermSpan> ExtractNGramsInWindow(const Snippet& snippet, int line, int begin, int count,
                                            int max_n) {
  std::vector<TermSpan> spans;
  assert(line >= 0 && line < snippet.num_lines());
  const int line_size = static_cast<int>(snippet.line(line).size());
  begin = std::clamp(begin, 0, line_size);
  const int end = std::clamp(begin + count, begin, line_size);
  for (int pos = begin; pos < end; ++pos) {
    const int max_len = std::min(max_n, end - pos);
    for (int len = 1; len <= max_len; ++len) {
      spans.push_back(TermSpan{line, pos, len, snippet.SpanText(line, pos, len)});
    }
  }
  return spans;
}

std::vector<TermSpan> ExtractNGrams(const Snippet& snippet, int max_n) {
  std::vector<TermSpan> spans;
  for (int line = 0; line < snippet.num_lines(); ++line) {
    const int line_size = static_cast<int>(snippet.line(line).size());
    auto line_spans = ExtractNGramsInWindow(snippet, line, 0, line_size, max_n);
    spans.insert(spans.end(), line_spans.begin(), line_spans.end());
  }
  return spans;
}

}  // namespace microbrowse
