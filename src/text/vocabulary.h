// Copyright 2026 The Microbrowse Authors
//
// String interning. Phrase pools, feature registries and click-model doc
// tables all map strings to dense ids through a Vocabulary.

#ifndef MICROBROWSE_TEXT_VOCABULARY_H_
#define MICROBROWSE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace microbrowse {

/// Dense id for an interned string.
using TermId = uint32_t;

/// Sentinel returned by Find for unknown strings.
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Bidirectional string <-> dense-id map. Ids are assigned in insertion
/// order starting at 0. Not thread-safe for concurrent mutation.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id for `term`, or kInvalidTermId when absent.
  TermId Find(std::string_view term) const;

  /// True iff `term` has been interned.
  bool Contains(std::string_view term) const { return Find(term) != kInvalidTermId; }

  /// The string for `id`. `id` must be a valid id from this vocabulary.
  const std::string& TermOf(TermId id) const { return terms_[id]; }

  /// Number of distinct interned strings.
  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_TEXT_VOCABULARY_H_
