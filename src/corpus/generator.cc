// Copyright 2026 The Microbrowse Authors

#include "corpus/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace microbrowse {

namespace {

/// Content blocks a creative is assembled from. The ACTION_OBJECT block
/// carries the keyword; QUALITY / OFFER / CTA are decorations. Blocks are
/// distributed over the three lines by a per-creative layout, so the same
/// phrase can appear anywhere in the creative — position is decoupled from
/// phrase identity, as in free-form ad text.
enum class Block : uint8_t { kActionObject = 0, kQuality = 1, kOffer = 2, kCta = 3 };

/// Per-creative layout. The brand always sits alone on line 0. The content
/// blocks keep a fixed order and are cut into two groups at `split`; the
/// `swapped` bit says which group renders on line 1 (strongly examined)
/// versus line 2 (weakly examined). Because n-grams never span lines,
/// toggling `swapped` leaves the creative's n-gram multiset IDENTICAL
/// while moving text between visibility tiers — pure micro-position
/// variation, invisible to bag-of-terms features. (Think: the same ad
/// copy arranged offer-first versus description-first.)
struct Layout {
  std::array<uint8_t, 4> order = {0, 1, 2, 3};  ///< Block values, first `num_blocks` used.
  uint8_t num_blocks = 3;
  /// Blocks promoted to line 0 after the brand (0 or 1). Fixed per adgroup
  /// (never mutated), so siblings always share it — no within-adgroup
  /// n-gram difference can reveal it.
  uint8_t blocks_in_line0 = 0;
  uint8_t split = 1;      ///< Of the remaining blocks, [line0..split) = group 1.
  bool swapped = false;   ///< Group 2 on line 1, group 1 on line 2.

  friend bool operator==(const Layout& a, const Layout& b) {
    return a.order == b.order && a.num_blocks == b.num_blocks &&
           a.blocks_in_line0 == b.blocks_in_line0 && a.split == b.split &&
           a.swapped == b.swapped;
  }
};

/// Slot choices and layout fully describing one creative.
struct Blueprint {
  int vertical = 0;
  size_t brand = 0;
  size_t action = 0;
  size_t object = 0;
  size_t quality = 0;
  size_t offer = 0;
  size_t cta = 0;
  bool has_cta = false;
  Layout layout;
  int glue2 = 0;  ///< Connector after the object phrase (0 = none).
  int glue3 = 0;  ///< Connector between blocks sharing a line (0 = none).

  friend bool operator==(const Blueprint& a, const Blueprint& b) {
    return a.vertical == b.vertical && a.brand == b.brand && a.action == b.action &&
           a.object == b.object && a.quality == b.quality && a.offer == b.offer &&
           a.cta == b.cta && a.has_cta == b.has_cta && a.layout == b.layout &&
           a.glue2 == b.glue2 && a.glue3 == b.glue3;
  }
};

/// Mutations a sibling creative can apply to the adgroup's base blueprint.
enum class Mutation {
  kRewriteAction,
  kRewriteQuality,
  kRewriteOffer,
  kRewriteCta,
  kMoveLayout,  ///< Re-deal the block layout: a pure position change.
};

/// CTR-neutral connector words (index 0 = no connector).
const char* const kGlue2Choices[] = {"", "today", "online", "now"};
// Always present between blocks that share a line (and after the brand),
// so block adjacency is never directly observable as a phrase-phrase
// bigram — only as a much sparser phrase-glue-phrase trigram.
const char* const kGlue3Choices[] = {"and", "plus", "with", "for"};

/// One emitted phrase with its location, the unit of the phrase-level
/// ground-truth model.
struct Segment {
  int line = 0;
  int pos = 0;  ///< Token index of the phrase's first token.
  std::string text;
};

struct MaterializedCreative {
  Snippet snippet;
  std::vector<Segment> segments;
};

const std::string& PhraseText(const PhrasePool& pool, SlotType slot, size_t index) {
  return pool.PhrasesFor(slot)[index].text;
}

Layout SampleLayout(bool has_cta, Rng* rng) {
  Layout layout;
  layout.num_blocks = has_cta ? 4 : 3;
  for (uint8_t i = 0; i < layout.num_blocks; ++i) layout.order[i] = i;
  // Fisher-Yates over the active prefix. Order and split are sampled once
  // per adgroup (with the base blueprint) and inherited by every sibling,
  // so adjacency n-grams cannot distinguish siblings; only `swapped`
  // varies within an adgroup.
  for (uint8_t i = layout.num_blocks; i > 1; --i) {
    const uint8_t j = static_cast<uint8_t>(rng->NextIndex(i));
    std::swap(layout.order[i - 1], layout.order[j]);
  }
  layout.blocks_in_line0 = rng->Bernoulli(0.35) ? 1 : 0;
  const uint8_t remaining = static_cast<uint8_t>(layout.num_blocks - layout.blocks_in_line0);
  layout.split = static_cast<uint8_t>(
      layout.blocks_in_line0 +
      (remaining >= 2 ? 1 + rng->NextIndex(remaining - 1) : remaining));
  layout.swapped = rng->Bernoulli(0.5);
  return layout;
}

MaterializedCreative Materialize(const PhrasePool& pool, const Blueprint& bp) {
  MaterializedCreative out;
  std::vector<std::vector<std::string>> lines(3);
  std::vector<Segment>& segments = out.segments;

  auto emit_phrase = [&lines, &segments](int line, const std::string& phrase) {
    const int pos = static_cast<int>(lines[line].size());
    for (const auto& token : SplitWhitespace(phrase)) lines[line].push_back(token);
    segments.push_back(Segment{line, pos, phrase});
  };

  emit_phrase(0, PhraseText(pool, SlotType::kBrand, bp.brand));

  auto emit_block = [&](int line, Block block, bool first_in_line) {
    if (!first_in_line) emit_phrase(line, kGlue3Choices[bp.glue3]);
    switch (block) {
      case Block::kActionObject:
        emit_phrase(line, PhraseText(pool, SlotType::kAction, bp.action));
        emit_phrase(line, PhraseText(pool, SlotType::kObject, bp.object));
        if (bp.glue2 != 0) emit_phrase(line, kGlue2Choices[bp.glue2]);
        break;
      case Block::kQuality:
        emit_phrase(line, PhraseText(pool, SlotType::kQuality, bp.quality));
        break;
      case Block::kOffer:
        emit_phrase(line, PhraseText(pool, SlotType::kOffer, bp.offer));
        break;
      case Block::kCta:
        emit_phrase(line, PhraseText(pool, SlotType::kCallToAction, bp.cta));
        break;
    }
  };

  auto emit_group = [&](int line, uint8_t begin, uint8_t end) {
    for (uint8_t i = begin; i < end; ++i) {
      emit_block(line, static_cast<Block>(bp.layout.order[i]), /*first_in_line=*/i == begin);
    }
  };
  // Line-0 blocks render right after the brand (glue separated).
  for (uint8_t i = 0; i < bp.layout.blocks_in_line0; ++i) {
    emit_block(0, static_cast<Block>(bp.layout.order[i]), /*first_in_line=*/false);
  }
  const uint8_t line0 = bp.layout.blocks_in_line0;
  const uint8_t split = bp.layout.split;
  if (bp.layout.swapped) {
    emit_group(1, split, bp.layout.num_blocks);
    emit_group(2, line0, split);
  } else {
    emit_group(1, line0, split);
    emit_group(2, split, bp.layout.num_blocks);
  }

  out.snippet = Snippet::FromTokens(std::move(lines));
  return out;
}

void SampleGlue(Blueprint* bp, Rng* rng) {
  bp->glue2 = static_cast<int>(rng->NextIndex(std::size(kGlue2Choices)));
  bp->glue3 = static_cast<int>(rng->NextIndex(std::size(kGlue3Choices)));
}

Result<Blueprint> SampleBaseBlueprint(const PhrasePool& pool, int vertical, Rng* rng) {
  Blueprint bp;
  bp.vertical = vertical;
  MB_ASSIGN_OR_RETURN(bp.brand, pool.SampleIndex(SlotType::kBrand, rng));
  MB_ASSIGN_OR_RETURN(bp.action, pool.SampleIndex(SlotType::kAction, rng));
  MB_ASSIGN_OR_RETURN(bp.object, pool.SampleIndex(SlotType::kObject, rng));
  MB_ASSIGN_OR_RETURN(bp.quality, pool.SampleIndex(SlotType::kQuality, rng));
  MB_ASSIGN_OR_RETURN(bp.offer, pool.SampleIndex(SlotType::kOffer, rng));
  MB_ASSIGN_OR_RETURN(bp.cta, pool.SampleIndex(SlotType::kCallToAction, rng));
  bp.has_cta = rng->Bernoulli(0.35);
  bp.layout = SampleLayout(bp.has_cta, rng);
  SampleGlue(&bp, rng);
  return bp;
}

/// Per-slot rewrite-preference graph: advertisers reuse popular
/// substitutions, so each phrase has a few Zipf-weighted preferred
/// replacement targets. Built once per corpus from the seed.
class RewriteGraph {
 public:
  static Result<RewriteGraph> Build(const PhrasePool& pool, Rng* rng) {
    RewriteGraph graph;
    for (int s = 0; s < kNumSlotTypes; ++s) {
      const SlotType slot = static_cast<SlotType>(s);
      const size_t n = pool.PhrasesFor(slot).size();
      graph.prefs_[s].resize(n);
      for (size_t from = 0; from < n; ++from) {
        const size_t num_targets = std::min<size_t>(3, n > 0 ? n - 1 : 0);
        double weight = 9.0;
        for (size_t k = 0; k < num_targets; ++k, weight /= 3.0) {
          size_t target = from;
          for (int attempt = 0;
               attempt < 16 && (target == from || graph.Contains(s, from, target));
               ++attempt) {
            MB_ASSIGN_OR_RETURN(target, pool.SampleIndex(slot, rng));
          }
          if (target != from && !graph.Contains(s, from, target)) {
            graph.prefs_[s][from].emplace_back(target, weight);
          }
        }
      }
    }
    return graph;
  }

  /// Samples a replacement for `from`: a preferred target with probability
  /// `bias`, otherwise uniform (always != from).
  Result<size_t> SampleTarget(const PhrasePool& pool, SlotType slot, size_t from,
                              double bias, Rng* rng) const {
    const auto& edges = prefs_[static_cast<int>(slot)][from];
    if (!edges.empty() && rng->Bernoulli(bias)) {
      std::vector<double> weights;
      weights.reserve(edges.size());
      for (const auto& [target, weight] : edges) weights.push_back(weight);
      return edges[rng->Categorical(weights)].first;
    }
    return pool.SampleIndexExcluding(slot, from, rng);
  }

 private:
  RewriteGraph() = default;

  bool Contains(int slot, size_t from, size_t target) const {
    for (const auto& [existing, weight] : prefs_[slot][from]) {
      if (existing == target) return true;
    }
    return false;
  }

  std::array<std::vector<std::vector<std::pair<size_t, double>>>, kNumSlotTypes> prefs_;
};

/// Applies one random mutation; move mutations are drawn with weight
/// `move_weight` against rewrites.
Status ApplyMutation(const PhrasePool& pool, const RewriteGraph& graph, double move_weight,
                     double graph_bias, Blueprint* bp, Rng* rng) {
  std::vector<Mutation> candidates;
  std::vector<double> weights;
  const double rewrite_weight = 1.0 - move_weight;
  auto add = [&](Mutation m, double w) {
    candidates.push_back(m);
    weights.push_back(w);
  };
  add(Mutation::kRewriteAction, rewrite_weight);
  add(Mutation::kRewriteQuality, rewrite_weight);
  add(Mutation::kRewriteOffer, rewrite_weight);
  if (bp->has_cta) add(Mutation::kRewriteCta, rewrite_weight * 0.5);
  add(Mutation::kMoveLayout, move_weight * 3.0);
  (void)rng;

  switch (candidates[rng->Categorical(weights)]) {
    case Mutation::kRewriteAction: {
      MB_ASSIGN_OR_RETURN(
          bp->action, graph.SampleTarget(pool, SlotType::kAction, bp->action, graph_bias, rng));
      break;
    }
    case Mutation::kRewriteQuality: {
      MB_ASSIGN_OR_RETURN(bp->quality, graph.SampleTarget(pool, SlotType::kQuality,
                                                          bp->quality, graph_bias, rng));
      break;
    }
    case Mutation::kRewriteOffer: {
      MB_ASSIGN_OR_RETURN(
          bp->offer, graph.SampleTarget(pool, SlotType::kOffer, bp->offer, graph_bias, rng));
      break;
    }
    case Mutation::kRewriteCta: {
      MB_ASSIGN_OR_RETURN(bp->cta, graph.SampleTarget(pool, SlotType::kCallToAction, bp->cta,
                                                      graph_bias, rng));
      break;
    }
    case Mutation::kMoveLayout:
      bp->layout.swapped = !bp->layout.swapped;
      break;
  }
  return Status::OK();
}

/// Compresses within-slot appeal spread toward each slot's mean by factor
/// `c` (see AdCorpusOptions::appeal_compression).
PhrasePool CompressAppeals(const PhrasePool& pool, double c) {
  PhrasePool out;
  for (int s = 0; s < kNumSlotTypes; ++s) {
    const SlotType slot = static_cast<SlotType>(s);
    const auto& phrases = pool.PhrasesFor(slot);
    if (phrases.empty()) continue;
    double mean = 0.0;
    for (const Phrase& phrase : phrases) mean += phrase.appeal;
    mean /= static_cast<double>(phrases.size());
    for (const Phrase& phrase : phrases) {
      out.Add(slot, phrase.text, mean + c * (phrase.appeal - mean));
    }
  }
  return out;
}

/// Merges several pools into one (for the merged ground-truth relevance).
PhrasePool MergePools(const std::vector<PhrasePool>& pools) {
  PhrasePool merged;
  for (const auto& pool : pools) {
    for (int s = 0; s < kNumSlotTypes; ++s) {
      const SlotType slot = static_cast<SlotType>(s);
      for (const Phrase& phrase : pool.PhrasesFor(slot)) {
        merged.Add(slot, phrase.text, phrase.appeal);
      }
    }
  }
  return merged;
}

/// Expected CTR under the phrase-level micro-browsing model: the user
/// examines each *phrase* with the curve probability of its first token
/// and judges relevance per phrase — Eq. 3 with phrases as the terms,
/// matching the paper's "word (or phrase)" granularity. With
/// `attention_absorb` > 0 an intra-snippet cascade applies: examining a
/// salient phrase may end the scan, discounting everything after it in
/// reading order.
double RelevanceProduct(const MaterializedCreative& creative, int32_t keyword_id,
                        const ExaminationCurve& curve, const PoolRelevance& relevance,
                        double attention_absorb) {
  // Segments sorted in reading order (line, then position).
  std::vector<const Segment*> ordered;
  ordered.reserve(creative.segments.size());
  for (const Segment& segment : creative.segments) ordered.push_back(&segment);
  std::sort(ordered.begin(), ordered.end(), [](const Segment* a, const Segment* b) {
    return a->line != b->line ? a->line < b->line : a->pos < b->pos;
  });

  double product = 1.0;
  double attention = 1.0;  // P(user is still scanning).
  for (const Segment* segment : ordered) {
    const double p = attention * curve.Probability(segment->line, segment->pos);
    const double r = relevance.Relevance(keyword_id, segment->text);
    product *= 1.0 - p * (1.0 - r);
    if (attention_absorb > 0.0) {
      attention *= 1.0 - attention_absorb * p * r;
    }
  }
  return product;
}

}  // namespace

Result<GeneratedCorpus> GenerateAdCorpus(const AdCorpusOptions& options) {
  TraceSpan span("mb.corpus.generate");
  if (options.num_adgroups <= 0) {
    return Status::InvalidArgument("GenerateAdCorpus: num_adgroups must be positive");
  }
  if (options.min_creatives < 2 || options.max_creatives < options.min_creatives) {
    return Status::InvalidArgument("GenerateAdCorpus: need 2 <= min_creatives <= max_creatives");
  }
  std::vector<PhrasePool> pools = options.pools;
  if (pools.empty()) {
    pools = {PhrasePool::Travel(), PhrasePool::Shopping(), PhrasePool::Finance()};
  }
  if (options.appeal_compression != 1.0) {
    for (auto& pool : pools) pool = CompressAppeals(pool, options.appeal_compression);
  }
  for (int s = 0; s < kNumSlotTypes; ++s) {
    for (const auto& pool : pools) {
      if (pool.PhrasesFor(static_cast<SlotType>(s)).size() < 2) {
        return Status::InvalidArgument("GenerateAdCorpus: every slot needs >= 2 phrases");
      }
    }
  }

  Rng rng(options.seed);
  const bool rhs = options.placement == Placement::kRhs;
  const ExaminationCurve curve =
      rhs ? ExaminationCurve::RhsPlacement() : ExaminationCurve::TopPlacement();
  const double placement_ctr = options.base_ctr * (rhs ? 0.45 : 1.0);
  const double impression_scale = rhs ? 0.6 : 1.0;

  GeneratedCorpus out;
  out.truth =
      CorpusGroundTruth{curve, PoolRelevance(MergePools(pools), options.relevance_jitter,
                                             /*default_relevance=*/0.95, options.seed ^ 0x9e37),
                        placement_ctr};
  out.corpus.placement = options.placement;
  out.corpus.adgroups.reserve(options.num_adgroups);

  std::vector<RewriteGraph> rewrite_graphs;
  rewrite_graphs.reserve(pools.size());
  for (const auto& pool : pools) {
    MB_ASSIGN_OR_RETURN(RewriteGraph graph, RewriteGraph::Build(pool, &rng));
    rewrite_graphs.push_back(std::move(graph));
  }

  std::map<std::pair<int, size_t>, int32_t> keyword_ids;
  int64_t next_creative_id = 0;

  for (int g = 0; g < options.num_adgroups; ++g) {
    AdGroup group;
    group.id = g;
    const int vertical = static_cast<int>(rng.NextIndex(pools.size()));
    const PhrasePool& pool = pools[vertical];

    MB_ASSIGN_OR_RETURN(const Blueprint base, SampleBaseBlueprint(pool, vertical, &rng));
    auto [it, inserted] = keyword_ids.try_emplace({vertical, base.object},
                                                  static_cast<int32_t>(keyword_ids.size()));
    group.keyword_id = it->second;
    group.keyword = pool.PhrasesFor(SlotType::kObject)[base.object].text;

    const int num_creatives =
        static_cast<int>(rng.UniformInt(options.min_creatives, options.max_creatives));
    std::vector<Blueprint> blueprints;
    blueprints.push_back(base);
    while (static_cast<int>(blueprints.size()) < num_creatives) {
      Blueprint sibling = base;
      for (int attempt = 0; attempt < 8; ++attempt) {
        sibling = base;
        MB_RETURN_IF_ERROR(ApplyMutation(pool, rewrite_graphs[vertical],
                                         options.move_mutation_weight,
                                         options.rewrite_graph_bias, &sibling, &rng));
        for (int m = 1; m < options.max_mutations &&
                        rng.Bernoulli(options.mutation_continue_prob);
             ++m) {
          MB_RETURN_IF_ERROR(ApplyMutation(pool, rewrite_graphs[vertical],
                                           options.move_mutation_weight,
                                           options.rewrite_graph_bias, &sibling, &rng));
        }
        if (rng.Bernoulli(options.prob_glue_resample)) SampleGlue(&sibling, &rng);
        if (std::find(blueprints.begin(), blueprints.end(), sibling) == blueprints.end()) break;
      }
      if (std::find(blueprints.begin(), blueprints.end(), sibling) != blueprints.end()) {
        break;  // Pool too small to diversify further; accept fewer creatives.
      }
      blueprints.push_back(sibling);
    }
    if (blueprints.size() < 2) continue;

    // Per-adgroup CTR level (query intent, advertiser quality, ...).
    const double adgroup_level =
        placement_ctr * std::exp(options.adgroup_ctr_sigma * rng.Gaussian());

    for (const Blueprint& bp : blueprints) {
      Creative creative;
      creative.id = next_creative_id++;
      MaterializedCreative materialized = Materialize(pool, bp);
      const double relevance_product = RelevanceProduct(
          materialized, group.keyword_id, curve, out.truth.relevance, options.attention_absorb);
      creative.snippet = std::move(materialized.snippet);
      // Per-creative non-text factor (landing page, extensions, ...): real
      // CTR differences are never fully explained by the creative text.
      const double non_text_factor = std::exp(options.creative_noise_sigma * rng.Gaussian());
      creative.true_ctr = std::clamp(adgroup_level * relevance_product * non_text_factor,
                                     1e-5, 0.9);
      const double impressions_draw = static_cast<double>(options.base_impressions) *
                                      impression_scale *
                                      std::exp(options.impression_sigma * rng.Gaussian());
      creative.impressions = std::max<int64_t>(200, static_cast<int64_t>(impressions_draw));
      creative.clicks = rng.Binomial(creative.impressions, creative.true_ctr);
      group.creatives.push_back(std::move(creative));
    }
    out.corpus.adgroups.push_back(std::move(group));
  }
  // One aggregate add per counter (not one per adgroup): a single atomic op
  // whose value is a deterministic function of the options, regardless of
  // how generation is ever scheduled.
  static Counter* adgroups_counter =
      MetricRegistry::Global().GetCounter("mb.corpus.adgroups_generated");
  static Counter* creatives_counter =
      MetricRegistry::Global().GetCounter("mb.corpus.creatives_generated");
  adgroups_counter->Increment(static_cast<int64_t>(out.corpus.adgroups.size()));
  creatives_counter->Increment(static_cast<int64_t>(out.corpus.num_creatives()));
  return out;
}

}  // namespace microbrowse
