// Copyright 2026 The Microbrowse Authors
//
// Phrase inventories for creative generation. A creative line is assembled
// from slots (brand, action, object, quality claim, offer, call-to-action);
// each slot draws from a pool of short phrases, each phrase carrying an
// intrinsic appeal in (0, 1) — the ground-truth relevance signal of the
// micro-browsing model. Rewrites within an adgroup swap phrases within the
// same slot, exactly the "find cheap" -> "get discounts" structure of the
// paper's Section IV-A example.

#ifndef MICROBROWSE_CORPUS_PHRASE_POOL_H_
#define MICROBROWSE_CORPUS_PHRASE_POOL_H_

#include <array>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace microbrowse {

/// Creative template slots.
enum class SlotType : int {
  kBrand = 0,
  kAction = 1,
  kObject = 2,
  kQuality = 3,
  kOffer = 4,
  kCallToAction = 5,
};

inline constexpr int kNumSlotTypes = 6;

/// Returns a stable name for a slot ("brand", "action", ...).
const char* SlotTypeName(SlotType slot);

/// A slot phrase with its intrinsic appeal.
struct Phrase {
  std::string text;     ///< Space-separated lowercase tokens, 1-3 of them.
  double appeal = 0.8;  ///< Ground-truth appeal in (0, 1).
};

/// Per-slot phrase inventories.
class PhrasePool {
 public:
  PhrasePool() = default;

  /// Adds a phrase to a slot's pool.
  void Add(SlotType slot, std::string text, double appeal);

  /// Phrases available for `slot` (possibly empty).
  const std::vector<Phrase>& PhrasesFor(SlotType slot) const {
    return slots_[static_cast<int>(slot)];
  }

  /// Samples a uniform phrase index for `slot`. An empty slot — possible
  /// with user-supplied pools — is kFailedPrecondition, not a crash.
  Result<size_t> SampleIndex(SlotType slot, Rng* rng) const;

  /// Samples a phrase index for `slot` different from `exclude` (pass
  /// SIZE_MAX for no exclusion). A slot without at least two phrases when an
  /// exclusion is given is kFailedPrecondition.
  Result<size_t> SampleIndexExcluding(SlotType slot, size_t exclude, Rng* rng) const;

  /// Total number of phrases across slots.
  size_t total_phrases() const;

  /// Hand-curated pools for three advertising verticals.
  static PhrasePool Travel();
  static PhrasePool Shopping();
  static PhrasePool Finance();

  /// A synthetic pool with `per_slot` machine-named phrases per slot and
  /// appeals drawn from `rng` — for scale benchmarks.
  static PhrasePool Synthetic(int per_slot, Rng* rng);

 private:
  std::array<std::vector<Phrase>, kNumSlotTypes> slots_;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CORPUS_PHRASE_POOL_H_
