// Copyright 2026 The Microbrowse Authors
//
// Serve weights (Section V-B): a creative's CTR normalised by its
// adgroup's mean CTR, making creatives comparable across adgroups.

#ifndef MICROBROWSE_CORPUS_SERVE_WEIGHT_H_
#define MICROBROWSE_CORPUS_SERVE_WEIGHT_H_

#include <vector>

#include "corpus/ad.h"

namespace microbrowse {

/// Serve weight of each creative in `group`, in creative order:
/// sw = ctr(creative) / mean_ctr(adgroup). Creatives with zero impressions
/// (or an adgroup with zero clicks) get weight 1.0 — no evidence either
/// way.
std::vector<double> ComputeServeWeights(const AdGroup& group);

}  // namespace microbrowse

#endif  // MICROBROWSE_CORPUS_SERVE_WEIGHT_H_
