// Copyright 2026 The Microbrowse Authors
//
// Ground-truth term relevance derived from a PhrasePool: each token of a
// phrase inherits appeal^(1/len) so the token product over the phrase
// equals its appeal, plus a deterministic per-(keyword, token) jitter that
// makes relevance mildly query-dependent — the classifier has to average
// over this noise exactly as it would over real user idiosyncrasy.

#ifndef MICROBROWSE_CORPUS_POOL_RELEVANCE_H_
#define MICROBROWSE_CORPUS_POOL_RELEVANCE_H_

#include <string>
#include <unordered_map>

#include "corpus/phrase_pool.h"
#include "microbrowse/model.h"

namespace microbrowse {

/// TermRelevance implementation over a phrase pool.
class PoolRelevance : public TermRelevance {
 public:
  /// An empty relevance map: every token gets the default relevance.
  PoolRelevance() = default;

  /// `jitter` is the half-width of the uniform per-(keyword, token)
  /// perturbation of logit(r); `default_relevance` applies to tokens
  /// outside the pool (brand words and glue).
  PoolRelevance(const PhrasePool& pool, double jitter = 0.7, double default_relevance = 0.95,
                uint64_t seed = 1234);

  /// Relevance of `text` for `query_id`. `text` may be a full pool phrase
  /// ("find cheap" — resolved at phrase granularity, the generator's unit)
  /// or a single token (resolved via the per-token decomposition, used by
  /// token-level consumers of the TermRelevance interface).
  double Relevance(int32_t query_id, std::string_view text) const override;

  /// Base (jitter-free) relevance of a phrase or token.
  double BaseRelevance(std::string_view text) const;

 private:
  /// Full phrase text -> phrase appeal.
  std::unordered_map<std::string, double> phrase_base_;
  /// Token -> appeal^(1/len) fallback for token-level queries.
  std::unordered_map<std::string, double> token_base_;
  double jitter_ = 0.0;
  double default_relevance_ = 0.95;
  uint64_t seed_ = 1234;
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CORPUS_POOL_RELEVANCE_H_
