// Copyright 2026 The Microbrowse Authors

#include "corpus/pair_extraction.h"

#include "common/math_util.h"
#include "corpus/serve_weight.h"

namespace microbrowse {

PairCorpus ExtractSignificantPairs(const AdCorpus& corpus, const PairExtractionOptions& options) {
  PairCorpus out;
  for (const auto& group : corpus.adgroups) {
    const std::vector<double> serve_weights = ComputeServeWeights(group);
    int emitted = 0;
    for (size_t i = 0; i < group.creatives.size(); ++i) {
      const Creative& a = group.creatives[i];
      if (a.impressions < options.min_impressions || a.clicks < options.min_clicks) continue;
      for (size_t j = i + 1; j < group.creatives.size(); ++j) {
        if (options.max_pairs_per_adgroup > 0 && emitted >= options.max_pairs_per_adgroup) break;
        const Creative& b = group.creatives[j];
        if (b.impressions < options.min_impressions || b.clicks < options.min_clicks) continue;
        const TwoProportionTest test =
            TwoProportionZTest(a.clicks, a.impressions, b.clicks, b.impressions);
        if (test.p_value >= options.significance_level) continue;

        SnippetPair pair;
        pair.adgroup_id = group.id;
        pair.keyword_id = group.keyword_id;
        pair.r = SnippetObservation{a.snippet, a.impressions, a.clicks, serve_weights[i]};
        pair.s = SnippetObservation{b.snippet, b.impressions, b.clicks, serve_weights[j]};
        out.pairs.push_back(std::move(pair));
        ++emitted;
      }
    }
  }
  return out;
}

}  // namespace microbrowse
