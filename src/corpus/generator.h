// Copyright 2026 The Microbrowse Authors
//
// Synthetic ADCORPUS generation (the data-gate substitute; see DESIGN.md
// Section 2). Adgroups hold 2-5 creatives for one keyword; sibling
// creatives differ by one or two slot rewrites and/or phrase moves; clicks
// are sampled from the ground-truth micro-browsing model.

#ifndef MICROBROWSE_CORPUS_GENERATOR_H_
#define MICROBROWSE_CORPUS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "corpus/ad.h"
#include "corpus/phrase_pool.h"
#include "corpus/pool_relevance.h"
#include "microbrowse/model.h"

namespace microbrowse {

/// Generator configuration. Defaults produce a TOP-placement corpus sized
/// for a ~1 minute experiment run on one core.
struct AdCorpusOptions {
  int num_adgroups = 8000;
  int min_creatives = 2;
  int max_creatives = 4;
  /// Geometric mean impressions per creative; log-normal spread sigma.
  /// Sponsored-search corpora have enormous statistical power (the paper's
  /// ADCORPUS aggregates months of serving), so even small true CTR
  /// differences are significant — the default reflects that.
  int64_t base_impressions = 400000;
  double impression_sigma = 0.5;
  Placement placement = Placement::kTop;
  /// Query-intent CTR scale for TOP placement; RHS is scaled down
  /// internally (weaker examination and lower base).
  double base_ctr = 0.16;
  /// Log-normal spread of the per-adgroup CTR level.
  double adgroup_ctr_sigma = 0.25;
  /// Log-normal spread of a per-creative CTR multiplier modelling factors
  /// *outside* the creative text (landing page, extensions, serving-time
  /// mix). This is the irreducible noise that caps every classifier's
  /// accuracy, as the proprietary ADCORPUS does in the paper.
  double creative_noise_sigma = 0.05;
  /// Compression of within-slot appeal differences toward the slot-pool
  /// mean: effective_appeal = mean + c * (appeal - mean). Real creative
  /// rewrites move CTR by small amounts; *where* text sits (examination)
  /// dominates *which* near-synonymous phrase is used — the regime in
  /// which the paper's position features pay off. 1 = pools as authored.
  double appeal_compression = 0.45;
  /// Per-(keyword, token) relevance jitter: half-width of the uniform
  /// perturbation applied to logit(r) (see PoolRelevance).
  double relevance_jitter = 0.4;
  /// Sibling creatives carry 1..max_mutations mutations; after each one,
  /// another is applied with probability mutation_continue_prob. More
  /// mutations per sibling means pairs differ in more places, so the net
  /// CTR difference becomes a visibility-weighted sum of conflicting
  /// deltas — the regime where position information pays off.
  double mutation_continue_prob = 0.65;
  int max_mutations = 4;
  /// Probability that a mutation is a pure phrase *move* (position change
  /// with identical text) rather than a rewrite.
  double move_mutation_weight = 0.30;
  /// Probability a sibling creative re-samples its glue tokens (connector
  /// words between slots) instead of inheriting the base creative's.
  double prob_glue_resample = 0.5;
  /// Within-snippet attention cascade: after examining a phrase the user
  /// stops reading with probability absorb * p_examined * r — "once the
  /// user sees these words ... she may decide to click without examining
  /// the other words" (paper, Section I). Salient phrases early in the
  /// snippet gate examination of everything after them, which is the
  /// paper's core micro-browsing effect. 0 disables the cascade.
  double attention_absorb = 0.40;
  /// Mutations follow a Zipf-weighted per-phrase rewrite graph (advertisers
  /// reuse popular substitutions), with this probability; otherwise the
  /// replacement phrase is uniform. Concentrated rewrite traffic is what
  /// makes the rewrite statistics database informative.
  double rewrite_graph_bias = 0.9;
  uint64_t seed = 42;
  /// Verticals to draw adgroups from; empty selects the three built-ins.
  std::vector<PhrasePool> pools;
};

/// The ground truth behind a generated corpus — available to tests and
/// diagnostics, never to the classifier.
struct CorpusGroundTruth {
  ExaminationCurve curve;
  PoolRelevance relevance;
  double top_level_ctr = 0.0;  ///< base_ctr after placement scaling.
};

/// A generated corpus plus its ground truth.
struct GeneratedCorpus {
  AdCorpus corpus;
  CorpusGroundTruth truth;
};

/// Generates a synthetic ad corpus. Deterministic in options.seed.
Result<GeneratedCorpus> GenerateAdCorpus(const AdCorpusOptions& options);

}  // namespace microbrowse

#endif  // MICROBROWSE_CORPUS_GENERATOR_H_
