// Copyright 2026 The Microbrowse Authors

#include "corpus/phrase_pool.h"

#include "common/string_util.h"

namespace microbrowse {

const char* SlotTypeName(SlotType slot) {
  switch (slot) {
    case SlotType::kBrand:
      return "brand";
    case SlotType::kAction:
      return "action";
    case SlotType::kObject:
      return "object";
    case SlotType::kQuality:
      return "quality";
    case SlotType::kOffer:
      return "offer";
    case SlotType::kCallToAction:
      return "cta";
  }
  return "unknown";
}

void PhrasePool::Add(SlotType slot, std::string text, double appeal) {
  slots_[static_cast<int>(slot)].push_back(Phrase{std::move(text), appeal});
}

Result<size_t> PhrasePool::SampleIndex(SlotType slot, Rng* rng) const {
  const auto& phrases = PhrasesFor(slot);
  if (phrases.empty()) {
    return Status::FailedPrecondition(std::string("phrase pool slot '") +
                                      SlotTypeName(slot) + "' is empty");
  }
  return static_cast<size_t>(rng->NextIndex(phrases.size()));
}

Result<size_t> PhrasePool::SampleIndexExcluding(SlotType slot, size_t exclude,
                                                Rng* rng) const {
  const auto& phrases = PhrasesFor(slot);
  if (exclude >= phrases.size()) return SampleIndex(slot, rng);
  if (phrases.size() < 2) {
    return Status::FailedPrecondition(
        std::string("phrase pool slot '") + SlotTypeName(slot) +
        "' needs at least 2 phrases to sample with an exclusion");
  }
  size_t idx = static_cast<size_t>(rng->NextIndex(phrases.size() - 1));
  if (idx >= exclude) ++idx;
  return idx;
}

size_t PhrasePool::total_phrases() const {
  size_t total = 0;
  for (const auto& slot : slots_) total += slot.size();
  return total;
}

PhrasePool PhrasePool::Travel() {
  PhrasePool pool;
  pool.Add(SlotType::kBrand, "xyz airlines", 0.90);
  pool.Add(SlotType::kBrand, "acme travel", 0.88);
  pool.Add(SlotType::kBrand, "globewings", 0.86);
  pool.Add(SlotType::kBrand, "skyjet deals", 0.89);
  pool.Add(SlotType::kBrand, "sunway voyages", 0.85);
  pool.Add(SlotType::kBrand, "pacific escapes", 0.87);
  pool.Add(SlotType::kBrand, "nimbus air", 0.84);
  pool.Add(SlotType::kBrand, "tripmaven", 0.86);
  pool.Add(SlotType::kBrand, "atlas journeys", 0.83);
  pool.Add(SlotType::kBrand, "jetscout", 0.88);

  pool.Add(SlotType::kAction, "find cheap", 0.82);
  pool.Add(SlotType::kAction, "get discounts on", 0.90);
  pool.Add(SlotType::kAction, "book", 0.74);
  pool.Add(SlotType::kAction, "compare", 0.78);
  pool.Add(SlotType::kAction, "search", 0.68);
  pool.Add(SlotType::kAction, "save big on", 0.88);
  pool.Add(SlotType::kAction, "browse", 0.62);
  pool.Add(SlotType::kAction, "reserve", 0.70);
  pool.Add(SlotType::kAction, "find deals on", 0.86);
  pool.Add(SlotType::kAction, "get cheap", 0.80);
  pool.Add(SlotType::kAction, "grab discounted", 0.79);
  pool.Add(SlotType::kAction, "unlock savings on", 0.84);
  pool.Add(SlotType::kAction, "discover", 0.66);
  pool.Add(SlotType::kAction, "plan", 0.64);
  pool.Add(SlotType::kAction, "snag low fares on", 0.87);
  pool.Add(SlotType::kAction, "shop", 0.65);

  pool.Add(SlotType::kObject, "flights to new york", 0.85);
  pool.Add(SlotType::kObject, "flights to paris", 0.85);
  pool.Add(SlotType::kObject, "flights to london", 0.84);
  pool.Add(SlotType::kObject, "flights to tokyo", 0.83);
  pool.Add(SlotType::kObject, "flights to miami", 0.82);
  pool.Add(SlotType::kObject, "flights to rome", 0.83);
  pool.Add(SlotType::kObject, "hotel rooms", 0.80);
  pool.Add(SlotType::kObject, "beach resorts", 0.81);
  pool.Add(SlotType::kObject, "vacation packages", 0.82);
  pool.Add(SlotType::kObject, "car rentals", 0.78);
  pool.Add(SlotType::kObject, "cruise tickets", 0.76);
  pool.Add(SlotType::kObject, "last minute flights", 0.84);
  pool.Add(SlotType::kObject, "business class seats", 0.79);
  pool.Add(SlotType::kObject, "ski trips", 0.77);
  pool.Add(SlotType::kObject, "airport transfers", 0.72);
  pool.Add(SlotType::kObject, "train passes", 0.71);
  pool.Add(SlotType::kObject, "city tours", 0.74);
  pool.Add(SlotType::kObject, "family getaways", 0.80);
  pool.Add(SlotType::kObject, "weekend escapes", 0.79);
  pool.Add(SlotType::kObject, "round trip fares", 0.82);
  // Destination-expanded inventory: boundary-token diversity mirrors the
  // long tail of real travel keywords.
  const char* const kCities[] = {"chicago",  "denver", "seattle", "austin",  "boston",
                                 "madrid",   "berlin", "sydney",  "toronto", "cancun",
                                 "honolulu", "lisbon", "dublin",  "oslo",    "athens"};
  const double kCityAppeal[] = {0.81, 0.79, 0.80, 0.78, 0.82, 0.83, 0.80, 0.84,
                                0.79, 0.85, 0.86, 0.81, 0.80, 0.77, 0.82};
  for (size_t i = 0; i < std::size(kCities); ++i) {
    pool.Add(SlotType::kObject, StrFormat("flights to %s", kCities[i]), kCityAppeal[i]);
  }
  for (size_t i = 0; i < std::size(kCities); i += 2) {
    pool.Add(SlotType::kObject, StrFormat("hotels in %s", kCities[i]),
             kCityAppeal[i] - 0.03);
  }

  pool.Add(SlotType::kQuality, "no reservation costs", 0.86);
  pool.Add(SlotType::kQuality, "great rates", 0.84);
  pool.Add(SlotType::kQuality, "more legroom", 0.88);
  pool.Add(SlotType::kQuality, "free cancellation", 0.90);
  pool.Add(SlotType::kQuality, "trusted by millions", 0.76);
  pool.Add(SlotType::kQuality, "award winning service", 0.74);
  pool.Add(SlotType::kQuality, "24 7 support", 0.72);
  pool.Add(SlotType::kQuality, "no hidden charges", 0.85);
  pool.Add(SlotType::kQuality, "instant confirmation", 0.83);
  pool.Add(SlotType::kQuality, "flexible dates", 0.82);
  pool.Add(SlotType::kQuality, "best price on every route", 0.87);
  pool.Add(SlotType::kQuality, "handpicked partner airlines", 0.73);
  pool.Add(SlotType::kQuality, "free seat selection", 0.81);
  pool.Add(SlotType::kQuality, "pay at the hotel", 0.79);

  pool.Add(SlotType::kOffer, "20% off", 0.92);
  pool.Add(SlotType::kOffer, "save $50 today", 0.90);
  pool.Add(SlotType::kOffer, "price match promise", 0.80);
  pool.Add(SlotType::kOffer, "free upgrade", 0.86);
  pool.Add(SlotType::kOffer, "limited time sale", 0.84);
  pool.Add(SlotType::kOffer, "exclusive member deals", 0.78);
  pool.Add(SlotType::kOffer, "fares from $39", 0.91);
  pool.Add(SlotType::kOffer, "2 for 1 companion fares", 0.89);
  pool.Add(SlotType::kOffer, "kids fly free", 0.87);
  pool.Add(SlotType::kOffer, "extra 10% off with code save10", 0.83);
  pool.Add(SlotType::kOffer, "free checked bag", 0.85);
  pool.Add(SlotType::kOffer, "double miles this month", 0.77);

  pool.Add(SlotType::kCallToAction, "book now", 0.82);
  pool.Add(SlotType::kCallToAction, "start saving", 0.78);
  pool.Add(SlotType::kCallToAction, "see all deals", 0.76);
  pool.Add(SlotType::kCallToAction, "check prices", 0.74);
  pool.Add(SlotType::kCallToAction, "compare fares now", 0.79);
  pool.Add(SlotType::kCallToAction, "get your quote", 0.72);
  pool.Add(SlotType::kCallToAction, "view schedules", 0.68);
  pool.Add(SlotType::kCallToAction, "reserve today", 0.77);
  return pool;
}

PhrasePool PhrasePool::Shopping() {
  PhrasePool pool;
  pool.Add(SlotType::kBrand, "megamart online", 0.88);
  pool.Add(SlotType::kBrand, "shopfast", 0.86);
  pool.Add(SlotType::kBrand, "dealhub", 0.87);
  pool.Add(SlotType::kBrand, "pricepoint store", 0.85);
  pool.Add(SlotType::kBrand, "urban outfit co", 0.84);
  pool.Add(SlotType::kBrand, "gadget galaxy", 0.86);
  pool.Add(SlotType::kBrand, "homeware haven", 0.83);
  pool.Add(SlotType::kBrand, "the bargain barn", 0.82);
  pool.Add(SlotType::kBrand, "cartwise", 0.85);
  pool.Add(SlotType::kBrand, "everyday essentials", 0.81);

  pool.Add(SlotType::kAction, "shop", 0.72);
  pool.Add(SlotType::kAction, "buy", 0.76);
  pool.Add(SlotType::kAction, "discover", 0.68);
  pool.Add(SlotType::kAction, "order", 0.74);
  pool.Add(SlotType::kAction, "find deals on", 0.86);
  pool.Add(SlotType::kAction, "save on", 0.88);
  pool.Add(SlotType::kAction, "browse", 0.62);
  pool.Add(SlotType::kAction, "get cheap", 0.80);
  pool.Add(SlotType::kAction, "compare prices on", 0.82);
  pool.Add(SlotType::kAction, "grab discounted", 0.81);
  pool.Add(SlotType::kAction, "explore", 0.64);
  pool.Add(SlotType::kAction, "stock up on", 0.75);
  pool.Add(SlotType::kAction, "upgrade your", 0.73);
  pool.Add(SlotType::kAction, "unlock savings on", 0.84);

  pool.Add(SlotType::kObject, "running shoes", 0.82);
  pool.Add(SlotType::kObject, "wireless headphones", 0.84);
  pool.Add(SlotType::kObject, "kitchen appliances", 0.78);
  pool.Add(SlotType::kObject, "winter jackets", 0.80);
  pool.Add(SlotType::kObject, "laptop computers", 0.83);
  pool.Add(SlotType::kObject, "smart watches", 0.81);
  pool.Add(SlotType::kObject, "office chairs", 0.75);
  pool.Add(SlotType::kObject, "gaming consoles", 0.85);
  pool.Add(SlotType::kObject, "4k televisions", 0.84);
  pool.Add(SlotType::kObject, "robot vacuums", 0.82);
  pool.Add(SlotType::kObject, "standing desks", 0.77);
  pool.Add(SlotType::kObject, "air fryers", 0.80);
  pool.Add(SlotType::kObject, "yoga mats", 0.72);
  pool.Add(SlotType::kObject, "hiking boots", 0.78);
  pool.Add(SlotType::kObject, "coffee makers", 0.79);
  pool.Add(SlotType::kObject, "bluetooth speakers", 0.80);
  pool.Add(SlotType::kObject, "phone cases", 0.70);
  pool.Add(SlotType::kObject, "designer handbags", 0.83);
  pool.Add(SlotType::kObject, "mattresses", 0.81);
  pool.Add(SlotType::kObject, "patio furniture", 0.76);
  const char* const kProducts[] = {"electric scooters", "baby strollers", "desk lamps",
                                   "rain boots",        "pet beds",       "blenders",
                                   "backpacks",         "monitors",       "area rugs",
                                   "drones",            "e readers",      "toolkits",
                                   "sunglasses",        "water bottles",  "keyboards"};
  const double kProductAppeal[] = {0.81, 0.77, 0.72, 0.74, 0.73, 0.78, 0.76, 0.82,
                                   0.75, 0.84, 0.79, 0.74, 0.77, 0.71, 0.78};
  for (size_t i = 0; i < std::size(kProducts); ++i) {
    pool.Add(SlotType::kObject, kProducts[i], kProductAppeal[i]);
  }

  pool.Add(SlotType::kQuality, "free shipping", 0.92);
  pool.Add(SlotType::kQuality, "easy returns", 0.84);
  pool.Add(SlotType::kQuality, "top rated", 0.80);
  pool.Add(SlotType::kQuality, "in stock now", 0.78);
  pool.Add(SlotType::kQuality, "authentic brands", 0.76);
  pool.Add(SlotType::kQuality, "next day delivery", 0.90);
  pool.Add(SlotType::kQuality, "price guarantee", 0.82);
  pool.Add(SlotType::kQuality, "free shipping on all orders", 0.91);
  pool.Add(SlotType::kQuality, "30 day money back", 0.87);
  pool.Add(SlotType::kQuality, "2 year warranty included", 0.85);
  pool.Add(SlotType::kQuality, "thousands of 5 star reviews", 0.83);
  pool.Add(SlotType::kQuality, "curbside pickup", 0.71);
  pool.Add(SlotType::kQuality, "new arrivals weekly", 0.73);
  pool.Add(SlotType::kQuality, "no restocking fees", 0.79);

  pool.Add(SlotType::kOffer, "up to 40% off", 0.93);
  pool.Add(SlotType::kOffer, "clearance sale", 0.85);
  pool.Add(SlotType::kOffer, "buy one get one", 0.89);
  pool.Add(SlotType::kOffer, "$10 coupon", 0.83);
  pool.Add(SlotType::kOffer, "flash deals daily", 0.81);
  pool.Add(SlotType::kOffer, "holiday discounts", 0.79);
  pool.Add(SlotType::kOffer, "extra 15% off at checkout", 0.88);
  pool.Add(SlotType::kOffer, "prices from $9.99", 0.87);
  pool.Add(SlotType::kOffer, "free gift with purchase", 0.84);
  pool.Add(SlotType::kOffer, "weekend doorbusters", 0.82);
  pool.Add(SlotType::kOffer, "members save twice", 0.76);
  pool.Add(SlotType::kOffer, "bundle and save", 0.80);

  pool.Add(SlotType::kCallToAction, "shop now", 0.80);
  pool.Add(SlotType::kCallToAction, "grab yours", 0.74);
  pool.Add(SlotType::kCallToAction, "view catalog", 0.70);
  pool.Add(SlotType::kCallToAction, "add to cart", 0.76);
  pool.Add(SlotType::kCallToAction, "see today's deals", 0.78);
  pool.Add(SlotType::kCallToAction, "start browsing", 0.69);
  pool.Add(SlotType::kCallToAction, "claim your coupon", 0.77);
  pool.Add(SlotType::kCallToAction, "order today", 0.75);
  return pool;
}

PhrasePool PhrasePool::Finance() {
  PhrasePool pool;
  pool.Add(SlotType::kBrand, "securebank", 0.88);
  pool.Add(SlotType::kBrand, "capital direct", 0.86);
  pool.Add(SlotType::kBrand, "truerate lending", 0.85);
  pool.Add(SlotType::kBrand, "northstar finance", 0.84);
  pool.Add(SlotType::kBrand, "summit credit union", 0.83);
  pool.Add(SlotType::kBrand, "evergreen funding", 0.82);
  pool.Add(SlotType::kBrand, "beacon mortgage", 0.85);
  pool.Add(SlotType::kBrand, "quantum wealth", 0.81);
  pool.Add(SlotType::kBrand, "harbor trust", 0.84);
  pool.Add(SlotType::kBrand, "velocity loans", 0.83);

  pool.Add(SlotType::kAction, "apply for", 0.76);
  pool.Add(SlotType::kAction, "compare", 0.80);
  pool.Add(SlotType::kAction, "refinance", 0.78);
  pool.Add(SlotType::kAction, "get approved for", 0.84);
  pool.Add(SlotType::kAction, "lower your", 0.86);
  pool.Add(SlotType::kAction, "check", 0.70);
  pool.Add(SlotType::kAction, "consolidate", 0.77);
  pool.Add(SlotType::kAction, "prequalify for", 0.82);
  pool.Add(SlotType::kAction, "switch to better", 0.81);
  pool.Add(SlotType::kAction, "calculate", 0.66);
  pool.Add(SlotType::kAction, "shop", 0.65);
  pool.Add(SlotType::kAction, "lock in", 0.79);

  pool.Add(SlotType::kObject, "personal loans", 0.82);
  pool.Add(SlotType::kObject, "mortgage rates", 0.84);
  pool.Add(SlotType::kObject, "credit cards", 0.83);
  pool.Add(SlotType::kObject, "auto insurance", 0.80);
  pool.Add(SlotType::kObject, "savings accounts", 0.78);
  pool.Add(SlotType::kObject, "student loans", 0.79);
  pool.Add(SlotType::kObject, "retirement plans", 0.74);
  pool.Add(SlotType::kObject, "home equity loans", 0.81);
  pool.Add(SlotType::kObject, "business lines of credit", 0.77);
  pool.Add(SlotType::kObject, "high yield cds", 0.80);
  pool.Add(SlotType::kObject, "debt consolidation loans", 0.82);
  pool.Add(SlotType::kObject, "life insurance quotes", 0.76);
  pool.Add(SlotType::kObject, "checking accounts", 0.73);
  pool.Add(SlotType::kObject, "investment accounts", 0.75);
  pool.Add(SlotType::kObject, "balance transfer cards", 0.81);
  pool.Add(SlotType::kObject, "auto loans", 0.80);
  const char* const kFinProducts[] = {"jumbo mortgages",      "roth iras",
                                      "money market accounts", "travel rewards cards",
                                      "secured credit cards",  "heloc rates",
                                      "renters insurance",     "term life insurance",
                                      "crypto accounts",       "brokerage accounts"};
  const double kFinAppeal[] = {0.78, 0.76, 0.77, 0.82, 0.75, 0.80, 0.74, 0.77, 0.72, 0.76};
  for (size_t i = 0; i < std::size(kFinProducts); ++i) {
    pool.Add(SlotType::kObject, kFinProducts[i], kFinAppeal[i]);
  }

  pool.Add(SlotType::kQuality, "no hidden fees", 0.90);
  pool.Add(SlotType::kQuality, "instant decision", 0.88);
  pool.Add(SlotType::kQuality, "fdic insured", 0.80);
  pool.Add(SlotType::kQuality, "low apr", 0.89);
  pool.Add(SlotType::kQuality, "trusted lender", 0.76);
  pool.Add(SlotType::kQuality, "no credit impact", 0.86);
  pool.Add(SlotType::kQuality, "no annual fee ever", 0.87);
  pool.Add(SlotType::kQuality, "approval in minutes", 0.85);
  pool.Add(SlotType::kQuality, "rates that beat the big banks", 0.84);
  pool.Add(SlotType::kQuality, "no origination fees", 0.83);
  pool.Add(SlotType::kQuality, "award winning mobile app", 0.72);
  pool.Add(SlotType::kQuality, "personal advisor included", 0.74);
  pool.Add(SlotType::kQuality, "same day funding", 0.88);
  pool.Add(SlotType::kQuality, "flexible repayment terms", 0.79);

  pool.Add(SlotType::kOffer, "0% intro apr", 0.92);
  pool.Add(SlotType::kOffer, "$200 bonus", 0.90);
  pool.Add(SlotType::kOffer, "rates from 3.9%", 0.85);
  pool.Add(SlotType::kOffer, "no annual fee", 0.88);
  pool.Add(SlotType::kOffer, "cash back rewards", 0.87);
  pool.Add(SlotType::kOffer, "5% apy on savings", 0.91);
  pool.Add(SlotType::kOffer, "up to $500 welcome bonus", 0.89);
  pool.Add(SlotType::kOffer, "18 months interest free", 0.88);
  pool.Add(SlotType::kOffer, "free credit score monitoring", 0.80);
  pool.Add(SlotType::kOffer, "waived closing costs", 0.84);
  pool.Add(SlotType::kOffer, "double rewards first year", 0.82);
  pool.Add(SlotType::kOffer, "no payments for 90 days", 0.86);

  pool.Add(SlotType::kCallToAction, "apply today", 0.80);
  pool.Add(SlotType::kCallToAction, "get your rate", 0.82);
  pool.Add(SlotType::kCallToAction, "see if you qualify", 0.78);
  pool.Add(SlotType::kCallToAction, "open an account", 0.74);
  pool.Add(SlotType::kCallToAction, "start your application", 0.76);
  pool.Add(SlotType::kCallToAction, "talk to an advisor", 0.70);
  pool.Add(SlotType::kCallToAction, "check your rate now", 0.81);
  pool.Add(SlotType::kCallToAction, "compare plans", 0.75);
  return pool;
}

PhrasePool PhrasePool::Synthetic(int per_slot, Rng* rng) {
  PhrasePool pool;
  for (int s = 0; s < kNumSlotTypes; ++s) {
    const SlotType slot = static_cast<SlotType>(s);
    for (int i = 0; i < per_slot; ++i) {
      const int tokens = 1 + static_cast<int>(rng->NextIndex(3));
      std::vector<std::string> parts;
      for (int t = 0; t < tokens; ++t) {
        parts.push_back(StrFormat("%s%d_%d", SlotTypeName(slot), i, t));
      }
      pool.Add(slot, Join(parts, " "), rng->Uniform(0.55, 0.95));
    }
  }
  return pool;
}

}  // namespace microbrowse
