// Copyright 2026 The Microbrowse Authors
//
// Pair extraction (Section V-A): within each adgroup, emit creative pairs
// whose observed CTRs differ significantly. Because the keyword is shared,
// any CTR difference is attributable to the creative text.

#ifndef MICROBROWSE_CORPUS_PAIR_EXTRACTION_H_
#define MICROBROWSE_CORPUS_PAIR_EXTRACTION_H_

#include "corpus/ad.h"
#include "microbrowse/pair.h"

namespace microbrowse {

/// Pair-extraction configuration.
struct PairExtractionOptions {
  /// Creatives below these floors never enter pairs.
  int64_t min_impressions = 500;
  int64_t min_clicks = 1;
  /// Two-sided two-proportion z-test threshold on the CTR difference.
  double significance_level = 0.05;
  /// Cap on pairs emitted per adgroup (0 = unlimited).
  int max_pairs_per_adgroup = 6;
};

/// Extracts significant same-adgroup creative pairs from `corpus`. Pair
/// order (r, s) preserves creative order within the adgroup; labels are
/// derived later from the serve weights.
PairCorpus ExtractSignificantPairs(const AdCorpus& corpus,
                                   const PairExtractionOptions& options = {});

}  // namespace microbrowse

#endif  // MICROBROWSE_CORPUS_PAIR_EXTRACTION_H_
