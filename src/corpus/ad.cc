// Copyright 2026 The Microbrowse Authors

#include "corpus/ad.h"

namespace microbrowse {

const char* PlacementName(Placement placement) {
  return placement == Placement::kRhs ? "rhs" : "top";
}

}  // namespace microbrowse
