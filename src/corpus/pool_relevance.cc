// Copyright 2026 The Microbrowse Authors

#include "corpus/pool_relevance.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace microbrowse {

PoolRelevance::PoolRelevance(const PhrasePool& pool, double jitter, double default_relevance,
                             uint64_t seed)
    : jitter_(jitter), default_relevance_(default_relevance), seed_(seed) {
  for (int s = 0; s < kNumSlotTypes; ++s) {
    for (const Phrase& phrase : pool.PhrasesFor(static_cast<SlotType>(s))) {
      const auto tokens = SplitWhitespace(phrase.text);
      if (tokens.empty()) continue;
      const double appeal = std::clamp(phrase.appeal, 1e-6, 1.0);
      auto [pit, phrase_inserted] = phrase_base_.emplace(phrase.text, appeal);
      if (!phrase_inserted) pit->second = std::max(pit->second, appeal);
      const double per_token = std::pow(appeal, 1.0 / static_cast<double>(tokens.size()));
      for (const auto& token : tokens) {
        // A token shared between phrases keeps the strongest (max) value:
        // seeing a salient word is salient regardless of which phrase it
        // came from.
        auto [it, inserted] = token_base_.emplace(token, per_token);
        if (!inserted) it->second = std::max(it->second, per_token);
      }
    }
  }
}

double PoolRelevance::BaseRelevance(std::string_view text) const {
  auto pit = phrase_base_.find(std::string(text));
  if (pit != phrase_base_.end()) return pit->second;
  auto it = token_base_.find(std::string(text));
  return it != token_base_.end() ? it->second : default_relevance_;
}

double PoolRelevance::Relevance(int32_t query_id, std::string_view token) const {
  const double base = BaseRelevance(token);
  if (jitter_ <= 0.0) return base;
  // Deterministic per-(query, token) perturbation in logit space: the
  // uniform draw in [-jitter, jitter] shifts logit(r), which scales the
  // miss-mass (1 - r) multiplicatively by roughly exp(-shift). Logit space
  // avoids the ceiling-clamping artifacts an additive perturbation has for
  // relevances near 1 and preserves the corpus-average phrase ordering.
  uint64_t h = HashCombine(seed_, static_cast<uint64_t>(static_cast<uint32_t>(query_id)));
  h = HashCombine(h, token);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double shift = jitter_ * (2.0 * u - 1.0);
  const double perturbed = Sigmoid(Logit(std::clamp(base, 0.02, 0.999)) + shift);
  return std::clamp(perturbed, 0.02, 0.999);
}

}  // namespace microbrowse
