// Copyright 2026 The Microbrowse Authors
//
// Sponsored-search corpus records (the ADCORPUS substitute). Terminology
// follows Section V of the paper: a *creative* is the displayed ad text, an
// *adgroup* groups alternative creatives targeting the same keyword, an
// *impression* is one display and a *clickthrough* one click.

#ifndef MICROBROWSE_CORPUS_AD_H_
#define MICROBROWSE_CORPUS_AD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/snippet.h"

namespace microbrowse {

/// Where the ad block was rendered on the results page (Table 4 compares
/// top-of-page against right-hand-side ads).
enum class Placement { kTop, kRhs };

/// Returns "top" or "rhs".
const char* PlacementName(Placement placement);

/// One ad creative with its serving statistics.
struct Creative {
  int64_t id = 0;
  Snippet snippet;
  int64_t impressions = 0;
  int64_t clicks = 0;
  /// Ground-truth expected CTR from the generative micro-browsing model.
  /// Only populated by the synthetic generator; classifiers never read it.
  double true_ctr = 0.0;

  double ctr() const {
    return impressions > 0 ? static_cast<double>(clicks) / static_cast<double>(impressions)
                           : 0.0;
  }
};

/// A set of alternative creatives targeting one keyword.
struct AdGroup {
  int64_t id = 0;
  int32_t keyword_id = 0;
  std::string keyword;
  std::vector<Creative> creatives;

  int64_t total_impressions() const {
    int64_t total = 0;
    for (const auto& c : creatives) total += c.impressions;
    return total;
  }
  int64_t total_clicks() const {
    int64_t total = 0;
    for (const auto& c : creatives) total += c.clicks;
    return total;
  }
  /// Mean CTR pooled over the adgroup's creatives.
  double mean_ctr() const {
    const int64_t impressions = total_impressions();
    return impressions > 0
               ? static_cast<double>(total_clicks()) / static_cast<double>(impressions)
               : 0.0;
  }
};

/// A full synthetic ADCORPUS.
struct AdCorpus {
  std::vector<AdGroup> adgroups;
  Placement placement = Placement::kTop;

  size_t num_creatives() const {
    size_t total = 0;
    for (const auto& g : adgroups) total += g.creatives.size();
    return total;
  }
};

}  // namespace microbrowse

#endif  // MICROBROWSE_CORPUS_AD_H_
