// Copyright 2026 The Microbrowse Authors

#include "corpus/serve_weight.h"

namespace microbrowse {

std::vector<double> ComputeServeWeights(const AdGroup& group) {
  std::vector<double> weights(group.creatives.size(), 1.0);
  const double mean_ctr = group.mean_ctr();
  if (mean_ctr <= 0.0) return weights;
  for (size_t i = 0; i < group.creatives.size(); ++i) {
    const auto& creative = group.creatives[i];
    if (creative.impressions <= 0) continue;
    weights[i] = creative.ctr() / mean_ctr;
  }
  return weights;
}

}  // namespace microbrowse
