// Copyright 2026 The Microbrowse Authors
//
// Examination heat maps: the paper's Section VI proposes comparing the
// micro-browsing model's examination probabilities against eye-tracking
// focus maps. This example renders the model's predicted heat map for a
// creative as shaded ASCII, with and without the intra-snippet attention
// cascade, and shows how moving a salient offer phrase reshapes the map.
//
// Run:  ./examination_heatmap

#include <cstdio>
#include <string>
#include <vector>

#include "corpus/phrase_pool.h"
#include "corpus/pool_relevance.h"
#include "microbrowse/model.h"

using namespace microbrowse;

namespace {

/// Shades p in [0,1] as a 5-level block character.
const char* Shade(double p) {
  if (p >= 0.8) return "█";
  if (p >= 0.6) return "▓";
  if (p >= 0.4) return "▒";
  if (p >= 0.2) return "░";
  return "·";
}

void Render(const char* title, const Snippet& snippet,
            const std::vector<std::vector<double>>& heatmap) {
  std::printf("%s\n", title);
  for (int line = 0; line < snippet.num_lines(); ++line) {
    std::printf("  line %d: ", line + 1);
    for (size_t pos = 0; pos < snippet.line(line).size(); ++pos) {
      const double p = heatmap[line][pos];
      std::printf("%s%s(%.2f) ", Shade(p), snippet.line(line)[pos].c_str(), p);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Ground-truth relevance from the travel phrase pool (jitter off so the
  // maps are exactly reproducible).
  const PoolRelevance relevance(PhrasePool::Travel(), /*jitter=*/0.0);
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), /*base_ctr=*/0.1);

  const Snippet offer_last = Snippet::FromLines(
      {"jetscout", "find cheap flights to paris", "free cancellation and 20% off"});
  const Snippet offer_first = Snippet::FromLines(
      {"jetscout 20% off", "find cheap flights to paris", "free cancellation"});

  std::printf("Examination probability per token (micro-browsing model, TOP placement)\n");
  std::printf("shading: █>=0.8  ▓>=0.6  ▒>=0.4  ░>=0.2  ·<0.2\n\n");

  Render("offer buried on line 3, no attention cascade:", offer_last,
         model.ExaminationHeatmap(0, offer_last, relevance, /*absorb=*/0.0));
  Render("offer buried on line 3, attention cascade 0.4 (salient words end the scan):",
         offer_last, model.ExaminationHeatmap(0, offer_last, relevance, 0.4));
  Render("offer promoted to the headline, attention cascade 0.4:", offer_first,
         model.ExaminationHeatmap(0, offer_first, relevance, 0.4));

  const double ctr_last = model.ExpectedClickProbability(0, offer_last, relevance);
  const double ctr_first = model.ExpectedClickProbability(0, offer_first, relevance);
  std::printf("expected CTR, offer last : %.4f\n", ctr_last);
  std::printf("expected CTR, offer first: %.4f\n", ctr_first);
  std::printf(
      "\nThe same words produce different heat maps — and different CTR —\n"
      "depending only on WHERE they sit. Note the direction: under Eq. 3\n"
      "every examined term can only disqualify (r < 1), so raising a\n"
      "phrase's visibility pays off exactly when it displaces *weaker* text\n"
      "from the user's attention — position is a zero-sum budget, which is\n"
      "why the classifier needs the position-vs-relevance coupling instead\n"
      "of a simple 'salient words up' rule.\n");
  return 0;
}
