// Copyright 2026 The Microbrowse Authors
//
// Click-model playground: the Section II substrate as a standalone demo.
// Simulates SERP logs from a chosen ground-truth browsing model, fits the
// whole macro-model family, and shows how each model explains (or fails to
// explain) the click pattern of one concrete session.
//
// Run:  ./clickmodel_playground [num_sessions]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "clickmodels/cascade.h"
#include "clickmodels/ccm.h"
#include "clickmodels/dbn.h"
#include "clickmodels/dcm.h"
#include "clickmodels/evaluation.h"
#include "clickmodels/pbm.h"
#include "clickmodels/simulator.h"
#include "clickmodels/ubm.h"
#include "common/string_util.h"

using namespace microbrowse;

int main(int argc, char** argv) {
  SerpSimulatorOptions options;
  options.num_queries = 40;
  options.docs_per_query = 12;
  options.positions = 6;
  options.num_sessions = argc > 1 ? std::atoi(argv[1]) : 50000;
  options.seed = 17;

  // Ground truth: a UBM user — examination depends on the distance to the
  // last click.
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  std::vector<std::vector<double>> gammas(options.positions);
  for (int i = 0; i < options.positions; ++i) {
    gammas[i].assign(i + 1, 0.0);
    for (int d = 0; d <= i; ++d) gammas[i][d] = 0.85 / (1.0 + 0.6 * d);
  }
  const UserBrowsingModel generator(gammas, truth.attraction);

  auto log = SimulateSerpLog(options, truth, generator, &rng);
  if (!log.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated %zu sessions from a UBM user over %d queries\n\n",
              log->sessions.size(), options.num_queries);

  std::vector<std::unique_ptr<ClickModel>> models;
  models.push_back(std::make_unique<PositionBasedModel>());
  models.push_back(std::make_unique<CascadeModel>());
  models.push_back(std::make_unique<DependentClickModel>());
  models.push_back(std::make_unique<UserBrowsingModel>());
  models.push_back(std::make_unique<ClickChainModel>());
  models.push_back(std::make_unique<DbnModel>());

  for (auto& model : models) {
    const Status status = model->Fit(*log);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", std::string(model->name()).c_str(),
                   status.ToString().c_str());
      return 1;
    }
    const auto eval = EvaluateClickModel(*model, *log);
    std::printf("%-8s loglik/obs=%.4f  perplexity=%.4f\n", std::string(model->name()).c_str(),
                eval.avg_log_likelihood, eval.perplexity);
  }

  // Pick a multi-click session and show each model's position-by-position
  // click probabilities against what actually happened.
  const Session* interesting = nullptr;
  for (const auto& session : log->sessions) {
    if (session.num_clicks() >= 2 && session.last_click_position() >= 3) {
      interesting = &session;
      break;
    }
  }
  if (interesting != nullptr) {
    std::printf("\none multi-click session (query %d), clicks at positions:",
                interesting->query_id);
    for (size_t i = 0; i < interesting->results.size(); ++i) {
      if (interesting->results[i].clicked) std::printf(" %zu", i);
    }
    std::printf("\nper-position conditional click probabilities under each fitted model:\n");
    std::printf("%-8s", "pos");
    for (size_t i = 0; i < interesting->results.size(); ++i) {
      std::printf("%8zu%s", i, interesting->results[i].clicked ? "*" : " ");
    }
    std::printf("\n");
    for (auto& model : models) {
      const auto probs = model->ConditionalClickProbs(*interesting);
      std::printf("%-8s", std::string(model->name()).c_str());
      for (double p : probs) std::printf("%8.3f ", p);
      std::printf("\n");
    }
    std::printf("(* = clicked; note how cascade-family models zero out or dampen\n"
                "probabilities after clicks while UBM re-weights by click distance)\n");
  }
  return 0;
}
