// Copyright 2026 The Microbrowse Authors
//
// A/B test advisor: the workload from the paper's introduction. An
// advertiser has a live creative and drafts a challenger; before spending
// impressions on an A/B test, the micro-browsing classifier predicts which
// one will win and explains *why* — which rewrites and which positions
// drive the prediction.
//
// The tool trains on a synthetic ADCORPUS (the stand-in for historical
// serving logs), then scores a handful of hand-written creative pairs.
//
// Run:  ./ab_test_advisor [num_adgroups]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/experiments.h"
#include "microbrowse/classifier.h"
#include "microbrowse/feature_keys.h"

using namespace microbrowse;

namespace {

struct Draft {
  const char* description;
  std::vector<std::string> incumbent;
  std::vector<std::string> challenger;
};

void Advise(const Draft& draft, const FeatureStatsDb& db, const CoupledDataset& dataset,
            const SnippetClassifierModel& model, const ClassifierConfig& config) {
  const Snippet incumbent = Snippet::FromLines(draft.incumbent);
  const Snippet challenger = Snippet::FromLines(draft.challenger);

  // Score the (challenger, incumbent) presentation: positive score means
  // the challenger is predicted to win.
  FeatureRegistry t_registry = dataset.t_registry;
  FeatureRegistry p_registry = dataset.p_registry;
  CoupledExample example;
  ExtractPairOccurrences(challenger, incumbent, db, config, &t_registry, &p_registry,
                         &example.occurrences);
  const double score = model.Score(example);

  std::printf("--- %s\n", draft.description);
  std::printf("  incumbent : %s\n", incumbent.ToString().c_str());
  std::printf("  challenger: %s\n", challenger.ToString().c_str());
  std::printf("  verdict   : challenger %s (score %+.3f)\n",
              score >= 0 ? "FAVOURED" : "not favoured", score);

  // Explanation: the highest-|net contribution| features (occurrences of
  // the same feature are aggregated, so shared content cancels out).
  struct Contribution {
    std::string what;
    double value;
  };
  std::map<std::string, double> net;
  for (const auto& occ : example.occurrences) {
    const double t = occ.t < model.t_weights.size() ? model.t_weights[occ.t] : 0.0;
    const double p = occ.p == kInvalidFeatureId
                         ? 1.0
                         : (occ.p < model.p_weights.size() ? model.p_weights[occ.p] : 1.0);
    const double value = occ.sign * p * t;
    if (value == 0.0) continue;
    std::string what(t_registry.NameOf(occ.t));
    if (occ.p != kInvalidFeatureId) {
      what += " @ ";
      what += p_registry.NameOf(occ.p);
    }
    net[what] += value;
  }
  std::vector<Contribution> contributions;
  for (auto& [what, value] : net) {
    if (std::fabs(value) > 1e-9) contributions.push_back({what, value});
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const Contribution& a, const Contribution& b) {
              return std::fabs(a.value) > std::fabs(b.value);
            });
  std::printf("  drivers   :\n");
  for (size_t i = 0; i < contributions.size() && i < 5; ++i) {
    std::printf("    %+.3f  %s\n", contributions[i].value, contributions[i].what.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions options;
  options.num_adgroups = argc > 1 ? std::atoi(argv[1]) : 3000;
  options.Normalize();

  std::printf("training the M6 snippet classifier on %d synthetic adgroups...\n",
              options.num_adgroups);
  auto pairs = MakePairCorpus(options, Placement::kTop);
  if (!pairs.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", pairs.status().ToString().c_str());
    return 1;
  }
  const FeatureStatsDb db = BuildFeatureStats(*pairs, options.pipeline.stats);
  const ClassifierConfig config = ClassifierConfig::M6();
  const CoupledDataset dataset = BuildClassifierDataset(*pairs, db, config, options.seed);
  auto model = TrainSnippetClassifier(dataset, config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu pairs (%zu relevance features, %zu position features)\n\n",
              dataset.examples.size(), dataset.t_registry.size(), dataset.p_registry.size());

  const std::vector<Draft> drafts = {
      {"swap a weak action for a strong one",
       {"jetscout", "browse flights to paris", "free cancellation and 20% off"},
       {"jetscout", "save big on flights to paris", "free cancellation and 20% off"}},
      {"move the offer into the headline (position-only change)",
       {"jetscout", "find cheap flights to paris", "free cancellation and 20% off"},
       {"jetscout and 20% off", "find cheap flights to paris", "free cancellation"}},
      {"downgrade the quality claim",
       {"skyjet deals", "compare flights to rome", "free cancellation and fares from $39"},
       {"skyjet deals", "compare flights to rome", "24 7 support and fares from $39"}},
  };
  for (const Draft& draft : drafts) Advise(draft, db, dataset, *model, config);

  std::printf("Note: the verdicts come from a model trained on synthetic serving\n"
              "logs; with real logs the same code advises on real creatives.\n");
  return 0;
}
