// Copyright 2026 The Microbrowse Authors
//
// Quickstart: the full micro-browsing pipeline in ~60 lines.
//   1. Generate a synthetic sponsored-search corpus (the ADCORPUS stand-in).
//   2. Extract creative pairs with significantly different CTRs.
//   3. Build the feature-statistics database (phase one, Fig. 1).
//   4. Cross-validate the bag-of-terms baseline M1 against the full
//      micro-browsing classifier M6 (phase two).
//
// Run:  ./quickstart [num_adgroups]

#include <cstdio>
#include <cstdlib>

#include "eval/experiments.h"

int main(int argc, char** argv) {
  using namespace microbrowse;

  ExperimentOptions options;
  options.num_adgroups = argc > 1 ? std::atoi(argv[1]) : 4000;
  options.folds = 5;
  options.Normalize();

  // 1 + 2: corpus generation and pair extraction.
  auto pairs = MakePairCorpus(options, Placement::kTop);
  if (!pairs.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("pair corpus: %zu significant creative pairs from %d adgroups\n",
              pairs->pairs.size(), options.num_adgroups);
  if (!pairs->pairs.empty()) {
    const SnippetPair& example = pairs->pairs.front();
    std::printf("example pair (adgroup %lld):\n  R (sw=%.2f): %s\n  S (sw=%.2f): %s\n",
                static_cast<long long>(example.adgroup_id), example.r.serve_weight,
                example.r.snippet.ToString().c_str(), example.s.serve_weight,
                example.s.snippet.ToString().c_str());
  }

  // 3 + 4: pipeline for the baseline and the full model.
  for (const ClassifierConfig& config :
       {ClassifierConfig::M1(), ClassifierConfig::M6()}) {
    auto report = RunPairClassificationCv(*pairs, config, options.pipeline);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", config.name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%s  recall=%.3f precision=%.3f F=%.3f accuracy=%.3f auc=%.3f  "
        "(%zu features, %.1fs)\n",
        config.name.c_str(), report->metrics.recall(), report->metrics.precision(),
        report->metrics.f1(), report->metrics.accuracy(), report->auc,
        report->num_t_features, report->train_seconds);
  }
  std::printf(
      "\nThe gap between M1 and M6 is the paper's headline result: knowing\n"
      "*which words changed, and where the user actually reads*, predicts\n"
      "which creative wins.\n");
  return 0;
}
