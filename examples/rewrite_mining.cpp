// Copyright 2026 The Microbrowse Authors
//
// Rewrite mining: phase one of the paper's pipeline as a standalone
// analysis. Builds the feature-statistics database over a corpus of
// creative pairs and prints the strongest rewrites ("changing X to Y
// raises CTR"), the strongest single terms, and the position statistics —
// the kind of report an advertiser tooling team would ship.
//
// Run:  ./rewrite_mining [num_adgroups]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "eval/experiments.h"
#include "microbrowse/stats_db.h"

using namespace microbrowse;

namespace {

struct Entry {
  std::string key;
  FeatureStat stat;
};

std::vector<Entry> TopByPrefix(const FeatureStatsDb& db, const std::string& prefix,
                               int64_t min_count, size_t top_n, bool ascending) {
  std::vector<Entry> entries;
  for (const auto& [key, stat] : db.stats()) {
    if (!StartsWith(key, prefix)) continue;
    if (stat.total < min_count) continue;
    entries.push_back({key, stat});
  }
  std::sort(entries.begin(), entries.end(), [&](const Entry& a, const Entry& b) {
    const double pa = a.stat.SmoothedP();
    const double pb = b.stat.SmoothedP();
    return ascending ? pa < pb : pa > pb;
  });
  if (entries.size() > top_n) entries.resize(top_n);
  return entries;
}

void PrintEntries(const char* title, const std::vector<Entry>& entries) {
  std::printf("%s\n", title);
  for (const auto& entry : entries) {
    std::printf("  p(+)=%.3f  odds=%5.2f  n=%5lld  %s\n", entry.stat.SmoothedP(),
                entry.stat.OddsRatio(), static_cast<long long>(entry.stat.total),
                entry.key.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions options;
  options.num_adgroups = argc > 1 ? std::atoi(argv[1]) : 3000;
  options.Normalize();

  auto pairs = MakePairCorpus(options, Placement::kTop);
  if (!pairs.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("mining %zu significant creative pairs...\n\n", pairs->pairs.size());
  const FeatureStatsDb db = BuildFeatureStats(*pairs, options.pipeline.stats);
  std::printf("statistics database: %zu features\n\n", db.size());

  // Direction-aware display for rewrites: a canonical key "rw:a=>b" with
  // p(+) far below 0.5 means b=>a is the improving direction.
  PrintEntries("STRONGEST IMPROVING REWRITES (canonical direction, min 10 observations):",
               TopByPrefix(db, "rw:", 10, 12, /*ascending=*/false));
  PrintEntries("STRONGEST DEGRADING REWRITES (i.e., the reverse direction improves):",
               TopByPrefix(db, "rw:", 10, 12, /*ascending=*/true));
  PrintEntries("TERMS MOST ASSOCIATED WITH WINNING CREATIVES:",
               TopByPrefix(db, "t:", 25, 12, /*ascending=*/false));
  PrintEntries("TERMS MOST ASSOCIATED WITH LOSING CREATIVES:",
               TopByPrefix(db, "t:", 25, 12, /*ascending=*/true));
  PrintEntries("REWRITE POSITION PAIRS (r-side position => s-side position):",
               TopByPrefix(db, "pp:", 30, 10, /*ascending=*/false));
  return 0;
}
