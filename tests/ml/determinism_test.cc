// Copyright 2026 The Microbrowse Authors
//
// The determinism suite for the parallel training hot path (DESIGN.md
// section 11): every parallelised component — the proximal LR solver, the
// statistics build, the metrics pass and the full CV pipeline — must
// produce bitwise identical results for any thread count. These tests
// compare 1, 2 and 8 worker runs with exact (==) equality on doubles,
// deliberately: the contract is reproducibility, not approximation.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/math_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/pipeline.h"
#include "microbrowse/stats_db.h"
#include "ml/csr.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/simd.h"

namespace microbrowse {
namespace {

/// Synthetic sparse CSR problem with a planted logistic truth model.
CsrDataset MakePlantedCorpus(size_t n, size_t n_features, size_t nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> truth(n_features);
  for (double& w : truth) w = rng.Gaussian(0.0, 0.5);
  CsrDataset data;
  data.num_features = n_features;
  data.weights.assign(n, 1.0);
  data.offsets.assign(n, 0.0);
  data.row_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (size_t k = 0; k < nnz; ++k) {
      const FeatureId id = static_cast<FeatureId>(rng.NextIndex(n_features));
      const double value = rng.Uniform(0.5, 1.5);
      data.ids.push_back(id);
      data.values.push_back(value);
      score += value * truth[id];
    }
    data.labels.push_back(rng.Bernoulli(Sigmoid(score)) ? 1.0 : 0.0);
    data.row_offsets.push_back(data.ids.size());
  }
  return data;
}

TEST(TrainingDeterminismTest, ProximalBatchBitwiseIdenticalAcrossThreadCounts) {
  // Large enough that NumGradientBlocks produces a multi-block grid, so
  // threads 2 and 8 genuinely schedule different block interleavings.
  const CsrDataset data = MakePlantedCorpus(4096, 512, 12, 31);
  LrOptions options;
  options.solver = LrSolver::kProximalBatch;
  options.epochs = 8;

  options.num_threads = 1;
  auto reference = TrainLogisticRegression(data, options);
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(reference->weights().size(), 0u);

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    auto parallel = TrainLogisticRegression(data, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->weights(), reference->weights()) << threads << " threads";
    EXPECT_EQ(parallel->bias(), reference->bias()) << threads << " threads";
  }
}

TEST(TrainingDeterminismTest, DatasetOverloadMatchesCsrOverload) {
  // The Dataset entry point flattens and delegates; a warm start plus an
  // offset column exercises the full option surface through both paths.
  const CsrDataset csr = MakePlantedCorpus(1024, 64, 6, 7);
  Dataset data;
  data.num_features = csr.num_features;
  for (size_t i = 0; i < csr.size(); ++i) {
    Example example;
    for (size_t k = csr.row_offsets[i]; k < csr.row_offsets[i + 1]; ++k) {
      example.features.Add(csr.ids[k], csr.values[k]);
    }
    example.features.Finish();
    example.label = csr.labels[i];
    data.examples.push_back(std::move(example));
  }
  const std::vector<double> warm(csr.num_features, 0.05);
  LrOptions options;
  options.solver = LrSolver::kProximalBatch;
  options.epochs = 6;
  options.num_threads = 8;
  auto via_dataset = TrainLogisticRegression(data, options, &warm);
  // The flattened Dataset merges duplicate ids per row (SparseVector
  // semantics), so compare against its own flattening, not the raw csr.
  auto via_csr = TrainLogisticRegression(FlattenDataset(data), options, &warm);
  ASSERT_TRUE(via_dataset.ok());
  ASSERT_TRUE(via_csr.ok());
  EXPECT_EQ(via_dataset->weights(), via_csr->weights());
  EXPECT_EQ(via_dataset->bias(), via_csr->bias());
}

TEST(TrainingDeterminismTest, MetricsAndAucThreadInvariant) {
  Rng rng(13);
  std::vector<ScoredLabel> scored;
  for (int i = 0; i < 20000; ++i) {
    // Quantised scores force plenty of ties through the AUC tie-grouping.
    const double score = static_cast<double>(rng.NextIndex(101)) / 50.0 - 1.0;
    scored.push_back(ScoredLabel{score, rng.Bernoulli(Sigmoid(3.0 * score))});
  }
  const BinaryMetrics reference = ComputeBinaryMetrics(scored, 0.0, 1);
  const double reference_auc = ComputeAuc(scored, 1);
  for (int threads : {2, 8}) {
    const BinaryMetrics parallel = ComputeBinaryMetrics(scored, 0.0, threads);
    EXPECT_EQ(parallel.true_positives, reference.true_positives);
    EXPECT_EQ(parallel.false_positives, reference.false_positives);
    EXPECT_EQ(parallel.true_negatives, reference.true_negatives);
    EXPECT_EQ(parallel.false_negatives, reference.false_negatives);
    EXPECT_EQ(ComputeAuc(scored, threads), reference_auc) << threads << " threads";
  }
}

PairCorpus MakePairs(uint64_t seed, int adgroups) {
  AdCorpusOptions options;
  options.num_adgroups = adgroups;
  options.seed = seed;
  auto generated = GenerateAdCorpus(options);
  EXPECT_TRUE(generated.ok());
  return ExtractSignificantPairs(generated->corpus, {});
}

TEST(TrainingDeterminismTest, BuildFeatureStatsThreadInvariant) {
  const PairCorpus pairs = MakePairs(19, 120);
  // Enough pairs to clear the parallel-path threshold; otherwise the test
  // would trivially compare the serial path with itself.
  ASSERT_GE(pairs.pairs.size(), 256u);
  BuildStatsOptions options;
  options.num_threads = 1;
  const FeatureStatsDb reference = BuildFeatureStats(pairs, options);
  ASSERT_GT(reference.size(), 0u);
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const FeatureStatsDb parallel = BuildFeatureStats(pairs, options);
    ASSERT_EQ(parallel.size(), reference.size()) << threads << " threads";
    for (const auto& [key, stat] : reference.stats()) {
      const FeatureStat* other = parallel.Find(key);
      ASSERT_NE(other, nullptr) << key;
      EXPECT_EQ(other->positive, stat.positive) << key;
      EXPECT_EQ(other->total, stat.total) << key;
    }
  }
}

TEST(TrainingDeterminismTest, PipelineReportBitwiseIdenticalAcrossThreadCounts) {
  const PairCorpus pairs = MakePairs(23, 60);
  ASSERT_GE(pairs.pairs.size(), 20u);
  // M1 on the proximal solver, so train_threads reaches the parallel epoch
  // body (M1's default AdaGrad trainer ignores the thread count).
  ClassifierConfig config = ClassifierConfig::M1();
  config.lr.solver = LrSolver::kProximalBatch;
  PipelineOptions options;
  options.folds = 5;
  options.seed = 99;

  options.num_threads = 1;
  options.train_threads = 1;
  auto reference = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    options.train_threads = threads;
    auto parallel = RunPairClassificationCv(pairs, config, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->metrics.true_positives, reference->metrics.true_positives);
    EXPECT_EQ(parallel->metrics.false_positives, reference->metrics.false_positives);
    EXPECT_EQ(parallel->metrics.true_negatives, reference->metrics.true_negatives);
    EXPECT_EQ(parallel->metrics.false_negatives, reference->metrics.false_negatives);
    EXPECT_EQ(parallel->auc, reference->auc);  // Exact double equality.
    EXPECT_EQ(parallel->num_t_features, reference->num_t_features);
    EXPECT_EQ(parallel->num_p_features, reference->num_p_features);
  }
}

// The instrumentation layer rides the same contract: spans and metric
// deltas are counted at work-item granularity, so the counts — not the
// timings — must be identical for any thread count, and turning tracing
// on must not perturb the numerical results.
TEST(TrainingDeterminismTest, InstrumentationCountsThreadInvariant) {
  const PairCorpus pairs = MakePairs(29, 60);
  ASSERT_GE(pairs.pairs.size(), 20u);
  ClassifierConfig config = ClassifierConfig::M1();
  config.lr.solver = LrSolver::kProximalBatch;
  PipelineOptions options;
  options.folds = 4;
  options.seed = 7;

  struct InstrumentationDeltas {
    int64_t cv_runs = 0;
    int64_t fold_splits = 0;
    int64_t folds_trained = 0;
    int64_t fold_seconds_samples = 0;
    int64_t train_runs = 0;
    int64_t train_epochs = 0;
    int64_t train_examples = 0;
    int64_t stats_passes = 0;
    uint64_t spans = 0;
    double auc = 0.0;
  };
  static constexpr const char* kCounters[] = {
      "mb.cv.runs",    "mb.cv.fold_splits", "mb.cv.folds_trained",
      "mb.train.runs", "mb.train.epochs",   "mb.train.examples",
      "mb.stats.build_passes",
  };
  const auto run_with = [&](int threads) {
    MetricRegistry& registry = MetricRegistry::Global();
    int64_t before[7];
    for (int i = 0; i < 7; ++i) before[i] = registry.GetCounter(kCounters[i])->Value();
    const int64_t fold_seconds_before =
        registry.GetHistogram("mb.cv.fold_seconds")->Count();
    trace::Enable();
    options.num_threads = threads;
    options.train_threads = threads;
    auto report = RunPairClassificationCv(pairs, config, options);
    trace::Disable();
    EXPECT_TRUE(report.ok());
    InstrumentationDeltas deltas;
    deltas.cv_runs = registry.GetCounter(kCounters[0])->Value() - before[0];
    deltas.fold_splits = registry.GetCounter(kCounters[1])->Value() - before[1];
    deltas.folds_trained = registry.GetCounter(kCounters[2])->Value() - before[2];
    deltas.train_runs = registry.GetCounter(kCounters[3])->Value() - before[3];
    deltas.train_epochs = registry.GetCounter(kCounters[4])->Value() - before[4];
    deltas.train_examples = registry.GetCounter(kCounters[5])->Value() - before[5];
    deltas.stats_passes = registry.GetCounter(kCounters[6])->Value() - before[6];
    deltas.fold_seconds_samples =
        registry.GetHistogram("mb.cv.fold_seconds")->Count() - fold_seconds_before;
    deltas.spans = trace::CollectedSpanCount();
    deltas.auc = report.ok() ? report->auc : -1.0;
    return deltas;
  };

  const InstrumentationDeltas reference = run_with(1);
  EXPECT_EQ(reference.cv_runs, 1);
  EXPECT_EQ(reference.fold_splits, 1);
  EXPECT_EQ(reference.folds_trained, options.folds);
  EXPECT_EQ(reference.fold_seconds_samples, options.folds);
  EXPECT_EQ(reference.train_runs, options.folds);
  EXPECT_GT(reference.train_epochs, 0);
  EXPECT_GT(reference.train_examples, 0);
  EXPECT_GE(reference.stats_passes, 1);
  // One run span + one shared stats build + one span per matching pass +
  // one fold span and one LR span per fold (M1 trains a single phase).
  EXPECT_EQ(reference.spans,
            2u + static_cast<uint64_t>(reference.stats_passes) +
                2u * static_cast<uint64_t>(options.folds));

  for (int threads : {2, 8}) {
    const InstrumentationDeltas parallel = run_with(threads);
    EXPECT_EQ(parallel.cv_runs, reference.cv_runs) << threads << " threads";
    EXPECT_EQ(parallel.fold_splits, reference.fold_splits) << threads << " threads";
    EXPECT_EQ(parallel.folds_trained, reference.folds_trained) << threads << " threads";
    EXPECT_EQ(parallel.fold_seconds_samples, reference.fold_seconds_samples)
        << threads << " threads";
    EXPECT_EQ(parallel.train_runs, reference.train_runs) << threads << " threads";
    EXPECT_EQ(parallel.train_epochs, reference.train_epochs) << threads << " threads";
    EXPECT_EQ(parallel.train_examples, reference.train_examples)
        << threads << " threads";
    EXPECT_EQ(parallel.stats_passes, reference.stats_passes) << threads << " threads";
    EXPECT_EQ(parallel.spans, reference.spans) << threads << " threads";
    EXPECT_EQ(parallel.auc, reference.auc) << threads << " threads";
  }
}

/// Kernels to run the kernel-sensitive determinism tests under: always the
/// scalar reference, plus AVX2 where the host supports it.
std::vector<simd::Kernel> TestableKernels() {
  std::vector<simd::Kernel> kernels = {simd::Kernel::kScalar};
  if (simd::Avx2Available()) kernels.push_back(simd::Kernel::kAvx2);
  return kernels;
}

// The thread-count contract must hold under every kernel choice, and —
// because the kernels share one canonical operation schedule (DESIGN.md
// section 16) — the trained weights must also be identical ACROSS kernels.
TEST(TrainingDeterminismTest, ProximalBatchThreadInvariantUnderEveryKernel) {
  const CsrDataset data = MakePlantedCorpus(4096, 512, 12, 31);
  LrOptions options;
  options.solver = LrSolver::kProximalBatch;
  options.epochs = 8;
  options.l1 = 1e-3;

  std::optional<std::vector<double>> cross_kernel_weights;
  std::optional<double> cross_kernel_bias;
  for (simd::Kernel kernel : TestableKernels()) {
    simd::ScopedKernelOverride override(kernel);
    options.num_threads = 1;
    auto reference = TrainLogisticRegression(data, options);
    ASSERT_TRUE(reference.ok()) << simd::KernelName(kernel);
    for (int threads : {2, 8}) {
      options.num_threads = threads;
      auto parallel = TrainLogisticRegression(data, options);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->weights(), reference->weights())
          << simd::KernelName(kernel) << ", " << threads << " threads";
      EXPECT_EQ(parallel->bias(), reference->bias())
          << simd::KernelName(kernel) << ", " << threads << " threads";
    }
    if (!cross_kernel_weights.has_value()) {
      cross_kernel_weights = reference->weights();
      cross_kernel_bias = reference->bias();
    } else {
      EXPECT_EQ(reference->weights(), *cross_kernel_weights)
          << simd::KernelName(kernel) << " diverges from scalar";
      EXPECT_EQ(reference->bias(), *cross_kernel_bias);
    }
  }
}

TEST(TrainingDeterminismTest, PipelineReportIdenticalAcrossKernels) {
  const PairCorpus pairs = MakePairs(23, 60);
  ASSERT_GE(pairs.pairs.size(), 20u);
  ClassifierConfig config = ClassifierConfig::M1();
  config.lr.solver = LrSolver::kProximalBatch;
  PipelineOptions options;
  options.folds = 5;
  options.seed = 99;
  options.num_threads = 8;
  options.train_threads = 8;

  std::optional<double> reference_auc;
  std::optional<BinaryMetrics> reference_metrics;
  for (simd::Kernel kernel : TestableKernels()) {
    simd::ScopedKernelOverride override(kernel);
    auto report = RunPairClassificationCv(pairs, config, options);
    ASSERT_TRUE(report.ok()) << simd::KernelName(kernel);
    if (!reference_auc.has_value()) {
      reference_auc = report->auc;
      reference_metrics = report->metrics;
      continue;
    }
    EXPECT_EQ(report->auc, *reference_auc) << simd::KernelName(kernel);
    EXPECT_EQ(report->metrics.true_positives, reference_metrics->true_positives);
    EXPECT_EQ(report->metrics.false_positives, reference_metrics->false_positives);
    EXPECT_EQ(report->metrics.true_negatives, reference_metrics->true_negatives);
    EXPECT_EQ(report->metrics.false_negatives, reference_metrics->false_negatives);
  }
}

// A checkpointed CV run killed mid-flight under one kernel and resumed
// under the other must reproduce the uninterrupted run bit for bit. The
// checkpoint fingerprint deliberately excludes the kernel choice: the
// kernels are bitwise interchangeable, so a checkpoint written on an AVX2
// CI machine is valid on a scalar-only one and vice versa.
TEST(TrainingDeterminismTest, CheckpointResumeAcrossKernelChangeBitwiseIdentical) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "AVX2 unavailable; kernel-switch resume needs both kernels";
  }
  failpoint::DeactivateAll();
  const PairCorpus pairs = MakePairs(23, 60);
  ASSERT_GE(pairs.pairs.size(), 20u);
  ClassifierConfig config = ClassifierConfig::M1();
  config.lr.solver = LrSolver::kProximalBatch;
  PipelineOptions options;
  options.folds = 5;
  options.seed = 99;
  options.num_threads = 1;

  // Uninterrupted reference, AVX2 kernel.
  std::optional<double> reference_auc;
  std::optional<BinaryMetrics> reference_metrics;
  {
    simd::ScopedKernelOverride override(simd::Kernel::kAvx2);
    auto reference = RunPairClassificationCv(pairs, config, options);
    ASSERT_TRUE(reference.ok());
    reference_auc = reference->auc;
    reference_metrics = reference->metrics;
  }

  // Kill the third fold while training with AVX2 kernels. The fold loop
  // carries per-fold status, so the other four folds still train and
  // checkpoint before the run reports the injected error...
  options.checkpoint_dir = ::testing::TempDir() + "/kernel_switch_ckpt";
  std::filesystem::remove_all(options.checkpoint_dir);
  {
    simd::ScopedKernelOverride override(simd::Kernel::kAvx2);
    failpoint::Spec kill;
    kill.mode = failpoint::Spec::Mode::kNth;
    kill.nth = 3;
    failpoint::Activate("pipeline.fold", kill);
    auto interrupted = RunPairClassificationCv(pairs, config, options);
    ASSERT_FALSE(interrupted.ok());
    EXPECT_EQ(interrupted.status().code(), StatusCode::kIOError);
    failpoint::DeactivateAll();
  }

  // ...and resume with the scalar kernel: four folds load from the
  // AVX2-written checkpoint, the killed fold retrains on the scalar path,
  // and the stitched-together report must still match the reference.
  {
    simd::ScopedKernelOverride override(simd::Kernel::kScalar);
    failpoint::Spec count_only;
    count_only.mode = failpoint::Spec::Mode::kNever;
    failpoint::Activate("pipeline.fold", count_only);
    auto resumed = RunPairClassificationCv(pairs, config, options);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(failpoint::HitCount("pipeline.fold"), 1);
    failpoint::DeactivateAll();
    EXPECT_EQ(resumed->auc, *reference_auc);  // Exact double equality.
    EXPECT_EQ(resumed->metrics.true_positives, reference_metrics->true_positives);
    EXPECT_EQ(resumed->metrics.false_positives, reference_metrics->false_positives);
    EXPECT_EQ(resumed->metrics.true_negatives, reference_metrics->true_negatives);
    EXPECT_EQ(resumed->metrics.false_negatives, reference_metrics->false_negatives);
  }
  std::filesystem::remove_all(options.checkpoint_dir);
}

}  // namespace
}  // namespace microbrowse
