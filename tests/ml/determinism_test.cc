// Copyright 2026 The Microbrowse Authors
//
// The determinism suite for the parallel training hot path (DESIGN.md
// section 11): every parallelised component — the proximal LR solver, the
// statistics build, the metrics pass and the full CV pipeline — must
// produce bitwise identical results for any thread count. These tests
// compare 1, 2 and 8 worker runs with exact (==) equality on doubles,
// deliberately: the contract is reproducibility, not approximation.

#include <gtest/gtest.h>

#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/pipeline.h"
#include "microbrowse/stats_db.h"
#include "ml/csr.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

namespace microbrowse {
namespace {

/// Synthetic sparse CSR problem with a planted logistic truth model.
CsrDataset MakePlantedCorpus(size_t n, size_t n_features, size_t nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> truth(n_features);
  for (double& w : truth) w = rng.Gaussian(0.0, 0.5);
  CsrDataset data;
  data.num_features = n_features;
  data.weights.assign(n, 1.0);
  data.offsets.assign(n, 0.0);
  data.row_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (size_t k = 0; k < nnz; ++k) {
      const FeatureId id = static_cast<FeatureId>(rng.NextIndex(n_features));
      const double value = rng.Uniform(0.5, 1.5);
      data.ids.push_back(id);
      data.values.push_back(value);
      score += value * truth[id];
    }
    data.labels.push_back(rng.Bernoulli(Sigmoid(score)) ? 1.0 : 0.0);
    data.row_offsets.push_back(data.ids.size());
  }
  return data;
}

TEST(TrainingDeterminismTest, ProximalBatchBitwiseIdenticalAcrossThreadCounts) {
  // Large enough that NumGradientBlocks produces a multi-block grid, so
  // threads 2 and 8 genuinely schedule different block interleavings.
  const CsrDataset data = MakePlantedCorpus(4096, 512, 12, 31);
  LrOptions options;
  options.solver = LrSolver::kProximalBatch;
  options.epochs = 8;

  options.num_threads = 1;
  auto reference = TrainLogisticRegression(data, options);
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(reference->weights().size(), 0u);

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    auto parallel = TrainLogisticRegression(data, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->weights(), reference->weights()) << threads << " threads";
    EXPECT_EQ(parallel->bias(), reference->bias()) << threads << " threads";
  }
}

TEST(TrainingDeterminismTest, DatasetOverloadMatchesCsrOverload) {
  // The Dataset entry point flattens and delegates; a warm start plus an
  // offset column exercises the full option surface through both paths.
  const CsrDataset csr = MakePlantedCorpus(1024, 64, 6, 7);
  Dataset data;
  data.num_features = csr.num_features;
  for (size_t i = 0; i < csr.size(); ++i) {
    Example example;
    for (size_t k = csr.row_offsets[i]; k < csr.row_offsets[i + 1]; ++k) {
      example.features.Add(csr.ids[k], csr.values[k]);
    }
    example.features.Finish();
    example.label = csr.labels[i];
    data.examples.push_back(std::move(example));
  }
  const std::vector<double> warm(csr.num_features, 0.05);
  LrOptions options;
  options.solver = LrSolver::kProximalBatch;
  options.epochs = 6;
  options.num_threads = 8;
  auto via_dataset = TrainLogisticRegression(data, options, &warm);
  // The flattened Dataset merges duplicate ids per row (SparseVector
  // semantics), so compare against its own flattening, not the raw csr.
  auto via_csr = TrainLogisticRegression(FlattenDataset(data), options, &warm);
  ASSERT_TRUE(via_dataset.ok());
  ASSERT_TRUE(via_csr.ok());
  EXPECT_EQ(via_dataset->weights(), via_csr->weights());
  EXPECT_EQ(via_dataset->bias(), via_csr->bias());
}

TEST(TrainingDeterminismTest, MetricsAndAucThreadInvariant) {
  Rng rng(13);
  std::vector<ScoredLabel> scored;
  for (int i = 0; i < 20000; ++i) {
    // Quantised scores force plenty of ties through the AUC tie-grouping.
    const double score = static_cast<double>(rng.NextIndex(101)) / 50.0 - 1.0;
    scored.push_back(ScoredLabel{score, rng.Bernoulli(Sigmoid(3.0 * score))});
  }
  const BinaryMetrics reference = ComputeBinaryMetrics(scored, 0.0, 1);
  const double reference_auc = ComputeAuc(scored, 1);
  for (int threads : {2, 8}) {
    const BinaryMetrics parallel = ComputeBinaryMetrics(scored, 0.0, threads);
    EXPECT_EQ(parallel.true_positives, reference.true_positives);
    EXPECT_EQ(parallel.false_positives, reference.false_positives);
    EXPECT_EQ(parallel.true_negatives, reference.true_negatives);
    EXPECT_EQ(parallel.false_negatives, reference.false_negatives);
    EXPECT_EQ(ComputeAuc(scored, threads), reference_auc) << threads << " threads";
  }
}

PairCorpus MakePairs(uint64_t seed, int adgroups) {
  AdCorpusOptions options;
  options.num_adgroups = adgroups;
  options.seed = seed;
  auto generated = GenerateAdCorpus(options);
  EXPECT_TRUE(generated.ok());
  return ExtractSignificantPairs(generated->corpus, {});
}

TEST(TrainingDeterminismTest, BuildFeatureStatsThreadInvariant) {
  const PairCorpus pairs = MakePairs(19, 120);
  // Enough pairs to clear the parallel-path threshold; otherwise the test
  // would trivially compare the serial path with itself.
  ASSERT_GE(pairs.pairs.size(), 256u);
  BuildStatsOptions options;
  options.num_threads = 1;
  const FeatureStatsDb reference = BuildFeatureStats(pairs, options);
  ASSERT_GT(reference.size(), 0u);
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const FeatureStatsDb parallel = BuildFeatureStats(pairs, options);
    ASSERT_EQ(parallel.size(), reference.size()) << threads << " threads";
    for (const auto& [key, stat] : reference.stats()) {
      const FeatureStat* other = parallel.Find(key);
      ASSERT_NE(other, nullptr) << key;
      EXPECT_EQ(other->positive, stat.positive) << key;
      EXPECT_EQ(other->total, stat.total) << key;
    }
  }
}

TEST(TrainingDeterminismTest, PipelineReportBitwiseIdenticalAcrossThreadCounts) {
  const PairCorpus pairs = MakePairs(23, 60);
  ASSERT_GE(pairs.pairs.size(), 20u);
  // M1 on the proximal solver, so train_threads reaches the parallel epoch
  // body (M1's default AdaGrad trainer ignores the thread count).
  ClassifierConfig config = ClassifierConfig::M1();
  config.lr.solver = LrSolver::kProximalBatch;
  PipelineOptions options;
  options.folds = 5;
  options.seed = 99;

  options.num_threads = 1;
  options.train_threads = 1;
  auto reference = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    options.train_threads = threads;
    auto parallel = RunPairClassificationCv(pairs, config, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->metrics.true_positives, reference->metrics.true_positives);
    EXPECT_EQ(parallel->metrics.false_positives, reference->metrics.false_positives);
    EXPECT_EQ(parallel->metrics.true_negatives, reference->metrics.true_negatives);
    EXPECT_EQ(parallel->metrics.false_negatives, reference->metrics.false_negatives);
    EXPECT_EQ(parallel->auc, reference->auc);  // Exact double equality.
    EXPECT_EQ(parallel->num_t_features, reference->num_t_features);
    EXPECT_EQ(parallel->num_p_features, reference->num_p_features);
  }
}

}  // namespace
}  // namespace microbrowse
