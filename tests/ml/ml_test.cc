// Copyright 2026 The Microbrowse Authors
//
// Tests for the ML substrate: sparse vectors, the feature registry,
// logistic regression (both solvers), metrics and cross-validation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/cross_validation.h"
#include "ml/csr.h"
#include "ml/dataset.h"
#include "ml/feature_registry.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/sparse_vector.h"

namespace microbrowse {
namespace {

// --- SparseVector

TEST(SparseVectorTest, FinishSortsAndMerges) {
  SparseVector v;
  v.Add(3, 1.0);
  v.Add(1, 2.0);
  v.Add(3, 0.5);
  v.Finish();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0], (FeatureEntry{1, 2.0}));
  EXPECT_EQ(v.entries()[1], (FeatureEntry{3, 1.5}));
}

TEST(SparseVectorTest, CancellingContributionsVanish) {
  SparseVector v;
  v.Add(5, 1.0);
  v.Add(5, -1.0);
  v.Add(6, 2.0);
  v.Finish();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.entries()[0].id, 6u);
}

TEST(SparseVectorTest, DotProduct) {
  SparseVector v;
  v.Add(0, 2.0);
  v.Add(2, -1.0);
  v.Finish();
  EXPECT_DOUBLE_EQ(v.Dot({1.0, 10.0, 3.0}), 2.0 - 3.0);
  // Ids beyond the weight vector contribute zero.
  EXPECT_DOUBLE_EQ(v.Dot({1.0}), 2.0);
  EXPECT_DOUBLE_EQ(v.Dot({}), 0.0);
}

TEST(SparseVectorTest, SquaredNorm) {
  SparseVector v;
  v.Add(0, 3.0);
  v.Add(1, 4.0);
  v.Finish();
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
}

TEST(SparseVectorTest, FinishIsIdempotent) {
  SparseVector v;
  v.Add(1, 1.0);
  v.Finish();
  v.Finish();
  EXPECT_EQ(v.size(), 1u);
}

// --- FeatureRegistry

TEST(FeatureRegistryTest, InternWithInitialWeights) {
  FeatureRegistry registry;
  const FeatureId a = registry.Intern("t:cheap", 0.7);
  const FeatureId b = registry.Intern("t:flights", -0.2);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_DOUBLE_EQ(registry.InitialWeightOf(a), 0.7);
  EXPECT_EQ(registry.NameOf(b), "t:flights");
  EXPECT_EQ(registry.InitialWeights(), (std::vector<double>{0.7, -0.2}));
}

TEST(FeatureRegistryTest, ReInternKeepsFirstWeight) {
  FeatureRegistry registry;
  const FeatureId a = registry.Intern("x", 1.0);
  EXPECT_EQ(registry.Intern("x", 99.0), a);
  EXPECT_DOUBLE_EQ(registry.InitialWeightOf(a), 1.0);
}

TEST(FeatureRegistryTest, FindMissing) {
  FeatureRegistry registry;
  EXPECT_EQ(registry.Find("nothing"), kInvalidFeatureId);
}

TEST(FeatureRegistryTest, SetInitialWeight) {
  FeatureRegistry registry;
  const FeatureId a = registry.Intern("x", 1.0);
  registry.SetInitialWeight(a, 2.5);
  EXPECT_DOUBLE_EQ(registry.InitialWeightOf(a), 2.5);
}

// --- LogisticRegression

/// A linearly separable 2-feature dataset: label = (x0 > x1).
Dataset MakeSeparableDataset(int n, uint64_t seed) {
  Dataset data;
  data.num_features = 2;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Example example;
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    example.features.Add(0, x0);
    example.features.Add(1, x1);
    example.features.Finish();
    example.label = x0 > x1 ? 1.0 : 0.0;
    data.examples.push_back(std::move(example));
  }
  return data;
}

double Accuracy(const LogisticModel& model, const Dataset& data) {
  int correct = 0;
  for (const auto& example : data.examples) {
    correct += (model.PredictLabel(example.features) == (example.label > 0.5)) ? 1 : 0;
  }
  return static_cast<double>(correct) / data.size();
}

class LrSolverTest : public ::testing::TestWithParam<LrSolver> {};

TEST_P(LrSolverTest, LearnsSeparableProblem) {
  const Dataset data = MakeSeparableDataset(2000, 5);
  LrOptions options;
  options.solver = GetParam();
  options.epochs = 60;
  options.l1 = 1e-5;
  options.tolerance = 0.0;
  auto model = TrainLogisticRegression(data, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(Accuracy(*model, data), 0.95);
  // Weight signs match the generating rule.
  EXPECT_GT(model->weights()[0], 0.0);
  EXPECT_LT(model->weights()[1], 0.0);
}

TEST_P(LrSolverTest, StrongL1ZeroesIrrelevantFeatures) {
  Dataset data = MakeSeparableDataset(2000, 9);
  data.num_features = 4;
  Rng rng(10);
  for (auto& example : data.examples) {
    example.features.Add(2, rng.Uniform(-1.0, 1.0));  // Pure noise features.
    example.features.Add(3, rng.Uniform(-1.0, 1.0));
    example.features.Finish();
  }
  LrOptions options;
  options.solver = GetParam();
  options.epochs = 40;
  options.l1 = 0.05;
  auto model = TrainLogisticRegression(data, options);
  ASSERT_TRUE(model.ok());
  // The informative weights survive the penalty; noise weights are tiny.
  EXPECT_GT(std::fabs(model->weights()[0]), 5.0 * std::fabs(model->weights()[2]));
  EXPECT_GT(std::fabs(model->weights()[1]), 5.0 * std::fabs(model->weights()[3]));
}

INSTANTIATE_TEST_SUITE_P(Solvers, LrSolverTest,
                         ::testing::Values(LrSolver::kAdaGrad, LrSolver::kProximalBatch));

TEST(LogisticRegressionTest, WarmStartIsUsedWithZeroEpochs) {
  const Dataset data = MakeSeparableDataset(100, 5);
  LrOptions options;
  options.epochs = 0;
  const std::vector<double> init = {3.0, -3.0};
  auto model = TrainLogisticRegression(data, options, &init);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->weights(), init);
  EXPECT_GT(Accuracy(*model, data), 0.95);
}

TEST(LogisticRegressionTest, RejectsEmptyDataset) {
  EXPECT_FALSE(TrainLogisticRegression(Dataset{}, LrOptions{}).ok());
}

TEST(LogisticRegressionTest, RejectsBadLabels) {
  Dataset data;
  data.num_features = 1;
  Example example;
  example.features.Add(0, 1.0);
  example.features.Finish();
  example.label = 0.5;
  data.examples.push_back(example);
  EXPECT_EQ(TrainLogisticRegression(data, LrOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LogisticRegressionTest, RejectsMismatchedWarmStart) {
  const Dataset data = MakeSeparableDataset(10, 1);
  const std::vector<double> init = {1.0};  // Dataset has 2 features.
  EXPECT_FALSE(TrainLogisticRegression(data, LrOptions{}, &init).ok());
}

TEST(LogisticRegressionTest, OffsetShiftsDecision) {
  // Featureless examples whose labels are determined by the offset.
  Dataset data;
  data.num_features = 0;
  Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    Example example;
    example.offset = rng.Bernoulli(0.5) ? 2.5 : -2.5;
    example.label = example.offset > 0 ? 1.0 : 0.0;
    data.examples.push_back(example);
  }
  LrOptions options;
  options.epochs = 15;
  auto model = TrainLogisticRegression(data, options);
  ASSERT_TRUE(model.ok());
  // With offsets explaining the labels the bias stays small and the
  // training loss is far below chance level (log 2).
  EXPECT_LT(model->MeanLogLoss(data), 0.3);
}

TEST(LogisticRegressionTest, PredictProbabilityIsCalibratedShape) {
  LogisticModel model({1.0}, 0.0);
  SparseVector positive;
  positive.Add(0, 5.0);
  positive.Finish();
  SparseVector negative;
  negative.Add(0, -5.0);
  negative.Finish();
  EXPECT_GT(model.PredictProbability(positive), 0.99);
  EXPECT_LT(model.PredictProbability(negative), 0.01);
}

TEST(LogisticRegressionTest, NumZeroWeights) {
  LogisticModel model({0.0, 1.0, 0.0}, 0.2);
  EXPECT_EQ(model.num_zero_weights(), 2u);
}

// --- Metrics

TEST(MetricsTest, PerfectClassifier) {
  std::vector<ScoredLabel> scored = {{1.0, true}, {2.0, true}, {-1.0, false}, {-0.5, false}};
  const BinaryMetrics m = ComputeBinaryMetrics(scored);
  EXPECT_EQ(m.true_positives, 2);
  EXPECT_EQ(m.true_negatives, 2);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.f1(), 1.0);
  EXPECT_DOUBLE_EQ(ComputeAuc(scored), 1.0);
}

TEST(MetricsTest, ConfusionMatrixCells) {
  std::vector<ScoredLabel> scored = {
      {1.0, true},    // TP
      {1.0, false},   // FP
      {-1.0, true},   // FN
      {-1.0, false},  // TN
  };
  const BinaryMetrics m = ComputeBinaryMetrics(scored);
  EXPECT_EQ(m.true_positives, 1);
  EXPECT_EQ(m.false_positives, 1);
  EXPECT_EQ(m.false_negatives, 1);
  EXPECT_EQ(m.true_negatives, 1);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(m.precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.recall(), 0.5);
}

TEST(MetricsTest, EmptyMetricsAreZero) {
  const BinaryMetrics m = ComputeBinaryMetrics({});
  EXPECT_EQ(m.total(), 0);
  EXPECT_EQ(m.accuracy(), 0.0);
  EXPECT_EQ(m.f1(), 0.0);
}

TEST(MetricsTest, MergeAddsCells) {
  BinaryMetrics a;
  a.true_positives = 3;
  a.false_negatives = 1;
  BinaryMetrics b;
  b.true_positives = 2;
  b.true_negatives = 4;
  const BinaryMetrics merged = MergeMetrics(a, b);
  EXPECT_EQ(merged.true_positives, 5);
  EXPECT_EQ(merged.false_negatives, 1);
  EXPECT_EQ(merged.true_negatives, 4);
}

TEST(MetricsTest, AucHandlesTies) {
  // All scores equal: AUC must be exactly 0.5 via the tie correction.
  std::vector<ScoredLabel> scored = {{0.0, true}, {0.0, false}, {0.0, true}, {0.0, false}};
  EXPECT_DOUBLE_EQ(ComputeAuc(scored), 0.5);
}

TEST(MetricsTest, AucSingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({{1.0, true}, {2.0, true}}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({}), 0.5);
}

TEST(MetricsTest, AucOrderingProperty) {
  // A reversed classifier has AUC = 1 - AUC of the original.
  std::vector<ScoredLabel> scored = {{0.9, true}, {0.8, false}, {0.7, true}, {0.1, false}};
  std::vector<ScoredLabel> reversed;
  for (auto s : scored) reversed.push_back({-s.score, s.label});
  EXPECT_NEAR(ComputeAuc(scored) + ComputeAuc(reversed), 1.0, 1e-12);
}

TEST(MetricsTest, MeanLogLoss) {
  EXPECT_NEAR(ComputeMeanLogLoss({{0.5, true}, {0.5, false}}), std::log(2.0), 1e-12);
  EXPECT_NEAR(ComputeMeanLogLoss({{1.0, true}}), 0.0, 1e-9);
  EXPECT_EQ(ComputeMeanLogLoss({}), 0.0);
}

// --- Cross-validation

TEST(CrossValidationTest, FoldsPartitionIndices) {
  auto folds = MakeKFolds(103, 10, 7);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 10u);
  std::vector<int> seen(103, 0);
  for (const auto& fold : *folds) {
    EXPECT_EQ(fold.train_indices.size() + fold.test_indices.size(), 103u);
    for (size_t idx : fold.test_indices) ++seen[idx];
    // Fold sizes differ by at most one.
    EXPECT_GE(fold.test_indices.size(), 10u);
    EXPECT_LE(fold.test_indices.size(), 11u);
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(CrossValidationTest, TrainAndTestDisjoint) {
  auto folds = MakeKFolds(50, 5, 3);
  ASSERT_TRUE(folds.ok());
  for (const auto& fold : *folds) {
    for (size_t test_idx : fold.test_indices) {
      EXPECT_FALSE(std::binary_search(fold.train_indices.begin(), fold.train_indices.end(),
                                      test_idx));
    }
  }
}

TEST(CrossValidationTest, InvalidArguments) {
  EXPECT_FALSE(MakeKFolds(10, 1, 0).ok());
  EXPECT_FALSE(MakeKFolds(3, 5, 0).ok());
  EXPECT_FALSE(MakeStratifiedKFolds({true, false}, 5, 0).ok());
  EXPECT_FALSE(MakeGroupedKFolds({1, 1, 1}, 2, 0).ok());
}

TEST(CrossValidationTest, StratifiedPreservesClassRatio) {
  std::vector<bool> labels(100);
  for (int i = 0; i < 30; ++i) labels[i] = true;  // 30% positive.
  auto folds = MakeStratifiedKFolds(labels, 5, 11);
  ASSERT_TRUE(folds.ok());
  for (const auto& fold : *folds) {
    int positives = 0;
    for (size_t idx : fold.test_indices) positives += labels[idx] ? 1 : 0;
    EXPECT_EQ(positives, 6);  // Exactly 30% of 20.
  }
}

TEST(CrossValidationTest, StratifiedFoldsBalanceEachFold) {
  // 37 positives / 163 negatives: neither stratum divides evenly by k, so
  // any dealing-order bug (e.g. a stratum landing contiguously in one
  // fold) shows up as a lopsided fold. Every fold's class counts must sit
  // within one of the ideal k-way split of each stratum.
  for (int k : {5, 7}) {
    std::vector<bool> labels(200);
    for (int i = 0; i < 37; ++i) labels[i] = true;
    auto folds = MakeStratifiedKFolds(labels, k, 23);
    ASSERT_TRUE(folds.ok());
    const double ideal_pos = 37.0 / k;
    const double ideal_neg = 163.0 / k;
    for (const auto& fold : *folds) {
      int pos = 0;
      int neg = 0;
      for (size_t idx : fold.test_indices) (labels[idx] ? pos : neg) += 1;
      EXPECT_LE(std::fabs(pos - ideal_pos), 1.0) << "k=" << k;
      EXPECT_LE(std::fabs(neg - ideal_neg), 1.0) << "k=" << k;
    }
  }
}

TEST(CrossValidationTest, GroupedKeepsGroupsTogether) {
  // 12 examples in 6 groups of 2.
  std::vector<int64_t> groups = {0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5};
  auto folds = MakeGroupedKFolds(groups, 3, 13);
  ASSERT_TRUE(folds.ok());
  for (const auto& fold : *folds) {
    // Every group is entirely in train or entirely in test.
    for (int64_t g = 0; g < 6; ++g) {
      int in_test = 0;
      for (size_t idx : fold.test_indices) in_test += groups[idx] == g ? 1 : 0;
      EXPECT_TRUE(in_test == 0 || in_test == 2) << "group " << g;
    }
  }
}

TEST(CrossValidationTest, DeterministicForSeed) {
  auto a = MakeKFolds(40, 4, 99);
  auto b = MakeKFolds(40, 4, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t f = 0; f < a->size(); ++f) {
    EXPECT_EQ((*a)[f].test_indices, (*b)[f].test_indices);
  }
}

// --- Dataset helpers

TEST(DatasetTest, SubsetCopiesSelected) {
  Dataset data;
  data.num_features = 1;
  for (int i = 0; i < 5; ++i) {
    Example example;
    example.label = i % 2;
    data.examples.push_back(example);
  }
  const Dataset subset = data.Subset({0, 2, 4});
  EXPECT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.num_features, 1u);
  EXPECT_EQ(subset.num_positives(), 0u);
  EXPECT_EQ(data.Subset({1, 3}).num_positives(), 2u);
}

// --- CSR layout

TEST(CsrTest, FlattenDatasetRoundTrip) {
  Dataset data;
  data.num_features = 5;
  {
    Example example;
    example.features.Add(3, 1.5);
    example.features.Add(0, -2.0);
    example.features.Finish();
    example.label = 1.0;
    example.weight = 2.0;
    example.offset = 0.25;
    data.examples.push_back(std::move(example));
  }
  {
    Example example;  // Empty row: no features.
    example.label = 0.0;
    data.examples.push_back(std::move(example));
  }
  {
    Example example;
    example.features.Add(4, 3.0);
    example.features.Finish();
    example.label = 1.0;
    data.examples.push_back(std::move(example));
  }

  const CsrDataset csr = FlattenDataset(data);
  ASSERT_EQ(csr.size(), 3u);
  EXPECT_EQ(csr.num_features, 5u);
  EXPECT_EQ(csr.num_entries(), 3u);
  ASSERT_EQ(csr.row_offsets, (std::vector<size_t>{0, 2, 2, 3}));
  EXPECT_EQ(csr.ids, (std::vector<FeatureId>{0, 3, 4}));
  EXPECT_EQ(csr.values, (std::vector<double>{-2.0, 1.5, 3.0}));
  EXPECT_EQ(csr.labels, (std::vector<double>{1.0, 0.0, 1.0}));
  EXPECT_EQ(csr.weights, (std::vector<double>{2.0, 1.0, 1.0}));
  EXPECT_EQ(csr.offsets, (std::vector<double>{0.25, 0.0, 0.0}));

  // RowScore must agree exactly with the SparseVector path.
  const std::vector<double> weights = {0.5, 0.0, 0.0, -1.0, 2.0};
  for (size_t i = 0; i < data.size(); ++i) {
    const double expected =
        data.examples[i].features.Dot(weights) + data.examples[i].offset + 0.125;
    EXPECT_EQ(csr.RowScore(i, weights, 0.125), expected) << "row " << i;
  }
  // Ids beyond the weight vector contribute zero, matching SparseVector::Dot.
  EXPECT_EQ(csr.RowScore(2, {}, 0.0), 0.0);
}

TEST(CsrTest, CsrTrainingMatchesDatasetTraining) {
  const Dataset data = MakeSeparableDataset(500, 17);
  LrOptions options;
  options.solver = LrSolver::kProximalBatch;
  options.epochs = 20;
  auto via_dataset = TrainLogisticRegression(data, options);
  auto via_csr = TrainLogisticRegression(FlattenDataset(data), options);
  ASSERT_TRUE(via_dataset.ok());
  ASSERT_TRUE(via_csr.ok());
  EXPECT_EQ(via_dataset->weights(), via_csr->weights());
  EXPECT_EQ(via_dataset->bias(), via_csr->bias());
}

}  // namespace
}  // namespace microbrowse
