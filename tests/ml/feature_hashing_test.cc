// Copyright 2026 The Microbrowse Authors

#include "ml/feature_hashing.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/random.h"
#include "ml/logistic_regression.h"

namespace microbrowse {
namespace {

TEST(HashedFeatureSpaceTest, IdsAreStableAndBounded) {
  const HashedFeatureSpace space(10);
  EXPECT_EQ(space.size(), 1024u);
  const FeatureId id = space.IdOf("t:cheap flights");
  EXPECT_EQ(space.IdOf("t:cheap flights"), id);
  EXPECT_LT(id, 1024u);
}

TEST(HashedFeatureSpaceTest, SignsAreDeterministicAndBalanced) {
  const HashedFeatureSpace space(12);
  int positive = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string name = "feature" + std::to_string(i);
    const double sign = space.SignOf(name);
    EXPECT_TRUE(sign == 1.0 || sign == -1.0);
    EXPECT_EQ(space.SignOf(name), sign);
    positive += sign > 0 ? 1 : 0;
  }
  EXPECT_GT(positive, 850);
  EXPECT_LT(positive, 1150);
}

TEST(HashedFeatureSpaceTest, UnsignedModeAlwaysPositive) {
  const HashedFeatureSpace space(8, /*signed_hashing=*/false);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(space.SignOf("f" + std::to_string(i)), 1.0);
  }
}

TEST(HashedFeatureSpaceTest, DifferentSaltsDisagree) {
  const HashedFeatureSpace a(16, true, 1);
  const HashedFeatureSpace b(16, true, 2);
  int same = 0;
  for (int i = 0; i < 500; ++i) {
    same += a.IdOf("f" + std::to_string(i)) == b.IdOf("f" + std::to_string(i)) ? 1 : 0;
  }
  EXPECT_LT(same, 30);  // ~500/65536 expected collisions.
}

TEST(HashedFeatureSpaceTest, SpreadsAcrossSlots) {
  const HashedFeatureSpace space(10);
  std::set<FeatureId> slots;
  for (int i = 0; i < 600; ++i) slots.insert(space.IdOf("term" + std::to_string(i)));
  // With 600 names in 1024 slots, expect most to be distinct.
  EXPECT_GT(slots.size(), 430u);
}

TEST(HashedFeatureSpaceTest, TrainingMatchesExactRegistryAtSufficientBits) {
  // A separable bag-of-names task trained twice: exact dense ids vs hashed
  // ids. With 2^14 slots for ~60 names, collisions are negligible and
  // accuracy must match.
  const std::vector<std::string> good = {"alpha", "bravo", "charlie", "delta"};
  const std::vector<std::string> bad = {"echo", "foxtrot", "golf", "hotel"};
  Rng rng(5);

  Dataset exact;
  exact.num_features = 8;
  const HashedFeatureSpace space(14);
  Dataset hashed;
  hashed.num_features = space.size();

  for (int i = 0; i < 1500; ++i) {
    const bool positive = rng.Bernoulli(0.5);
    const auto& pool = positive ? good : bad;
    const std::string& name = pool[rng.NextIndex(pool.size())];
    const FeatureId exact_id =
        static_cast<FeatureId>((positive ? 0 : 4) + (&name - pool.data()));

    Example exact_example;
    exact_example.features.Add(exact_id, 1.0);
    exact_example.features.Finish();
    exact_example.label = positive ? 1.0 : 0.0;
    exact.examples.push_back(std::move(exact_example));

    Example hashed_example;
    space.Add(name, 1.0, &hashed_example.features);
    hashed_example.features.Finish();
    hashed_example.label = positive ? 1.0 : 0.0;
    hashed.examples.push_back(std::move(hashed_example));
  }

  LrOptions options;
  options.epochs = 20;
  auto exact_model = TrainLogisticRegression(exact, options);
  auto hashed_model = TrainLogisticRegression(hashed, options);
  ASSERT_TRUE(exact_model.ok());
  ASSERT_TRUE(hashed_model.ok());

  auto accuracy = [](const LogisticModel& model, const Dataset& data) {
    int correct = 0;
    for (const auto& example : data.examples) {
      correct += (model.PredictLabel(example.features) == (example.label > 0.5)) ? 1 : 0;
    }
    return static_cast<double>(correct) / data.size();
  };
  EXPECT_GT(accuracy(*exact_model, exact), 0.99);
  EXPECT_GT(accuracy(*hashed_model, hashed), 0.99);
}

}  // namespace
}  // namespace microbrowse
