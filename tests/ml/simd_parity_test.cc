// Copyright 2026 The Microbrowse Authors
//
// Scalar/SIMD parity wall (DESIGN.md section 16): every kernel of ml/simd.h
// is asserted against its scalar reference with EXACT BITWISE equality —
// curated dot-product vectors (denormals, signed zeros, alternating signs,
// 1-element and 10k-element rows, out-of-range ids), the vector sigmoid,
// the fused gradient+L1-proximal pass, and whole solver runs. The kernels
// are bitwise identical by construction (one canonical operation schedule,
// no FMA contraction), so no tolerances appear in the cross-kernel checks;
// the only approximate comparison is canonical-sigmoid vs std::exp
// accuracy, and the <=1e-12 end-weight bound against a naive reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "ml/csr.h"
#include "ml/feature_registry.h"
#include "ml/logistic_regression.h"
#include "ml/simd.h"

namespace microbrowse {
namespace {

/// True bitwise equality (distinguishes +0.0 from -0.0, unlike ==).
bool BitEq(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

#define EXPECT_BITEQ(a, b) \
  EXPECT_PRED2(BitEq, (a), (b)) << "bits: " << std::bit_cast<uint64_t>(a) << " vs " \
                                << std::bit_cast<uint64_t>(b)

class SimdParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::Avx2Available()) {
      GTEST_SKIP() << "AVX2 unavailable on this host; scalar-only build";
    }
  }
};

struct DotCase {
  std::string name;
  std::vector<FeatureId> ids;
  std::vector<double> values;
};

/// A weight table exercising denormals, signed zeros, huge/tiny magnitudes
/// and alternating signs.
std::vector<double> CuratedWeights(size_t n) {
  std::vector<double> weights(n);
  Rng rng(1234);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 8) {
      case 0: weights[i] = rng.Gaussian(0.0, 1.0); break;
      case 1: weights[i] = 5e-324; break;  // Smallest subnormal.
      case 2: weights[i] = -1e-310; break;  // Subnormal.
      case 3: weights[i] = 0.0; break;
      case 4: weights[i] = -0.0; break;
      case 5: weights[i] = (i % 16 < 8) ? 1e300 : -1e300; break;
      case 6: weights[i] = -rng.Uniform(0.5, 1.5); break;
      default: weights[i] = rng.Uniform(1e-20, 1e-10); break;
    }
  }
  return weights;
}

std::vector<DotCase> CuratedDotCases(size_t n_features) {
  Rng rng(99);
  std::vector<DotCase> cases;
  cases.push_back({"empty", {}, {}});
  cases.push_back({"one_element", {3}, {1.25}});
  cases.push_back({"two_elements_tail", {1, 2}, {0.5, -0.5}});
  cases.push_back({"three_elements_tail", {7, 8, 9}, {1e-320, -1e-320, 2.0}});
  cases.push_back({"all_zero_values", {0, 1, 2, 3, 4}, {0.0, -0.0, 0.0, -0.0, 0.0}});
  {
    DotCase alternating{"alternating_signs", {}, {}};
    for (FeatureId i = 0; i < 37; ++i) {
      alternating.ids.push_back(i % static_cast<FeatureId>(n_features));
      alternating.values.push_back(i % 2 == 0 ? 1.0 : -1.0);
    }
    cases.push_back(std::move(alternating));
  }
  {
    DotCase denormals{"denormal_values", {}, {}};
    for (FeatureId i = 0; i < 9; ++i) {
      denormals.ids.push_back(i);
      denormals.values.push_back(i % 2 == 0 ? 4.9e-324 : -3e-310);
    }
    cases.push_back(std::move(denormals));
  }
  {
    // Out-of-range ids must contribute exactly +0.0 in both kernels,
    // including the all-ones kInvalidFeatureId sentinel.
    DotCase out_of_range{"out_of_range_ids", {}, {}};
    out_of_range.ids = {0, static_cast<FeatureId>(n_features), 2, kInvalidFeatureId,
                        static_cast<FeatureId>(n_features - 1), 0x80000000u, 5};
    out_of_range.values = {1.0, 2.0, -3.0, 4.0, 5.0, -6.0, 7.0};
    cases.push_back(std::move(out_of_range));
  }
  {
    DotCase large{"ten_k_elements", {}, {}};
    for (size_t i = 0; i < 10000; ++i) {
      large.ids.push_back(static_cast<FeatureId>(rng.NextIndex(n_features)));
      large.values.push_back(rng.Gaussian(0.0, 1.0));
    }
    cases.push_back(std::move(large));
  }
  {
    DotCase large_tail{"ten_k_plus_three", {}, {}};
    for (size_t i = 0; i < 10003; ++i) {
      large_tail.ids.push_back(static_cast<FeatureId>(rng.NextIndex(n_features)));
      large_tail.values.push_back(rng.Uniform(-2.0, 2.0));
    }
    cases.push_back(std::move(large_tail));
  }
  return cases;
}

TEST_F(SimdParityTest, DotRowBitwiseEqualOnCuratedVectors) {
  constexpr size_t kFeatures = 4096;
  const std::vector<double> weights = CuratedWeights(kFeatures);
  const auto& scalar = simd::GetKernelFns(simd::Kernel::kScalar);
  const auto& avx2 = simd::GetKernelFns(simd::Kernel::kAvx2);
  for (const DotCase& c : CuratedDotCases(kFeatures)) {
    const double s = scalar.dot_row(c.ids.data(), c.values.data(), c.ids.size(),
                                    weights.data(), kFeatures);
    const double v = avx2.dot_row(c.ids.data(), c.values.data(), c.ids.size(), weights.data(),
                                  kFeatures);
    EXPECT_BITEQ(s, v) << c.name;
  }
}

TEST_F(SimdParityTest, ScoreCsrRowsBitwiseEqual) {
  constexpr size_t kFeatures = 777;  // Not a multiple of 4.
  Rng rng(7);
  const std::vector<double> weights = CuratedWeights(kFeatures);
  CsrDataset data;
  data.num_features = kFeatures;
  data.row_offsets.push_back(0);
  for (size_t i = 0; i < 257; ++i) {
    const size_t nnz = rng.NextIndex(9);  // Rows of every tail length, some empty.
    for (size_t k = 0; k < nnz; ++k) {
      data.ids.push_back(static_cast<FeatureId>(rng.NextIndex(kFeatures + 8)));
      data.values.push_back(rng.Gaussian(0.0, 1.0));
    }
    data.row_offsets.push_back(data.ids.size());
    data.offsets.push_back(rng.Uniform(-0.5, 0.5));
  }
  const size_t n = data.row_offsets.size() - 1;
  std::vector<double> scalar_scores(n, 0.0);
  std::vector<double> avx2_scores(n, 0.0);
  const auto& scalar = simd::GetKernelFns(simd::Kernel::kScalar);
  const auto& avx2 = simd::GetKernelFns(simd::Kernel::kAvx2);
  scalar.score_csr_rows(data.row_offsets.data(), data.ids.data(), data.values.data(),
                        data.offsets.data(), weights.data(), kFeatures, 0.125, 0, n,
                        scalar_scores.data());
  avx2.score_csr_rows(data.row_offsets.data(), data.ids.data(), data.values.data(),
                      data.offsets.data(), weights.data(), kFeatures, 0.125, 0, n,
                      avx2_scores.data());
  for (size_t i = 0; i < n; ++i) EXPECT_BITEQ(scalar_scores[i], avx2_scores[i]) << "row " << i;
}

TEST_F(SimdParityTest, SigmoidVecBitwiseEqualAndAccurate) {
  std::vector<double> inputs = {0.0,   -0.0,  1e-320, -1e-320, 1e-16, -1e-16, 0.5,
                                -0.5,  2.0,   -2.0,   20.0,    -20.0, 36.0,   -36.0,
                                300.0, -300.0, 709.0, -709.0,  1e4,   -1e4,
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity()};
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) inputs.push_back(rng.Uniform(-40.0, 40.0));
  for (int i = 0; i < 1000; ++i) inputs.push_back(rng.Uniform(-800.0, 800.0));

  std::vector<double> scalar_out(inputs.size(), 0.0);
  std::vector<double> avx2_out(inputs.size(), 0.0);
  simd::GetKernelFns(simd::Kernel::kScalar).sigmoid_vec(inputs.data(), inputs.size(),
                                                        scalar_out.data());
  simd::GetKernelFns(simd::Kernel::kAvx2).sigmoid_vec(inputs.data(), inputs.size(),
                                                      avx2_out.data());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_BITEQ(scalar_out[i], avx2_out[i]) << "x = " << inputs[i];
    // Accuracy against the std::exp-based sigmoid: tight relative bound in
    // the numerically meaningful range, absolute in the saturated tails.
    const double reference = Sigmoid(inputs[i]);
    if (std::fabs(inputs[i]) <= 36.0) {
      EXPECT_NEAR(scalar_out[i], reference, 1e-12 * std::max(reference, 1e-300))
          << "x = " << inputs[i];
    } else {
      EXPECT_NEAR(scalar_out[i], reference, 1e-15) << "x = " << inputs[i];
    }
  }
}

TEST_F(SimdParityTest, FusedGradProxBitwiseEqualAndWithinReferenceTolerance) {
  constexpr size_t kFeatures = 1003;  // Forces a vector tail.
  constexpr size_t kBlocks = 7;
  Rng rng(42);
  std::vector<double> partials(kBlocks * kFeatures);
  for (double& p : partials) p = rng.Gaussian(0.0, 0.01);
  std::vector<double> initial(kFeatures);
  for (double& w : initial) w = rng.Gaussian(0.0, 0.3);
  const double step = 0.05;
  const double l1 = 0.01;
  const double l2 = 0.001;

  std::vector<double> scalar_weights = initial;
  std::vector<double> avx2_weights = initial;
  simd::GetKernelFns(simd::Kernel::kScalar)
      .fused_grad_prox(partials.data(), kBlocks, kFeatures, 0, kFeatures, step, l1, l2,
                       scalar_weights.data());
  simd::GetKernelFns(simd::Kernel::kAvx2)
      .fused_grad_prox(partials.data(), kBlocks, kFeatures, 0, kFeatures, step, l1, l2,
                       avx2_weights.data());

  // Naive reference: ascending-block sum, textbook soft threshold.
  std::vector<double> reference = initial;
  for (size_t j = 0; j < kFeatures; ++j) {
    double g = 0.0;
    for (size_t b = 0; b < kBlocks; ++b) g += partials[b * kFeatures + j];
    const double u = reference[j] - step * (g + l2 * reference[j]);
    const double thr = step * l1;
    reference[j] = u > thr ? u - thr : (u < -thr ? u + thr : 0.0);
  }
  for (size_t j = 0; j < kFeatures; ++j) {
    EXPECT_BITEQ(scalar_weights[j], avx2_weights[j]) << "feature " << j;
    EXPECT_NEAR(scalar_weights[j], reference[j],
                1e-12 * std::max(1.0, std::fabs(reference[j])))
        << "feature " << j;
  }
}

/// Planted synthetic CSR problem shared by the solver-level tests.
CsrDataset MakePlanted(size_t n, size_t n_features, size_t nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> truth(n_features);
  for (double& w : truth) w = rng.Gaussian(0.0, 0.5);
  CsrDataset data;
  data.num_features = n_features;
  data.weights.assign(n, 1.0);
  data.offsets.assign(n, 0.0);
  data.row_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (size_t k = 0; k < nnz; ++k) {
      const FeatureId id = static_cast<FeatureId>(rng.NextIndex(n_features));
      const double value = rng.Uniform(0.5, 1.5);
      data.ids.push_back(id);
      data.values.push_back(value);
      score += value * truth[id];
    }
    data.labels.push_back(rng.Bernoulli(Sigmoid(score)) ? 1.0 : 0.0);
    data.row_offsets.push_back(data.ids.size());
  }
  return data;
}

TEST_F(SimdParityTest, ProximalSolverBitwiseEqualAcrossKernels) {
  const CsrDataset data = MakePlanted(3000, 613, 11, 5);
  LrOptions options;
  options.solver = LrSolver::kProximalBatch;
  options.epochs = 9;
  options.l1 = 2e-3;
  options.l2 = 1e-3;
  options.num_threads = 2;

  LogisticModel scalar_model;
  {
    simd::ScopedKernelOverride override(simd::Kernel::kScalar);
    auto trained = TrainLogisticRegression(data, options);
    ASSERT_TRUE(trained.ok());
    scalar_model = std::move(*trained);
  }
  LogisticModel avx2_model;
  {
    simd::ScopedKernelOverride override(simd::Kernel::kAvx2);
    auto trained = TrainLogisticRegression(data, options);
    ASSERT_TRUE(trained.ok());
    avx2_model = std::move(*trained);
  }
  ASSERT_EQ(scalar_model.weights().size(), avx2_model.weights().size());
  for (size_t j = 0; j < scalar_model.weights().size(); ++j) {
    EXPECT_BITEQ(scalar_model.weights()[j], avx2_model.weights()[j]) << "feature " << j;
  }
  EXPECT_BITEQ(scalar_model.bias(), avx2_model.bias());
  // Sanity: the solver actually learned something, so the parity is not a
  // comparison of two all-zero vectors.
  EXPECT_LT(scalar_model.num_zero_weights(), scalar_model.weights().size());
}

TEST_F(SimdParityTest, AdaGradSolverUnaffectedByKernelChoice) {
  // AdaGrad's sequential path intentionally stays on std::exp scoring; the
  // kernel override must be a no-op there (this is what keeps the golden
  // Table 2 numbers identical under MB_SIMD=off and avx2).
  const CsrDataset data = MakePlanted(800, 128, 8, 17);
  LrOptions options;
  options.solver = LrSolver::kAdaGrad;
  options.epochs = 6;
  options.l1 = 1e-3;

  LogisticModel scalar_model;
  {
    simd::ScopedKernelOverride override(simd::Kernel::kScalar);
    auto trained = TrainLogisticRegression(data, options);
    ASSERT_TRUE(trained.ok());
    scalar_model = std::move(*trained);
  }
  LogisticModel avx2_model;
  {
    simd::ScopedKernelOverride override(simd::Kernel::kAvx2);
    auto trained = TrainLogisticRegression(data, options);
    ASSERT_TRUE(trained.ok());
    avx2_model = std::move(*trained);
  }
  EXPECT_EQ(scalar_model.weights(), avx2_model.weights());
  EXPECT_BITEQ(scalar_model.bias(), avx2_model.bias());
}

TEST(SimdDispatchTest, KernelNamesAndOverride) {
  EXPECT_STREQ(simd::KernelName(simd::Kernel::kScalar), "scalar");
  EXPECT_STREQ(simd::KernelName(simd::Kernel::kAvx2), "avx2");
  {
    simd::ScopedKernelOverride override(simd::Kernel::kScalar);
    EXPECT_EQ(simd::ActiveKernel(), simd::Kernel::kScalar);
  }
  if (simd::Avx2Available()) {
    simd::ScopedKernelOverride override(simd::Kernel::kAvx2);
    EXPECT_EQ(simd::ActiveKernel(), simd::Kernel::kAvx2);
  }
  // Without AVX2 the avx2 table silently resolves to scalar.
  const auto& fns = simd::GetKernelFns(simd::Kernel::kAvx2);
  EXPECT_NE(fns.dot_row, nullptr);
}

}  // namespace
}  // namespace microbrowse
