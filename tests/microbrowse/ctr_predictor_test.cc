// Copyright 2026 The Microbrowse Authors

#include "microbrowse/ctr_predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/feature_keys.h"

namespace microbrowse {
namespace {

TEST(CtrPredictorTest, ScoresFollowTermWeights) {
  FeatureRegistry t_registry;
  const FeatureId good = t_registry.Intern(TermKey("good"), 0.0);
  const FeatureId bad = t_registry.Intern(TermKey("bad"), 0.0);
  FeatureRegistry p_registry;
  SnippetClassifierModel model;
  model.t_weights.resize(t_registry.size());
  model.t_weights[good] = 1.0;
  model.t_weights[bad] = -1.0;

  const CtrPredictor predictor(model, t_registry, p_registry);
  const Snippet good_snippet = Snippet::FromTokens({{"good"}});
  const Snippet bad_snippet = Snippet::FromTokens({{"bad"}});
  EXPECT_GT(predictor.Score(good_snippet), 0.0);
  EXPECT_LT(predictor.Score(bad_snippet), 0.0);
  EXPECT_GT(predictor.Score(good_snippet), predictor.Score(bad_snippet));
}

TEST(CtrPredictorTest, VisibilityWeightsPositions) {
  FeatureRegistry t_registry;
  const FeatureId good = t_registry.Intern(TermKey("good"), 0.0);
  FeatureRegistry p_registry;
  SnippetClassifierModel model;
  model.t_weights.resize(t_registry.size());
  model.t_weights[good] = 1.0;
  const CtrPredictor predictor(model, t_registry, p_registry);

  // Fallback curve: line 1 is far more visible than line 3.
  const Snippet early = Snippet::FromTokens({{"good"}, {}, {}});
  const Snippet late = Snippet::FromTokens({{}, {}, {"good"}});
  EXPECT_GT(predictor.Score(early), predictor.Score(late));
}

TEST(CtrPredictorTest, LearnedVisibilityOverridesFallback) {
  FeatureRegistry t_registry;
  const FeatureId good = t_registry.Intern(TermKey("good"), 0.0);
  FeatureRegistry p_registry;
  const FeatureId line0 = p_registry.Intern(TermPositionKey(PositionKey{0, 0}), 1.0);
  const FeatureId line2 = p_registry.Intern(TermPositionKey(PositionKey{2, 0}), 1.0);
  SnippetClassifierModel model;
  model.t_weights.resize(t_registry.size());
  model.t_weights[good] = 1.0;
  model.p_weights.resize(p_registry.size());
  // Learned weights INVERT the fallback: line 3 more visible than line 1.
  model.p_weights[line0] = 0.1;
  model.p_weights[line2] = 0.9;
  const CtrPredictor predictor(model, t_registry, p_registry);

  const Snippet early = Snippet::FromTokens({{"good"}, {}, {}});
  const Snippet late = Snippet::FromTokens({{}, {}, {"good"}});
  EXPECT_LT(predictor.Score(early), predictor.Score(late));
}

TEST(CtrPredictorTest, FallsBackToStatsDbForUnseenTerms) {
  FeatureRegistry t_registry;
  FeatureRegistry p_registry;
  SnippetClassifierModel model;
  FeatureStatsDb db;
  db.set_min_count(1);
  for (int i = 0; i < 8; ++i) db.AddObservation(TermKey("fresh"), +1);
  const CtrPredictor predictor(model, t_registry, p_registry, &db);
  EXPECT_GT(predictor.Score(Snippet::FromTokens({{"fresh"}})), 0.0);
}

TEST(CtrPredictorTest, RankOrdersByScore) {
  FeatureRegistry t_registry;
  const FeatureId a = t_registry.Intern(TermKey("a"), 0.0);
  const FeatureId b = t_registry.Intern(TermKey("b"), 0.0);
  const FeatureId c = t_registry.Intern(TermKey("c"), 0.0);
  FeatureRegistry p_registry;
  SnippetClassifierModel model;
  model.t_weights.resize(t_registry.size());
  model.t_weights[a] = 0.2;
  model.t_weights[b] = 0.9;
  model.t_weights[c] = -0.4;
  const CtrPredictor predictor(model, t_registry, p_registry);
  const std::vector<Snippet> snippets = {Snippet::FromTokens({{"a"}}),
                                         Snippet::FromTokens({{"b"}}),
                                         Snippet::FromTokens({{"c"}})};
  EXPECT_EQ(predictor.Rank(snippets), (std::vector<size_t>{1, 0, 2}));
}

TEST(CtrPredictorTest, RankCorrelatesWithTrueCtrOnSyntheticCorpus) {
  // End-to-end: train nothing, score straight from the stats database, and
  // check the ranking beats chance against the generator's true CTRs.
  AdCorpusOptions options;
  options.num_adgroups = 500;
  options.seed = 77;
  auto generated = GenerateAdCorpus(options);
  ASSERT_TRUE(generated.ok());
  const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  SnippetClassifierModel empty_model;
  FeatureRegistry t_registry, p_registry;
  const CtrPredictor predictor(empty_model, t_registry, p_registry, &db);

  int concordant = 0, total = 0;
  for (const auto& group : generated->corpus.adgroups) {
    for (size_t i = 0; i + 1 < group.creatives.size(); ++i) {
      for (size_t j = i + 1; j < group.creatives.size(); ++j) {
        const double score_diff = predictor.Score(group.creatives[i].snippet) -
                                  predictor.Score(group.creatives[j].snippet);
        const double ctr_diff =
            group.creatives[i].true_ctr - group.creatives[j].true_ctr;
        if (score_diff == 0.0) continue;
        ++total;
        concordant += (score_diff > 0) == (ctr_diff > 0) ? 1 : 0;
      }
    }
  }
  ASSERT_GT(total, 300);
  EXPECT_GT(static_cast<double>(concordant) / total, 0.55);
}

// --- FitExaminationCurve

TEST(FitExaminationCurveTest, RecoversSyntheticGrid) {
  // Build a grid from a known curve and fit it back.
  const double decay = 0.8;
  const std::vector<double> bases = {0.9, 0.6, 0.2};
  std::vector<std::vector<double>> grid(3, std::vector<double>(6));
  for (size_t l = 0; l < 3; ++l) {
    for (size_t p = 0; p < 6; ++p) grid[l][p] = bases[l] * std::pow(decay, p);
  }
  auto curve = FitExaminationCurve(grid, /*peak=*/0.9);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve->pos_decay(), decay, 0.02);
  // Line ordering preserved and normalised to the peak.
  EXPECT_NEAR(curve->line_bases()[0], 0.9, 0.02);
  EXPECT_GT(curve->line_bases()[0], curve->line_bases()[1]);
  EXPECT_GT(curve->line_bases()[1], curve->line_bases()[2]);
}

TEST(FitExaminationCurveTest, HandlesNansAndNegatives) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> grid = {
      {0.9, nan, 0.58, -0.3},  // Negative weights are ignored.
      {0.45, 0.36, nan, nan},
  };
  auto curve = FitExaminationCurve(grid);
  ASSERT_TRUE(curve.ok());
  EXPECT_GT(curve->line_bases()[0], curve->line_bases()[1]);
}

TEST(FitExaminationCurveTest, TooFewPointsRejected) {
  EXPECT_FALSE(FitExaminationCurve({{0.5}}).ok());
  EXPECT_FALSE(FitExaminationCurve({}).ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(FitExaminationCurve({{nan, nan}, {0.3, nan}}).ok());
}

}  // namespace
}  // namespace microbrowse
