// Copyright 2026 The Microbrowse Authors
//
// Property-based suites: random creative pairs are pushed through rewrite
// matching and feature extraction, checking structural invariants that
// must hold for *every* input — span validity, determinism, coverage
// disjointness, extraction antisymmetry, and stats/classifier sign
// consistency.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "microbrowse/classifier.h"
#include "microbrowse/feature_keys.h"
#include "microbrowse/rewrite.h"

namespace microbrowse {
namespace {

/// Random 3-line snippet over a small vocabulary (repetition is likely,
/// which stresses the matcher's tie-breaking).
Snippet RandomSnippet(Rng* rng) {
  static const std::vector<std::string> kVocab = {
      "alpha", "beta",  "gamma", "delta", "echo", "fox",
      "golf",  "hotel", "india", "20%",   "off",  "free"};
  std::vector<std::vector<std::string>> lines(3);
  for (auto& line : lines) {
    const int len = static_cast<int>(rng->NextIndex(7));  // 0..6 tokens.
    for (int t = 0; t < len; ++t) {
      line.push_back(kVocab[rng->NextIndex(kVocab.size())]);
    }
  }
  return Snippet::FromTokens(std::move(lines));
}

void CheckSpan(const Snippet& snippet, const TermSpan& span) {
  ASSERT_GE(span.line, 0);
  ASSERT_LT(span.line, snippet.num_lines());
  ASSERT_GE(span.pos, 0);
  ASSERT_GE(span.len, 1);
  ASSERT_LE(span.pos + span.len, static_cast<int>(snippet.line(span.line).size()));
  EXPECT_EQ(snippet.SpanText(span.line, span.pos, span.len), span.text);
}

class MatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherPropertyTest, SpansAlwaysValidAndDeterministic) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    const Snippet r = RandomSnippet(&rng);
    const Snippet s = RandomSnippet(&rng);
    const PairDiff diff = MatchRewrites(r, s, nullptr);
    for (const auto& rewrite : diff.rewrites) {
      CheckSpan(r, rewrite.r_span);
      CheckSpan(s, rewrite.s_span);
    }
    for (const auto& span : diff.r_only) CheckSpan(r, span);
    for (const auto& span : diff.s_only) CheckSpan(s, span);

    // Determinism.
    const PairDiff again = MatchRewrites(r, s, nullptr);
    ASSERT_EQ(diff.rewrites.size(), again.rewrites.size());
    for (size_t i = 0; i < diff.rewrites.size(); ++i) {
      EXPECT_EQ(diff.rewrites[i], again.rewrites[i]);
    }
    EXPECT_EQ(diff.r_only.size(), again.r_only.size());
  }
}

TEST_P(MatcherPropertyTest, TextChangingRewritesDisjointPerSide) {
  Rng rng(GetParam() ^ 0xabcdULL);
  for (int trial = 0; trial < 150; ++trial) {
    const Snippet r = RandomSnippet(&rng);
    const Snippet s = RandomSnippet(&rng);
    const PairDiff diff = MatchRewrites(r, s, nullptr);
    std::vector<std::vector<int>> r_cover(3, std::vector<int>(12, 0));
    std::vector<std::vector<int>> s_cover(3, std::vector<int>(12, 0));
    for (const auto& rewrite : diff.rewrites) {
      if (rewrite.r_span.text == rewrite.s_span.text) continue;  // Shifts may tile.
      for (int i = 0; i < rewrite.r_span.len; ++i) {
        EXPECT_EQ(r_cover[rewrite.r_span.line][rewrite.r_span.pos + i]++, 0);
      }
      for (int i = 0; i < rewrite.s_span.len; ++i) {
        EXPECT_EQ(s_cover[rewrite.s_span.line][rewrite.s_span.pos + i]++, 0);
      }
    }
  }
}

TEST_P(MatcherPropertyTest, IdenticalSnippetsAlwaysEmpty) {
  Rng rng(GetParam() ^ 0x1111ULL);
  for (int trial = 0; trial < 100; ++trial) {
    const Snippet snippet = RandomSnippet(&rng);
    EXPECT_TRUE(MatchRewrites(snippet, snippet, nullptr).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherPropertyTest, ::testing::Values(1, 2, 3));

class ExtractionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtractionPropertyTest, PositionlessExtractionIsAntisymmetric) {
  // For configurations without ordered position features, the net signed
  // feature multiset of (A, B) must be the exact negation of (B, A) — for
  // ANY random pair, including ones with moves and length changes.
  Rng rng(GetParam() ^ 0x7777ULL);
  const FeatureStatsDb db;
  for (const auto& config : {ClassifierConfig::M1(), ClassifierConfig::M3(),
                             ClassifierConfig::M5()}) {
    for (int trial = 0; trial < 60; ++trial) {
      const Snippet a = RandomSnippet(&rng);
      const Snippet b = RandomSnippet(&rng);
      FeatureRegistry t_registry, p_registry;
      std::vector<CoupledOccurrence> forward, backward;
      ExtractPairOccurrences(a, b, db, config, &t_registry, &p_registry, &forward);
      ExtractPairOccurrences(b, a, db, config, &t_registry, &p_registry, &backward);
      std::map<FeatureId, double> net;
      for (const auto& occ : forward) net[occ.t] += occ.sign;
      for (const auto& occ : backward) net[occ.t] += occ.sign;
      for (const auto& [id, value] : net) {
        // Same-text rewrite features (pure moves) are order-symmetric by
        // design in positionless configs; everything else must cancel.
        const std::string name(t_registry.NameOf(id));
        const bool self_rewrite =
            name.rfind("rw:", 0) == 0 && name.find("=>") != std::string::npos &&
            name.substr(3, name.find("=>") - 3) ==
                name.substr(name.find("=>") + 2);
        if (!self_rewrite) {
          EXPECT_EQ(value, 0.0) << config.name << " feature " << name;
        }
      }
    }
  }
}

TEST_P(ExtractionPropertyTest, OccurrenceSignsAreUnit) {
  Rng rng(GetParam() ^ 0x9999ULL);
  const FeatureStatsDb db;
  const ClassifierConfig config = ClassifierConfig::M6();
  for (int trial = 0; trial < 60; ++trial) {
    const Snippet a = RandomSnippet(&rng);
    const Snippet b = RandomSnippet(&rng);
    FeatureRegistry t_registry, p_registry;
    std::vector<CoupledOccurrence> occurrences;
    ExtractPairOccurrences(a, b, db, config, &t_registry, &p_registry, &occurrences);
    for (const auto& occ : occurrences) {
      EXPECT_TRUE(occ.sign == 1.0 || occ.sign == -1.0);
      ASSERT_LT(occ.t, t_registry.size());
      if (occ.p != kInvalidFeatureId) {
        ASSERT_LT(occ.p, p_registry.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractionPropertyTest, ::testing::Values(4, 5));

class StatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertyTest, StatisticsInvariantUnderPresentationSwap) {
  // Swapping the (r, s) presentation of every pair does not change which
  // creative is better, so every statistic must be invariant — except the
  // ordered position-pair keys, which map to the reversed key with
  // complemented counts (direction encodes which side holds which
  // location).
  Rng rng(GetParam());
  PairCorpus corpus;
  for (int i = 0; i < 60; ++i) {
    SnippetPair pair;
    pair.adgroup_id = i;
    pair.r.snippet = RandomSnippet(&rng);
    pair.s.snippet = RandomSnippet(&rng);
    pair.r.serve_weight = 1.0 + rng.NextDouble();
    pair.s.serve_weight = rng.NextDouble();
    corpus.pairs.push_back(pair);
  }
  PairCorpus mirrored = corpus;
  for (auto& pair : mirrored.pairs) std::swap(pair.r, pair.s);

  BuildStatsOptions options;
  options.min_count = 1;
  const FeatureStatsDb db = BuildFeatureStats(corpus, options);
  const FeatureStatsDb mirror_db = BuildFeatureStats(mirrored, options);
  for (const auto& [key, stat] : db.stats()) {
    // Ordered position-pair keys mirror to the REVERSED key by design
    // (direction = which side holds which location), so they are checked
    // against their mirror key; everything else flips in place.
    if (key.rfind("pp:", 0) == 0) {
      const size_t arrow = key.find("=>");
      ASSERT_NE(arrow, std::string::npos);
      const std::string mirrored_key =
          "pp:" + key.substr(arrow + 2) + "=>" + key.substr(3, arrow - 3);
      const FeatureStat* other = mirror_db.Find(mirrored_key);
      ASSERT_NE(other, nullptr) << key << " -> " << mirrored_key;
      EXPECT_EQ(stat.total, other->total) << key;
      EXPECT_EQ(stat.positive, other->total - other->positive) << key;
      continue;
    }
    const FeatureStat* other = mirror_db.Find(key);
    ASSERT_NE(other, nullptr) << key;
    EXPECT_EQ(stat.total, other->total) << key;
    // Self-rewrites (pure moves) carry their direction in the observation
    // sign, not the key, so their counts complement under the swap, like
    // the position pairs. Everything else is invariant.
    const size_t arrow = key.find("=>");
    const bool self_rewrite = key.rfind("rw:", 0) == 0 && arrow != std::string::npos &&
                              key.substr(3, arrow - 3) == key.substr(arrow + 2);
    if (self_rewrite) {
      EXPECT_EQ(stat.positive, other->total - other->positive) << key;
    } else {
      EXPECT_EQ(stat.positive, other->positive) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest, ::testing::Values(6, 7));

}  // namespace
}  // namespace microbrowse
