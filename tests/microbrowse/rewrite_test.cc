// Copyright 2026 The Microbrowse Authors
//
// Tests for feature keys, the statistics database and rewrite matching.

#include <gtest/gtest.h>

#include <algorithm>

#include "microbrowse/feature_keys.h"
#include "microbrowse/rewrite.h"
#include "microbrowse/stats_db.h"

namespace microbrowse {
namespace {

// --- feature_keys.h

TEST(FeatureKeysTest, PositionBuckets) {
  EXPECT_EQ(MakePositionKey(0, 0), (PositionKey{0, 0}));
  EXPECT_EQ(MakePositionKey(1, 5), (PositionKey{1, 5}));
  EXPECT_EQ(MakePositionKey(9, 99), (PositionKey{kMaxLineBucket, kMaxPosBucket}));
  EXPECT_EQ(MakePositionKey(-1, -3), (PositionKey{0, 0}));
}

TEST(FeatureKeysTest, TermAndPositionKeys) {
  EXPECT_EQ(TermKey("find cheap"), "t:find cheap");
  EXPECT_EQ(TermPositionKey(PositionKey{1, 3}), "p:1:3");
  EXPECT_EQ(TermConjunctionKey("cheap", PositionKey{2, 0}), "tp:cheap@2:0");
}

TEST(FeatureKeysTest, RewriteKeyCanonicalisation) {
  const SignedKey forward = RewriteKey("apple", "banana");
  EXPECT_EQ(forward.key, "rw:apple=>banana");
  EXPECT_EQ(forward.sign, 1.0);
  const SignedKey backward = RewriteKey("banana", "apple");
  EXPECT_EQ(backward.key, forward.key);
  EXPECT_EQ(backward.sign, -1.0);
}

TEST(FeatureKeysTest, SelfRewriteKeepsPositiveSign) {
  const SignedKey key = RewriteKey("same", "same");
  EXPECT_EQ(key.key, "rw:same=>same");
  EXPECT_EQ(key.sign, 1.0);
}

TEST(FeatureKeysTest, RewritePositionKeyIsOrdered) {
  const PositionKey a{1, 0};
  const PositionKey b{2, 3};
  EXPECT_EQ(RewritePositionKey(a, b), "pp:1:0=>2:3");
  EXPECT_EQ(RewritePositionKey(b, a), "pp:2:3=>1:0");
  EXPECT_NE(RewritePositionKey(a, b), RewritePositionKey(b, a));
}

// --- FeatureStatsDb

TEST(StatsDbTest, ObservationsAccumulate) {
  FeatureStatsDb db;
  db.AddObservation("t:x", +1);
  db.AddObservation("t:x", +1);
  db.AddObservation("t:x", -1);
  const FeatureStat* stat = db.Find("t:x");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->positive, 2);
  EXPECT_EQ(stat->total, 3);
  EXPECT_EQ(db.Count("t:x"), 3);
  EXPECT_EQ(db.Count("t:y"), 0);
}

TEST(StatsDbTest, SmoothedStatisticsAndOdds) {
  FeatureStat stat;
  stat.positive = 3;
  stat.total = 4;
  EXPECT_NEAR(stat.SmoothedP(1.0), 3.5 / 5.0, 1e-12);
  EXPECT_NEAR(stat.OddsRatio(1.0), 0.7 / 0.3, 1e-12);
  EXPECT_NEAR(stat.LogOdds(1.0), std::log(0.7 / 0.3), 1e-9);
}

TEST(StatsDbTest, UnseenKeysAreNeutral) {
  FeatureStatsDb db;
  EXPECT_EQ(db.LogOdds("missing"), 0.0);
  EXPECT_EQ(db.OddsRatio("missing"), 1.0);
}

TEST(StatsDbTest, MinCountGatesStatistics) {
  FeatureStatsDb db;
  db.set_min_count(3);
  db.AddObservation("t:rare", +1);
  db.AddObservation("t:rare", +1);
  EXPECT_EQ(db.LogOdds("t:rare"), 0.0);  // Below support: neutral.
  EXPECT_EQ(db.OddsRatio("t:rare"), 1.0);
  db.AddObservation("t:rare", +1);
  EXPECT_GT(db.LogOdds("t:rare"), 0.0);  // At support: real statistic.
}

// --- Rewrite matching

Snippet MakeSnippet(std::vector<std::vector<std::string>> lines) {
  return Snippet::FromTokens(std::move(lines));
}

bool HasRewrite(const PairDiff& diff, const std::string& r_text, const std::string& s_text) {
  for (const auto& rewrite : diff.rewrites) {
    if (rewrite.r_span.text == r_text && rewrite.s_span.text == s_text) return true;
  }
  return false;
}

TEST(RewriteMatchTest, IdenticalSnippetsProduceNothing) {
  const Snippet snippet = MakeSnippet({{"a", "b"}, {"c"}});
  const PairDiff diff = MatchRewrites(snippet, snippet, nullptr);
  EXPECT_TRUE(diff.empty());
}

TEST(RewriteMatchTest, SimpleSubstitutionIsMatched) {
  const Snippet r = MakeSnippet({{"brand"}, {"find", "cheap", "flights"}});
  const Snippet s = MakeSnippet({{"brand"}, {"find", "best", "flights"}});
  const PairDiff diff = MatchRewrites(r, s, nullptr);
  ASSERT_FALSE(diff.rewrites.empty());
  // Some candidate pairing covers "cheap" <-> "best" (possibly with
  // expanded context).
  bool covered = false;
  for (const auto& rewrite : diff.rewrites) {
    if (rewrite.r_span.text.find("cheap") != std::string::npos &&
        rewrite.s_span.text.find("best") != std::string::npos) {
      covered = true;
    }
  }
  EXPECT_TRUE(covered);
}

TEST(RewriteMatchTest, CrossLineMoveMatchedExactly) {
  // "20% off" moves from line 2 to line 1: the matcher must pair the
  // identical text across lines (a pure move).
  const Snippet r = MakeSnippet({{"brand"}, {"20%", "off"}, {"great", "rates"}});
  const Snippet s = MakeSnippet({{"brand"}, {"great", "rates"}, {"20%", "off"}});
  const PairDiff diff = MatchRewrites(r, s, nullptr);
  EXPECT_TRUE(HasRewrite(diff, "20% off", "20% off"));
  EXPECT_TRUE(HasRewrite(diff, "great rates", "great rates"));
}

TEST(RewriteMatchTest, ShiftRewritesForDisplacedSharedContent) {
  // Replacing a 1-token action with a 3-token action displaces the shared
  // tail of the line; the matcher reports the displaced tokens as
  // same-text rewrites with different positions.
  const Snippet r = MakeSnippet({{"book", "flights", "to", "rome"}});
  const Snippet s = MakeSnippet({{"get", "discounts", "on", "flights", "to", "rome"}});
  const PairDiff diff = MatchRewrites(r, s, nullptr);
  bool found_shift = false;
  for (const auto& rewrite : diff.rewrites) {
    if (rewrite.r_span.text == rewrite.s_span.text &&
        rewrite.r_span.pos != rewrite.s_span.pos) {
      found_shift = true;
      EXPECT_EQ(rewrite.r_span.line, rewrite.s_span.line);
    }
  }
  EXPECT_TRUE(found_shift);
}

TEST(RewriteMatchTest, StatsGuidedMatchingPrefersFrequentRewrite) {
  // DB says "find cheap" => "get discounts" is a common rewrite; the
  // matcher should prefer pairing those phrases over fragment pairings.
  FeatureStatsDb db;
  for (int i = 0; i < 50; ++i) {
    db.AddObservation(RewriteKey("find cheap", "get discounts").key, +1);
  }
  const Snippet r = MakeSnippet({{"get", "discounts", "flights"}});
  const Snippet s = MakeSnippet({{"find", "cheap", "flights"}});
  const PairDiff diff = MatchRewrites(r, s, &db);
  EXPECT_TRUE(HasRewrite(diff, "get discounts", "find cheap"));
}

TEST(RewriteMatchTest, TextChangingRewritesAreTokenDisjoint) {
  // The greedy cover must never assign one token to two text-changing
  // rewrites on the same side. (Same-text shift rewrites tile sub-grams
  // and are exempt by construction.)
  const Snippet r = MakeSnippet({{"a", "b", "c", "d", "e"}, {"x", "y"}});
  const Snippet s = MakeSnippet({{"p", "q", "c", "r", "s"}, {"w", "y"}});
  const PairDiff diff = MatchRewrites(r, s, nullptr);
  auto check_disjoint = [&](bool r_side) {
    std::vector<std::vector<int>> covered(3, std::vector<int>(16, 0));
    for (const auto& rewrite : diff.rewrites) {
      if (rewrite.r_span.text == rewrite.s_span.text) continue;  // Shift/move.
      const TermSpan& span = r_side ? rewrite.r_span : rewrite.s_span;
      for (int i = 0; i < span.len; ++i) {
        EXPECT_EQ(covered[span.line][span.pos + i]++, 0)
            << "overlap at line " << span.line << " pos " << span.pos + i;
      }
    }
  };
  check_disjoint(true);
  check_disjoint(false);
}

TEST(RewriteMatchTest, EmptySnippets) {
  const PairDiff diff = MatchRewrites(Snippet(), Snippet(), nullptr);
  EXPECT_TRUE(diff.empty());
  const Snippet nonempty = MakeSnippet({{"a"}});
  const PairDiff one_sided = MatchRewrites(nonempty, Snippet(), nullptr);
  EXPECT_TRUE(one_sided.rewrites.empty());
  EXPECT_FALSE(one_sided.r_only.empty());
}

TEST(RewriteMatchTest, PureInsertionBecomesLeftoverTerms) {
  const Snippet r = MakeSnippet({{"a", "b", "extra", "c"}});
  const Snippet s = MakeSnippet({{"a", "b", "c"}});
  RewriteMatchOptions options;
  options.context_expansion = 0;  // No annexed context: clean insertion.
  const PairDiff diff = MatchRewrites(r, s, nullptr, options);
  // The insertion displaces "c", which surfaces as a same-text shift
  // rewrite; no text-changing rewrite may appear.
  for (const auto& rewrite : diff.rewrites) {
    EXPECT_EQ(rewrite.r_span.text, rewrite.s_span.text);
  }
  ASSERT_FALSE(diff.r_only.empty());
  EXPECT_EQ(diff.r_only[0].text, "extra");
  EXPECT_TRUE(diff.s_only.empty());
}

TEST(RewriteMatchTest, ContextExpansionRecoversFullPhrase) {
  // Token-sharing rewrite: raw diff is only "cheap" vs "deals on"; with
  // expansion the matcher can pair the full phrases.
  const Snippet r = MakeSnippet({{"find", "cheap", "flights"}});
  const Snippet s = MakeSnippet({{"find", "deals", "on", "flights"}});
  FeatureStatsDb db;
  for (int i = 0; i < 30; ++i) {
    db.AddObservation(RewriteKey("find deals on", "find cheap").key, +1);
  }
  RewriteMatchOptions options;
  options.context_expansion = 2;
  const PairDiff diff = MatchRewrites(r, s, &db, options);
  EXPECT_TRUE(HasRewrite(diff, "find cheap", "find deals on"));
}

class MatchingStrategyTest : public ::testing::TestWithParam<MatchingStrategy> {};

TEST_P(MatchingStrategyTest, AllStrategiesProduceValidSpans) {
  const Snippet r = MakeSnippet({{"brand", "one"},
                                 {"save", "big", "on", "hotel", "rooms"},
                                 {"free", "cancellation", "and", "20%", "off"}});
  const Snippet s = MakeSnippet({{"brand", "one"},
                                 {"book", "hotel", "rooms", "today"},
                                 {"20%", "off", "plus", "free", "cancellation"}});
  RewriteMatchOptions options;
  options.strategy = GetParam();
  const PairDiff diff = MatchRewrites(r, s, nullptr, options);
  auto check_span = [](const Snippet& snippet, const TermSpan& span) {
    ASSERT_GE(span.line, 0);
    ASSERT_LT(span.line, snippet.num_lines());
    ASSERT_GE(span.pos, 0);
    ASSERT_LE(span.pos + span.len, static_cast<int>(snippet.line(span.line).size()));
    EXPECT_EQ(snippet.SpanText(span.line, span.pos, span.len), span.text);
  };
  for (const auto& rewrite : diff.rewrites) {
    check_span(r, rewrite.r_span);
    check_span(s, rewrite.s_span);
  }
  for (const auto& span : diff.r_only) check_span(r, span);
  for (const auto& span : diff.s_only) check_span(s, span);
}

INSTANTIATE_TEST_SUITE_P(Strategies, MatchingStrategyTest,
                         ::testing::Values(MatchingStrategy::kGreedyStats,
                                           MatchingStrategy::kFirstMatch,
                                           MatchingStrategy::kPositionOnly));

// --- BuildFeatureStats end-to-end

PairCorpus TinyPairCorpus() {
  PairCorpus corpus;
  // Three adgroups all exhibiting the rewrite "slow" -> "fast", where the
  // "fast" creative always has the higher serve weight.
  for (int g = 0; g < 3; ++g) {
    SnippetPair pair;
    pair.adgroup_id = g;
    pair.keyword_id = g;
    pair.r.snippet = MakeSnippet({{"brand"}, {"fast", "shipping"}});
    pair.r.serve_weight = 1.2;
    pair.r.impressions = 1000;
    pair.r.clicks = 60;
    pair.s.snippet = MakeSnippet({{"brand"}, {"slow", "shipping"}});
    pair.s.serve_weight = 0.8;
    pair.s.impressions = 1000;
    pair.s.clicks = 40;
    corpus.pairs.push_back(pair);
  }
  return corpus;
}

TEST(BuildFeatureStatsTest, TermAndRewriteStatisticsAgree) {
  BuildStatsOptions options;
  options.min_count = 1;
  const FeatureStatsDb db = BuildFeatureStats(TinyPairCorpus(), options);
  // "fast" only ever appears in the better creative.
  const FeatureStat* fast = db.Find("t:fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(fast->positive, fast->total);
  const FeatureStat* slow = db.Find("t:slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->positive, 0);
  // The canonical rewrite statistic points from "slow"-ish to "fast"-ish.
  // With context expansion the matcher pairs the full phrases, so the key
  // is the phrase-level one.
  const SignedKey key = RewriteKey("slow shipping", "fast shipping");
  const FeatureStat* rewrite = db.Find(key.key);
  ASSERT_NE(rewrite, nullptr);
  EXPECT_EQ(rewrite->total, 3);
  // delta-sw observations all aligned with the canonical direction's sign.
  if (key.sign > 0) {
    EXPECT_EQ(rewrite->positive, 3);
  } else {
    EXPECT_EQ(rewrite->positive, 0);
  }
}

TEST(BuildFeatureStatsTest, DirectionFlipsWithServeWeights) {
  PairCorpus corpus = TinyPairCorpus();
  // Swap serve weights: now "slow" creative wins.
  for (auto& pair : corpus.pairs) std::swap(pair.r.serve_weight, pair.s.serve_weight);
  BuildStatsOptions options;
  options.min_count = 1;
  const FeatureStatsDb db = BuildFeatureStats(corpus, options);
  EXPECT_LT(db.LogOdds("t:fast"), 0.0);
  EXPECT_GT(db.LogOdds("t:slow"), 0.0);
}

TEST(BuildFeatureStatsTest, TwoPassesAreDeterministic) {
  BuildStatsOptions options;
  options.matching_passes = 2;
  const FeatureStatsDb a = BuildFeatureStats(TinyPairCorpus(), options);
  const FeatureStatsDb b = BuildFeatureStats(TinyPairCorpus(), options);
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [key, stat] : a.stats()) {
    const FeatureStat* other = b.Find(key);
    ASSERT_NE(other, nullptr) << key;
    EXPECT_EQ(stat.total, other->total) << key;
    EXPECT_EQ(stat.positive, other->positive) << key;
  }
}

}  // namespace
}  // namespace microbrowse
