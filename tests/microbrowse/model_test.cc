// Copyright 2026 The Microbrowse Authors
//
// Tests for the micro-browsing model itself (Section III): examination
// curves, Eq. 3 relevance products, sampling consistency and the pairwise
// score of Eq. 5.

#include "microbrowse/model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace microbrowse {
namespace {

TEST(ExaminationCurveTest, DecaysWithinLine) {
  const ExaminationCurve curve = ExaminationCurve::TopPlacement();
  for (int line = 0; line < 3; ++line) {
    for (int pos = 1; pos < 8; ++pos) {
      EXPECT_LE(curve.Probability(line, pos), curve.Probability(line, pos - 1))
          << "line " << line << " pos " << pos;
    }
  }
}

TEST(ExaminationCurveTest, DecaysAcrossLines) {
  const ExaminationCurve curve = ExaminationCurve::TopPlacement();
  EXPECT_GT(curve.Probability(0, 0), curve.Probability(1, 0));
  EXPECT_GT(curve.Probability(1, 0), curve.Probability(2, 0));
}

TEST(ExaminationCurveTest, RhsWeakerThanTopEverywhere) {
  const ExaminationCurve top = ExaminationCurve::TopPlacement();
  const ExaminationCurve rhs = ExaminationCurve::RhsPlacement();
  for (int line = 0; line < 3; ++line) {
    for (int pos = 0; pos < 8; ++pos) {
      EXPECT_LE(rhs.Probability(line, pos), top.Probability(line, pos));
    }
  }
}

TEST(ExaminationCurveTest, ProbabilitiesAreProbabilities) {
  const ExaminationCurve curve({1.5, 0.5}, 0.9, 0.02);  // Base above 1 gets clamped.
  for (int line = 0; line < 5; ++line) {
    for (int pos = 0; pos < 20; ++pos) {
      const double p = curve.Probability(line, pos);
      EXPECT_GE(p, 0.02);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(ExaminationCurveTest, FloorHolds) {
  const ExaminationCurve curve({0.5}, 0.5, 0.1);
  EXPECT_NEAR(curve.Probability(0, 30), 0.1, 1e-12);
}

TEST(ExaminationCurveTest, LinesBeyondVectorReuseLast) {
  const ExaminationCurve curve({0.8, 0.4}, 1.0, 0.02);
  EXPECT_DOUBLE_EQ(curve.Probability(7, 0), curve.Probability(1, 0));
}

TEST(ExaminationCurveTest, ScaledMultipliesBases) {
  const ExaminationCurve curve({0.8, 0.4}, 0.9, 0.02);
  const ExaminationCurve half = curve.Scaled(0.5);
  EXPECT_NEAR(half.Probability(0, 0), 0.4, 1e-12);
  EXPECT_NEAR(half.Probability(1, 0), 0.2, 1e-12);
}

Snippet TwoTokenSnippet() { return Snippet::FromTokens({{"good", "bad"}}); }

MapRelevance SimpleRelevance() {
  MapRelevance relevance(0.9);
  relevance.Set("good", 0.95);
  relevance.Set("bad", 0.40);
  return relevance;
}

TEST(MicroBrowsingModelTest, ExpectedClickProbabilityClosedForm) {
  const ExaminationCurve curve({0.8}, 0.5, 0.02);  // p(0,0)=0.8, p(0,1)=0.4.
  const MicroBrowsingModel model(curve, /*base_ctr=*/0.1);
  const MapRelevance relevance = SimpleRelevance();
  const double expected =
      0.1 * (1.0 - 0.8 * (1.0 - 0.95)) * (1.0 - 0.4 * (1.0 - 0.40));
  EXPECT_NEAR(model.ExpectedClickProbability(0, TwoTokenSnippet(), relevance), expected, 1e-12);
}

TEST(MicroBrowsingModelTest, BetterTermsRaiseCtr) {
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), 0.1);
  MapRelevance relevance(0.9);
  relevance.Set("cheap", 0.95);
  relevance.Set("expensive", 0.30);
  const Snippet good = Snippet::FromTokens({{"cheap", "flights"}});
  const Snippet bad = Snippet::FromTokens({{"expensive", "flights"}});
  EXPECT_GT(model.ExpectedClickProbability(0, good, relevance),
            model.ExpectedClickProbability(0, bad, relevance));
}

TEST(MicroBrowsingModelTest, SalientTermEarlierBeatsLater) {
  // A low-relevance (off-putting) term hurts more when it is more visible;
  // symmetric in reverse for a pure swap of good-vs-bad positions.
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), 0.1);
  const MapRelevance relevance = SimpleRelevance();
  const Snippet good_first = Snippet::FromTokens({{"good", "bad"}});
  const Snippet bad_first = Snippet::FromTokens({{"bad", "good"}});
  EXPECT_GT(model.ExpectedClickProbability(0, good_first, relevance),
            model.ExpectedClickProbability(0, bad_first, relevance));
}

TEST(MicroBrowsingModelTest, EmptySnippetGivesBaseCtr) {
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), 0.07);
  MapRelevance relevance(0.9);
  EXPECT_NEAR(model.ExpectedClickProbability(0, Snippet(), relevance), 0.07, 1e-12);
}

TEST(MicroBrowsingModelTest, RelevanceGivenExaminationIsEq3) {
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), 1.0);
  const MapRelevance relevance = SimpleRelevance();
  const Snippet snippet = TwoTokenSnippet();
  // Nothing examined: empty product = 1 (the paper's Eq. 3 verbatim).
  EXPECT_NEAR(model.RelevanceGivenExamination(0, snippet, {{0, 0}}, relevance), 1.0, 1e-12);
  // Both examined: product of relevances.
  EXPECT_NEAR(model.RelevanceGivenExamination(0, snippet, {{1, 1}}, relevance), 0.95 * 0.40,
              1e-12);
  // Only the first examined.
  EXPECT_NEAR(model.RelevanceGivenExamination(0, snippet, {{1, 0}}, relevance), 0.95, 1e-12);
}

TEST(MicroBrowsingModelTest, SampleExaminationsMatchesCurve) {
  const ExaminationCurve curve({0.7}, 1.0, 0.02);
  const MicroBrowsingModel model(curve, 1.0);
  const Snippet snippet = TwoTokenSnippet();
  Rng rng(5);
  int first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto pattern = model.SampleExaminations(snippet, &rng);
    first += pattern[0][0];
  }
  EXPECT_NEAR(first / double(n), 0.7, 0.01);
}

TEST(MicroBrowsingModelTest, SampleClickFrequencyMatchesExpectation) {
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), 0.3);
  const MapRelevance relevance = SimpleRelevance();
  const Snippet snippet = TwoTokenSnippet();
  const double expected = model.ExpectedClickProbability(0, snippet, relevance);
  Rng rng(7);
  int clicks = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    clicks += model.SampleClick(0, snippet, relevance, &rng) ? 1 : 0;
  }
  EXPECT_NEAR(clicks / double(n), expected, 0.01);
}

TEST(MicroBrowsingModelTest, ScorePairIsAntisymmetric) {
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), 1.0);
  const MapRelevance relevance = SimpleRelevance();
  const Snippet r = Snippet::FromTokens({{"good"}});
  const Snippet s = Snippet::FromTokens({{"bad"}});
  const ExaminationPattern vr = {{1}};
  const ExaminationPattern vs = {{1}};
  const double forward = model.ScorePair(0, r, vr, s, vs, relevance);
  const double backward = model.ScorePair(0, s, vs, r, vr, relevance);
  EXPECT_NEAR(forward, -backward, 1e-12);
  EXPECT_GT(forward, 0.0);  // "good" beats "bad".
  // Matches Eq. 5 directly: log r_good - log r_bad.
  EXPECT_NEAR(forward, std::log(0.95) - std::log(0.40), 1e-9);
}

TEST(MicroBrowsingModelTest, HeatmapWithoutCascadeEqualsCurve) {
  const ExaminationCurve curve({0.8, 0.4}, 0.5, 0.02);
  const MicroBrowsingModel model(curve, 0.1);
  const MapRelevance relevance = SimpleRelevance();
  const Snippet snippet = Snippet::FromTokens({{"good", "bad"}, {"good"}});
  const auto heatmap = model.ExaminationHeatmap(0, snippet, relevance, /*absorb=*/0.0);
  ASSERT_EQ(heatmap.size(), 2u);
  EXPECT_NEAR(heatmap[0][0], 0.8, 1e-12);
  EXPECT_NEAR(heatmap[0][1], 0.4, 1e-12);
  EXPECT_NEAR(heatmap[1][0], 0.4, 1e-12);
}

TEST(MicroBrowsingModelTest, CascadeDimsLaterTokens) {
  const ExaminationCurve curve({0.9}, 1.0, 0.02);  // Flat within the line.
  const MicroBrowsingModel model(curve, 0.1);
  MapRelevance relevance(0.9);
  relevance.Set("salient", 0.99);
  const Snippet snippet = Snippet::FromTokens({{"salient", "salient", "salient"}});
  const auto without = model.ExaminationHeatmap(0, snippet, relevance, 0.0);
  const auto with = model.ExaminationHeatmap(0, snippet, relevance, 0.5);
  // Without the cascade the flat curve keeps all three equal; with it each
  // successive token is strictly dimmer.
  EXPECT_NEAR(without[0][2], without[0][0], 1e-12);
  EXPECT_LT(with[0][1], with[0][0]);
  EXPECT_LT(with[0][2], with[0][1]);
  // First token is unaffected by the cascade.
  EXPECT_NEAR(with[0][0], without[0][0], 1e-12);
}

TEST(MicroBrowsingModelTest, CascadeCrossesLines) {
  const ExaminationCurve curve({0.9, 0.9}, 1.0, 0.02);
  const MicroBrowsingModel model(curve, 0.1);
  MapRelevance relevance(0.95);
  const Snippet snippet = Snippet::FromTokens({{"a", "b"}, {"c"}});
  const auto heatmap = model.ExaminationHeatmap(0, snippet, relevance, 0.4);
  // Line 2's token is dimmed by the attention spent on line 1.
  EXPECT_LT(heatmap[1][0], 0.9);
}

TEST(MicroBrowsingModelTest, UnexaminedTermsDoNotScore) {
  const MicroBrowsingModel model(ExaminationCurve::TopPlacement(), 1.0);
  const MapRelevance relevance = SimpleRelevance();
  const Snippet r = Snippet::FromTokens({{"good", "bad"}});
  const Snippet s = Snippet::FromTokens({{"good", "bad"}});
  // Same snippet; examine "bad" only on the S side: score must be positive
  // (S is penalised for the examined off-putting term).
  const double score = model.ScorePair(0, r, {{0, 0}}, s, {{0, 1}}, relevance);
  EXPECT_NEAR(score, -std::log(0.40), 1e-9);
}

}  // namespace
}  // namespace microbrowse
