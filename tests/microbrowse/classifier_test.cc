// Copyright 2026 The Microbrowse Authors
//
// Tests for the snippet classifier: configuration factories, feature
// extraction invariants (most importantly antisymmetry under pair
// swapping), coupled training, and the CV pipeline.

#include "microbrowse/classifier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "corpus/generator.h"
#include "microbrowse/feature_keys.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/pipeline.h"

namespace microbrowse {
namespace {

// --- Config factories

TEST(ClassifierConfigTest, PaperModelFlags) {
  const auto m1 = ClassifierConfig::M1();
  EXPECT_TRUE(m1.use_term_features);
  EXPECT_FALSE(m1.use_rewrite_features);
  EXPECT_FALSE(m1.use_position);

  const auto m2 = ClassifierConfig::M2();
  EXPECT_TRUE(m2.use_term_features);
  EXPECT_FALSE(m2.use_rewrite_features);
  EXPECT_TRUE(m2.use_position);

  const auto m3 = ClassifierConfig::M3();
  EXPECT_FALSE(m3.use_term_features);
  EXPECT_TRUE(m3.use_rewrite_features);
  EXPECT_FALSE(m3.use_position);

  const auto m4 = ClassifierConfig::M4();
  EXPECT_TRUE(m4.use_rewrite_features);
  EXPECT_TRUE(m4.use_position);

  const auto m5 = ClassifierConfig::M5();
  EXPECT_TRUE(m5.use_term_features);
  EXPECT_TRUE(m5.use_rewrite_features);
  EXPECT_FALSE(m5.use_position);

  const auto m6 = ClassifierConfig::M6();
  EXPECT_TRUE(m6.use_term_features);
  EXPECT_TRUE(m6.use_rewrite_features);
  EXPECT_TRUE(m6.use_position);

  const auto all = ClassifierConfig::AllPaperModels();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "M1");
  EXPECT_EQ(all[5].name, "M6");
}

// --- Extraction invariants

Snippet CreativeA() {
  return Snippet::FromTokens(
      {{"brand"}, {"find", "cheap", "flights"}, {"great", "rates", "20%", "off"}});
}

Snippet CreativeB() {
  // Same-length substitutions at identical positions: no content is
  // displaced, so the diff contains no order-symmetric shift rewrites and
  // exact score antisymmetry must hold for every configuration.
  return Snippet::FromTokens(
      {{"brand"}, {"book", "best", "flights"}, {"great", "rates", "10%", "off"}});
}

/// Extracts occurrences for both presentation orders and checks that the
/// model score of any weight assignment flips sign exactly.
class ExtractionAntisymmetryTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtractionAntisymmetryTest, ScoreFlipsUnderSwap) {
  const auto configs = ClassifierConfig::AllPaperModels();
  const ClassifierConfig& config = configs[GetParam()];
  const FeatureStatsDb db;  // Empty: neutral warm starts.

  FeatureRegistry t_registry, p_registry;
  std::vector<CoupledOccurrence> forward, backward;
  ExtractPairOccurrences(CreativeA(), CreativeB(), db, config, &t_registry, &p_registry,
                         &forward);
  ExtractPairOccurrences(CreativeB(), CreativeA(), db, config, &t_registry, &p_registry,
                         &backward);

  // Score both orders under an arbitrary deterministic weight assignment.
  SnippetClassifierModel model;
  model.t_weights.resize(t_registry.size());
  for (size_t i = 0; i < model.t_weights.size(); ++i) {
    model.t_weights[i] = 0.1 * static_cast<double>((i * 7) % 13) - 0.5;
  }
  model.p_weights.resize(p_registry.size());
  for (size_t i = 0; i < model.p_weights.size(); ++i) {
    model.p_weights[i] = 0.05 * static_cast<double>((i * 3) % 11) + 0.5;
  }
  model.bias = 0.0;

  CoupledExample fwd{forward, 1.0};
  CoupledExample bwd{backward, 0.0};
  EXPECT_NEAR(model.Score(fwd), -model.Score(bwd), 1e-9) << config.name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ExtractionAntisymmetryTest, ::testing::Range(0, 6));

TEST(ExtractionTest, IdenticalPairHasNoNetSignal) {
  const FeatureStatsDb db;
  const ClassifierConfig config = ClassifierConfig::M1();
  FeatureRegistry t_registry, p_registry;
  std::vector<CoupledOccurrence> occurrences;
  ExtractPairOccurrences(CreativeA(), CreativeA(), db, config, &t_registry, &p_registry,
                         &occurrences);
  // Net contribution per feature is zero.
  std::vector<double> net(t_registry.size(), 0.0);
  for (const auto& occ : occurrences) net[occ.t] += occ.sign;
  for (double v : net) EXPECT_EQ(v, 0.0);
}

TEST(ExtractionTest, PositionlessConfigsNeverTouchPRegistry) {
  const FeatureStatsDb db;
  for (const auto& config : {ClassifierConfig::M1(), ClassifierConfig::M3(),
                             ClassifierConfig::M5()}) {
    FeatureRegistry t_registry, p_registry;
    std::vector<CoupledOccurrence> occurrences;
    ExtractPairOccurrences(CreativeA(), CreativeB(), db, config, &t_registry, &p_registry,
                           &occurrences);
    EXPECT_TRUE(p_registry.empty()) << config.name;
    for (const auto& occ : occurrences) {
      EXPECT_EQ(occ.p, kInvalidFeatureId) << config.name;
    }
  }
}

TEST(ExtractionTest, WarmStartComesFromStatsDb) {
  FeatureStatsDb db;
  db.set_min_count(1);
  for (int i = 0; i < 10; ++i) db.AddObservation("t:cheap", +1);
  ClassifierConfig config = ClassifierConfig::M1();
  FeatureRegistry t_registry, p_registry;
  std::vector<CoupledOccurrence> occurrences;
  ExtractPairOccurrences(CreativeA(), CreativeB(), db, config, &t_registry, &p_registry,
                         &occurrences);
  const FeatureId id = t_registry.Find("t:cheap");
  ASSERT_NE(id, kInvalidFeatureId);
  EXPECT_NEAR(t_registry.InitialWeightOf(id), db.LogOdds("t:cheap"), 1e-12);
  EXPECT_GT(t_registry.InitialWeightOf(id), 0.0);
}

TEST(ExtractionTest, InitFromStatsCanBeDisabled) {
  FeatureStatsDb db;
  db.set_min_count(1);
  for (int i = 0; i < 10; ++i) db.AddObservation("t:cheap", +1);
  ClassifierConfig config = ClassifierConfig::M1();
  config.init_from_stats = false;
  FeatureRegistry t_registry, p_registry;
  std::vector<CoupledOccurrence> occurrences;
  ExtractPairOccurrences(CreativeA(), CreativeB(), db, config, &t_registry, &p_registry,
                         &occurrences);
  const FeatureId id = t_registry.Find("t:cheap");
  ASSERT_NE(id, kInvalidFeatureId);
  EXPECT_EQ(t_registry.InitialWeightOf(id), 0.0);
}

// --- Training on a synthetic-but-transparent task

/// Builds a pair corpus where the creative containing "winner" always has
/// the higher serve weight and the one containing "loser" the lower.
PairCorpus SignalCorpus(int n) {
  PairCorpus corpus;
  Rng rng(17);
  const std::vector<std::string> fillers = {"alpha", "beta", "gamma", "delta"};
  for (int i = 0; i < n; ++i) {
    SnippetPair pair;
    pair.adgroup_id = i;
    pair.keyword_id = i % 7;
    const std::string& filler = fillers[rng.NextIndex(fillers.size())];
    pair.r.snippet = Snippet::FromTokens({{"brand"}, {"winner", filler}});
    pair.r.serve_weight = 1.3;
    pair.s.snippet = Snippet::FromTokens({{"brand"}, {"loser", filler}});
    pair.s.serve_weight = 0.7;
    corpus.pairs.push_back(pair);
  }
  return corpus;
}

TEST(TrainSnippetClassifierTest, LearnsObviousSignal) {
  const PairCorpus corpus = SignalCorpus(400);
  BuildStatsOptions stats_options;
  stats_options.min_count = 2;
  const FeatureStatsDb db = BuildFeatureStats(corpus, stats_options);
  for (const auto& config : ClassifierConfig::AllPaperModels()) {
    const CoupledDataset dataset = BuildClassifierDataset(corpus, db, config, 5);
    auto model = TrainSnippetClassifier(dataset, config);
    ASSERT_TRUE(model.ok()) << config.name;
    int correct = 0;
    for (const auto& example : dataset.examples) {
      correct += ((model->Score(example) >= 0.0) == (example.label > 0.5)) ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(correct) / dataset.examples.size(), 0.95) << config.name;
  }
}

TEST(TrainSnippetClassifierTest, EmptyDatasetFails) {
  CoupledDataset dataset;
  EXPECT_FALSE(TrainSnippetClassifier(dataset, ClassifierConfig::M1()).ok());
}

TEST(TrainSnippetClassifierTest, TrainOnSubsetOnly) {
  const PairCorpus corpus = SignalCorpus(100);
  const FeatureStatsDb db = BuildFeatureStats(corpus, {});
  const ClassifierConfig config = ClassifierConfig::M1();
  const CoupledDataset dataset = BuildClassifierDataset(corpus, db, config, 5);
  std::vector<size_t> train = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto model = TrainSnippetClassifier(dataset, config, train);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->t_weights.size(), dataset.t_registry.size());
}

TEST(BuildClassifierDatasetTest, LabelsAreBalancedByRandomSwap) {
  const PairCorpus corpus = SignalCorpus(1000);
  const FeatureStatsDb db;
  const CoupledDataset dataset =
      BuildClassifierDataset(corpus, db, ClassifierConfig::M1(), 9);
  int positives = 0;
  for (const auto& example : dataset.examples) positives += example.label > 0.5 ? 1 : 0;
  EXPECT_GT(positives, 420);
  EXPECT_LT(positives, 580);
}

TEST(BuildClassifierDatasetTest, DeterministicForSeed) {
  const PairCorpus corpus = SignalCorpus(50);
  const FeatureStatsDb db;
  const auto a = BuildClassifierDataset(corpus, db, ClassifierConfig::M6(), 9);
  const auto b = BuildClassifierDataset(corpus, db, ClassifierConfig::M6(), 9);
  ASSERT_EQ(a.examples.size(), b.examples.size());
  for (size_t i = 0; i < a.examples.size(); ++i) {
    EXPECT_EQ(a.examples[i].label, b.examples[i].label);
    ASSERT_EQ(a.examples[i].occurrences.size(), b.examples[i].occurrences.size());
  }
}

// --- Pipeline

TEST(PipelineTest, CvOnSignalCorpusIsNearPerfect) {
  const PairCorpus corpus = SignalCorpus(300);
  PipelineOptions options;
  options.folds = 3;
  options.seed = 4;
  options.group_folds_by_adgroup = true;
  auto report = RunPairClassificationCv(corpus, ClassifierConfig::M1(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->metrics.accuracy(), 0.95);
  EXPECT_GT(report->auc, 0.98);
  EXPECT_EQ(report->metrics.total(), 300);
  EXPECT_GT(report->num_t_features, 0u);
}

TEST(PipelineTest, EmptyCorpusFails) {
  PairCorpus corpus;
  EXPECT_FALSE(RunPairClassificationCv(corpus, ClassifierConfig::M1(), {}).ok());
}

TEST(PipelineTest, MultiThreadedCvMatchesSingleThreaded) {
  const PairCorpus corpus = SignalCorpus(240);
  PipelineOptions single;
  single.folds = 4;
  single.seed = 12;
  PipelineOptions multi = single;
  multi.num_threads = 3;
  auto a = RunPairClassificationCv(corpus, ClassifierConfig::M6(), single);
  auto b = RunPairClassificationCv(corpus, ClassifierConfig::M6(), multi);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->metrics.true_positives, b->metrics.true_positives);
  EXPECT_EQ(a->metrics.false_positives, b->metrics.false_positives);
  EXPECT_DOUBLE_EQ(a->auc, b->auc);
}

TEST(PipelineTest, PerFoldStatsAlsoWorks) {
  const PairCorpus corpus = SignalCorpus(200);
  PipelineOptions options;
  options.folds = 2;
  options.per_fold_stats = true;
  auto report = RunPairClassificationCv(corpus, ClassifierConfig::M1(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->metrics.accuracy(), 0.9);
}

TEST(PipelineTest, LearnPositionWeightsRequiresPositionConfig) {
  const PairCorpus corpus = SignalCorpus(50);
  EXPECT_FALSE(LearnPositionWeights(corpus, ClassifierConfig::M1(), {}).ok());
}

TEST(PipelineTest, LearnPositionWeightsProducesGrid) {
  const PairCorpus corpus = SignalCorpus(100);
  ClassifierConfig config = ClassifierConfig::M2();
  config.term_position_conjunction = false;  // Coupled factor: standalone P.
  auto report = LearnPositionWeights(corpus, config, {});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->term_position_weights.size(), static_cast<size_t>(kMaxLineBucket + 1));
  // Line 1 position 0 occurs in every pair ("winner"/"loser"), so it must
  // have a (finite) learned weight.
  EXPECT_FALSE(std::isnan(report->term_position_weights[1][0]));
}

}  // namespace
}  // namespace microbrowse
