// Copyright 2026 The Microbrowse Authors

#include "microbrowse/optimizer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "microbrowse/pipeline.h"

namespace microbrowse {
namespace {

/// Training corpus with an unambiguous signal: creatives containing
/// "winner" beat creatives containing "loser"; "meh" is neutral.
PairCorpus TrainingCorpus(int n) {
  PairCorpus corpus;
  Rng rng(21);
  for (int i = 0; i < n; ++i) {
    SnippetPair pair;
    pair.adgroup_id = i;
    pair.keyword_id = i % 5;
    const bool vary_layout = rng.Bernoulli(0.5);
    pair.r.snippet = vary_layout
                         ? Snippet::FromTokens({{"brand"}, {"winner", "stuff"}, {"meh"}})
                         : Snippet::FromTokens({{"brand"}, {"meh"}, {"winner", "stuff"}});
    pair.r.serve_weight = 1.25;
    pair.s.snippet = vary_layout
                         ? Snippet::FromTokens({{"brand"}, {"loser", "stuff"}, {"meh"}})
                         : Snippet::FromTokens({{"brand"}, {"meh"}, {"loser", "stuff"}});
    pair.s.serve_weight = 0.75;
    corpus.pairs.push_back(pair);
  }
  return corpus;
}

struct TrainedBundle {
  FeatureStatsDb db;
  CoupledDataset dataset;
  SnippetClassifierModel model;
  ClassifierConfig config;
};

TrainedBundle Train() {
  TrainedBundle bundle;
  bundle.config = ClassifierConfig::M6();
  const PairCorpus corpus = TrainingCorpus(300);
  BuildStatsOptions stats_options;
  stats_options.min_count = 2;
  bundle.db = BuildFeatureStats(corpus, stats_options);
  bundle.dataset = BuildClassifierDataset(corpus, bundle.db, bundle.config, 3);
  auto model = TrainSnippetClassifier(bundle.dataset, bundle.config);
  EXPECT_TRUE(model.ok());
  bundle.model = *model;
  return bundle;
}

TEST(PredictPairMarginTest, AgreesWithTrainingSignal) {
  const TrainedBundle bundle = Train();
  const Snippet winner = Snippet::FromTokens({{"brand"}, {"winner", "stuff"}, {"meh"}});
  const Snippet loser = Snippet::FromTokens({{"brand"}, {"loser", "stuff"}, {"meh"}});
  const double margin =
      PredictPairMargin(winner, loser, bundle.db, bundle.config, bundle.model,
                        bundle.dataset.t_registry, bundle.dataset.p_registry);
  EXPECT_GT(margin, 0.5);
  const double reverse =
      PredictPairMargin(loser, winner, bundle.db, bundle.config, bundle.model,
                        bundle.dataset.t_registry, bundle.dataset.p_registry);
  EXPECT_LT(reverse, -0.5);
}

TEST(OptimizeSnippetTest, PicksTheWinningPhrase) {
  const TrainedBundle bundle = Train();
  SnippetCandidates candidates;
  candidates.brand = "brand";
  candidates.blocks = {{"loser stuff", "winner stuff"}, {"meh"}};
  const Snippet reference = Snippet::FromTokens({{"brand"}, {"loser", "stuff"}, {"meh"}});

  auto result = OptimizeSnippet(candidates, reference, bundle.db, bundle.config, bundle.model,
                                bundle.dataset.t_registry, bundle.dataset.p_registry);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->margin_over_reference, 0.0);
  // The optimised creative contains "winner".
  bool has_winner = false;
  for (int l = 0; l < result->snippet.num_lines(); ++l) {
    for (const auto& token : result->snippet.line(l)) {
      if (token == "winner") has_winner = true;
    }
  }
  EXPECT_TRUE(has_winner);
}

TEST(OptimizeSnippetTest, UsesExactlyOnePhrasePerBlock) {
  const TrainedBundle bundle = Train();
  SnippetCandidates candidates;
  candidates.brand = "brand";
  candidates.blocks = {{"winner stuff", "loser stuff"}, {"meh", "blah"}};
  const Snippet reference = Snippet::FromTokens({{"brand"}, {"meh"}});
  auto result = OptimizeSnippet(candidates, reference, bundle.db, bundle.config, bundle.model,
                                bundle.dataset.t_registry, bundle.dataset.p_registry);
  ASSERT_TRUE(result.ok());
  int content_tokens = 0;
  for (int l = 0; l < result->snippet.num_lines(); ++l) {
    content_tokens += static_cast<int>(result->snippet.line(l).size());
  }
  // brand(1) + one 2-token phrase + one 1-token phrase.
  EXPECT_EQ(content_tokens, 4);
}

TEST(OptimizeSnippetTest, InvalidInputsRejected) {
  const TrainedBundle bundle = Train();
  const Snippet reference = Snippet::FromTokens({{"brand"}});
  SnippetCandidates no_blocks;
  no_blocks.brand = "brand";
  EXPECT_FALSE(OptimizeSnippet(no_blocks, reference, bundle.db, bundle.config, bundle.model,
                               bundle.dataset.t_registry, bundle.dataset.p_registry)
                   .ok());
  SnippetCandidates empty_block;
  empty_block.brand = "brand";
  empty_block.blocks = {{}};
  EXPECT_FALSE(OptimizeSnippet(empty_block, reference, bundle.db, bundle.config, bundle.model,
                               bundle.dataset.t_registry, bundle.dataset.p_registry)
                   .ok());
  SnippetCandidates fine;
  fine.brand = "brand";
  fine.blocks = {{"x"}};
  OptimizeOptions options;
  options.beam_width = 0;
  EXPECT_FALSE(OptimizeSnippet(fine, reference, bundle.db, bundle.config, bundle.model,
                               bundle.dataset.t_registry, bundle.dataset.p_registry, options)
                   .ok());
}

TEST(OptimizeSnippetTest, DeterministicAcrossCalls) {
  const TrainedBundle bundle = Train();
  SnippetCandidates candidates;
  candidates.brand = "brand";
  candidates.blocks = {{"winner stuff", "loser stuff"}, {"meh", "blah"}};
  const Snippet reference = Snippet::FromTokens({{"brand"}, {"meh"}});
  auto a = OptimizeSnippet(candidates, reference, bundle.db, bundle.config, bundle.model,
                           bundle.dataset.t_registry, bundle.dataset.p_registry);
  auto b = OptimizeSnippet(candidates, reference, bundle.db, bundle.config, bundle.model,
                           bundle.dataset.t_registry, bundle.dataset.p_registry);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->snippet, b->snippet);
  EXPECT_DOUBLE_EQ(a->margin_over_reference, b->margin_over_reference);
}

}  // namespace
}  // namespace microbrowse
